"""Failure injection across the whole system.

The paper's environment claims ("we have not experienced packet loss or
transient network disruptions that allowed the input buffer of the ESs to
empty") are good fortune, not guarantees — these tests make the bad things
happen and check the system degrades the way its design promises:
speakers are stateless radios, so every failure is survivable by waiting
for the next control packet.
"""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.sim import ProcessKilled

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(n_speakers=1, **sys_kw):
    system = EthernetSpeakerSystem(**sys_kw)
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    nodes = [system.add_speaker(channel=channel) for _ in range(n_speakers)]
    return system, producer, channel, nodes


def test_producer_restart_mid_stream():
    """Kill the rebroadcaster at t=3, start a fresh one (stream clock
    restarts): speakers re-anchor off the new control packets and play
    the second stream."""
    system, producer, channel, (node,) = build()
    rb1 = system.rebroadcasters[0]
    system.play_synthetic(producer, 5.0, LOW)
    system.sim.schedule(3.0, rb1.stop)

    def restart():
        # a second rebroadcaster on a fresh VAD of the same machine
        from repro.kernel.vad import VadPair

        VadPair(producer.machine, slave_path="/dev/vads2",
                master_path="/dev/vadm2")
        system.add_rebroadcaster(producer, channel,
                                 master_path="/dev/vadm2",
                                 control_interval=0.5)
        system.play_synthetic(producer, 5.0, LOW, slave_path="/dev/vads2")

    system.sim.schedule(6.0, restart)
    system.run(until=15.0)
    st = node.stats
    # played both halves: blocks before the kill and after the restart
    times = [t for _, t in st.play_log]
    assert min(times) < 3.0
    assert max(times) > 7.0
    assert st.control_rx > 2


def test_speaker_crash_and_cold_rejoin():
    system, producer, channel, (node,) = build()
    system.play_synthetic(producer, 12.0, LOW)
    system.sim.schedule(4.0, node.speaker.stop)
    fresh = system.add_speaker(channel=channel, start=False)
    system.sim.schedule(8.0, fresh.speaker.start)
    system.run(until=15.0)
    # the crashed speaker stops counting; the fresh one picks up the
    # running stream without anyone's cooperation (§6)
    assert fresh.stats.played > 0
    assert fresh.stats.first_play_time > 8.0
    assert max(p for p, _ in fresh.stats.play_log) > 10.0


def test_network_partition_and_heal():
    """Detach a speaker's NIC for 3 seconds: it loses packets, then
    resynchronises when the segment heals."""
    system, producer, channel, (node,) = build()
    system.play_synthetic(producer, 15.0, LOW)
    nic = node.machine.net.nic

    system.sim.schedule(4.0, system.lan.detach, nic)
    system.sim.schedule(7.0, system.lan.attach, nic)
    system.run(until=18.0)
    st = node.stats
    assert st.seq_gaps > 20  # the partition cost real packets
    positions = sorted(p for p, _ in st.play_log)
    # played before, and resumed after the heal (positions past t=8)
    assert positions[0] < 4.0
    assert positions[-1] > 9.0
    # underruns made the outage audible, as they should
    assert node.device.underruns >= 1


def test_slow_speaker_cpu_overload_sheds_load():
    """A hopelessly slow speaker (10 MHz!) cannot decode in real time;
    it must shed load (drops) rather than run away with memory."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="always")
    system.add_rebroadcaster(producer, channel, real_codec=False)
    node = system.add_speaker(channel=channel, cpu_freq_hz=10e6,
                              rx_buffer_packets=16)
    system.play_synthetic(producer, 10.0, LOW)
    system.run(until=15.0)
    lost = (node.stats.late_dropped + node.speaker._sock.drops
            + node.stats.seq_gaps)
    assert lost > 0
    assert node.speaker._sock.queued <= 16  # bounded memory


def test_vad_closed_while_rebroadcaster_blocked():
    """Closing the VAD pair wakes a blocked rebroadcaster cleanly."""
    system, producer, channel, (node,) = build()
    rb = system.rebroadcasters[0]
    proc = rb._proc
    system.sim.schedule(2.0, producer.vad.close)
    system.run(until=5.0)
    assert not proc.alive
    assert proc.exception is None  # clean exit on QueueClosed


def test_garbage_on_the_data_port_is_ignored():
    system, producer, channel, (node,) = build()
    evil = system.add_producer(name="evil", housekeeping=False)

    def spam():
        from repro.sim import Sleep

        sock = evil.machine.net.socket()
        rng = np.random.default_rng(3)
        for _ in range(200):
            junk = rng.integers(0, 256, 100, dtype=np.uint8).tobytes()
            sock.sendto(junk, (channel.group_ip, channel.port))
            yield Sleep(0.02)

    evil.machine.spawn(spam())
    x = sine(440, 5.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=8.0)
    st = node.stats
    assert st.garbage_rx == 200
    assert st.played > 0
    assert node.sink.audio_seconds == pytest.approx(5.0, abs=0.3)


def test_two_channels_do_not_interfere():
    """Concurrent streams on separate groups stay separate."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    from repro.kernel.vad import VadPair

    VadPair(producer.machine, slave_path="/dev/vads2",
            master_path="/dev/vadm2")
    ch_a = system.add_channel("a", params=LOW, compress="never")
    ch_b = system.add_channel("b", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch_a)
    system.add_rebroadcaster(producer, ch_b, master_path="/dev/vadm2")
    node_a = system.add_speaker(channel=ch_a)
    node_b = system.add_speaker(channel=ch_b)
    tone_a = sine(440, 3.0, 8000)
    tone_b = sine(880, 3.0, 8000)
    system.play_pcm(producer, tone_a, LOW)
    system.play_pcm(producer, tone_b, LOW, slave_path="/dev/vads2")
    system.run(until=8.0)
    for node, freq in ((node_a, 440), (node_b, 880)):
        out = node.sink.waveform()
        crossings = int(np.sum(np.diff(np.signbit(out))))
        seconds = len(out) / 8000
        assert crossings == pytest.approx(2 * freq * seconds, rel=0.05)
