"""Off-the-shelf application simulacra: players, radio client, time shift."""

import numpy as np
import pytest

from repro.apps import (
    Mp3PlayerApp,
    StreamingClientApp,
    TimeShiftRecorder,
    TonePlayerApp,
    WanRadioServer,
    replay_recording,
)
from repro.audio import (
    AudioEncoding,
    AudioParams,
    music,
    read_wav,
    sine,
    snr_db,
)
from repro.codec import Mp3LikeFile
from repro.kernel import (
    AudioDevice,
    HardwareAudioDriver,
    Machine,
    SpeakerSink,
    VadPair,
)
from repro.net import WanLink
from repro.sim import Simulator

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def machine_with_audio(sim, freq=500e6):
    m = Machine(sim, "host", cpu_freq_hz=freq)
    sink = SpeakerSink()
    hw = HardwareAudioDriver(m, sink)
    m.register_device("/dev/audio", AudioDevice(m, hw))
    return m, sink


def test_tone_player_plays_through_hardware():
    sim = Simulator()
    m, sink = machine_with_audio(sim)
    x = sine(440, 1.0, 8000)
    TonePlayerApp(m, x, PARAMS).start()
    sim.run()
    assert snr_db(x, sink.waveform()[: len(x)]) > 30


def test_mp3_player_decodes_to_hardware():
    sim = Simulator()
    m, sink = machine_with_audio(sim)
    x = music(2.0, 44100, seed=20)
    mp3 = Mp3LikeFile.encode(x, 44100, bitrate_kbps=256).to_bytes()
    app = Mp3PlayerApp(m, mp3)
    app.start()
    sim.run()
    assert app.blocks_played == len(Mp3LikeFile.from_bytes(mp3).blocks)
    out = sink.waveform()
    assert snr_db(x, out[: len(x)]) > 15  # lossy source, but recognisable


def test_mp3_player_charges_decode_cpu():
    sim = Simulator()
    m, sink = machine_with_audio(sim)
    x = music(1.0, 44100, seed=21)
    mp3 = Mp3LikeFile.encode(x, 44100).to_bytes()
    Mp3PlayerApp(m, mp3).start()
    sim.run()
    assert m.cpu.stats.domain_seconds["user"] > 0


def test_mp3_player_on_vad_runs_at_wire_speed():
    """§3.1: pointed at the VAD instead of real hardware, the same
    unmodified player finishes a long file almost instantly."""
    sim = Simulator()
    m = Machine(sim, "producer")
    VadPair(m)
    x = music(30.0, 44100, seed=22)
    mp3 = Mp3LikeFile.encode(x, 44100).to_bytes()

    drained = []

    def drain():
        fd = yield from m.sys_open("/dev/vadm")
        while True:
            rec = yield from m.sys_read(fd, 65536)
            drained.append(rec)

    m.spawn(drain())
    app = Mp3PlayerApp(m, mp3, device_path="/dev/vads", drain=False)
    proc = app.start()
    sim.run(until=30.0)
    assert not proc.alive
    # finished way before the 30 s of audio would take to play
    data_bytes = sum(len(r.payload) for r in drained if r.kind == "data")
    assert data_bytes > 0.9 * len(x) * 2


def test_wan_radio_end_to_end():
    sim = Simulator()
    m, sink = machine_with_audio(sim)
    x = music(4.0, 44100, seed=23)
    mp3 = Mp3LikeFile.encode(x, 44100, block_seconds=0.5).to_bytes()
    wan = WanLink(sim, bandwidth_bps=1.5e6, latency=0.08, jitter=0.04, seed=5)
    server = WanRadioServer(sim, wan, mp3)
    client = StreamingClientApp(m, server)
    server.start()
    client.start()
    sim.run(until=20.0)
    assert client.blocks_played == len(server.file.blocks)
    out = sink.waveform()
    assert snr_db(x, out[: len(x)]) > 12


def test_wan_radio_is_live_paced():
    """A live source takes stream-duration wall time, unlike a file."""
    sim = Simulator()
    m, sink = machine_with_audio(sim)
    x = music(4.0, 44100, seed=23)
    mp3 = Mp3LikeFile.encode(x, 44100, block_seconds=0.5).to_bytes()
    wan = WanLink(sim, jitter=0.0)
    server = WanRadioServer(sim, wan, mp3)
    client = StreamingClientApp(m, server)
    server.start()
    proc = client.start()
    sim.run(until=30.0)
    assert not proc.alive
    assert sim.now >= 4.0  # couldn't finish faster than real time


def test_time_shift_record_and_replay(tmp_path):
    """§3.3: record a stream via the VAD master, play it back later."""
    sim = Simulator()
    producer = Machine(sim, "producer")
    VadPair(producer)
    recorder = TimeShiftRecorder(producer)
    recorder.start()
    x = sine(440, 2.0, 8000)
    TonePlayerApp(producer, x, PARAMS, device_path="/dev/vads",
                  drain=False).start()
    sim.run(until=5.0)
    rec = recorder.recording
    assert rec.duration == pytest.approx(2.0, abs=0.1)
    assert snr_db(x, rec.waveform()[: len(x)]) > 40

    # replay on a different machine with real audio hardware
    m2, sink = machine_with_audio(sim)
    replay_recording(m2, rec)
    sim.run()
    assert snr_db(x, sink.waveform()[: len(x)]) > 30

    # and export to WAV
    path = tmp_path / "shifted.wav"
    rec.export_wav(path)
    samples, rate = read_wav(path)
    assert rate == 8000
    assert snr_db(x, samples[: len(x), 0]) > 30


def test_recorder_captures_reconfiguration():
    sim = Simulator()
    producer = Machine(sim, "producer")
    VadPair(producer)
    recorder = TimeShiftRecorder(producer)
    recorder.start()
    p2 = AudioParams(AudioEncoding.ULAW, 8000, 1)
    TonePlayerApp(producer, sine(440, 0.5, 8000), PARAMS,
                  device_path="/dev/vads", drain=False).start()

    def second():
        yield from ()

    sim.run(until=2.0)
    TonePlayerApp(producer, sine(220, 0.5, 8000), p2,
                  device_path="/dev/vads", drain=False).start()
    sim.run(until=4.0)
    params_seen = {p for p, _ in recorder.recording.segments}
    assert params_seen == {PARAMS, p2}


def test_empty_recording_export_rejected():
    from repro.apps.recorder import Recording

    with pytest.raises(ValueError):
        Recording().export_wav("/tmp/nope.wav")
