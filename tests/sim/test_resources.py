"""Queues, semaphores, signals."""

import pytest

from repro.sim import Process, Queue, QueueClosed, Resource, Signal, Simulator, Sleep


def spawn(sim, gen, name="p"):
    return Process.spawn(sim, gen, name)


# -- Queue ---------------------------------------------------------------------


def test_queue_fifo_order():
    sim = Simulator()
    q = Queue()
    got = []

    def producer():
        for i in range(5):
            yield q.put(i)

    def consumer():
        for _ in range(5):
            got.append((yield q.get()))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_get_blocks_until_put():
    sim = Simulator()
    q = Queue()

    def consumer():
        v = yield q.get()
        return (v, sim.now)

    def producer():
        yield Sleep(3.0)
        yield q.put("x")

    p = spawn(sim, consumer())
    spawn(sim, producer())
    sim.run()
    assert p.result == ("x", 3.0)


def test_bounded_put_blocks_until_space():
    sim = Simulator()
    q = Queue(capacity=1)
    timeline = []

    def producer():
        yield q.put("a")
        timeline.append(("put-a", sim.now))
        yield q.put("b")
        timeline.append(("put-b", sim.now))

    def consumer():
        yield Sleep(5.0)
        v = yield q.get()
        timeline.append((f"got-{v}", sim.now))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 5.0) in timeline  # blocked until the consumer drained


def test_put_nowait_drops_when_full():
    sim = Simulator()
    q = Queue(capacity=2)
    assert q.put_nowait(1)
    assert q.put_nowait(2)
    assert not q.put_nowait(3)
    assert len(q) == 2


def test_get_nowait():
    q = Queue()
    q.put_nowait("a")
    assert q.get_nowait() == "a"
    with pytest.raises(IndexError):
        q.get_nowait()


def test_close_wakes_blocked_getter():
    sim = Simulator()
    q = Queue()

    def consumer():
        try:
            yield q.get()
        except QueueClosed:
            return "closed"

    p = spawn(sim, consumer())
    sim.schedule(1.0, q.close)
    sim.run()
    assert p.result == "closed"


def test_close_lets_backlog_drain_first():
    sim = Simulator()
    q = Queue()
    q.put_nowait("last")
    q.close()

    def consumer():
        v = yield q.get()
        try:
            yield q.get()
        except QueueClosed:
            return v

    p = spawn(sim, consumer())
    sim.run()
    assert p.result == "last"


def test_multiple_getters_served_in_order():
    sim = Simulator()
    q = Queue()
    got = []

    def consumer(tag):
        v = yield q.get()
        got.append((tag, v))

    spawn(sim, consumer("first"))
    spawn(sim, consumer("second"))

    def producer():
        yield Sleep(1.0)
        yield q.put("a")
        yield q.put("b")

    spawn(sim, producer())
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


# -- Resource --------------------------------------------------------------------


def test_mutex_serialises_critical_section():
    sim = Simulator()
    lock = Resource(1)
    spans = []

    def worker(tag):
        yield lock.acquire()
        start = sim.now
        yield Sleep(1.0)
        lock.release()
        spans.append((tag, start, sim.now))

    spawn(sim, worker("a"))
    spawn(sim, worker("b"))
    sim.run()
    (_, s0, e0), (_, s1, e1) = sorted(spans, key=lambda x: x[1])
    assert e0 <= s1  # no overlap


def test_semaphore_allows_parallelism_up_to_slots():
    sim = Simulator()
    sem = Resource(2)
    starts = []

    def worker():
        yield sem.acquire()
        starts.append(sim.now)
        yield Sleep(1.0)
        sem.release()

    for _ in range(4):
        spawn(sim, worker())
    sim.run()
    assert starts == [0.0, 0.0, 1.0, 1.0]


def test_release_without_acquire_raises():
    lock = Resource(1)
    with pytest.raises(Exception):
        lock.release()


# -- Signal ------------------------------------------------------------------------


def test_signal_broadcasts_to_all_waiters():
    sim = Simulator()
    sig = Signal()
    woke = []

    def waiter(tag):
        v = yield sig.wait()
        woke.append((tag, v, sim.now))

    spawn(sim, waiter(1))
    spawn(sim, waiter(2))
    sim.schedule(2.0, sig.fire, "go")
    sim.run()
    assert sorted(woke) == [(1, "go", 2.0), (2, "go", 2.0)]


def test_signal_fire_returns_waiter_count():
    sim = Simulator()
    sig = Signal()

    def waiter():
        yield sig.wait()

    spawn(sim, waiter())
    spawn(sim, waiter())
    counts = []
    sim.schedule(1.0, lambda: counts.append(sig.fire()))
    sim.run()
    assert counts == [2]
    assert sig.fire() == 0  # nobody waiting any more
