"""Event loop: ordering, cancellation, clock semantics."""

import pytest

from repro.sim import Simulator, SimError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(4.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.5]
    assert sim.now == 4.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock lands exactly on the window edge
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, fired.append, "y")
    sim.cancel(ev)
    sim.run()
    assert fired == ["y"]


def test_cancel_twice_is_harmless():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.cancel(ev)
    sim.cancel(ev)
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_from_events_run():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_counts_live_events():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    sim.cancel(ev)
    assert sim.pending() == 1
