"""Hypothesis stateful testing of the simulation primitives.

The queues and the event loop carry the entire system; model-based tests
shake out ordering bugs that example-based tests miss.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Process, Queue, Simulator, Sleep


class QueueModel(RuleBasedStateMachine):
    """Drive a sim Queue against a plain deque model.

    Producers/consumers run as simulation processes; after every rule the
    sim is drained and the observable state must match the model.
    """

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.capacity = 4
        self.queue = Queue(capacity=self.capacity, name="model")
        self.model: deque = deque()
        self.consumed = []
        self.expected_consumed = []
        self._counter = 0

    @rule()
    def put_nowait(self):
        self._counter += 1
        item = self._counter
        accepted = self.queue.put_nowait(item)
        if len(self.model) < self.capacity:
            assert accepted
            self.model.append(item)
        else:
            assert not accepted

    @rule()
    def get_nowait(self):
        if self.model:
            assert self.queue.get_nowait() == self.model.popleft()
        else:
            try:
                self.queue.get_nowait()
                raise AssertionError("expected IndexError")
            except IndexError:
                pass

    @rule(n=st.integers(min_value=1, max_value=3))
    def blocking_consumer_then_producer(self, n):
        """n consumers block, then n items arrive: FIFO handoff."""
        got = []

        def consumer():
            item = yield self.queue.get()
            got.append(item)

        for _ in range(n):
            Process.spawn(self.sim, consumer(), "c")
        self.sim.run()
        # consumers may have eaten the backlog first
        from_backlog = []
        while self.model and len(from_backlog) < n:
            from_backlog.append(self.model.popleft())
        still_waiting = n - len(from_backlog)
        produced = []
        for _ in range(still_waiting):
            self._counter += 1
            produced.append(self._counter)
            assert self.queue.put_nowait(self._counter)
        self.sim.run()
        assert got == from_backlog + produced

    @invariant()
    def same_length(self):
        assert len(self.queue) == len(self.model)

    @invariant()
    def same_content(self):
        assert list(self.queue._items) == list(self.model)


TestQueueModel = QueueModel.TestCase
TestQueueModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class ClockModel(RuleBasedStateMachine):
    """The clock never runs backwards, events never fire early/late."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired = []

    @rule(delay=st.floats(min_value=0.0, max_value=100.0))
    def schedule(self, delay):
        due = self.sim.now + delay
        self.sim.schedule(
            delay, lambda d=due: self.fired.append((d, self.sim.now))
        )

    @rule()
    def run_some(self):
        for _ in range(5):
            if not self.sim.step():
                break

    @rule(horizon=st.floats(min_value=0.0, max_value=50.0))
    def run_until(self, horizon):
        self.sim.run(until=self.sim.now + horizon)

    @invariant()
    def events_fired_exactly_on_time(self):
        for due, actual in self.fired:
            assert actual == due

    @invariant()
    def fired_in_order(self):
        times = [actual for _, actual in self.fired]
        assert times == sorted(times)


TestClockModel = ClockModel.TestCase
TestClockModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
