"""Process-level fault injection: freeze/thaw, CPU halt, kill-while-frozen.

A *hung* node is the nastiest failure mode for a watchdog: the process is
still "there" (its generator never exited) but it stops consuming its
queues and servicing its timers.  ``Process.freeze`` models exactly that —
the scheduler parks the process's next wake-up instead of delivering it —
and ``Cpu.halt`` extends the wedge to the whole machine, so even other
processes (heartbeat agents included) starve.
"""

import pytest

from repro.kernel.machine import Machine
from repro.sim import Process, ProcessKilled, Simulator, Sleep


def spawn(sim, gen, name="p"):
    return Process.spawn(sim, gen, name)


def test_freeze_parks_wakeups_and_thaw_redelivers():
    sim = Simulator()
    ticks = []

    def body():
        while True:
            yield Sleep(1.0)
            ticks.append(sim.now)

    p = spawn(sim, body())
    sim.schedule(2.5, p.freeze)
    sim.schedule(6.25, p.thaw)
    sim.run(until=10.0)
    # ticks at 1, 2 land; the 3.0 wake-up is parked until the thaw at
    # 6.25, after which the 1 s cadence resumes from there
    assert ticks == [1.0, 2.0, 6.25, 7.25, 8.25, 9.25]


def test_frozen_process_is_alive_but_flagged():
    sim = Simulator()

    def body():
        while True:
            yield Sleep(1.0)

    p = spawn(sim, body())
    sim.run(until=0.5)
    p.freeze()
    sim.run(until=5.0)
    assert p.alive
    assert p.frozen
    p.thaw()
    sim.run(until=6.0)
    assert not p.frozen


def test_kill_while_frozen_still_runs_finally():
    sim = Simulator()
    cleaned = []

    def body():
        try:
            while True:
                yield Sleep(1.0)
        finally:
            cleaned.append(sim.now)

    p = spawn(sim, body())
    sim.schedule(1.5, p.freeze)   # the 2.0 wake-up gets parked
    sim.schedule(3.0, p.kill)
    sim.run(until=5.0)
    assert not p.alive
    assert cleaned == [3.0]


def test_kill_frozen_process_without_parked_step():
    # freeze before the pending wake-up fires, kill before it would have:
    # the kill must not deadlock waiting for a step that will never come
    sim = Simulator()

    def body():
        yield Sleep(10.0)

    p = spawn(sim, body())
    sim.schedule(1.0, p.freeze)
    sim.schedule(2.0, p.kill)
    sim.run(until=5.0)
    assert not p.alive


def test_thaw_is_noop_on_running_process():
    sim = Simulator()
    ticks = []

    def body():
        while True:
            yield Sleep(1.0)
            ticks.append(sim.now)

    p = spawn(sim, body())
    sim.schedule(0.5, p.thaw)
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_cpu_halt_starves_all_processes_on_the_machine():
    sim = Simulator()
    machine = Machine(sim, "m", cpu_freq_hz=1e6)
    done = []

    def worker(tag):
        for _ in range(4):
            yield machine.cpu.run(1e5)  # 0.1 s per slice
        done.append((tag, sim.now))

    machine.spawn(worker("a"))
    machine.spawn(worker("b"))
    sim.schedule(0.15, machine.cpu.halt)
    sim.run(until=2.0)
    assert machine.cpu.halted
    assert done == []  # nobody finished: the CPU stopped dispatching
    machine.cpu.unhalt()
    sim.run(until=5.0)
    assert sorted(tag for tag, _ in done) == ["a", "b"]
    # work resumed where it stopped, not from scratch
    assert all(t < 5.0 for _, t in done)


def test_cpu_halt_mid_job_resumes_without_losing_work():
    sim = Simulator()
    machine = Machine(sim, "m", cpu_freq_hz=1e6)
    finished = []

    def worker():
        yield machine.cpu.run(2e5)  # 0.2 s of work, several quanta
        finished.append(sim.now)

    machine.spawn(worker())
    sim.schedule(0.1, machine.cpu.halt)  # mid-job
    sim.run(until=1.0)
    assert finished == []  # parked with work remaining
    machine.cpu.unhalt()
    machine.cpu.unhalt()  # second call is a no-op
    assert not machine.cpu.halted
    sim.run(until=2.0)
    # the wedge added exactly the halted interval: 0.2 s of CPU time,
    # of which ~0.1 s ran before the halt and the rest after 1.0
    assert finished == [pytest.approx(1.1, abs=machine.cpu.quantum + 1e-9)]
