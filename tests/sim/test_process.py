"""Processes: spawning, sleeping, composition, kill, timeouts."""

import pytest

from repro.sim import (
    Process,
    ProcessKilled,
    Simulator,
    Sleep,
    Timeout,
    WaitProcess,
)
from repro.sim.resources import Queue


def spawn(sim, gen, name="p"):
    return Process.spawn(sim, gen, name)


def test_process_runs_and_records_result():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        return 42

    p = spawn(sim, body())
    sim.run()
    assert not p.alive
    assert p.result == 42


def test_sleep_advances_virtual_time():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield Sleep(2.5)
        times.append(sim.now)
        yield Sleep(0.5)
        times.append(sim.now)

    spawn(sim, body())
    sim.run()
    assert times == [0.0, 2.5, 3.0]


def test_zero_sleep_yields_control():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield Sleep(0)
        order.append("a2")

    def b():
        order.append("b1")
        yield Sleep(0)
        order.append("b2")

    spawn(sim, a())
    spawn(sim, b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_yield_from_composes_subroutines():
    sim = Simulator()

    def helper(x):
        yield Sleep(1.0)
        return x * 2

    def body():
        v = yield from helper(21)
        return v

    p = spawn(sim, body())
    sim.run()
    assert p.result == 42


def test_wait_process_returns_result():
    sim = Simulator()

    def child():
        yield Sleep(3.0)
        return "done"

    def parent():
        c = spawn(sim, child(), "child")
        v = yield WaitProcess(c)
        return (v, sim.now)

    p = spawn(sim, parent(), "parent")
    sim.run()
    assert p.result == ("done", 3.0)


def test_wait_on_already_finished_process():
    sim = Simulator()

    def child():
        return "early"
        yield  # pragma: no cover

    c = spawn(sim, child())
    sim.run()

    def parent():
        v = yield WaitProcess(c)
        return v

    p = spawn(sim, parent())
    sim.run()
    assert p.result == "early"


def test_child_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield Sleep(1.0)
        raise ValueError("boom")

    def parent():
        c = spawn(sim, child())
        try:
            yield WaitProcess(c)
        except ValueError as err:
            return f"caught {err}"

    p = spawn(sim, parent())
    sim.run()
    assert p.result == "caught boom"


def test_unwaited_exception_surfaces_in_run():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        raise RuntimeError("unobserved")

    spawn(sim, body())
    with pytest.raises(RuntimeError, match="unobserved"):
        sim.run()


def test_kill_interrupts_sleep_and_runs_finally():
    sim = Simulator()
    cleanup = []

    def body():
        try:
            yield Sleep(100.0)
        finally:
            cleanup.append(sim.now)

    p = spawn(sim, body())
    sim.schedule(5.0, p.kill)
    sim.run()
    assert not p.alive
    assert cleanup == [5.0]
    assert p.exception is None


def test_kill_before_first_step():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        return "should not get here"

    p = spawn(sim, body())
    p.kill()
    sim.run()
    assert not p.alive
    assert p.result is None


def test_kill_is_catchable():
    sim = Simulator()

    def body():
        try:
            yield Sleep(100.0)
        except ProcessKilled:
            return "survived"

    p = spawn(sim, body())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert p.result == "survived"


def test_timeout_fires_on_slow_wait():
    sim = Simulator()
    q = Queue()

    def body():
        try:
            yield Timeout(q.get(), 2.0)
        except TimeoutError:
            return ("timeout", sim.now)

    p = spawn(sim, body())
    sim.run()
    assert p.result == ("timeout", 2.0)


def test_timeout_does_not_fire_on_fast_wait():
    sim = Simulator()
    q = Queue()

    def producer():
        yield Sleep(0.5)
        yield q.put("item")

    def body():
        v = yield Timeout(q.get(), 2.0)
        return (v, sim.now)

    spawn(sim, producer())
    p = spawn(sim, body())
    sim.run()
    assert p.result == ("item", 0.5)
    assert sim.pending() == 0  # the timeout timer was cancelled


def test_yielding_non_waitable_is_an_error():
    sim = Simulator()

    def body():
        yield 42

    spawn(sim, body())
    with pytest.raises(Exception, match="expected a Waitable"):
        sim.run()
