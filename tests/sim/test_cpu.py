"""CPU scheduler: timing, fairness, context-switch accounting."""

import pytest

from repro.sim import CPU, Process, Simulator, Sleep


def spawn(sim, gen, name="p"):
    return Process.spawn(sim, gen, name)


def test_run_takes_cycles_over_frequency_seconds():
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, switch_cost=0.0)

    def body():
        yield cpu.run(50e6)  # half a second at 100 MHz
        return sim.now

    p = spawn(sim, body())
    sim.run()
    assert p.result == pytest.approx(0.5)


def test_slow_cpu_takes_proportionally_longer():
    results = {}
    for freq in (233e6, 2330e6):
        sim = Simulator()
        cpu = CPU(sim, freq_hz=freq, switch_cost=0.0)

        def body():
            yield cpu.run(233e6)
            return sim.now

        p = spawn(sim, body())
        sim.run()
        results[freq] = p.result
    assert results[233e6] == pytest.approx(10 * results[2330e6])


def test_cpu_serialises_two_processes():
    """Two CPU-bound processes on one core take 2x the time of one."""
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, switch_cost=0.0)
    done = []

    def body(tag):
        yield cpu.run(100e6)
        done.append((tag, sim.now))

    spawn(sim, body("a"))
    spawn(sim, body("b"))
    sim.run()
    assert max(t for _, t in done) == pytest.approx(2.0)


def test_round_robin_interleaves_fairly():
    """With quantum preemption both jobs finish about together."""
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=0.01, switch_cost=0.0)
    done = []

    def body(tag):
        yield cpu.run(100e6)
        done.append((tag, sim.now))

    spawn(sim, body("a"))
    spawn(sim, body("b"))
    sim.run()
    times = [t for _, t in done]
    # fair sharing: both complete within one quantum of each other
    assert abs(times[0] - times[1]) <= 0.01 + 1e-9


def test_busy_seconds_accounted_by_domain():
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, switch_cost=0.0)

    def body():
        yield cpu.run(30e6, domain="user")
        yield cpu.run(10e6, domain="sys")
        yield cpu.run(5e6, domain="intr")

    spawn(sim, body())
    sim.run()
    assert cpu.stats.domain_seconds["user"] == pytest.approx(0.3)
    assert cpu.stats.domain_seconds["sys"] == pytest.approx(0.1)
    assert cpu.stats.domain_seconds["intr"] == pytest.approx(0.05)
    assert cpu.stats.busy_seconds == pytest.approx(0.45)


def test_context_switches_counted_between_owners():
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=1.0, switch_cost=0.0)

    def body():
        yield cpu.run(1e6)

    spawn(sim, body())
    spawn(sim, body())
    sim.run()
    # idle->a, a->b (the final drop to idle is only accounted when the
    # CPU is next used after a real idle gap, so it is not counted here)
    assert cpu.stats.context_switches == 2


def test_single_process_busy_loop_switches_once_per_wake():
    """A process alternating work and sleep switches in and out each cycle."""
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=1.0, switch_cost=0.0)

    def body():
        for _ in range(5):
            yield cpu.run(1e6)
            yield Sleep(1.0)

    spawn(sim, body())
    sim.run()
    # first wake: 1 switch in; each later wake: out-to-idle + back in
    assert cpu.stats.context_switches == 9


def test_continuous_work_by_one_owner_does_not_rack_up_switches():
    """Back-to-back run() calls by the same process cost one switch in."""
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=10.0, switch_cost=0.0)

    def body():
        for _ in range(10):
            yield cpu.run(1e6)

    spawn(sim, body())
    sim.run()
    # idle->proc once; no observable switch after (no later CPU use)
    assert cpu.stats.context_switches == 1


def test_switch_cost_charged_as_system_time():
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=1.0, switch_cost=0.001)

    def body():
        yield cpu.run(1e6, domain="user")

    spawn(sim, body())
    sim.run()
    assert cpu.stats.domain_seconds["sys"] == pytest.approx(0.001)


def test_interrupt_owner_attribution():
    """Work attributed to a distinct owner token forces switches."""
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, quantum=1.0, switch_cost=0.0)

    def body():
        yield cpu.run(1e6, owner="driver-intr")
        yield cpu.run(1e6, owner="driver-intr")

    spawn(sim, body())
    sim.run()
    # idle -> driver-intr once; the second run is the same owner
    assert cpu.stats.context_switches == 1


def test_invalid_args_rejected():
    sim = Simulator()
    cpu = CPU(sim)
    with pytest.raises(Exception):
        cpu.run(-5)
    with pytest.raises(Exception):
        cpu.run(10, domain="bogus")
    with pytest.raises(Exception):
        CPU(sim, freq_hz=0)


def test_utilisation_half_busy():
    sim = Simulator()
    cpu = CPU(sim, freq_hz=100e6, switch_cost=0.0)

    def body():
        yield cpu.run(100e6)  # 1s busy

    spawn(sim, body())
    sim.run(until=2.0)
    assert cpu.stats.busy_seconds / sim.now == pytest.approx(0.5)
