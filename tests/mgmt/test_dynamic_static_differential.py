"""Differential: a discovery-assembled fleet is bit-identical to a
statically wired one.

The acceptance bar for the dynamic control plane is that it is *pure
control*: a fleet whose speakers boot parked, advertise themselves, and
get tuned by ACMP CONNECT transactions before the stream starts must
produce the exact playout — every ``play_log`` entry, every device
``write_offset``, every channel-ledger row — of a fleet whose speakers
were handed the channel at construction.  Both fleets run the *same*
advertisers, agents and controller (identical CPU and management-segment
load); the only difference is who wired the tuner.  Management traffic
rides its own out-of-band segment, so the audio LAN's fault RNG and wire
accounting are untouched — the comparison holds under GE wire faults
too.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.sim.process import Process, Sleep, WaitProcess

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)

MEMBERS = 4
STREAM_SECONDS = 3.0
STREAM_START = 2.5       # every ACMP transaction settles long before this
HORIZON = 8.0

#: PipelineReport fields describing the simulated audio path (must match)
PIPELINE_FIELDS = (
    "underruns", "silence_seconds", "wire_drops", "wire_losses",
    "injected_losses", "injected_duplicates", "injected_reordered",
    "injected_corrupted", "injected_pending",
    "epoch_resyncs", "rejoins", "max_rejoin_gap",
)


def build(dynamic, scenario, seed):
    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    nodes = []
    for i in range(MEMBERS):
        if dynamic:
            node = system.add_speaker(channel=None, start=False,
                                      name=f"es{i}")
        else:
            node = system.add_speaker(channel=channel, name=f"es{i}")
        system.advertise_speaker(node)      # both fleets carry the load
        nodes.append(node)
    controller = system.add_controller(check_interval=0.1)
    connects = []
    if dynamic:
        def assemble():
            yield Sleep(0.5)                # registry fills from adverts
            for node in nodes:              # sequential: deterministic
                ok = yield WaitProcess(
                    system.connect_speaker(controller, node, channel)
                )
                connects.append(ok)

        Process.spawn(system.sim, assemble(), name="assembler")
    if scenario == "ge-fault":
        system.inject_faults(
            loss_rate=0.05, burst_length=3.0, duplicate_rate=0.02,
            reorder_rate=0.03, reorder_window=4, seed=seed + 100,
        )
    system.play_synthetic(producer, STREAM_SECONDS, LOW,
                          source_paced=True, start_after=STREAM_START)
    system.run(until=HORIZON)
    return system, controller, nodes, connects


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize("scenario", ["clean", "ge-fault"])
def test_dynamic_fleet_matches_static_fleet(scenario, seed):
    sys_dyn, ctl_dyn, nodes_dyn, connects = build(True, scenario, seed)
    sys_sta, ctl_sta, nodes_sta, _ = build(False, scenario, seed)

    # the control plane really did the wiring on the dynamic side
    assert connects == [True] * MEMBERS
    assert ctl_dyn.stats.acmp_connects == MEMBERS
    assert ctl_dyn.stats.acmp_failures == 0
    assert ctl_sta.stats.acmp_connects == 0
    for node in nodes_dyn:
        assert node.channel is not None
        assert node.channel.channel_id == nodes_sta[0].channel.channel_id

    # ...and the audio world cannot tell the difference
    for dyn, sta in zip(nodes_dyn, nodes_sta):
        assert dyn.stats.play_log == sta.stats.play_log, \
            f"{dyn.speaker.name} playout differs"
        assert dyn.stats.write_offsets == sta.stats.write_offsets, \
            f"{dyn.speaker.name} device offsets differ"
        assert dyn.stats.played == sta.stats.played
        assert dyn.stats.rejoin_gaps == sta.stats.rejoin_gaps
        assert dyn.stats.play_log, f"{dyn.speaker.name} never played"

    rep_dyn = sys_dyn.pipeline_report()
    rep_sta = sys_sta.pipeline_report()
    assert len(rep_dyn.channels) == len(rep_sta.channels)
    for ca, cb in zip(rep_dyn.channels, rep_sta.channels):
        assert ca == cb, f"channel ledger differs:\n{ca}\n{cb}"
    for f in PIPELINE_FIELDS:
        assert getattr(rep_dyn, f) == getattr(rep_sta, f), \
            f"pipeline.{f}: {getattr(rep_dyn, f)!r} != " \
            f"{getattr(rep_sta, f)!r}"
    assert rep_dyn.conservation_residual == rep_sta.conservation_residual
    assert rep_dyn.conservation_ok and rep_sta.conservation_ok
    # the control plane itself shows up only in the out-of-band counters
    assert rep_dyn.acmp_connects == MEMBERS
    assert rep_sta.acmp_connects == 0
    assert rep_dyn.adp_advertises > 0 and rep_sta.adp_advertises > 0


@pytest.mark.parametrize("scenario", ["clean", "ge-fault"])
def test_dynamic_assembly_is_deterministic(scenario):
    """Two same-seed dynamic assemblies fingerprint identically — the
    seeded-timeout retry schedule and discovery cadence are replayable."""

    def fingerprint():
        system, controller, nodes, connects = build(True, scenario, 7)
        s = controller.stats
        return (
            tuple(tuple(n.stats.play_log) for n in nodes),
            tuple(tuple(n.stats.write_offsets) for n in nodes),
            tuple(connects),
            (s.adp_advertises, s.acmp_connects, s.acmp_retries,
             s.enumerations),
        )

    assert fingerprint() == fingerprint()
