"""The per-speaker remote control (§5.3) and channel persistence."""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.mgmt import CatalogAnnouncer, CatalogListener, RemoteControl
from repro.platform import Nvram

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def surf_fixture(n_channels=3):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channels = [
        system.add_channel(f"ch{i}", params=LOW, compress="never")
        for i in range(n_channels)
    ]
    announcer = CatalogAnnouncer(producer.machine, interval=0.25)
    for ch in channels:
        announcer.add_channel(ch)
    announcer.start()
    node = system.add_speaker(channel=channels[0])
    catalog = CatalogListener(node.machine)
    catalog.start()
    remote = RemoteControl(node.speaker, catalog, nvram=Nvram())
    system.run(until=1.0)  # let the catalog fill
    return system, channels, node, remote


def test_channel_up_cycles_through_catalog():
    system, channels, node, remote = surf_fixture()
    assert remote.current_index() == 0
    entry = remote.channel_up()
    assert entry.name == "ch1"
    assert node.speaker.group_ip == channels[1].group_ip
    remote.channel_up()
    remote.channel_up()  # wraps around
    assert node.speaker.group_ip == channels[0].group_ip


def test_channel_down_wraps():
    system, channels, node, remote = surf_fixture()
    entry = remote.channel_down()
    assert entry.name == "ch2"


def test_select_by_name():
    system, channels, node, remote = surf_fixture()
    entry = remote.select("ch2")
    assert entry is not None
    assert node.speaker.port == channels[2].port
    assert remote.select("nonexistent") is None


def test_no_channels_advertised():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("x", params=LOW)
    node = system.add_speaker(channel=ch)
    catalog = CatalogListener(node.machine)
    remote = RemoteControl(node.speaker, catalog)
    assert remote.channel_up() is None


def test_last_channel_persisted_and_restored():
    system, channels, node, remote = surf_fixture()
    remote.select("ch2")
    stored = remote.nvram.load("last_channel")
    assert stored == f"{channels[2].group_ip}:{channels[2].port}".encode()
    # simulate a reboot: speaker back on the default, then restore
    node.speaker.retune(channels[0].group_ip, channels[0].port)
    assert remote.restore_last_channel()
    assert node.speaker.group_ip == channels[2].group_ip


def test_restore_without_history_is_noop():
    system, channels, node, remote = surf_fixture()
    assert not RemoteControl(
        node.speaker, CatalogListener(node.machine), nvram=Nvram()
    ).restore_last_channel()


def test_surfed_channel_actually_plays():
    """Switching channels mid-stream lands on the other channel's audio."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    from repro.kernel.vad import VadPair

    VadPair(producer.machine, slave_path="/dev/vads2",
            master_path="/dev/vadm2")
    ch_a = system.add_channel("a", params=LOW, compress="never")
    ch_b = system.add_channel("b", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch_a, control_interval=0.5)
    system.add_rebroadcaster(producer, ch_b, master_path="/dev/vadm2",
                             control_interval=0.5)
    announcer = CatalogAnnouncer(producer.machine, interval=0.25)
    announcer.add_channel(ch_a)
    announcer.add_channel(ch_b)
    announcer.start()
    node = system.add_speaker(channel=ch_a)
    catalog = CatalogListener(node.machine)
    catalog.start()
    remote = RemoteControl(node.speaker, catalog)
    system.play_pcm(producer, sine(440, 10.0, 8000), LOW,
                    source_paced=True)
    system.play_pcm(producer, sine(880, 10.0, 8000), LOW,
                    source_paced=True, slave_path="/dev/vads2")
    system.sim.schedule(4.0, remote.channel_up)
    system.run(until=12.0)
    out = node.sink.waveform()
    # a late window (well after the switch, clear of the stream tail)
    # is pure 880 Hz: check the dominant FFT bin
    window = out[-8000 * 3 : -8000]
    spectrum = np.abs(np.fft.rfft(window))
    peak_hz = np.argmax(spectrum) * 8000 / len(window)
    assert peak_hz == pytest.approx(880, abs=5)
