"""Listener census + channel suspension (§4.3) and signed catalogs (§5.1)."""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.mgmt import (
    CATALOG_GROUP,
    CATALOG_PORT,
    CatalogAnnouncer,
    CatalogListener,
    ControlStation,
    ManagementAgent,
)
from repro.security import HmacAuthenticator, Impostor
from repro.sim import Process

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


# -- census -------------------------------------------------------------------------


def census_fixture(n_tuned, n_other):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("pa", params=LOW, compress="never")
    other = system.add_channel("other", params=LOW, compress="never")
    for _ in range(n_tuned):
        node = system.add_speaker(channel=ch)
        ManagementAgent(node.speaker).start()
    for _ in range(n_other):
        node = system.add_speaker(channel=other)
        ManagementAgent(node.speaker).start()
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    return system, console, station, ch


@pytest.mark.parametrize("n_tuned,n_other", [(0, 2), (3, 2), (7, 0)])
def test_census_counts_tuned_speakers(n_tuned, n_other):
    system, console, station, ch = census_fixture(n_tuned, n_other)
    result = {}

    def poll():
        result["count"] = yield from station.census(ch.group_ip, ch.port)

    console.machine.spawn(poll())
    system.run(until=2.0)
    assert result["count"] == n_tuned


def test_census_driven_suspension_saves_bandwidth():
    """§4.3: 'it enables the server to suspend transmission of a
    particular channel, if it notices that there are no listeners'."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("idle", params=LOW, compress="never")
    rb = system.add_rebroadcaster(producer, ch)
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    system.play_synthetic(producer, 20.0, PARAMS := LOW)

    def operator():
        from repro.sim import Sleep

        yield Sleep(2.0)
        count = yield from station.census(ch.group_ip, ch.port)
        if count == 0:
            rb.suspend()

    console.machine.spawn(operator())
    system.run(until=25.0)
    assert rb.stats.suspended_blocks > 100
    # transmission stopped shortly after the census
    sent_window = rb.stats.data_sent * producer.vad.slave.blocksize
    assert rb.stats.data_sent < 80  # ~2.5 s worth, not 20 s


def test_resume_after_suspension_resyncs_speakers():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("pa", params=LOW, compress="never")
    rb = system.add_rebroadcaster(producer, ch, control_interval=0.5)
    node = system.add_speaker(channel=ch)
    system.play_synthetic(producer, 20.0, LOW)
    system.sim.schedule(4.0, rb.suspend)
    system.sim.schedule(10.0, rb.resume)
    system.run(until=22.0)
    st = node.stats
    assert rb.stats.suspended_blocks > 0
    assert st.played > 0
    # the speaker kept playing after the resume: blocks with stream
    # positions past the suspension gap were committed
    last_pos = max(p for p, _ in st.play_log)
    assert last_pos > 15.0
    # nothing from the suspension window leaked onto the wire
    positions = sorted(p for p, _ in st.play_log)
    gap = [p for p in positions if 4.5 < p < 9.5]
    assert gap == []


# -- signed catalog -------------------------------------------------------------------


def test_signed_catalog_rejects_impostor():
    """§5.1 done properly: announcements signed, impostor unsigned."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW)
    auth = HmacAuthenticator(b"catalog-key-0123456789abcdef!!!!")
    announcer = CatalogAnnouncer(
        producer.machine, interval=0.5, authenticator=auth
    )
    announcer.add_channel(ch)
    announcer.start()
    attacker = system.add_producer(name="evil", housekeeping=False)
    Impostor(attacker.machine, CATALOG_GROUP, CATALOG_PORT,
             interval=0.3).start()
    node = system.add_speaker(channel=ch, start=False)
    listener = CatalogListener(node.machine, verifier=auth)
    listener.start()
    system.run(until=4.0)
    names = {e.name for e in listener.live_channels()}
    assert names == {"lobby"}
    assert listener.rejected >= 10  # every impostor announcement refused


def test_unsigned_listener_would_accept_impostor():
    """Control: without verification the fake channel shows up."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(ch)
    announcer.start()
    attacker = system.add_producer(name="evil", housekeeping=False)
    Impostor(attacker.machine, CATALOG_GROUP, CATALOG_PORT,
             interval=0.3).start()
    node = system.add_speaker(channel=ch, start=False)
    listener = CatalogListener(node.machine)
    listener.start()
    system.run(until=4.0)
    names = {e.name for e in listener.live_channels()}
    assert "evil-stream" in names  # the danger the paper warns about
