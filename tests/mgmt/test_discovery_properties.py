"""Property suite for the discovery timers and serial arithmetic.

Two families of invariants keep the control plane churn-proof:

* **lease arithmetic** — ``lease_expired`` must be exact at the boundary
  (a refresh landing on the deadline instant still counts), monotone in
  ``now``, and translation-invariant, so a scanner polling every
  ``check_interval`` detects a zombie within
  ``valid_time + check_interval`` regardless of when the lease started;
* **available_index wraparound** — the freshness comparison is pinned to
  the shared serial-16 helpers (``index_newer`` IS ``epoch_newer``), so
  an advertiser that wraps past 65535 keeps looking newer and a stale
  advert can never look fresh, exactly like producer epochs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    AVAILABLE_INDEX_MOD,
    EPOCH_MOD,
    epoch_newer,
    index_newer,
)
from repro.mgmt.discovery import (
    EntityAdvertiser,
    lease_deadline,
    lease_expired,
)

times = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
leases = st.floats(
    min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False
)
indices = st.integers(min_value=0, max_value=AVAILABLE_INDEX_MOD - 1)


# -- lease arithmetic ----------------------------------------------------------


def test_index_helpers_are_the_shared_serial16_helpers():
    """The pin the satellite asks for: discovery freshness and producer
    epochs share one arithmetic, one modulus, one code path."""
    assert index_newer is epoch_newer
    assert AVAILABLE_INDEX_MOD == EPOCH_MOD == 2 ** 16


@given(last_seen=times, valid=leases)
def test_boundary_instant_is_still_live(last_seen, valid):
    deadline = lease_deadline(last_seen, valid)
    assert not lease_expired(deadline, last_seen, valid)
    assert not lease_expired(last_seen, last_seen, valid)


@given(last_seen=times, valid=leases)
def test_strictly_past_deadline_is_expired(last_seen, valid):
    deadline = lease_deadline(last_seen, valid)
    # the smallest representable step past the deadline already expires
    import math
    after = math.nextafter(deadline, math.inf)
    assert lease_expired(after, last_seen, valid)
    assert lease_expired(deadline + valid, last_seen, valid)


@given(last_seen=times, valid=leases, a=times, b=times)
def test_expiry_is_monotone_in_now(last_seen, valid, a, b):
    early, late = min(a, b), max(a, b)
    if lease_expired(early, last_seen, valid):
        assert lease_expired(late, last_seen, valid)


@given(last_seen=times, valid=leases, shift=times)
def test_expiry_translation_invariant(last_seen, valid, shift):
    """Shifting the whole timeline never changes the verdict — leases
    depend on elapsed time only, not absolute simulation time."""
    now = last_seen + 1.5 * valid
    assert lease_expired(now, last_seen, valid) == lease_expired(
        now + shift, last_seen + shift, valid
    )


@given(last_seen=times, valid=leases)
def test_refresh_always_revives(last_seen, valid):
    """A refresh at any ``now`` restarts the full lease from ``now``."""
    now = last_seen + 10 * valid     # long dead
    assert lease_expired(now, last_seen, valid)
    assert not lease_expired(now, now, valid)
    assert not lease_expired(now + valid, now, valid)


@given(last_seen=times, valid=leases, check=leases)
def test_scanner_detection_gap_is_bounded(last_seen, valid, check):
    """A scanner polling every ``check`` seconds flags the zombie at the
    first tick strictly past the deadline — at most ``valid + check``
    after the last refresh (the 2×valid_time acceptance bound holds for
    any check <= valid)."""
    deadline = lease_deadline(last_seen, valid)
    # the first scan tick strictly past the deadline, ticks at last_seen + k*check
    import math
    k = math.floor((deadline - last_seen) / check) + 1
    tick = last_seen + k * check
    assert lease_expired(tick, last_seen, valid) or tick == deadline
    assert tick - last_seen <= valid + check + 1e-6 * max(1.0, valid)


def test_valid_time_must_be_positive():
    class _M:  # minimal machine stub; constructor validates before use
        control_stack = object()
    with pytest.raises(ValueError):
        EntityAdvertiser(_M(), entity_id=1, valid_time=0.0)
    with pytest.raises(ValueError):
        EntityAdvertiser(_M(), entity_id=1, valid_time=-1.0)
    with pytest.raises(ValueError):
        EntityAdvertiser(_M(), entity_id=1, valid_time=1.0, interval=2.0)


# -- available_index wraparound ------------------------------------------------


@given(idx=indices)
def test_increment_is_always_newer(idx):
    nxt = (idx + 1) % AVAILABLE_INDEX_MOD
    assert index_newer(nxt, idx)
    assert not index_newer(idx, nxt)


@given(idx=indices, step=st.integers(min_value=1,
                                     max_value=AVAILABLE_INDEX_MOD // 2 - 1))
def test_forward_window_is_newer_and_antisymmetric(idx, step):
    """Any step within the forward half-window is newer, and newer-ness
    is antisymmetric — a stale advert can never masquerade as fresh."""
    nxt = (idx + step) % AVAILABLE_INDEX_MOD
    assert index_newer(nxt, idx)
    assert not index_newer(idx, nxt)


@given(idx=indices)
def test_equal_is_never_newer(idx):
    assert not index_newer(idx, idx)


@given(idx=indices)
def test_wraparound_keeps_monotonicity(idx):
    """Crossing 65535 -> 0 looks like a forward step, not a reset."""
    at_edge = (idx + AVAILABLE_INDEX_MOD - 1) % AVAILABLE_INDEX_MOD
    wrapped = (at_edge + 1) % AVAILABLE_INDEX_MOD
    assert wrapped == (idx + AVAILABLE_INDEX_MOD) % AVAILABLE_INDEX_MOD
    assert index_newer(wrapped, at_edge)


@settings(max_examples=200)
@given(start=indices,
       bumps=st.lists(st.integers(min_value=1, max_value=3),
                      min_size=1, max_size=64))
def test_advertiser_bump_sequences_stay_fresh(start, bumps):
    """Simulate an advertiser's life: every transmitted index compares
    newer than every earlier one, across any number of wraps, as long as
    fewer than 2**15 bumps separate the two (the serial-number window)."""
    seq = [start]
    for b in bumps:
        seq.append((seq[-1] + b) % AVAILABLE_INDEX_MOD)
    total = sum(bumps)
    if total < AVAILABLE_INDEX_MOD // 2:
        for earlier, later in zip(seq, seq[1:]):
            assert index_newer(later, earlier)
        assert index_newer(seq[-1], seq[0])
        assert not index_newer(seq[0], seq[-1])
