"""The supervision layer: heartbeats, down detection, driven restarts.

The registry must be *honest*: heartbeat agents run on the supervised
node's own CPU, so every failure mode the fault layer can inject — a
killed process, a frozen process, a halted CPU — silences the beat
through the same starvation a real watchdog daemon would see.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.mgmt.supervisor import DOWN, UP, Supervisor
from repro.sim import Process, Simulator, Sleep

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(duration=12.0, **sup_kwargs):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    node = system.add_speaker(channel=channel)
    sup_kwargs.setdefault("heartbeat_interval", 0.25)
    sup_kwargs.setdefault("miss_threshold", 2)
    sup_kwargs.setdefault("restart_delay", 0.5)
    supervisor = system.add_supervisor(**sup_kwargs)
    system.supervise_speaker(supervisor, node)
    system.play_synthetic(producer, duration, LOW)
    return system, node, supervisor


def test_healthy_node_beats_and_stays_up():
    system, node, sup = build()
    system.run(until=5.0)
    health = sup.nodes[node.speaker.name]
    assert health.status == UP
    assert health.beats >= 15
    assert sup.stats.missed_heartbeats == 0
    assert sup.stats.restarts == 0


def test_crashed_speaker_is_detected_and_restarted():
    system, node, sup = build()
    system.sim.schedule(4.0, node.speaker.crash)
    system.run(until=12.0)
    health = sup.nodes[node.speaker.name]
    assert health.restarts == 1
    assert health.status == UP
    assert sup.stats.missed_heartbeats >= 1
    assert node.speaker._proc.alive
    # playback resumed after the driven cold restart
    assert node.stats.play_log[-1][1] > 6.0
    assert len(node.stats.rejoin_gaps) == 1
    # detection + restart happened within a few scan intervals
    assert node.stats.rejoin_gaps[0] < 3.0
    assert system.pipeline_report().node_restarts == 1


def test_hung_speaker_with_halted_cpu_starves_the_beat():
    # freeze_cpu=True: even the heartbeat agent cannot run, so the
    # registry learns about the hang by *absence*, not by probing
    system, node, sup = build()
    system.sim.schedule(4.0, node.speaker.hang)
    system.run(until=12.0)
    health = sup.nodes[node.speaker.name]
    assert health.restarts == 1
    assert health.status == UP
    assert not node.machine.cpu.halted  # cold_restart unhalted it
    assert node.stats.play_log[-1][1] > 6.0


def test_node_recovering_on_its_own_skips_the_restart():
    system, node, sup = build(restart_delay=2.0)
    # hang without halting the CPU, and recover before the delayed
    # restart fires: the supervisor must notice and leave it alone
    system.sim.schedule(4.0, lambda: node.speaker.hang(freeze_cpu=False))
    system.sim.schedule(5.2, node.speaker.unhang)
    system.run(until=12.0)
    health = sup.nodes[node.speaker.name]
    assert health.restarts == 0
    assert health.status == UP
    # the hang was observed, the recovery honoured
    assert sup.stats.missed_heartbeats >= 1
    assert node.stats.rejoin_gaps == []  # no cold restart, no RAM loss


def test_restart_delay_none_disables_driven_restarts():
    system, node, sup = build(restart_delay=None)
    system.sim.schedule(4.0, node.speaker.crash)
    system.run(until=10.0)
    health = sup.nodes[node.speaker.name]
    assert health.status == DOWN
    assert health.restarts == 0
    assert not node.speaker._proc.alive


def test_supervised_rebroadcaster_restart_bumps_epoch():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    rb = system.add_rebroadcaster(producer, channel, control_interval=0.5)
    node = system.add_speaker(channel=channel)
    supervisor = system.add_supervisor(
        heartbeat_interval=0.25, miss_threshold=2, restart_delay=0.5
    )
    system.supervise_rebroadcaster(supervisor, rb)
    system.play_synthetic(producer, 12.0, LOW)
    system.sim.schedule(4.0, rb.stop)
    system.run(until=12.0)
    assert rb.alive
    assert rb.epoch == 1  # the new incarnation announces itself
    assert node.stats.epoch_resyncs == 1
    assert node.stats.play_log[-1][1] > 6.0
    assert system.pipeline_report().conservation_ok


def test_watch_rejects_duplicate_names():
    sim = Simulator()
    sup = Supervisor(sim)

    class M:
        pass

    from repro.kernel.machine import Machine
    machine = Machine(sim, "m", cpu_freq_hz=1e6)
    sup.watch("n", machine, lambda: True)
    with pytest.raises(ValueError):
        sup.watch("n", machine, lambda: True)


def test_snapshot_carries_status_map():
    system, node, sup = build()
    system.run(until=3.0)
    snap = sup.snapshot()
    assert snap.nodes == {node.speaker.name: UP}
