"""Catalog, central override, SNMP MIB, auto volume."""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine, speech_like
from repro.audio.room import AmbientProfile, Room
from repro.core import EthernetSpeakerSystem
from repro.mgmt import (
    AutoVolumeController,
    CatalogAnnouncer,
    CatalogListener,
    ControlStation,
    ES_MIB_BASE,
    ManagementAgent,
    SnmpAgent,
    SnmpManager,
)
from repro.mgmt.snmp import MibTree, build_es_mib
from repro.security import Impostor

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


# -- catalog ------------------------------------------------------------------------


def test_catalog_announces_channels():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch1 = system.add_channel("news", params=LOW)
    ch2 = system.add_channel("music", params=LOW)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(ch1)
    announcer.add_channel(ch2)
    announcer.start()
    node = system.add_speaker(channel=ch1, start=False)
    listener = CatalogListener(node.machine)
    listener.start()
    system.run(until=3.0)
    names = {e.name for e in listener.live_channels()}
    assert names == {"news", "music"}
    assert listener.find("news").group_ip == ch1.group_ip


def test_catalog_entries_expire():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("brief", params=LOW)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(ch)
    proc = announcer.start()
    node = system.add_speaker(channel=ch, start=False)
    listener = CatalogListener(node.machine, expiry=2.0)
    listener.start()
    system.sim.schedule(3.0, proc.kill)  # announcer dies
    system.run(until=10.0)
    assert listener.live_channels() == []


def test_catalog_suspends_listenerless_channels():
    """The MSNIP idea (§4.3): zero listeners -> stop advertising."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("idle-stream", params=LOW)
    announcer = CatalogAnnouncer(producer.machine)
    announcer.add_channel(ch)
    announcer.report_listeners(ch.channel_id, 0)
    assert announcer.live_entries() == []
    announcer.report_listeners(ch.channel_id, 3)
    assert len(announcer.live_entries()) == 1


def test_catalog_listener_rejects_untrusted_impostor():
    """§5.1: fake advertisements from impostors are filtered by the
    allow-list (an interim measure before signed catalogs)."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(ch)
    announcer.start()
    attacker = system.add_producer(name="attacker", housekeeping=False)
    from repro.mgmt.catalog import CATALOG_GROUP, CATALOG_PORT

    Impostor(attacker.machine, CATALOG_GROUP, CATALOG_PORT).start()
    node = system.add_speaker(channel=ch, start=False)
    listener = CatalogListener(node.machine, trusted_names={"lobby"})
    listener.start()
    system.run(until=3.0)
    names = {e.name for e in listener.live_channels()}
    assert names == {"lobby"}
    assert listener.rejected > 0


# -- central override -----------------------------------------------------------------


def test_override_and_release():
    """§5.3: crew announcement overrides, then releases."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    movie = system.add_channel("movie", params=LOW, compress="never")
    crew = system.add_channel("crew", params=LOW, compress="never")
    system.add_rebroadcaster(producer, movie)
    nodes = [system.add_speaker(channel=movie) for _ in range(3)]
    agents = [ManagementAgent(n.speaker) for n in nodes]
    for agent in agents:
        agent.start()
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    system.sim.schedule(1.0, station.override, crew.group_ip, crew.port)
    system.sim.schedule(2.0, station.release)
    system.run(until=3.0)
    for node in nodes:
        assert (node.speaker.group_ip, node.speaker.port) == (
            movie.group_ip,
            movie.port,
        )
    # during the override they were on the crew channel
    assert all(a.commands_executed == 2 for a in agents)


def test_tune_all():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    a = system.add_channel("a", params=LOW)
    b = system.add_channel("b", params=LOW)
    node = system.add_speaker(channel=a)
    ManagementAgent(node.speaker).start()
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    system.sim.schedule(0.5, station.tune_all, b.group_ip, b.port)
    system.run(until=1.5)
    assert node.speaker.group_ip == b.group_ip


def test_volume_command():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("c", params=LOW)
    node = system.add_speaker(channel=ch)
    ManagementAgent(node.speaker).start()
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    system.sim.schedule(0.5, station.set_volume, 0.25)
    system.run(until=1.5)
    assert node.speaker.gain == 0.25


# -- SNMP -----------------------------------------------------------------------------


def test_mib_tree_get_next_order():
    mib = MibTree()
    mib.register("1.2.3", lambda: b"a")
    mib.register("1.2.10", lambda: b"b")
    mib.register("1.10.1", lambda: b"c")
    walk = [oid for oid, _ in mib.walk()]
    assert walk == ["1.2.3", "1.2.10", "1.10.1"]
    assert mib.get_next("1.2.3") == ("1.2.10", b"b")
    assert mib.get_next("") == ("1.2.3", b"a")
    assert mib.get_next("1.10.1") is None


def test_snmp_get_and_walk_over_network():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch)
    node = system.add_speaker(channel=ch)
    SnmpAgent(node.machine, build_es_mib(node.speaker, node)).start()
    console = system.add_producer(name="nms", housekeeping=False)
    manager = SnmpManager(console.machine)
    system.play_pcm(producer, sine(440, 1.0, 8000), LOW)
    results = {}

    def query():
        results["name"] = yield from manager.get(
            node.machine.net.ip, f"{ES_MIB_BASE}.1.1"
        )
        results["walk"] = yield from manager.walk(node.machine.net.ip)
        results["state"] = yield from manager.get(
            node.machine.net.ip, f"{ES_MIB_BASE}.2.1"
        )

    console.machine.spawn(query())
    system.run(until=4.0)
    assert results["name"] == node.speaker.name.encode()
    assert len(results["walk"]) >= 9
    assert results["state"] == b"playing"


def test_snmp_set_gain():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("x", params=LOW)
    node = system.add_speaker(channel=ch)
    SnmpAgent(node.machine, build_es_mib(node.speaker, node)).start()
    console = system.add_producer(name="nms", housekeeping=False)
    manager = SnmpManager(console.machine)
    outcome = {}

    def setter():
        outcome["ok"] = yield from manager.set(
            node.machine.net.ip, f"{ES_MIB_BASE}.3.1", b"0.5"
        )
        outcome["bad"] = yield from manager.set(
            node.machine.net.ip, f"{ES_MIB_BASE}.2.3", b"1"
        )  # read-only

    console.machine.spawn(setter())
    system.run(until=2.0)
    assert outcome["ok"] is True
    assert node.speaker.gain == 0.5
    assert outcome["bad"] is False


# -- auto volume -----------------------------------------------------------------------


def run_volume_scenario(mode, ambient_level, seconds=8.0):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("pa", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch)
    room = Room(AmbientProfile.constant(ambient_level), coupling=0.5)
    node = system.add_speaker(channel=ch, room=room)
    controller = AutoVolumeController(node.speaker, room, mode=mode)
    controller.start()
    content = speech_like(seconds, 8000, seed=4, amplitude=0.6)
    system.play_pcm(producer, content, LOW, source_paced=True)
    system.run(until=seconds + 2.0)
    return node, controller


def test_music_ducks_in_quiet_room():
    quiet_node, _ = run_volume_scenario("music", ambient_level=0.02)
    noisy_node, _ = run_volume_scenario("music", ambient_level=0.5)
    assert quiet_node.speaker.gain < noisy_node.speaker.gain


def test_announcement_rides_over_noise():
    _, quiet = run_volume_scenario("announcement", ambient_level=0.02)
    node, noisy = run_volume_scenario("announcement", ambient_level=0.6)
    assert noisy.history[-1][2] > quiet.history[-1][2]
    # the announcement ends up audible: output above the ambient
    assert node.speaker.last_output_rms > 0.3


def test_normalisation_equalises_source_levels():
    """'audio segments recorded at different volume levels produce the
    same sound levels'."""
    outputs = {}
    for amp in (0.15, 0.6):
        system = EthernetSpeakerSystem()
        producer = system.add_producer()
        ch = system.add_channel("pa", params=LOW, compress="never")
        system.add_rebroadcaster(producer, ch)
        room = Room(AmbientProfile.constant(0.2), coupling=0.5)
        node = system.add_speaker(channel=ch, room=room)
        AutoVolumeController(node.speaker, room, mode="music").start()
        content = sine(300, 8.0, 8000, amplitude=amp)
        system.play_pcm(producer, content, LOW, source_paced=True)
        system.run(until=10.0)
        outputs[amp] = node.speaker.last_output_rms
    ratio = outputs[0.6] / outputs[0.15]
    assert 0.6 < ratio < 1.7  # within ~x1.7 despite a 4x source spread


def test_controller_estimates_ambient_through_mic():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("pa", params=LOW)
    room = Room(AmbientProfile.constant(0.3), coupling=0.5)
    node = system.add_speaker(channel=ch, room=room)
    controller = AutoVolumeController(node.speaker, room)
    assert controller.estimate_ambient() == pytest.approx(0.3, abs=0.02)


def test_invalid_mode_rejected():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("pa", params=LOW)
    node = system.add_speaker(channel=ch)
    with pytest.raises(ValueError):
        AutoVolumeController(node.speaker, Room(), mode="party")
