"""The dynamic control plane end to end: ADP, AECP, ACMP, supervision.

Covers the tentpole behaviours: entities self-advertise with leases and
serial indices, zombies age out within 2x valid_time, clean departures
retire immediately, stale adverts are rejected, descriptors enumerate
over the management request path, tune/retune is a CONNECT/DISCONNECT
transaction with bounded retry, the controller owns the fleet map, and
lease expiry feeds the supervisor without double restarts.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import (
    ENTITY_REBROADCASTER,
    ENTITY_SPEAKER,
    ENTITY_STANDBY,
)
from repro.mgmt.controller import ENT_AVAILABLE, ENT_DEPARTED, ENT_EXPIRED
from repro.sim.process import Process, Sleep, WaitProcess

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def spawn(system, gen, name="driver"):
    return Process.spawn(system.sim, gen, name=name)


# -- ADP: advertisement, lease, departure -------------------------------------


def test_entities_self_advertise_and_register():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW)
    rb = system.add_rebroadcaster(producer, ch)
    system.advertise_rebroadcaster(rb)
    node = system.add_speaker(channel=ch, name="es-a")
    system.advertise_speaker(node)
    controller = system.add_controller()
    system.run(until=2.0)
    assert len(controller.available()) == 2
    speaker_rec = controller.find("es-a")
    assert speaker_rec.kind == ENTITY_SPEAKER
    assert speaker_rec.state == ENT_AVAILABLE
    assert speaker_rec.channel_id == ch.channel_id
    rb_rec = controller.find(f"{producer.machine.name}/rb-ch{ch.channel_id}")
    assert rb_rec.kind == ENTITY_REBROADCASTER
    assert controller.stats.adp_advertises > 0
    assert controller.stats.stale_adverts == 0


def test_zombie_ages_out_within_two_leases():
    """advertise-then-crash without DEPARTING: the lease does the work."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="zomb")
    system.advertise_speaker(node, valid_time=1.0)
    controller = system.add_controller(check_interval=0.1)
    expired = {}
    controller.on_expired = lambda rec: expired.setdefault(
        rec.name, system.sim.now
    )
    crash_at = 2.0
    system.sim.schedule(crash_at, node.speaker.crash)
    system.run(until=6.0)
    assert controller.find("zomb").state == ENT_EXPIRED
    assert "zomb" in expired
    assert expired["zomb"] <= crash_at + 2 * 1.0
    assert controller.stats.expiries == 1


def test_clean_departure_skips_the_lease_wait():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="leaver")
    adv = system.advertise_speaker(node, valid_time=5.0)
    controller = system.add_controller(check_interval=0.1)
    departed = {}
    controller.on_departed = lambda rec: departed.setdefault(
        rec.name, system.sim.now
    )
    system.sim.schedule(2.0, adv.depart)
    system.run(until=3.0)
    # retired immediately (plus wire+scan latency), not at lease expiry
    assert controller.find("leaver").state == ENT_DEPARTED
    assert departed["leaver"] < 2.5
    assert controller.stats.departs == 1
    assert adv.stats.departs == 1


def test_stale_advert_cannot_resurrect_newer_state():
    """Replay an old ENTITY_AVAILABLE (lower available_index): the
    registry must count it stale and keep the newer view."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="fresh")
    system.advertise_speaker(node, valid_time=2.0)
    controller = system.add_controller(check_interval=0.1)

    def replay():
        yield Sleep(2.0)
        rec = controller.find("fresh")
        assert rec is not None
        from repro.core.protocol import ADP_AVAILABLE, AdpPacket
        from repro.mgmt.discovery import DISCOVERY_GROUP, DISCOVERY_PORT
        stale = AdpPacket(
            entity_id=rec.entity_id,
            message_type=ADP_AVAILABLE,
            entity_kind=ENTITY_SPEAKER,
            valid_time=2.0,
            available_index=(rec.available_index - 5) % 2 ** 16,
            channel_id=99,       # wrong channel: must NOT be believed
            name="fresh",
        )
        sock = node.machine.control_stack.socket()
        sock.sendto(stale.encode(), (DISCOVERY_GROUP, DISCOVERY_PORT))
        yield Sleep(0.5)

    spawn(system, replay())
    system.run(until=3.0)
    rec = controller.find("fresh")
    assert rec.channel_id == ch.channel_id      # newer view kept
    assert controller.stats.stale_adverts >= 1


def test_restart_bumps_serial_and_returns_entity():
    """A crash + cold restart must re-register the entity with a newer
    serial (boot counts as a state change)."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="phoenix")
    system.advertise_speaker(node, valid_time=1.0)
    controller = system.add_controller(check_interval=0.1)
    seen = []
    controller.on_available = lambda rec, returning: seen.append(
        (system.sim.now, returning, rec.available_index)
    )
    system.sim.schedule(2.0, node.speaker.crash)
    system.sim.schedule(4.5, node.speaker.cold_restart)
    system.run(until=7.0)
    rec = controller.find("phoenix")
    assert rec.state == ENT_AVAILABLE
    assert controller.stats.expiries == 1
    # first sighting at boot, second after the restart
    assert len(seen) == 2
    assert seen[0][1] is False and seen[1][1] is True
    assert seen[1][2] != seen[0][2]


def test_failover_epoch_bump_advances_the_serial():
    """A standby takeover bumps the rebroadcaster epoch; the advertiser
    must fold that into the advert (epoch field + serial bump)."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("hall", params=LOW, compress="never")
    rb = system.add_rebroadcaster(producer, ch, control_interval=0.25)
    standby = system.add_standby(producer, ch, takeover_timeout=0.75,
                                 control_interval=0.25)
    system.advertise_standby(standby)
    controller = system.add_controller(check_interval=0.1)
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW, source_paced=True)
    system.sim.schedule(2.0, rb.stop)       # primary dies mid-stream
    system.run(until=6.0)
    assert standby.stats.takeovers == 1
    rec = controller.find(standby.name)
    assert rec.kind == ENTITY_STANDBY
    assert rec.epoch == standby.rb.epoch    # bumped epoch made it out
    assert standby.rb.epoch > 0


# -- AECP enumeration ----------------------------------------------------------


def test_enumeration_reads_the_descriptor():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="descr")
    node.speaker.gain = 0.5
    system.advertise_speaker(node)
    controller = system.add_controller(auto_enumerate=True)
    system.run(until=2.0)
    rec = controller.find("descr")
    assert rec.descriptor is not None
    assert rec.descriptor["name"] == "descr"
    assert rec.descriptor["group"] == ch.group_ip
    assert rec.descriptor["port"] == str(ch.port)
    assert float(rec.descriptor["gain"]) == 0.5
    assert controller.stats.enumerations == 1
    assert controller.stats.enumeration_failures == 0


def test_enumeration_of_dead_entity_fails_bounded():
    """AECP against a machine that stops answering exhausts its seeded
    retries and counts a failure — it never hangs."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="mute")
    system.advertise_speaker(node, valid_time=10.0)
    controller = system.add_controller(
        check_interval=0.1, txn_timeout=0.1, txn_retries=2
    )
    results = {}

    def driver():
        yield Sleep(1.0)
        rec = controller.find("mute")
        # silence the agent (machine halts: nothing answers AECP)
        node.machine.cpu.halt()
        proc = controller.enumerate(rec.entity_id)
        results["ok"] = yield WaitProcess(proc)

    spawn(system, driver())
    system.run(until=4.0)
    assert results["ok"] is False
    assert controller.stats.enumeration_failures == 1
    assert controller.stats.enumeration_retries == 1


# -- ACMP connection management ------------------------------------------------


def test_connect_starts_parked_speaker_and_updates_fleet_map():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch, control_interval=0.5)
    node = system.add_speaker(channel=None, start=False, name="parked")
    system.advertise_speaker(node)
    controller = system.add_controller(check_interval=0.1)
    results = {}

    def driver():
        yield Sleep(1.0)
        assert node.speaker._proc is None           # still parked
        proc = system.connect_speaker(controller, node, ch)
        results["ok"] = yield WaitProcess(proc)

    spawn(system, driver())
    system.play_pcm(producer, sine(440, 2.0, 8000), LOW, start_after=2.0)
    system.run(until=6.0)
    assert results["ok"] is True
    assert node.channel is ch
    assert node.speaker.group_ip == ch.group_ip
    assert node.stats.played > 0                    # it actually plays
    assert controller.stats.acmp_connects == 1
    assert controller.fleet_map()[ch.channel_id] == ["parked"]
    assert controller.census(ch.channel_id) == 1


def test_disconnect_parks_the_speaker():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="off")
    system.advertise_speaker(node)
    controller = system.add_controller(check_interval=0.1)
    results = {}

    def driver():
        yield Sleep(1.0)
        proc = system.disconnect_speaker(controller, node)
        results["ok"] = yield WaitProcess(proc)

    spawn(system, driver())
    system.run(until=3.0)
    assert results["ok"] is True
    assert node.channel is None
    assert node.speaker.group_ip is None
    assert controller.stats.acmp_disconnects == 1
    assert controller.census(ch.channel_id) == 0


def test_retune_is_a_transaction_between_channels():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    a = system.add_channel("a", params=LOW, compress="never")
    b = system.add_channel("b", params=LOW, compress="never")
    node = system.add_speaker(channel=a, name="surfer")
    system.advertise_speaker(node)
    controller = system.add_controller(check_interval=0.1)
    results = {}

    def driver():
        yield Sleep(1.0)
        proc = system.connect_speaker(controller, node, b)
        results["ok"] = yield WaitProcess(proc)

    spawn(system, driver())
    system.run(until=3.0)
    assert results["ok"] is True
    assert node.channel is b
    assert (node.speaker.group_ip, node.speaker.port) == (b.group_ip, b.port)
    rec = controller.find("surfer")
    assert rec.connected == (b.group_ip, b.port, b.channel_id)


def test_crash_during_acmp_transaction_fails_bounded():
    """The listener dies mid-transaction: seeded retries, then a counted
    failure; determinism across two runs of the same seed."""

    def run_once():
        system = EthernetSpeakerSystem(seed=7)
        ch = system.add_channel("lobby", params=LOW)
        node = system.add_speaker(channel=None, start=False, name="victim")
        system.advertise_speaker(node, valid_time=10.0)
        controller = system.add_controller(
            check_interval=0.1, txn_timeout=0.1, txn_retries=3
        )
        results = {}

        def driver():
            yield Sleep(1.0)
            node.machine.cpu.halt()     # dies as the CONNECT is issued
            proc = system.connect_speaker(controller, node, ch)
            results["ok"] = yield WaitProcess(proc)

        spawn(system, driver())
        system.run(until=5.0)
        return results["ok"], controller.stats.acmp_failures, \
            controller.stats.acmp_retries, system.sim.now

    first = run_once()
    second = run_once()
    assert first == second              # bit-identical outcome per seed
    ok, failures, retries, _ = first
    assert ok is False
    assert failures == 1
    assert retries == 2


def test_controller_restart_repopulates_registry():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    nodes = [
        system.add_speaker(channel=ch, name=f"es{i}") for i in range(3)
    ]
    for n in nodes:
        system.advertise_speaker(n, valid_time=2.0)
    controller = system.add_controller(check_interval=0.1)

    def driver():
        yield Sleep(1.5)
        assert len(controller.available()) == 3
        controller.crash()
        yield Sleep(0.5)
        controller.restart()
        assert controller.entities == {}        # leases not persisted
        yield Sleep(1.0)
        # repopulated from live adverts within ~one advertising interval
        assert len(controller.available()) == 3

    proc = spawn(system, driver())
    system.run(until=4.0)
    assert proc.exception is None
    assert controller.stats.restarts == 1


def test_cold_boot_census_is_solicited_not_waited():
    """A controller cold-booting mid-interval multicasts ENTITY_DISCOVER
    on the solicitation group and the fleet answers immediately: the
    census completes in ~wire time instead of waiting out the
    advertisers' periodic interval."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    nodes = [
        system.add_speaker(channel=ch, name=f"es{i}") for i in range(3)
    ]
    # valid_time 4.0 -> 1.0 s advertising cadence: a cold boot that has
    # to wait for periodic refreshes would take ~0.5 s from t=2.5
    advs = [system.advertise_speaker(n, valid_time=4.0) for n in nodes]
    controller = system.add_controller(check_interval=0.1)
    times = {}

    def driver():
        yield Sleep(0.5)
        assert len(controller.available()) == 3     # warm census done
        controller.crash()
        yield Sleep(2.0)                            # fleet keeps beating
        controller.restart()                        # cold boot at t=2.5,
        assert controller.entities == {}            # mid-interval, RAM gone
        while len(controller.available()) < 3:
            yield Sleep(0.01)
        times["census"] = system.sim.now

    proc = spawn(system, driver())
    system.run(until=5.0)
    assert proc.exception is None
    # the pin: census rebuilt essentially instantly after boot — far
    # inside the 0.5 s the next periodic advert would have cost
    assert times["census"] - 2.5 < 0.2
    assert controller.stats.discovers_sent >= 2     # first boot + restart
    assert all(a.stats.solicited >= 1 for a in advs)


# -- supervisor integration ----------------------------------------------------


def test_lease_expiry_drives_exactly_one_restart():
    """Lease expiry and missed heartbeats both notice the crash; the
    restart_pending latch must keep it to one restart."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="onceonly")
    system.advertise_speaker(node, valid_time=1.0)
    sup = system.add_supervisor(heartbeat_interval=0.25, restart_delay=0.25)
    system.supervise_speaker(sup, node)
    controller = system.add_controller(
        supervisor=sup, check_interval=0.1
    )
    system.sim.schedule(2.0, node.speaker.crash)
    system.run(until=8.0)
    assert sup.stats.restarts == 1
    assert node.speaker._proc is not None and node.speaker._proc.alive
    assert controller.find("onceonly").state == ENT_AVAILABLE
    report = system.pipeline_report()
    assert report.node_restarts == 1
    assert report.adp_expiries >= 1


def test_lease_expiry_for_live_node_is_ignored():
    """A transient lease lapse (advertiser killed, node fine) must not
    restart a healthy node."""
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=ch, name="healthy")
    adv = system.advertise_speaker(node, valid_time=1.0)
    sup = system.add_supervisor(restart_delay=0.25)
    system.supervise_speaker(sup, node)
    system.add_controller(supervisor=sup, check_interval=0.1)
    system.sim.schedule(2.0, adv.stop)    # beacon dies, speaker lives
    system.run(until=6.0)
    assert sup.stats.restarts == 0
    assert sup.stats.lease_expiries == 0  # probe said: node is fine
    assert node.speaker._proc.alive


# -- reporting -----------------------------------------------------------------


def test_pipeline_report_itemises_control_plane_counters():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    ch = system.add_channel("lobby", params=LOW, compress="never")
    system.add_rebroadcaster(producer, ch, control_interval=0.5)
    node = system.add_speaker(channel=None, start=False, name="dyn")
    system.advertise_speaker(node)
    controller = system.add_controller(
        check_interval=0.1, auto_enumerate=True
    )

    def driver():
        yield Sleep(1.0)
        yield WaitProcess(system.connect_speaker(controller, node, ch))

    spawn(system, driver())
    system.play_pcm(producer, sine(440, 1.0, 8000), LOW, start_after=2.0)
    system.run(until=5.0)
    report = system.pipeline_report()
    assert report.adp_advertises > 0
    assert report.acmp_connects == 1
    assert report.acmp_failures == 0
    assert report.enumerations >= 1
    assert report.adp_expiries == 0
    # the control plane lives out of band: the audio ledger stays closed
    assert report.conservation_ok
    summary = report.summary()
    assert "acmp connects" in summary
    assert "adp advertises" in summary


def test_unadvertised_speaker_cannot_be_connected():
    system = EthernetSpeakerSystem()
    ch = system.add_channel("lobby", params=LOW)
    node = system.add_speaker(channel=None, start=False)
    controller = system.add_controller()
    with pytest.raises(ValueError):
        system.connect_speaker(controller, node, ch)
