"""Regression: catalog entries must die when their announcer does.

The original catalog kept :class:`CatalogListener` entries alive forever
once the announcer crashed mid-stream — ``live_channels()`` only
*filtered* on a locally-configured expiry that nothing refreshed or
enforced against the announcer's actual cadence, so a remote control
cycling the catalog could tune to a dead channel indefinitely.  The
catalog now rides the discovery lease machinery: every announcement
carries a ``valid_time``, lapsed entries are *deleted* within
2x valid_time, announcers withhold channels whose talker probe fails,
and serial freshness stops replayed announcements resurrecting them.
"""

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import AnnounceEntry, AnnouncePacket
from repro.mgmt import (
    CATALOG_GROUP,
    CATALOG_PORT,
    CatalogAnnouncer,
    CatalogListener,
    RemoteControl,
)
from repro.sim.process import Process, Sleep

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
INTERVAL = 0.25
VALID = 3.0 * INTERVAL      # the announcer's default lease


def build(n_channels=2, probes=False):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channels = []
    rbs = []
    for i in range(n_channels):
        ch = system.add_channel(f"ch{i}", params=LOW, compress="never")
        channels.append(ch)
        rbs.append(
            system.add_rebroadcaster(producer, ch, control_interval=0.5)
        )
    announcer = CatalogAnnouncer(producer.machine, interval=INTERVAL)
    for ch, rb in zip(channels, rbs):
        announcer.add_channel(
            ch, probe=(lambda rb=rb: rb.alive) if probes else None
        )
    announcer_proc = announcer.start()
    node = system.add_speaker(channel=channels[0])
    catalog = CatalogListener(node.machine)
    catalog.start()
    remote = RemoteControl(node.speaker, catalog)
    return system, channels, rbs, announcer, announcer_proc, node, \
        catalog, remote


def test_entries_age_out_after_announcer_crash():
    """THE regression: announcer dies mid-stream (no retirement message,
    ever) and the listener's view must still empty within 2x valid_time."""
    system, channels, rbs, announcer, proc, node, catalog, remote = build()
    system.run(until=1.0)
    assert len(catalog.live_channels()) == 2
    crash_at = system.sim.now
    proc.kill()                              # mid-stream, no goodbye
    system.run(until=crash_at + 2 * VALID)
    assert catalog.live_channels() == []
    assert catalog.channels == {}            # deleted, not filtered
    assert catalog.expired == 2
    assert system.sim.now - crash_at <= 2 * VALID


def test_remote_cannot_tune_to_dead_catalog_forever():
    """A remote surfing after the announcer crash gets *nothing* once the
    lease lapses — before the fix it would cycle stale entries forever."""
    system, channels, rbs, announcer, proc, node, catalog, remote = build()
    system.run(until=1.0)
    proc.kill()
    system.run(until=1.0 + 2 * VALID)
    assert remote.channel_up() is None
    assert remote.channel_down() is None
    assert remote.select("ch1") is None
    assert node.speaker.group_ip == channels[0].group_ip  # untouched


def test_dead_talker_is_withheld_within_one_announcement():
    """Per-channel probes: a crashed rebroadcaster's channel disappears
    from the *next* announcement — the remote can only land on the live
    channel, long before any lease lapses."""
    system, channels, rbs, announcer, proc, node, catalog, remote = build(
        probes=True
    )
    system.run(until=1.0)
    assert len(catalog.live_channels()) == 2
    rbs[1].stop()                            # ch1's talker dies
    system.run(until=1.0 + 2 * VALID)
    live = catalog.live_channels()
    assert [e.name for e in live] == ["ch0"]
    assert announcer.dead_skipped > 0
    # surfing from ch0 wraps straight back to ch0: ch1 is not offered
    entry = remote.channel_up()
    assert entry.name == "ch0"
    assert node.speaker.group_ip == channels[0].group_ip


def test_refreshed_entries_never_expire():
    """Control case: with the announcer alive, leases keep renewing and
    the catalog never shrinks (no false expiries)."""
    system, channels, rbs, announcer, proc, node, catalog, remote = build()
    system.run(until=6 * VALID)
    assert len(catalog.live_channels()) == 2
    assert catalog.expired == 0


def test_replayed_announcement_cannot_resurrect():
    """Serial freshness: a replayed (older-seq) announcement re-offering
    a retired channel is dropped as stale.  The replay originates from
    the announcer's own address — freshness is judged per source, so a
    second legitimate announcer elsewhere is unaffected."""
    system, channels, rbs, announcer, proc, node, catalog, remote = build()
    system.run(until=1.0)
    replay = AnnouncePacket(
        seq=1,                               # long superseded
        entries=(
            AnnounceEntry(
                channel_id=99, group_ip="239.77.0.99", port=9099,
                codec_id=0, name="ghost",
            ),
        ),
        valid_time=VALID,
    )
    sock = announcer.machine.net.socket()

    def attacker():
        sock.sendto(replay.encode(), (CATALOG_GROUP, CATALOG_PORT))
        yield Sleep(0.0)

    Process.spawn(system.sim, attacker(), name="replayer")
    system.run(until=1.5)
    assert catalog.stale_announces >= 1
    assert catalog.find("ghost") is None


def test_legacy_announcer_falls_back_to_local_expiry():
    """An announcement stamped valid_time=0 (pre-lease announcer) uses
    the listener's locally-configured expiry instead."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    node = system.add_speaker(
        channel=system.add_channel("x", params=LOW)
    )
    catalog = CatalogListener(node.machine, expiry=1.0)
    catalog.start()
    legacy = AnnouncePacket(
        seq=1,
        entries=(
            AnnounceEntry(
                channel_id=7, group_ip="239.77.0.7", port=9007,
                codec_id=0, name="old",
            ),
        ),
        valid_time=0.0,
    )
    sock = producer.machine.net.socket()

    def announce_once():
        sock.sendto(legacy.encode(), (CATALOG_GROUP, CATALOG_PORT))
        yield Sleep(0.0)

    Process.spawn(system.sim, announce_once(), name="legacy")
    system.run(until=0.5)
    assert catalog.find("old") is not None
    system.run(until=2.5)                    # past the local expiry
    assert catalog.find("old") is None
    assert catalog.expired == 1
