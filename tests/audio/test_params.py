"""AudioParams arithmetic — the basis of the rate limiter (§3.1)."""

import pytest

from repro.audio import CD_QUALITY, PHONE_QUALITY, AudioEncoding, AudioParams


def test_cd_quality_rate_matches_paper():
    """§2.2: raw CD-quality audio is ~1.3 Mbps on the wire."""
    assert CD_QUALITY.bytes_per_second == 176400
    assert CD_QUALITY.bits_per_second == pytest.approx(1.41e6, rel=0.01)


def test_phone_quality_rate():
    assert PHONE_QUALITY.bytes_per_second == 8000
    assert PHONE_QUALITY.bits_per_second == 64000


def test_frame_bytes():
    assert CD_QUALITY.frame_bytes == 4  # 16-bit stereo
    assert PHONE_QUALITY.frame_bytes == 1  # 8-bit mono


def test_duration_of_inverts_bytes_for():
    for params in (CD_QUALITY, PHONE_QUALITY):
        nbytes = params.bytes_for(2.5)
        assert params.duration_of(nbytes) == pytest.approx(2.5)


def test_five_minute_song_is_five_minutes_of_bytes():
    """§3.1's title question: a 5-minute song at CD quality."""
    nbytes = CD_QUALITY.bytes_for(300.0)
    assert CD_QUALITY.duration_of(nbytes) == pytest.approx(300.0)
    assert nbytes == 300 * 176400


def test_bytes_for_is_frame_aligned():
    nbytes = CD_QUALITY.bytes_for(0.01001)
    assert nbytes % CD_QUALITY.frame_bytes == 0


def test_precision_by_encoding():
    assert AudioEncoding.SLINEAR16.precision == 16
    assert AudioEncoding.ULAW.precision == 8
    assert AudioEncoding.ALAW.precision == 8


def test_wire_ids_round_trip():
    for enc in AudioEncoding:
        assert AudioEncoding.from_wire_id(enc.wire_id) is enc


def test_unknown_wire_id_rejected():
    with pytest.raises(ValueError):
        AudioEncoding.from_wire_id(99)


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        AudioParams(sample_rate=0)
    with pytest.raises(ValueError):
        AudioParams(channels=3)


def test_params_hashable_and_frozen():
    p = AudioParams()
    assert hash(p) == hash(AudioParams())
    with pytest.raises(Exception):
        p.sample_rate = 8000


def test_describe_mentions_key_fields():
    text = CD_QUALITY.describe()
    assert "44100" in text and "16bit" in text and "stereo" in text
