"""Signal generators, WAV I/O, analysis metrics, room model."""

import numpy as np
import pytest

from repro.audio import (
    announcement,
    chirp,
    discontinuity_count,
    music,
    pink_noise,
    read_wav,
    rms_level,
    segmental_snr_db,
    silence,
    silence_ratio,
    sine,
    snr_db,
    speech_like,
    white_noise,
    write_wav,
)
from repro.audio.room import AmbientProfile, Room


# -- generators -----------------------------------------------------------------


def test_sine_frequency_via_zero_crossings():
    x = sine(440.0, 1.0, 44100)
    crossings = np.sum(np.diff(np.signbit(x)))
    assert crossings == pytest.approx(880, abs=2)


def test_sine_amplitude_and_length():
    x = sine(100.0, 0.5, 8000, amplitude=0.25)
    assert len(x) == 4000
    assert np.max(np.abs(x)) == pytest.approx(0.25, rel=0.01)


def test_silence_is_zero():
    assert np.all(silence(0.1, 8000) == 0)
    assert len(silence(0.1, 8000)) == 800


def test_chirp_sweeps_upward():
    x = chirp(100.0, 1000.0, 2.0, 8000)
    half = len(x) // 2
    early = np.sum(np.diff(np.signbit(x[:half])))
    late = np.sum(np.diff(np.signbit(x[half:])))
    assert late > early * 1.5


def test_noise_generators_are_seed_deterministic():
    assert np.array_equal(white_noise(0.1, seed=7), white_noise(0.1, seed=7))
    assert not np.array_equal(white_noise(0.1, seed=7), white_noise(0.1, seed=8))
    assert np.array_equal(music(0.5, seed=3), music(0.5, seed=3))


def test_pink_noise_has_more_low_frequency_energy():
    x = pink_noise(2.0, 8000, seed=1)
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    low = spectrum[1:100].sum()
    high = spectrum[-100:].sum()
    assert low > high * 5


def test_music_and_speech_in_range_and_nonsilent():
    for gen in (music, speech_like):
        x = gen(1.0, 8000, seed=0)
        assert np.max(np.abs(x)) <= 1.0
        assert rms_level(x) > 0.01


def test_announcement_starts_with_chime():
    x = announcement(2.0, 8000)
    # The chime is a pure 880 Hz tone: dominant bin in the first 0.25 s.
    head = x[: 2000]
    spectrum = np.abs(np.fft.rfft(head))
    peak_freq = np.argmax(spectrum) * 8000 / len(head)
    assert peak_freq == pytest.approx(880, abs=15)


# -- analysis -------------------------------------------------------------------


def test_snr_identical_is_infinite():
    x = sine(440, 0.1)
    assert snr_db(x, x) == float("inf")


def test_snr_known_noise_level():
    x = sine(440, 0.5, 8000, amplitude=0.5)
    noisy = x + 0.005 * white_noise(0.5, 8000, amplitude=1.0, seed=2)[: len(x)]
    measured = snr_db(x, noisy)
    assert 30 < measured < 50


def test_snr_decreases_with_more_noise():
    x = sine(440, 0.5, 8000)
    n = white_noise(0.5, 8000, seed=3)[: len(x)]
    assert snr_db(x, x + 0.001 * n) > snr_db(x, x + 0.1 * n)


def test_segmental_snr_detects_localised_damage():
    x = music(2.0, 8000, seed=5)
    damaged = x.copy()
    damaged[4000:6000] = 0.0  # one silent hole
    assert segmental_snr_db(x, x) == pytest.approx(80.0)  # every segment at ceiling
    assert segmental_snr_db(x, damaged) < 79  # pulled below the ceiling


def test_segmental_snr_weights_quiet_passages():
    """Constant additive noise hurts quiet segments: segmental SNR reads
    lower than the energy-weighted global SNR."""
    loud = sine(300, 1.0, 8000, amplitude=0.9)
    quiet = sine(300, 1.0, 8000, amplitude=0.02)
    x = np.concatenate([loud, quiet])
    noise = 0.005 * white_noise(2.0, 8000, amplitude=1.0, seed=9)[: len(x)]
    assert segmental_snr_db(x, x + noise) < snr_db(x, x + noise)


def test_silence_ratio():
    x = np.concatenate([np.zeros(500), 0.5 * np.ones(500)])
    assert silence_ratio(x) == pytest.approx(0.5)


def test_discontinuity_count_detects_splices():
    x = sine(100, 1.0, 8000)
    spliced = np.concatenate([x[:2000], x[4100:]])  # phase-breaking cut
    assert discontinuity_count(spliced, jump=0.5) >= 1
    assert discontinuity_count(x, jump=0.5) == 0


def test_rms_level_of_sine():
    assert rms_level(sine(440, 1.0, amplitude=1.0)) == pytest.approx(
        1 / np.sqrt(2), rel=0.01
    )


# -- WAV ---------------------------------------------------------------------------


def test_wav_round_trip_mono(tmp_path):
    x = sine(440, 0.25, 8000)
    path = tmp_path / "tone.wav"
    write_wav(path, x, 8000)
    y, rate = read_wav(path)
    assert rate == 8000
    assert y.shape == (len(x), 1)
    assert np.max(np.abs(y[:, 0] - x)) < 1e-3


def test_wav_round_trip_stereo(tmp_path):
    x = np.stack([sine(440, 0.1, 8000), sine(220, 0.1, 8000)], axis=1)
    path = tmp_path / "stereo.wav"
    write_wav(path, x, 8000)
    y, rate = read_wav(path)
    assert y.shape == x.shape
    assert np.max(np.abs(y - x)) < 1e-3


def test_wav_rejects_garbage(tmp_path):
    path = tmp_path / "bad.wav"
    path.write_bytes(b"not a wave file at all")
    with pytest.raises(ValueError):
        read_wav(path)


# -- room ---------------------------------------------------------------------------


def test_room_mic_hears_ambient():
    room = Room(AmbientProfile.constant(0.3), coupling=0.5)
    assert room.mic_rms(0.0) == pytest.approx(0.3)


def test_room_mic_mixes_speaker_output():
    room = Room(AmbientProfile.constant(0.3), coupling=0.5)
    room.speaker_rms = 0.8
    expected = ((0.5 * 0.8) ** 2 + 0.3**2) ** 0.5
    assert room.mic_rms(0.0) == pytest.approx(expected)


def test_ambient_profile_steps():
    prof = AmbientProfile(steps=[(0.0, 0.1), (10.0, 0.6)])
    assert prof.level_at(5.0) == 0.1
    assert prof.level_at(10.0) == 0.6
    assert prof.level_at(50.0) == 0.6


def test_room_rejects_bad_coupling():
    with pytest.raises(ValueError):
        Room(coupling=1.5)
