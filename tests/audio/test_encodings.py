"""Sample codecs: linear, mu-law, A-law round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams, decode_samples, encode_samples
from repro.audio.encodings import (
    alaw_decode,
    alaw_encode,
    mulaw_decode,
    mulaw_encode,
)


def ramp(n=1000):
    return np.linspace(-1.0, 1.0, n)


def test_slinear16_round_trip_is_near_exact():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 1)
    x = ramp()
    y = decode_samples(encode_samples(x, params), params)
    assert np.max(np.abs(y[:, 0] - x)) < 1 / 32767 + 1e-9


def test_slinear16_wire_size():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
    data = encode_samples(np.zeros((100, 2)), params)
    assert len(data) == 400


def test_slinear8_round_trip():
    params = AudioParams(AudioEncoding.SLINEAR8, 8000, 1)
    x = ramp()
    y = decode_samples(encode_samples(x, params), params)
    assert np.max(np.abs(y[:, 0] - x)) < 1 / 127 + 1e-9


def test_ulinear8_round_trip():
    params = AudioParams(AudioEncoding.ULINEAR8, 8000, 1)
    x = ramp()
    y = decode_samples(encode_samples(x, params), params)
    assert np.max(np.abs(y[:, 0] - x)) < 1 / 127 + 1e-9


def test_mulaw_round_trip_small_relative_error():
    """Companding keeps relative error roughly constant across magnitudes."""
    x = np.array([-0.9, -0.5, -0.01, -0.001, 0.001, 0.01, 0.5, 0.9])
    y = mulaw_decode(mulaw_encode(x))
    assert np.all(np.abs(y - x) < 0.05 * np.abs(x) + 0.002)


def test_mulaw_preserves_sign():
    x = np.array([-0.7, -0.1, 0.1, 0.7])
    y = mulaw_decode(mulaw_encode(x))
    assert np.all(np.sign(y) == np.sign(x))


def test_mulaw_codewords_are_complemented():
    """G.711 transmits inverted codes: positive max -> 0x80 pattern."""
    codes = mulaw_encode(np.array([1.0]))
    assert codes.dtype == np.uint8
    assert codes[0] == (~np.uint8(0x7F)) & 0xFF


def test_alaw_round_trip():
    x = np.array([-0.9, -0.5, -0.05, 0.05, 0.5, 0.9])
    y = alaw_decode(alaw_encode(x))
    assert np.all(np.abs(y - x) < 0.05 * np.abs(x) + 0.01)


def test_mulaw_better_than_linear8_for_quiet_signals():
    """The whole point of companding: more resolution near zero."""
    quiet = np.full(100, 0.003)
    mu = mulaw_decode(mulaw_encode(quiet))
    lin_params = AudioParams(AudioEncoding.SLINEAR8, 8000, 1)
    lin = decode_samples(encode_samples(quiet, lin_params), lin_params)[:, 0]
    assert np.mean(np.abs(mu - quiet)) < np.mean(np.abs(lin - quiet))


def test_mono_input_duplicated_to_stereo_device():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
    x = ramp(10)
    y = decode_samples(encode_samples(x, params), params)
    assert y.shape == (10, 2)
    assert np.allclose(y[:, 0], y[:, 1])


def test_channel_mismatch_rejected():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 1)
    with pytest.raises(ValueError):
        encode_samples(np.zeros((10, 2)), params)


def test_out_of_range_samples_are_clipped():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 1)
    y = decode_samples(encode_samples(np.array([5.0, -5.0]), params), params)
    assert y[0, 0] == pytest.approx(1.0, abs=1e-4)
    assert y[1, 0] == pytest.approx(-1.0, abs=1e-4)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=200,
    ).filter(lambda xs: len(xs) % 2 == 0),
    st.sampled_from(list(AudioEncoding)),
)
def test_property_round_trip_error_bounded(values, encoding):
    """Every encoding round-trips any in-range signal within its quantiser
    step (generous bound covers companded codecs)."""
    params = AudioParams(encoding, 8000, 1)
    x = np.array(values)
    y = decode_samples(encode_samples(x, params), params)[:, 0]
    bound = 1 / 32000 if encoding is AudioEncoding.SLINEAR16 else 0.06
    assert np.max(np.abs(y - x)) <= bound


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=255))
def test_property_mulaw_decode_encode_is_stable_on_codewords(code):
    """Decode->encode->decode reproduces the same reconstruction value for
    every codeword (codewords for +0 and -0 alias to the same sample)."""
    c = np.array([code], dtype=np.uint8)
    once = mulaw_decode(c)
    twice = mulaw_decode(mulaw_encode(once))
    assert np.allclose(once, twice)
