"""End-to-end telemetry: conservation laws, latency, and the trace.

One telemetry-enabled run of the full pipeline (VAD -> rebroadcaster ->
multicast LAN -> speakers -> DAC) is shared by the tests here; each test
asserts one invariant from the ISSUE's acceptance list:

* **conservation**: every multicast delivery the producer paid for is at a
  speaker, in a drop counter, or still in flight — asserted from the
  telemetry *counters*, independently of the component stats;
* the :class:`PipelineReport` has non-zero latency percentiles;
* the exported Chrome trace is valid JSON with the expected span names.
"""

import json

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.metrics.telemetry import Telemetry

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
N_SPEAKERS = 3


def _run_system(loss_rate: float = 0.0, telemetry=True, seed: int = 7):
    system = EthernetSpeakerSystem(loss_rate=loss_rate, seed=seed,
                                   telemetry=telemetry)
    producer = system.add_producer()
    channel = system.add_channel("lobby", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    for _ in range(N_SPEAKERS):
        system.add_speaker(channel=channel)
    system.play_pcm(producer, sine(440, 6.0, 8000), PARAMS)
    # run well past the end of the 6 s stream: every data packet has been
    # delivered (or dropped) and the speakers have drained their sockets,
    # so the conservation ledger is settled (in_flight ~ 0)
    system.run(until=12.0)
    return system


@pytest.fixture(scope="module")
def lossless():
    return _run_system(loss_rate=0.0)


@pytest.fixture(scope="module")
def lossy():
    return _run_system(loss_rate=0.05)


# -- conservation, from the counters themselves ------------------------------


def test_counter_conservation_lossless(lossless):
    tel = lossless.telemetry
    sent = tel.total("rebroadcaster.data_sent")
    failures = tel.total("rebroadcaster.send_failures")
    received = tel.total("speaker.data_rx")
    assert sent > 0
    sock_drops = sum(n.speaker._sock.drops for n in lossless.speakers)
    in_flight = sum(n.speaker._sock.queued for n in lossless.speakers)
    assert sent * N_SPEAKERS == (
        received + sock_drops + in_flight + failures * N_SPEAKERS
    )


def test_counter_conservation_lossy_bounded_by_wire_losses(lossy):
    tel = lossy.telemetry
    sent = tel.total("rebroadcaster.data_sent")
    received = tel.total("speaker.data_rx")
    losses = lossy.lan.stats.receiver_losses
    assert losses > 0, "5% loss over thousands of copies must lose some"
    residual = sent * N_SPEAKERS - (
        received
        + sum(n.speaker._sock.drops for n in lossy.speakers)
        + sum(n.speaker._sock.queued for n in lossy.speakers)
        + tel.total("rebroadcaster.send_failures") * N_SPEAKERS
    )
    # the unaccounted deliveries are exactly the copies lost on the wire
    # (receiver_losses also counts lost *control* copies, so the data
    # residual is bounded by, not equal to, the loss counter)
    assert 0 < residual <= losses


def test_counters_agree_with_component_stats(lossless):
    """The counters are a second bookkeeping of the same run; they must
    agree exactly with the stats structs the components keep."""
    tel = lossless.telemetry
    rb = lossless.rebroadcasters[0]
    assert tel.total("rebroadcaster.data_sent") == rb.stats.data_sent
    assert tel.total("rebroadcaster.control_sent") == rb.stats.control_sent
    assert tel.total("rebroadcaster.raw_bytes") == rb.stats.raw_bytes
    assert tel.total("speaker.data_rx") == sum(
        n.stats.data_rx for n in lossless.speakers
    )
    assert tel.total("speaker.played") == sum(
        n.stats.played for n in lossless.speakers
    )
    assert tel.total("audio.underruns") == sum(
        n.device.underruns for n in lossless.speakers
    )


# -- the derived report ------------------------------------------------------


def test_pipeline_report_latency_percentiles_nonzero(lossless):
    rep = lossless.pipeline_report()
    for snap in (rep.latency, rep.arrival):
        assert snap["count"] > 0
        assert 0 < snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]
    # arrival (producer->speaker rx) must be under e2e (->DAC write)
    assert rep.arrival["p50"] < rep.latency["p50"]
    assert rep.duration > 6.0
    assert rep.trace_events > 0


def test_pipeline_report_conservation_flag(lossless, lossy):
    assert lossless.pipeline_report().conservation_ok
    assert lossless.pipeline_report().conservation_residual == 0
    lossy_rep = lossy.pipeline_report()
    assert lossy_rep.conservation_ok
    assert lossy_rep.conservation_residual > 0


def test_pipeline_report_channel_accounting(lossless):
    rep = lossless.pipeline_report()
    (ch,) = rep.channels
    assert ch.name == "lobby"
    assert ch.speakers == N_SPEAKERS
    assert ch.data_sent > 0
    assert ch.played > 0
    assert ch.compression_ratio == 1.0  # compress="never", raw channel
    assert rep.total_sent == ch.data_sent
    text = rep.summary()
    assert "lobby" in text and "conservation ok" in text


def test_pipeline_report_without_telemetry():
    """The accounting half of the report works from component stats even
    with telemetry off."""
    system = _run_system(telemetry=False)
    rep = system.pipeline_report()
    (ch,) = rep.channels
    assert ch.data_sent > 0
    assert rep.conservation_ok
    assert rep.latency == {} and rep.trace_events == 0


# -- the trace ---------------------------------------------------------------


def test_chrome_trace_valid_and_complete(lossless, tmp_path):
    doc = json.loads(json.dumps(lossless.chrome_trace()))
    events = doc["traceEvents"]
    assert events
    names = {e["name"] for e in events}
    for expected in ("packet.encode", "speaker.decode", "packet.flight",
                     "ratelimiter.wait"):
        assert expected in names, f"missing {expected} events"
    # every event's tid maps to a named track
    named = {e["tid"] for e in events if e["ph"] == "M"}
    assert {e["tid"] for e in events if e["ph"] != "M"} <= named
    path = tmp_path / "run.json"
    lossless.write_trace(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_sim_instrumentation_recorded(lossless):
    tel = lossless.telemetry
    assert tel.counters["sim.events"].value > 1000
    assert tel.histograms["sim.queue_depth"].count > 0


def test_telemetry_runs_are_deterministic():
    """Same seed, same virtual schedule: the exported traces and counter
    snapshots of two runs must match exactly."""
    a = _run_system(loss_rate=0.05, seed=3)
    b = _run_system(loss_rate=0.05, seed=3)
    assert a.telemetry.snapshot() == b.telemetry.snapshot()
    assert (a.telemetry.tracer.to_json() == b.telemetry.tracer.to_json())


def test_disabled_telemetry_identical_audio_outcome():
    """Telemetry must observe, never perturb: the simulation's audio
    outcome is bit-identical with it on or off."""
    on = _run_system(telemetry=True)
    off = _run_system(telemetry=False)
    assert [n.stats.played for n in on.speakers] == [
        n.stats.played for n in off.speakers
    ]
    assert [n.sink.played_seconds for n in on.speakers] == [
        n.sink.played_seconds for n in off.speakers
    ]
    assert on.sim.now == off.sim.now
    assert off.telemetry.tracer.events == []


def test_injected_registry_is_used_and_rebound_to_sim_clock():
    tel = Telemetry()
    system = EthernetSpeakerSystem(telemetry=tel)
    assert system.telemetry is tel
    system.sim.schedule(2.5, lambda: None)
    system.run()
    assert tel.clock() == system.sim.now == 2.5
    assert tel.tracer.clock() == 2.5
