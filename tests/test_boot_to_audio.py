"""Cross-package integration: a speaker's whole life (§2.4 -> §2.3).

PXE-boot an EON 4000 from the boot server, read the channel selection out
of the overlaid /etc configuration, discover the channel's multicast
coordinates from the catalog, start the Ethernet Speaker, and verify it
plays the stream that was already running — all in one simulation.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine, snr_db
from repro.core import EthernetSpeakerSystem
from repro.core.speaker import EthernetSpeaker
from repro.kernel import AudioDevice, HardwareAudioDriver, SpeakerSink
from repro.mgmt import CatalogAnnouncer, CatalogListener
from repro.platform import BootServer, DhcpServer, build_ramdisk, netboot
from repro.sim import Process, Sleep

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def test_full_speaker_lifecycle():
    system = EthernetSpeakerSystem()

    # --- the audio side: a channel already streaming --------------------------
    producer = system.add_producer()
    channel = system.add_channel("lobby", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(channel)
    announcer.start()
    signal = sine(440, 25.0, 8000)
    system.play_pcm(producer, signal, PARAMS, source_paced=True)

    # --- the infrastructure side: boot server on the same LAN -----------------
    boot_machine = system.add_producer(name="bootsrv", housekeeping=False)
    key = b"host-key"
    image = build_ramdisk("3.1", boot_server_key=key)
    BootServer(
        boot_machine.machine, image, key,
        default_config={"/etc/es.conf": b"channel=lobby\nvolume=80\n"},
    ).start()
    DhcpServer(boot_machine.machine,
               boot_server_ip=boot_machine.machine.net.ip).start()

    # --- a factory-fresh speaker ----------------------------------------------
    from repro.platform import EON_4000, make_machine

    es = make_machine(system.sim, "fresh-es", EON_4000)
    es.attach_network(system.lan, "0.0.0.0")
    sink = SpeakerSink()
    hw = HardwareAudioDriver(es, sink)
    es.register_device("/dev/audio", AudioDevice(es, hw))
    outcome = {}

    def lifecycle():
        # 1. PXE boot (starts 2 s into the stream)
        yield Sleep(2.0)
        result = yield from netboot(es)
        outcome["boot"] = result
        # 2. parse channel selection out of the overlaid /etc
        conf = dict(
            line.split("=", 1)
            for line in result.etc["/etc/es.conf"].decode().splitlines()
            if "=" in line
        )
        wanted = conf["channel"]
        # 3. find it in the catalog
        listener = CatalogListener(es)
        listener.start()
        entry = None
        while entry is None:
            yield Sleep(0.25)
            entry = listener.find(wanted)
        outcome["entry"] = entry
        # 4. tune in
        speaker = EthernetSpeaker(es, entry.group_ip, entry.port)
        speaker.start()
        outcome["speaker"] = speaker

    Process.spawn(system.sim, lifecycle(), "lifecycle")
    system.run(until=25.0)

    assert outcome["boot"].image_version == "3.1"
    assert outcome["entry"].name == "lobby"
    speaker = outcome["speaker"]
    assert speaker.stats.played > 0
    assert speaker.stats.control_rx > 0
    # the fresh speaker plays the same tone, cleanly, mid-stream: right
    # frequency (zero-crossing count) and right level, no dropouts
    import numpy as np

    out = sink.waveform()
    assert len(out) > 8000 * 5
    seconds = len(out) / 8000
    crossings = int(np.sum(np.diff(np.signbit(out))))
    assert crossings == pytest.approx(880 * seconds, rel=0.02)
    assert float(np.sqrt(np.mean(out**2))) == pytest.approx(
        0.8 / np.sqrt(2), rel=0.05
    )


def test_boot_then_play_time_includes_all_stages():
    """Boot-to-audio latency decomposes into boot + catalog + sync."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("pa", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    announcer = CatalogAnnouncer(producer.machine, interval=0.5)
    announcer.add_channel(channel)
    announcer.start()
    system.play_synthetic(producer, 30.0, PARAMS)

    boot_node = system.add_producer(name="bootsrv", housekeeping=False)
    key = b"k"
    BootServer(boot_node.machine, build_ramdisk("1", boot_server_key=key),
               key, default_config={"/etc/es.conf": b"channel=pa\n"}).start()
    DhcpServer(boot_node.machine).start()

    from repro.platform import EON_4000, make_machine

    es = make_machine(system.sim, "es-x", EON_4000)
    es.attach_network(system.lan, "0.0.0.0")
    sink = SpeakerSink()
    es.register_device("/dev/audio",
                       AudioDevice(es, HardwareAudioDriver(es, sink)))
    marks = {}

    def lifecycle():
        result = yield from netboot(es)
        marks["booted"] = es.sim.now
        listener = CatalogListener(es)
        listener.start()
        while listener.find("pa") is None:
            yield Sleep(0.1)
        marks["catalog"] = es.sim.now
        entry = listener.find("pa")
        speaker = EthernetSpeaker(es, entry.group_ip, entry.port)
        speaker.start()
        marks["speaker"] = speaker

    Process.spawn(system.sim, lifecycle(), "lifecycle")
    system.run(until=15.0)
    first_audio = marks["speaker"].stats.first_play_time
    assert marks["booted"] < marks["catalog"] < first_audio
    # cold power-on to audible audio in a handful of seconds
    assert first_audio < 5.0
