"""VorbisLike codec: fidelity, compression, quality index semantics (§2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import music, segmental_snr_db, silence, sine, snr_db
from repro.codec import CodecID, VorbisLikeCodec, get_codec


@pytest.fixture(scope="module")
def clip():
    return music(1.5, 44100, seed=7)


def test_round_trip_shape_and_range(clip):
    codec = VorbisLikeCodec(quality=8)
    out = codec.decode_block(codec.encode_block(clip))
    assert out.shape == (len(clip), 1)
    assert np.max(np.abs(out)) <= 1.0


def test_max_quality_is_near_transparent(clip):
    """§2.2: at the maximum quality index 'our experience so far has not
    revealed any audible defects'.  We require >= 35 dB segmental SNR."""
    codec = VorbisLikeCodec(quality=10)
    out = codec.decode_block(codec.encode_block(clip))
    assert segmental_snr_db(clip, out[:, 0]) > 35.0


def test_max_quality_still_compresses(clip):
    """...'while still providing adequate compression': at least 2:1."""
    codec = VorbisLikeCodec(quality=10)
    blob = codec.encode_block(clip)
    assert len(blob) < len(clip) * 2 / 2.0


def test_snr_monotone_in_quality(clip):
    snrs = []
    for q in (0, 3, 6, 10):
        codec = VorbisLikeCodec(quality=q)
        out = codec.decode_block(codec.encode_block(clip))
        snrs.append(snr_db(clip, out[:, 0]))
    assert all(b > a for a, b in zip(snrs, snrs[1:]))


def test_size_monotone_in_quality(clip):
    sizes = [
        len(VorbisLikeCodec(quality=q).encode_block(clip))
        for q in (0, 3, 6, 10)
    ]
    assert all(b >= a for a, b in zip(sizes, sizes[1:]))


def test_low_quality_compresses_hard(clip):
    blob = VorbisLikeCodec(quality=0).encode_block(clip)
    assert len(blob) < len(clip) * 2 * 0.2  # >5:1 vs 16-bit PCM


def test_stereo_round_trip():
    left = sine(440, 0.5, 44100, amplitude=0.6)
    right = sine(550, 0.5, 44100, amplitude=0.6)
    x = np.stack([left, right], axis=1)
    codec = VorbisLikeCodec(quality=10)
    out = codec.decode_block(codec.encode_block(x))
    assert out.shape == x.shape
    assert snr_db(left, out[:, 0]) > 25
    assert snr_db(right, out[:, 1]) > 25


def test_mid_side_exploits_correlation():
    """Identical channels should compress much better than independent."""
    mono = music(1.0, 44100, seed=8)
    correlated = np.stack([mono, mono], axis=1)
    uncorrelated = np.stack([mono, music(1.0, 44100, seed=9)], axis=1)
    codec = VorbisLikeCodec(quality=8)
    assert len(codec.encode_block(correlated)) < 0.8 * len(
        codec.encode_block(uncorrelated)
    )


def test_silence_compresses_to_almost_nothing():
    codec = VorbisLikeCodec(quality=10)
    blob = codec.encode_block(silence(1.0, 44100))
    # floor is one presence byte per band per frame: > 35:1 here
    assert len(blob) < 44100 * 2 * 0.03


def test_blocks_decode_independently(clip):
    """Cutting a stream into blocks and decoding each alone reproduces the
    stream — the property that lets a speaker tune in mid-transmission."""
    codec = VorbisLikeCodec(quality=10)
    step = 4410
    pieces = [
        codec.decode_block(codec.encode_block(clip[pos : pos + step]))[:, 0]
        for pos in range(0, len(clip), step)
    ]
    joined = np.concatenate(pieces)
    assert len(joined) == len(clip)
    assert snr_db(clip, joined) > 20


def test_registry_round_trip(clip):
    codec = get_codec(CodecID.VORBIS_LIKE, quality=5)
    assert isinstance(codec, VorbisLikeCodec)
    out = codec.decode_block(codec.encode_block(clip))
    assert len(out) == len(clip)


def test_decoder_checks_codec_id(clip):
    codec = VorbisLikeCodec()
    with pytest.raises(ValueError):
        codec.decode_block(b"\x63" + b"\x00" * 50)


def test_invalid_construction():
    with pytest.raises(ValueError):
        VorbisLikeCodec(quality=11)
    with pytest.raises(ValueError):
        VorbisLikeCodec(frame_size=500)  # not a power of two
    with pytest.raises(ValueError):
        VorbisLikeCodec().encode_block(np.zeros((10, 3)))


def test_tiny_blocks_round_trip():
    codec = VorbisLikeCodec(quality=10)
    for n in (1, 7, 100):
        x = sine(440, n / 44100, 44100)
        out = codec.decode_block(codec.encode_block(x))
        assert out.shape == (len(x), 1)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=10, max_value=3000),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_decode_inverts_encode_length(quality, length, seed):
    """Any content, any quality: decode returns exactly the encoded
    sample count with bounded amplitude."""
    x = np.random.default_rng(seed).uniform(-1, 1, length)
    codec = VorbisLikeCodec(quality=quality)
    out = codec.decode_block(codec.encode_block(x))
    assert out.shape == (length, 1)
    assert np.max(np.abs(out)) <= 1.0
