"""Differential harness: batched codec kernels == scalar reference.

The batched whole-block kernels (:mod:`repro.codec.batch`) claim **bit
identity** with the per-frame/per-band scalar loops they replace — on the
wire (encode) and in the recovered samples (decode), including the exact
exception a malformed stream raises.  These tests pin that claim with
hypothesis sweeps over dtypes, odd block sizes, empty blocks, every Rice
parameter 0..30, and random byte-level corruption.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.mdct import (
    _reference_mdct_synthesis,
    mdct_analysis,
    mdct_synthesis,
)
from repro.codec.mp3like import Mp3LikeCodec
from repro.codec.rice import (
    _reference_rice_decode,
    rice_decode,
    rice_encode,
)
from repro.codec.vorbislike import VorbisLikeCodec


def _signal(rng, n, channels, kind):
    if kind == "noise":
        x = rng.normal(0.0, 0.3, (n, channels))
    elif kind == "tone":
        t = np.arange(n)[:, None]
        x = 0.5 * np.sin(2 * np.pi * 440.0 * t / 44100.0) * np.ones(
            (1, channels)
        )
    elif kind == "quiet":
        x = rng.normal(0.0, 1e-7, (n, channels))
    elif kind == "sparse":
        x = np.zeros((n, channels))
        x[:: max(1, n // 13)] = 0.9
    else:  # attack: quiet lead-in, loud tail (trips window switching)
        x = rng.normal(0.0, 0.01, (n, channels))
        x[n // 2 :] *= 40.0
    return np.clip(x, -1.0, 1.0)


def _pair(cls, **kwargs):
    return cls(batched=True, **kwargs), cls(batched=False, **kwargs)


def _outcome(codec, data):
    try:
        return ("ok", codec.decode_block(data).tobytes())
    except Exception as exc:  # noqa: BLE001 — exception IS the contract
        return (type(exc).__name__, str(exc))


# -- Rice coding -------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-(2**16), max_value=2**16),
        min_size=0,
        max_size=64,
    ),
    k=st.integers(min_value=0, max_value=30),
)
def test_rice_decode_matches_reference_on_valid_streams(values, k):
    v = np.array(values, dtype=np.int64)
    data = rice_encode(v, k)
    got = rice_decode(data, k, len(v))
    ref = _reference_rice_decode(data, k, len(v))
    assert np.array_equal(got, ref)
    assert np.array_equal(got, v)


@settings(max_examples=300, deadline=None)
@given(
    data=st.binary(min_size=0, max_size=48),
    k=st.integers(min_value=0, max_value=34),
    count=st.integers(min_value=0, max_value=40),
)
def test_rice_decode_matches_reference_on_garbage(data, k, count):
    """Arbitrary bytes (truncations, hostile k, k > 30) must produce the
    same values or the same exception as the per-bit walk."""
    try:
        got, got_err = rice_decode(data, k, count), None
    except ValueError as exc:
        got, got_err = None, str(exc)
    try:
        ref, ref_err = _reference_rice_decode(data, k, count), None
    except ValueError as exc:
        ref, ref_err = None, str(exc)
    assert got_err == ref_err
    if got is not None:
        assert np.array_equal(got, ref)


def test_rice_decode_truncated_tail_raises_like_reference():
    v = np.arange(-20, 20, dtype=np.int64)
    data = rice_encode(v, 4)
    for cut in (0, 1, len(data) // 2, len(data) - 1):
        with pytest.raises(ValueError, match="truncated"):
            rice_decode(data[:cut], 4, len(v))


# -- MDCT overlap-add --------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    length=st.integers(min_value=0, max_value=5000),
    n=st.sampled_from([64, 128, 256, 512]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_mdct_synthesis_matches_reference_loop(length, n, seed):
    rng = np.random.default_rng(seed)
    coeffs, _ = mdct_analysis(rng.normal(0.0, 0.5, length), n)
    # quantisation-shaped coefficients too: signed zeros and exact ties
    coeffs = np.round(coeffs * 8.0) / 8.0
    fast = mdct_synthesis(coeffs, length)
    slow = _reference_mdct_synthesis(coeffs, length)
    assert fast.tobytes() == slow.tobytes()  # bitwise, not approx


# -- VorbisLike --------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20000),
    channels=st.sampled_from([1, 2]),
    quality=st.sampled_from([0, 3, 7, 10]),
    entropy=st.sampled_from(["fixed", "rice"]),
    window_switching=st.booleans(),
    kind=st.sampled_from(["noise", "tone", "quiet", "sparse", "attack"]),
    dtype=st.sampled_from([np.float64, np.float32, np.int16]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_vorbis_batched_bit_identical(
    n, channels, quality, entropy, window_switching, kind, dtype, seed
):
    rng = np.random.default_rng(seed)
    x = _signal(rng, n, channels, kind)
    if dtype is np.int16:
        x = (x * 32767).astype(np.int16)
    else:
        x = x.astype(dtype)
    fast, slow = _pair(
        VorbisLikeCodec,
        quality=quality,
        entropy=entropy,
        window_switching=window_switching,
    )
    wf, ws = fast.encode_block(x), slow.encode_block(x)
    assert wf == ws
    assert fast.decode_block(wf).tobytes() == slow.decode_block(ws).tobytes()


def test_vorbis_empty_block_bit_identical():
    x = np.zeros((0, 2))
    fast, slow = _pair(VorbisLikeCodec)
    wf, ws = fast.encode_block(x), slow.encode_block(x)
    assert wf == ws
    assert fast.decode_block(wf).tobytes() == slow.decode_block(ws).tobytes()


def test_vorbis_nonfinite_input_same_outcome():
    """NaN/Inf coefficients: the batch kernel must defer to the reference
    loop so both configurations produce identical bytes or identical
    errors."""
    for bad in (np.nan, np.inf, -np.inf):
        x = np.zeros((3000, 1))
        x[7] = 0.25
        x[1500] = bad
        outs = []
        for codec in _pair(VorbisLikeCodec, quality=10):
            try:
                outs.append(("ok", codec.encode_block(x)))
            except Exception as exc:  # noqa: BLE001
                outs.append((type(exc).__name__, str(exc)))
        assert outs[0] == outs[1]


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(min_value=64, max_value=9000),
    entropy=st.sampled_from(["fixed", "rice"]),
    cut=st.floats(min_value=0.0, max_value=1.0),
    flips=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=0,
        max_size=5,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_vorbis_corrupt_stream_same_outcome(n, entropy, cut, flips, seed):
    """Truncated / bit-flipped blocks: decode must return the same
    samples or raise the same exception either way."""
    rng = np.random.default_rng(seed)
    x = _signal(rng, n, 2, "noise")
    fast, slow = _pair(VorbisLikeCodec, quality=7, entropy=entropy)
    blob = bytearray(fast.encode_block(x))
    header = 10
    if len(blob) > header + 1:
        blob = blob[: header + 1 + int(cut * (len(blob) - header - 1))]
        for frac, bit in flips:
            i = header + int(frac * (len(blob) - header - 1))
            blob[min(i, len(blob) - 1)] ^= 1 << bit
    assert _outcome(fast, bytes(blob)) == _outcome(slow, bytes(blob))


# -- Mp3Like -----------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20000),
    channels=st.sampled_from([1, 2]),
    kbps=st.sampled_from([96, 128, 192, 256, 320]),
    kind=st.sampled_from(["noise", "tone", "quiet", "sparse", "attack"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_mp3_batched_bit_identical(n, channels, kbps, kind, seed):
    rng = np.random.default_rng(seed)
    x = _signal(rng, n, channels, kind)
    fast, slow = _pair(Mp3LikeCodec, bitrate_kbps=kbps)
    wf, ws = fast.encode_block(x), slow.encode_block(x)
    assert wf == ws
    assert fast.decode_block(wf).tobytes() == slow.decode_block(ws).tobytes()


def test_mp3_empty_block_bit_identical():
    fast, slow = _pair(Mp3LikeCodec)
    wf, ws = fast.encode_block(np.zeros((0, 1))), slow.encode_block(
        np.zeros((0, 1))
    )
    assert wf == ws


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=64, max_value=9000),
    cut=st.floats(min_value=0.0, max_value=1.0),
    flips=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=0,
        max_size=5,
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_mp3_corrupt_stream_same_outcome(n, cut, flips, seed):
    rng = np.random.default_rng(seed)
    x = _signal(rng, n, 2, "noise")
    fast, slow = _pair(Mp3LikeCodec, bitrate_kbps=192)
    blob = bytearray(fast.encode_block(x))
    header = 8
    if len(blob) > header + 1:
        blob = blob[: header + 1 + int(cut * (len(blob) - header - 1))]
        for frac, bit in flips:
            i = header + int(frac * (len(blob) - header - 1))
            blob[min(i, len(blob) - 1)] ^= 1 << bit
    assert _outcome(fast, bytes(blob)) == _outcome(slow, bytes(blob))
