"""Vectorised bit packing round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import bitpack


def test_pack_unpack_uint_basic():
    vals = np.array([0, 1, 5, 7])
    data = bitpack.pack_uint(vals, 3)
    assert len(data) == 2  # 12 bits -> 2 bytes
    out = bitpack.unpack_uint(data, 3, 4)
    assert np.array_equal(out, vals)


def test_pack_int_round_trip():
    vals = np.array([-4, -1, 0, 3])
    out = bitpack.unpack_int(bitpack.pack_int(vals, 3), 3, 4)
    assert np.array_equal(out, vals)


def test_packed_size_matches():
    vals = np.arange(100) % 16
    data = bitpack.pack_uint(vals, 4)
    assert len(data) == bitpack.packed_size(4, 100) == 50


def test_value_too_large_rejected():
    with pytest.raises(ValueError):
        bitpack.pack_uint(np.array([8]), 3)
    with pytest.raises(ValueError):
        bitpack.pack_int(np.array([4]), 3)
    with pytest.raises(ValueError):
        bitpack.pack_int(np.array([-5]), 3)


def test_bad_width_rejected():
    for width in (0, 17):
        with pytest.raises(ValueError):
            bitpack.pack_uint(np.array([0]), width)
        with pytest.raises(ValueError):
            bitpack.unpack_uint(b"\x00\x00\x00", width, 1)


def test_short_bitstream_rejected():
    with pytest.raises(ValueError):
        bitpack.unpack_uint(b"\x00", 8, 5)


def test_empty_values():
    assert bitpack.pack_uint(np.array([]), 5) == b""
    assert len(bitpack.unpack_uint(b"", 5, 0)) == 0


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=64),
)
def test_property_uint_round_trip(width, values):
    vals = np.array([v % (1 << width) for v in values], dtype=np.uint32)
    data = bitpack.pack_uint(vals, width)
    assert len(data) == bitpack.packed_size(width, len(vals))
    out = bitpack.unpack_uint(data, width, len(vals))
    assert np.array_equal(out, vals)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=16),
    st.lists(st.integers(min_value=-(2**15), max_value=2**15 - 1), max_size=64),
)
def test_property_int_round_trip(width, values):
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    vals = np.clip(np.array(values, dtype=np.int64), lo, hi) if values else np.array([], dtype=np.int64)
    out = bitpack.unpack_int(bitpack.pack_int(vals, width), width, len(vals))
    assert np.array_equal(out, vals)
