"""MDCT: perfect reconstruction, critical sampling, windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.mdct import (
    imdct,
    mdct,
    mdct_analysis,
    mdct_synthesis,
    sine_window,
)


def test_sine_window_satisfies_princen_bradley():
    w = sine_window(1024)
    n = 512
    assert np.allclose(w[:n] ** 2 + w[n:] ** 2, 1.0)


def test_mdct_is_critically_sampled():
    x = np.random.default_rng(1).standard_normal(4096)
    coeffs, length = mdct_analysis(x, 512)
    # 4096 samples -> 8 content frames + 1 for the tail padding
    assert coeffs.shape == (9, 512)
    assert length == 4096


def test_perfect_reconstruction_random_signal():
    x = np.random.default_rng(2).standard_normal(5000)
    coeffs, length = mdct_analysis(x, 512)
    y = mdct_synthesis(coeffs, length)
    assert y.shape == x.shape
    assert np.max(np.abs(y - x)) < 1e-10


def test_perfect_reconstruction_non_multiple_length():
    x = np.random.default_rng(3).standard_normal(777)
    coeffs, length = mdct_analysis(x, 256)
    y = mdct_synthesis(coeffs, length)
    assert np.max(np.abs(y - x)) < 1e-10


def test_reconstruction_various_frame_sizes():
    x = np.random.default_rng(4).standard_normal(2048)
    for n in (64, 128, 512, 1024):
        coeffs, length = mdct_analysis(x, n)
        assert np.max(np.abs(mdct_synthesis(coeffs, length) - x)) < 1e-10


def test_sine_input_concentrates_energy():
    """A pure tone's energy should land in very few MDCT bins."""
    rate, n = 44100, 512
    t = np.arange(8192) / rate
    x = np.sin(2 * np.pi * 1000.0 * t)
    coeffs, _ = mdct_analysis(x, n)
    frame = coeffs[4]  # interior frame, away from padding edges
    power = frame**2
    top4 = np.sort(power)[-4:].sum()
    assert top4 / power.sum() > 0.95


def test_mdct_linearity():
    rng = np.random.default_rng(5)
    a = rng.standard_normal((3, 1024))
    b = rng.standard_normal((3, 1024))
    assert np.allclose(mdct(a + 2 * b), mdct(a) + 2 * mdct(b))


def test_imdct_is_adjoint_shape():
    coeffs = np.random.default_rng(6).standard_normal((2, 512))
    out = imdct(coeffs)
    assert out.shape == (2, 1024)


def test_empty_signal():
    coeffs, length = mdct_analysis(np.zeros(0), 256)
    assert length == 0
    y = mdct_synthesis(coeffs, 0)
    assert len(y) == 0


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_perfect_reconstruction(length, seed):
    """TDAC holds for arbitrary lengths and content."""
    x = np.random.default_rng(seed).uniform(-1, 1, length)
    coeffs, n = mdct_analysis(x, 128)
    y = mdct_synthesis(coeffs, n)
    assert np.max(np.abs(y - x)) < 1e-9
