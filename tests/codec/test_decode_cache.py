"""Shared-decode cache: isolation, bounds, and end-to-end reconciliation.

The cache exists so N speakers on one channel decode each multicast block
once — but it must never let entries leak across channels with different
codecs or audio parameters, must stay bounded, and its hit/miss accounting
must reconcile with what :meth:`EthernetSpeakerSystem.pipeline_report`
itemises.  Crucially, enabling it must not change a single played byte.
"""

import numpy as np
import pytest

from repro.audio import CD_QUALITY, AudioEncoding, AudioParams, music
from repro.codec import CodecID, DecodeCache, DecodedBlock
from repro.core import EthernetSpeakerSystem
from repro.metrics.telemetry import Telemetry

PAYLOAD = b"\x5a\xa5" * 300
PARAMS_A = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
PARAMS_B = AudioParams(AudioEncoding.SLINEAR16, 22050, 2)


# -- keying & isolation -------------------------------------------------------


def test_identical_inputs_share_a_key():
    k1 = DecodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A)
    k2 = DecodeCache.key_for(bytes(PAYLOAD), CodecID.VORBIS_LIKE, PARAMS_A)
    assert k1 == k2


def test_memoryview_payload_keys_like_bytes():
    # the zero-copy parser hands the speaker a memoryview payload; it must
    # land on the same entry as the producer-side bytes
    k1 = DecodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A)
    k2 = DecodeCache.key_for(
        memoryview(PAYLOAD), CodecID.VORBIS_LIKE, PARAMS_A
    )
    assert k1 == k2


def test_codec_and_params_isolate_entries():
    keys = {
        DecodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A),
        DecodeCache.key_for(PAYLOAD, CodecID.MP3_LIKE, PARAMS_A),
        DecodeCache.key_for(PAYLOAD, CodecID.ADPCM, PARAMS_A),
        DecodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_B),
    }
    assert len(keys) == 4  # same bytes, four distinct entries


def test_cross_channel_entries_never_collide_in_cache():
    cache = DecodeCache(max_entries=8)
    ka = cache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A)
    kb = cache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_B)
    cache.put(ka, DecodedBlock(pcm=b"A" * 4, rms=0.5))
    cache.put(kb, DecodedBlock(pcm=b"B" * 4, rms=0.25))
    assert cache.get(ka).pcm == b"A" * 4
    assert cache.get(kb).pcm == b"B" * 4


# -- bounds & stats -----------------------------------------------------------


def test_eviction_keeps_cache_bounded():
    cache = DecodeCache(max_entries=4)
    for i in range(10):
        key = cache.key_for(bytes([i]) * 8, CodecID.RAW, PARAMS_A)
        cache.put(key, DecodedBlock(pcm=bytes([i]), rms=None))
    assert len(cache) == 4
    assert cache.stats.evictions == 6
    # the four most recent survive, the oldest six are gone
    for i in range(6):
        key = cache.key_for(bytes([i]) * 8, CodecID.RAW, PARAMS_A)
        assert cache.get(key) is None
    for i in range(6, 10):
        key = cache.key_for(bytes([i]) * 8, CodecID.RAW, PARAMS_A)
        assert cache.get(key) is not None


def test_lru_recency_protects_hot_entries():
    cache = DecodeCache(max_entries=2)
    k0 = cache.key_for(b"0" * 8, CodecID.RAW, PARAMS_A)
    k1 = cache.key_for(b"1" * 8, CodecID.RAW, PARAMS_A)
    k2 = cache.key_for(b"2" * 8, CodecID.RAW, PARAMS_A)
    cache.put(k0, DecodedBlock(b"0", None))
    cache.put(k1, DecodedBlock(b"1", None))
    assert cache.get(k0) is not None       # touch k0: k1 becomes LRU
    cache.put(k2, DecodedBlock(b"2", None))
    assert cache.get(k0) is not None
    assert cache.get(k1) is None


def test_stats_and_telemetry_counters_track():
    tel = Telemetry()
    cache = DecodeCache(max_entries=4, telemetry=tel, name="t")
    key = cache.key_for(PAYLOAD, CodecID.RAW, PARAMS_A)
    assert cache.get(key) is None
    cache.put(key, DecodedBlock(b"x", None))
    assert cache.get(key) is not None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5
    assert tel.total("codec.cache.hits") == 1
    assert tel.total("codec.cache.misses") == 1


def test_invalid_bound_rejected():
    with pytest.raises(ValueError):
        DecodeCache(max_entries=0)


# -- end-to-end: reconciliation and bit-identical playout ---------------------


def _run_fanout(shared_decode, speakers=4, telemetry=True):
    system = EthernetSpeakerSystem(
        telemetry=telemetry, shared_decode=shared_decode
    )
    producer = system.add_producer()
    channel = system.add_channel("hall", params=CD_QUALITY,
                                 compress="always")
    system.add_rebroadcaster(producer, channel)
    nodes = [system.add_speaker(channel=channel) for _ in range(speakers)]
    system.play_pcm(producer, music(1.0, 44100, seed=7), CD_QUALITY)
    system.run(until=4.0)
    return system, nodes


def test_hit_rate_reconciles_in_pipeline_report():
    system, nodes = _run_fanout(shared_decode=True)
    report = system.pipeline_report()
    stats = system.decode_cache.stats
    played = sum(n.stats.played for n in nodes)
    assert played > 0
    assert report.decode_cache_hits == stats.hits
    assert report.decode_cache_misses == stats.misses
    assert report.decode_cache_evictions == stats.evictions
    # four unity-gain speakers on one channel: each block decodes once
    # and hits three times, so hits + misses == decoded blocks and the
    # hit rate approaches (N-1)/N
    assert stats.misses > 0
    assert stats.hits == stats.misses * (len(nodes) - 1)
    assert report.decode_cache_hit_rate == pytest.approx(0.75)
    # the itemisation reaches the human-readable summary too
    assert "decode cache hits" in report.summary()


def test_disabled_cache_reports_zero():
    system, _ = _run_fanout(shared_decode=False)
    report = system.pipeline_report()
    assert system.decode_cache is None
    assert report.decode_cache_hits == 0
    assert report.decode_cache_misses == 0
    assert "decode cache hits" not in report.summary()


def test_shared_decode_playout_is_bit_identical():
    _, nodes_on = _run_fanout(shared_decode=True, telemetry=False)
    _, nodes_off = _run_fanout(shared_decode=False, telemetry=False)
    for on, off in zip(nodes_on, nodes_off):
        assert on.stats.played == off.stats.played
        assert len(on.sink.records) == len(off.sink.records)
        for (t1, d1, s1, p1), (t2, d2, s2, p2) in zip(
            on.sink.records, off.sink.records
        ):
            assert t1 == t2
            assert bytes(d1) == bytes(d2)
            assert s1 == s2 and p1 == p2


def test_gain_adjusted_speaker_bypasses_cache():
    system = EthernetSpeakerSystem(telemetry=True, shared_decode=True)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=CD_QUALITY,
                                 compress="always")
    system.add_rebroadcaster(producer, channel)
    loud = system.add_speaker(channel=channel)
    quiet = system.add_speaker(channel=channel)
    quiet.speaker.gain = 0.5
    system.play_pcm(producer, music(0.5, 44100, seed=7), CD_QUALITY)
    system.run(until=3.0)
    stats = system.decode_cache.stats
    # only the unity-gain speaker touches the cache: every lookup misses
    # (nobody shares its blocks) and the gain-adjusted one stays private
    assert loud.stats.played > 0 and quiet.stats.played > 0
    assert stats.misses > 0
    assert stats.hits == 0
    loud_rms = loud.speaker.last_output_rms
    quiet_rms = quiet.speaker.last_output_rms
    assert quiet_rms == pytest.approx(loud_rms * 0.5, rel=0.05)
