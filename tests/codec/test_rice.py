"""Rice entropy coding and the adaptive entropy option in VorbisLike."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import music, segmental_snr_db
from repro.codec import VorbisLikeCodec
from repro.codec.rice import (
    best_k,
    rice_decode,
    rice_encode,
    rice_size_bytes,
    unzigzag,
    zigzag,
)


def test_zigzag_round_trip():
    v = np.array([0, -1, 1, -2, 2, -1000, 1000])
    assert np.array_equal(unzigzag(zigzag(v)), v)


def test_zigzag_mapping_order():
    assert list(zigzag(np.array([0, -1, 1, -2, 2]))) == [0, 1, 2, 3, 4]


def test_rice_round_trip_basic():
    v = np.array([0, 1, -1, 5, -7, 100, -128])
    for k in (0, 2, 4, 8):
        out = rice_decode(rice_encode(v, k), k, len(v))
        assert np.array_equal(out, v)


def test_rice_size_matches_actual():
    v = np.array([3, -5, 0, 12, -1])
    for k in (0, 1, 3):
        assert rice_size_bytes(v, k) == len(rice_encode(v, k))


def test_best_k_tracks_magnitude():
    small = np.array([0, 1, -1, 0, 1])
    big = np.array([1000, -2000, 1500, -800])
    assert best_k(small) < best_k(big)


def test_peaky_data_compresses_below_fixed_width():
    """The reason Rice exists: mostly-zero data costs ~1 bit/value."""
    rng = np.random.default_rng(5)
    v = np.zeros(1000, dtype=np.int64)
    v[rng.integers(0, 1000, 30)] = rng.integers(-100, 100, 30)
    k = best_k(v)
    rice_bytes = rice_size_bytes(v, k)
    fixed_bytes = 1000 * 8 // 8  # 8-bit fixed width
    assert rice_bytes < fixed_bytes / 2


def test_truncated_stream_raises():
    v = np.array([100, 200, 300])
    data = rice_encode(v, 2)
    with pytest.raises(ValueError):
        rice_decode(data[: len(data) // 2], 2, 3)


def test_invalid_k_rejected():
    with pytest.raises(ValueError):
        rice_encode(np.array([1]), -1)
    with pytest.raises(ValueError):
        rice_encode(np.array([1]), 31)


def test_empty_input():
    assert rice_encode(np.array([], dtype=np.int64), 3) == b""
    assert len(rice_decode(b"", 3, 0)) == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=-(2**20), max_value=2**20), max_size=80),
    st.integers(min_value=0, max_value=12),
)
def test_property_rice_round_trip(values, k):
    v = np.array(values, dtype=np.int64)
    out = rice_decode(rice_encode(v, k), k, len(v))
    assert np.array_equal(out, v)
    assert rice_size_bytes(v, k) == len(rice_encode(v, k))


# -- integration with the codec -------------------------------------------------


def test_adaptive_entropy_never_larger_and_bit_identical():
    sig = music(1.0, 44100, seed=44)
    for q in (2, 10):
        fixed = VorbisLikeCodec(quality=q, entropy="fixed")
        adaptive = VorbisLikeCodec(quality=q, entropy="rice")
        bf = fixed.encode_block(sig)
        br = adaptive.encode_block(sig)
        assert len(br) <= len(bf)
        # reconstruction is identical: entropy coding is lossless
        assert np.allclose(fixed.decode_block(bf), adaptive.decode_block(br))


def test_decoder_handles_mixed_streams():
    """A fixed-mode decoder instance decodes rice-tagged blocks (tags are
    per band, decoders are universal)."""
    sig = music(0.5, 44100, seed=45)
    encoder = VorbisLikeCodec(quality=8, entropy="rice")
    decoder = VorbisLikeCodec(quality=8, entropy="fixed")
    out = decoder.decode_block(encoder.encode_block(sig))
    assert segmental_snr_db(sig, out[:, 0]) > 30


def test_invalid_entropy_rejected():
    with pytest.raises(ValueError):
        VorbisLikeCodec(entropy="huffman")
