"""Psychoacoustic model: band partitions, masking, allocation."""

import numpy as np
import pytest

from repro.codec.psycho import PsychoModel, band_edges, bark


def test_bark_is_monotone():
    freqs = np.linspace(0, 22050, 100)
    z = bark(freqs)
    assert np.all(np.diff(z) > 0)


def test_bark_known_values():
    # ~1 kHz is ~8.5 Bark; ~15.5 kHz is ~24 Bark (classic table values)
    assert bark(np.array([1000.0]))[0] == pytest.approx(8.5, abs=0.6)
    assert bark(np.array([15500.0]))[0] == pytest.approx(24.0, abs=1.0)


def test_band_edges_cover_all_bins():
    edges = band_edges(44100, 512)
    assert edges[0] == 0
    assert edges[-1] == 512
    assert np.all(np.diff(edges) > 0)


def test_band_edges_wider_at_high_frequency():
    edges = np.asarray(band_edges(44100, 512))
    widths = np.diff(edges)
    assert widths[-1] > widths[0]


def test_band_energies_sum_matches_total_power():
    model = PsychoModel(44100, 512)
    frame = np.random.default_rng(0).standard_normal(512)
    energies = model.band_energies(frame)
    counts = np.diff(model.edges)
    assert (energies * counts).sum() == pytest.approx((frame**2).sum())


def test_masking_threshold_below_band_energy():
    model = PsychoModel(44100, 512)
    energies = np.ones(model.n_bands)
    thresholds = model.masking_threshold(energies)
    assert np.all(thresholds < energies)


def test_masking_spreads_to_neighbours():
    model = PsychoModel(44100, 512)
    energies = np.zeros(model.n_bands)
    energies[model.n_bands // 2] = 1.0
    thresholds = model.masking_threshold(energies)
    mid = model.n_bands // 2
    assert thresholds[mid - 1] > thresholds[0]
    assert thresholds[mid + 1] > thresholds[-1]
    assert thresholds[mid] == thresholds.max()


def test_allocation_monotone_in_quality():
    model = PsychoModel(44100, 512)
    frame = np.random.default_rng(1).standard_normal(512)
    energies = model.band_energies(frame)
    totals = [
        model.allocate_widths(energies, q).sum() for q in range(11)
    ]
    assert all(b >= a for a, b in zip(totals, totals[1:]))
    assert totals[10] > totals[0]


def test_inaudible_bands_dropped():
    model = PsychoModel(44100, 512)
    energies = np.full(model.n_bands, 1e-30)
    energies[0] = 1.0  # one loud band masks nothing far away, rest silent
    widths = model.allocate_widths(energies, 5)
    assert widths[0] > 0
    assert widths[-1] == 0  # far-away silent band dropped


def test_widths_bounded():
    model = PsychoModel(44100, 512)
    energies = np.full(model.n_bands, 1e6)
    widths = model.allocate_widths(energies, 10)
    assert np.all(widths <= 15)
    assert np.all(widths >= 0)


def test_bad_quality_rejected():
    model = PsychoModel(44100, 512)
    with pytest.raises(ValueError):
        model.allocate_widths(np.ones(model.n_bands), 11)
    with pytest.raises(ValueError):
        model.allocate_widths(np.ones(model.n_bands), -1)
