"""Encode-side cache: isolation, bounds, telemetry, and origin wiring.

The origin mirror of ``test_decode_cache.py``: one station looping or
fanning the same source must encode each raw block once, but entries can
never leak across codecs, audio parameters, or quality settings — the
wire bytes are a pure function of the full key or they must not be
shared.  RAW passthrough and synthetic-size channels bypass the cache
entirely.
"""

import numpy as np
import pytest

from repro.audio import CD_QUALITY, AudioEncoding, AudioParams, music
from repro.codec import CodecID, EncodeCache, EncodedBlock
from repro.core import EthernetSpeakerSystem
from repro.metrics.telemetry import Telemetry

PAYLOAD = b"\x5a\xa5" * 300
PARAMS_A = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
PARAMS_B = AudioParams(AudioEncoding.SLINEAR16, 22050, 2)


# -- keying & isolation -------------------------------------------------------


def test_identical_inputs_share_a_key():
    k1 = EncodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    k2 = EncodeCache.key_for(
        bytes(PAYLOAD), CodecID.VORBIS_LIKE, PARAMS_A, 10
    )
    assert k1 == k2


def test_codec_params_and_quality_isolate_entries():
    keys = {
        EncodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 10),
        EncodeCache.key_for(PAYLOAD, CodecID.MP3_LIKE, PARAMS_A, 10),
        EncodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_B, 10),
        EncodeCache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 3),
    }
    assert len(keys) == 4  # same bytes, four distinct entries


def test_cross_quality_entries_never_collide_in_cache():
    cache = EncodeCache(max_entries=8)
    k10 = cache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    k3 = cache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 3)
    cache.put(k10, EncodedBlock(wire=b"ten"))
    cache.put(k3, EncodedBlock(wire=b"three"))
    assert cache.get(k10).wire == b"ten"
    assert cache.get(k3).wire == b"three"


# -- bounds & stats -----------------------------------------------------------


def test_eviction_keeps_cache_bounded():
    cache = EncodeCache(max_entries=4)
    for i in range(10):
        key = cache.key_for(bytes([i]) * 8, CodecID.VORBIS_LIKE,
                            PARAMS_A, 10)
        cache.put(key, EncodedBlock(wire=bytes([i])))
    assert len(cache) == 4
    assert cache.stats.evictions == 6
    for i in range(6):
        key = cache.key_for(bytes([i]) * 8, CodecID.VORBIS_LIKE,
                            PARAMS_A, 10)
        assert cache.get(key) is None
    for i in range(6, 10):
        key = cache.key_for(bytes([i]) * 8, CodecID.VORBIS_LIKE,
                            PARAMS_A, 10)
        assert cache.get(key) is not None


def test_lru_recency_protects_hot_entries():
    cache = EncodeCache(max_entries=2)
    k0 = cache.key_for(b"0" * 8, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    k1 = cache.key_for(b"1" * 8, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    k2 = cache.key_for(b"2" * 8, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    cache.put(k0, EncodedBlock(b"0"))
    cache.put(k1, EncodedBlock(b"1"))
    assert cache.get(k0) is not None       # touch k0: k1 becomes LRU
    cache.put(k2, EncodedBlock(b"2"))
    assert cache.get(k0) is not None
    assert cache.get(k1) is None


def test_stats_and_telemetry_counters_track():
    tel = Telemetry()
    cache = EncodeCache(max_entries=4, telemetry=tel, name="t")
    key = cache.key_for(PAYLOAD, CodecID.VORBIS_LIKE, PARAMS_A, 10)
    assert cache.get(key) is None
    cache.put(key, EncodedBlock(b"x"))
    assert cache.get(key) is not None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5
    assert tel.total("codec.encode_cache.hits") == 1
    assert tel.total("codec.encode_cache.misses") == 1


def test_invalid_bound_rejected():
    with pytest.raises(ValueError):
        EncodeCache(max_entries=0)


# -- origin wiring ------------------------------------------------------------


def test_same_source_channels_hit_the_cache():
    system = EthernetSpeakerSystem(telemetry=True, shared_encode=True)
    pcm = music(1.0, 44100, seed=7)
    for i in range(2):
        producer = system.add_producer(
            name=f"origin{i}",
            slave_path=f"/dev/vads{i}",
            master_path=f"/dev/vadm{i}",
        )
        channel = system.add_channel(f"ch{i}", params=CD_QUALITY,
                                     compress="always")
        system.add_rebroadcaster(
            producer, channel, master_path=f"/dev/vadm{i}"
        )
        system.add_speaker(channel=channel)
        system.play_pcm(producer, pcm, CD_QUALITY,
                        slave_path=f"/dev/vads{i}")
    system.run(until=4.0)
    stats = system.encode_cache.stats
    report = system.pipeline_report()
    # channel 0 encodes each block (miss), channel 1 reuses it (hit)
    assert stats.misses > 0
    assert stats.hits == stats.misses
    assert report.encode_cache_hits == stats.hits
    assert report.encode_cache_misses == stats.misses
    assert report.encode_cache_hit_rate == pytest.approx(0.5)
    assert "encode cache hits" in report.summary()
    # both channels still delivered and played everything they sent
    for ch in report.channels:
        assert ch.played > 0
    assert report.conservation_ok


def test_disabled_cache_reports_zero():
    system = EthernetSpeakerSystem(telemetry=True, shared_encode=False)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=CD_QUALITY,
                                 compress="always")
    system.add_rebroadcaster(producer, channel)
    system.add_speaker(channel=channel)
    system.play_pcm(producer, music(0.5, 44100, seed=7), CD_QUALITY)
    system.run(until=3.0)
    report = system.pipeline_report()
    assert system.encode_cache is None
    assert report.encode_cache_hits == 0
    assert report.encode_cache_misses == 0
    assert "encode cache hits" not in report.summary()


def test_raw_channel_bypasses_cache():
    system = EthernetSpeakerSystem(telemetry=True, shared_encode=True)
    producer = system.add_producer()
    channel = system.add_channel("raw", params=CD_QUALITY,
                                 compress="never")
    system.add_rebroadcaster(producer, channel)
    system.add_speaker(channel=channel)
    system.play_pcm(producer, music(0.5, 44100, seed=7), CD_QUALITY)
    system.run(until=3.0)
    stats = system.encode_cache.stats
    assert stats.hits == 0 and stats.misses == 0


def test_synthetic_estimate_bypasses_cache():
    system = EthernetSpeakerSystem(telemetry=True, shared_encode=True)
    producer = system.add_producer()
    channel = system.add_channel("est", params=CD_QUALITY,
                                 compress="always")
    system.add_rebroadcaster(producer, channel, real_codec=False)
    system.add_speaker(channel=channel)
    system.play_pcm(producer, music(0.5, 44100, seed=7), CD_QUALITY)
    system.run(until=3.0)
    stats = system.encode_cache.stats
    assert stats.hits == 0 and stats.misses == 0


def test_cached_wire_bytes_identical_to_uncached():
    def run(shared_encode):
        system = EthernetSpeakerSystem(telemetry=False,
                                       shared_encode=shared_encode)
        producer = system.add_producer()
        channel = system.add_channel("hall", params=CD_QUALITY,
                                     compress="always")
        system.add_rebroadcaster(producer, channel)
        node = system.add_speaker(channel=channel)
        pcm = music(0.4, 44100, seed=7)
        # play the same content twice so the cache actually hits
        system.play_pcm(
            producer, np.concatenate([pcm, pcm], axis=0), CD_QUALITY
        )
        system.run(until=4.0)
        return node

    on, off = run(True), run(False)
    assert on.stats.played == off.stats.played > 0
    assert len(on.sink.records) == len(off.sink.records)
    for r1, r2 in zip(on.sink.records, off.sink.records):
        assert r1[0] == r2[0]
        assert bytes(r1[1]) == bytes(r2[1])
