"""ADPCM and Mp3Like codecs; tandem-coding behaviour; cost model."""

import numpy as np
import pytest

from repro.audio import music, sine, snr_db, speech_like
from repro.codec import (
    AdpcmCodec,
    CodecID,
    DEFAULT_COSTS,
    Mp3LikeCodec,
    Mp3LikeFile,
    VorbisLikeCodec,
)
from repro.codec.cost import estimated_ratio


# -- ADPCM ------------------------------------------------------------------------


def test_adpcm_round_trip_tone():
    x = sine(440, 0.25, 8000, amplitude=0.5)
    codec = AdpcmCodec()
    out = codec.decode_block(codec.encode_block(x))
    assert out.shape == (len(x), 1)
    assert snr_db(x, out[:, 0]) > 20


def test_adpcm_is_roughly_4_to_1():
    x = speech_like(0.5, 8000, seed=2)
    blob = AdpcmCodec().encode_block(x)
    raw16 = len(x) * 2
    assert raw16 / len(blob) > 3.5


def test_adpcm_stereo():
    x = np.stack([sine(300, 0.1, 8000), sine(500, 0.1, 8000)], axis=1)
    out = AdpcmCodec().decode_block(AdpcmCodec().encode_block(x))
    assert out.shape == x.shape
    assert snr_db(x[:, 1], out[:, 1]) > 15


def test_adpcm_odd_sample_count():
    x = sine(440, 101 / 8000, 8000)
    out = AdpcmCodec().decode_block(AdpcmCodec().encode_block(x))
    assert out.shape == (101, 1)


def test_adpcm_rejects_foreign_block():
    with pytest.raises(ValueError):
        AdpcmCodec().decode_block(VorbisLikeCodec().encode_block(sine(440, 0.01)))


# -- Mp3Like --------------------------------------------------------------------------


def test_mp3like_round_trip():
    x = music(1.0, 44100, seed=4)
    codec = Mp3LikeCodec(bitrate_kbps=256)
    out = codec.decode_block(codec.encode_block(x))
    assert out.shape == (len(x), 1)
    assert snr_db(x, out[:, 0]) > 15


def test_mp3like_higher_bitrate_higher_fidelity():
    x = music(1.0, 44100, seed=5)
    snrs = []
    for kbps in (96, 192, 320):
        codec = Mp3LikeCodec(bitrate_kbps=kbps)
        out = codec.decode_block(codec.encode_block(x))
        snrs.append(snr_db(x, out[:, 0]))
    assert snrs[0] < snrs[1] < snrs[2]


def test_mp3like_size_tracks_bitrate():
    x = music(1.0, 44100, seed=5)
    small = len(Mp3LikeCodec(96).encode_block(x))
    big = len(Mp3LikeCodec(320).encode_block(x))
    assert small < big


def test_mp3like_rejects_unknown_bitrate():
    with pytest.raises(ValueError):
        Mp3LikeCodec(bitrate_kbps=200)


def test_mp3like_file_round_trip():
    x = music(2.0, 44100, seed=6)
    f = Mp3LikeFile.encode(x, 44100, bitrate_kbps=192)
    restored = Mp3LikeFile.from_bytes(f.to_bytes())
    assert restored.sample_rate == 44100
    assert restored.bitrate_kbps == 192
    assert len(restored.blocks) == len(f.blocks)
    decoded = restored.decode_all()
    assert decoded.shape == (len(x), 1)
    assert snr_db(x, decoded[:, 0]) > 15


def test_mp3like_file_rejects_garbage():
    with pytest.raises(ValueError):
        Mp3LikeFile.from_bytes(b"RIFFnope" + b"\x00" * 20)


# -- tandem coding (§2.2) ------------------------------------------------------------


def test_tandem_loss_bounded_at_max_quality():
    """MP3-like then Vorbis-like at q=10: the second codec should not make
    things much worse — 'the best one can hope for would be that the audio
    quality would not get any worse'."""
    x = music(1.5, 44100, seed=10)
    mp3 = Mp3LikeCodec(192)
    stage1 = mp3.decode_block(mp3.encode_block(x))[:, 0]
    vorb = VorbisLikeCodec(quality=10)
    stage2 = vorb.decode_block(vorb.encode_block(stage1))[:, 0]
    snr_one = snr_db(x, stage1)
    snr_two = snr_db(x, stage2)
    assert snr_two > snr_one - 3.0  # within 3 dB of single-codec quality


def test_tandem_loss_severe_at_low_quality():
    """At a low quality index the second lossy stage visibly compounds."""
    x = music(1.5, 44100, seed=10)
    mp3 = Mp3LikeCodec(192)
    stage1 = mp3.decode_block(mp3.encode_block(x))[:, 0]
    vorb = VorbisLikeCodec(quality=2)
    stage2 = vorb.decode_block(vorb.encode_block(stage1))[:, 0]
    assert snr_db(x, stage2) < snr_db(x, stage1) - 3.0


# -- cost model ---------------------------------------------------------------------------


def test_cost_model_encode_grows_with_quality():
    model = DEFAULT_COSTS[CodecID.VORBIS_LIKE]
    assert model.encode_cycles(1000, 10) > model.encode_cycles(1000, 0)


def test_cost_model_decode_cheaper_than_encode():
    for codec_id in (CodecID.VORBIS_LIKE, CodecID.MP3_LIKE, CodecID.ADPCM):
        model = DEFAULT_COSTS[codec_id]
        assert model.decode_cycles(1000) < model.encode_cycles(1000)


def test_raw_cost_is_trivial():
    raw = DEFAULT_COSTS[CodecID.RAW]
    vorb = DEFAULT_COSTS[CodecID.VORBIS_LIKE]
    assert raw.encode_cycles(1000) < 0.05 * vorb.encode_cycles(1000, 10)


def test_estimated_ratio_matches_measured_vorbislike():
    """The simulated-payload ratio should track the real encoder within a
    factor usable for bandwidth experiments."""
    x = music(1.5, 44100, seed=11)
    stereo = np.stack([x, music(1.5, 44100, seed=12)], axis=1)
    for quality in (4, 10):
        measured = len(
            VorbisLikeCodec(quality=quality).encode_block(stereo)
        ) / (len(x) * 4)
        estimate = estimated_ratio(CodecID.VORBIS_LIKE, quality)
        assert 0.4 * measured < estimate < 2.5 * measured


def test_estimated_ratio_known_values():
    assert estimated_ratio(CodecID.RAW) == 1.0
    assert estimated_ratio(CodecID.ADPCM) < 0.3
    with pytest.raises(ValueError):
        estimated_ratio(99)
