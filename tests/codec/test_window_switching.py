"""Transient-adaptive window switching (pre-echo control)."""

import numpy as np
import pytest

from repro.audio import music, segmental_snr_db, sine
from repro.codec import VorbisLikeCodec


def castanet(n=4096, click_at=3000, rate=44100):
    """Silence, then a sharp decaying attack — the classic pre-echo killer."""
    x = np.zeros(n)
    t = np.arange(n - click_at) / rate
    x[click_at:] = 0.9 * np.exp(-t * 400) * np.sin(2 * np.pi * 3000 * t)
    return x, click_at


def pre_echo_rms(codec, x, click_at):
    out = codec.decode_block(codec.encode_block(x))[:, 0]
    err = out - x
    return float(np.sqrt(np.mean(err[click_at - 600 : click_at - 50] ** 2)))


def test_switching_reduces_pre_echo():
    x, click_at = castanet()
    long_codec = VorbisLikeCodec(quality=8, window_switching=False)
    switching = VorbisLikeCodec(quality=8, window_switching=True)
    assert pre_echo_rms(switching, x, click_at) < 0.5 * pre_echo_rms(
        long_codec, x, click_at
    )


def test_transient_block_uses_short_frames():
    x, _ = castanet()
    codec = VorbisLikeCodec(quality=8, frame_size=512,
                            window_switching=True)
    blob = codec.encode_block(x)
    log2n = blob[3]
    assert (1 << log2n) == 128  # 512 // 4


def test_steady_block_keeps_long_frames():
    codec = VorbisLikeCodec(quality=8, window_switching=True)
    blob = codec.encode_block(sine(440, 0.1, 44100))
    assert (1 << blob[3]) == 512


def test_switching_is_transparent_to_any_decoder():
    """The frame size travels in the packet header; a default decoder
    handles a mixed stream of long and short blocks."""
    x, _ = castanet()
    encoder = VorbisLikeCodec(quality=8, window_switching=True)
    decoder = VorbisLikeCodec()  # plain, no switching configured
    steady = sine(440, 0.1, 44100)
    for block in (x, steady):
        out = decoder.decode_block(encoder.encode_block(block))
        assert out.shape == (len(block), 1)


def test_music_quality_not_hurt_by_switching():
    clip = music(1.0, 44100, seed=55)
    plain = VorbisLikeCodec(quality=8)
    switching = VorbisLikeCodec(quality=8, window_switching=True)
    snr_plain = segmental_snr_db(
        clip, plain.decode_block(plain.encode_block(clip))[:, 0]
    )
    snr_switch = segmental_snr_db(
        clip, switching.decode_block(switching.encode_block(clip))[:, 0]
    )
    assert snr_switch > snr_plain - 3.0


def test_tiny_blocks_do_not_crash_the_detector():
    codec = VorbisLikeCodec(quality=8, window_switching=True)
    for n in (1, 17, 100):
        x = np.zeros(n)
        x[n // 2] = 0.9
        out = codec.decode_block(codec.encode_block(x))
        assert out.shape == (n, 1)
