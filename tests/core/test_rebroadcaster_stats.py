"""Regression tests for RebroadcasterStats edge reporting.

``compression_ratio`` used to report 1.0 whenever ``raw_bytes == 0``,
which made a fully-suspended channel (every block withheld under §4.3
MSNIP) indistinguishable from a healthy uncompressed one in reports and
dashboards.  The contract now:

* nothing ingested            -> 1.0 (nothing was altered)
* everything suspended        -> 0.0 (nothing reached the wire)
* some blocks sent            -> sent / raw over *sent* blocks only;
  suspended traffic is accounted separately in ``suspended_bytes``.
"""

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.core.rebroadcaster import RebroadcasterStats

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


# -- unit: the dataclass -----------------------------------------------------


def test_ratio_is_one_before_any_traffic():
    assert RebroadcasterStats().compression_ratio == 1.0


def test_ratio_is_zero_when_fully_suspended():
    stats = RebroadcasterStats(suspended_blocks=10, suspended_bytes=10_000)
    assert stats.raw_bytes == 0
    assert stats.compression_ratio == 0.0


def test_ratio_over_sent_blocks_only():
    stats = RebroadcasterStats(
        data_sent=4, raw_bytes=4000, sent_payload_bytes=1000,
        suspended_blocks=6, suspended_bytes=6000,
    )
    # suspended bytes must not dilute the ratio of what actually went out
    assert stats.compression_ratio == 0.25


def test_ratio_uncompressed_channel():
    stats = RebroadcasterStats(data_sent=2, raw_bytes=2000,
                               sent_payload_bytes=2000)
    assert stats.compression_ratio == 1.0


# -- integration: suspended-block accounting ---------------------------------


def _suspended_run(suspend_at: float):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("susp", params=PARAMS, compress="never")
    rb = system.add_rebroadcaster(producer, channel, control_interval=0.5)
    system.add_speaker(channel=channel)
    if suspend_at == 0.0:
        rb.suspend()
    else:
        system.sim.schedule(suspend_at, rb.suspend)
    system.play_pcm(producer, sine(440, 4.0, 8000), PARAMS)
    system.run(until=8.0)
    return system, rb


def test_fully_suspended_channel_reports_zero_ratio():
    system, rb = _suspended_run(suspend_at=0.0)
    assert rb.stats.suspended_blocks > 0
    assert rb.stats.data_sent == 0
    assert rb.stats.suspended_bytes == PARAMS.bytes_for(4.0)
    assert rb.stats.compression_ratio == 0.0
    # the pipeline report must carry the same verdict
    (ch,) = system.pipeline_report().channels
    assert ch.compression_ratio == 0.0
    assert ch.suspended_blocks == rb.stats.suspended_blocks


def test_partial_suspension_splits_accounting_exactly():
    system, rb = _suspended_run(suspend_at=2.0)
    stats = rb.stats
    assert stats.data_sent > 0 and stats.suspended_blocks > 0
    # every ingested byte is either sent-side raw or suspended: the VAD
    # hands the rebroadcaster the whole 4 s stream either way
    assert stats.raw_bytes + stats.suspended_bytes == PARAMS.bytes_for(4.0)
    assert stats.compression_ratio == 1.0  # raw channel, sent blocks only
    (ch,) = system.pipeline_report().channels
    assert ch.compression_ratio == 1.0
