"""Property tests: the vectorized seq/dup window is the scalar one, N-wide.

``VectorSeqWindows`` re-implements ``EthernetSpeaker``'s per-stream
triple — the 128-entry recent-seq ring (``_recent_seqs`` +
``_recent_order``) and ``_last_seq`` — as numpy rows so a cohort can
advance thousands of members per delivered frame.  A spilling member's
scalar carry (``extract``) must reproduce the deque a per-object speaker
would have held, byte for byte, across u32 wraparound, window eviction,
and the epoch-bump reset.

The reference below is a literal transcription of the scalar code.
Random drives use hypothesis when it is installed and fall back to
seeded sweeps otherwise, so the property holds in either environment;
the deterministic cases mirror ``tests/core/test_seq_window.py``.
"""

import random
from collections import deque

import numpy as np

from repro.core.cohort import VectorSeqWindows
from repro.core.protocol import SEQ_MOD
from repro.core.speaker import EthernetSpeaker

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI has hypothesis
    HAVE_HYPOTHESIS = False

WINDOW = EthernetSpeaker.RECENT_SEQ_WINDOW


class ScalarWindow:
    """The exact deque + set + last_seq triple ``EthernetSpeaker`` keeps
    (see ``_remember_seq`` / ``_reset_stream_state``)."""

    def __init__(self):
        self.recent = set()
        self.order = deque()
        self.last = None

    def accept(self, seq):
        self.last = seq
        self.recent.add(seq)
        self.order.append(seq)
        if len(self.order) > WINDOW:
            self.recent.discard(self.order.popleft())

    def reset(self):
        self.recent.clear()
        self.order.clear()
        self.last = None


def assert_rows_match(vec, refs):
    for i, ref in enumerate(refs):
        last, order = vec.extract(i)
        assert last == ref.last, f"row {i} last_seq"
        assert order == list(ref.order), f"row {i} ring order"
        # membership probes: everything in the window is seen, a seq
        # right outside it is not
        for seq in list(ref.order)[:: max(1, len(ref.order) // 8)]:
            assert bool(vec.seen(np.array([i]), seq)[0])
        probe = (ref.last + 7) % SEQ_MOD if ref.last is not None else 13
        assert bool(vec.seen(np.array([i]), probe)[0]) == (probe in ref.recent)


def drive(ops, members):
    """Apply (kind, row_mask, seq) ops to both implementations and
    compare after every step."""
    vec = VectorSeqWindows(members, WINDOW)
    refs = [ScalarWindow() for _ in range(members)]
    for kind, mask, seq in ops:
        rows = np.asarray(mask, dtype=bool)
        if kind == "accept":
            vec.accept(rows, seq)
            for i in range(members):
                if mask[i]:
                    refs[i].accept(seq)
        else:
            vec.reset(rows)
            for i in range(members):
                if mask[i]:
                    refs[i].reset()
    assert_rows_match(vec, refs)
    return vec, refs


def random_ops(rng, members, n_ops):
    """A drive mixing in-order runs, wraparound neighborhoods, and
    occasional epoch resets on row subsets."""
    ops = []
    seq = rng.choice([0, 1, SEQ_MOD - WINDOW - 3, SEQ_MOD - 2])
    for _ in range(n_ops):
        mask = [rng.random() < 0.8 for _ in range(members)]
        if not any(mask):
            mask[rng.randrange(members)] = True
        if rng.random() < 0.06:
            ops.append(("reset", mask, 0))
            continue
        ops.append(("accept", mask, seq))
        seq = (seq + rng.choice([1, 1, 1, 2, 5])) % SEQ_MOD
    return ops


def test_in_order_run_matches_scalar():
    ops = [("accept", [True] * 4, s) for s in range(1, 2 * WINDOW)]
    drive(ops, members=4)


def test_wraparound_is_one_continuous_stream():
    seqs = [SEQ_MOD - 2, SEQ_MOD - 1, 0, 1, 2]
    vec, refs = drive([("accept", [True] * 3, s) for s in seqs], members=3)
    rows = np.arange(3)
    for s in seqs:
        assert vec.seen(rows, s).all()
    assert vec.extract(0) == (2, seqs)


def test_eviction_forgets_exactly_the_oldest():
    n = WINDOW + 5
    ops = [("accept", [True], s + 1) for s in range(n)]
    vec, refs = drive(ops, members=1)
    row = np.array([0])
    for evicted in range(1, 6):
        assert not vec.seen(row, evicted)[0]
    for kept in range(6, n + 1):
        assert vec.seen(row, kept)[0]


def test_epoch_reset_clears_only_selected_rows():
    ops = [("accept", [True, True], s) for s in (5, 6, 7)]
    ops.append(("reset", [True, False], 0))
    ops += [("accept", [True, True], s) for s in (5, 6)]
    vec, refs = drive(ops, members=2)
    assert vec.extract(0) == (6, [5, 6])
    assert vec.extract(1) == (6, [5, 6, 7, 5, 6])


def test_seeded_sweeps_match_scalar():
    for seed in range(8):
        rng = random.Random(seed)
        members = rng.randrange(1, 7)
        drive(random_ops(rng, members, rng.randrange(20, 400)), members)


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), members=st.integers(1, 6),
           n_ops=st.integers(1, 300))
    def test_property_vector_equals_scalar(seed, members, n_ops):
        rng = random.Random(seed)
        drive(random_ops(rng, members, n_ops), members)
