"""Differential harness: the vectorized origin must be bit-identical to
the scalar origin it replaces.

Every scenario builds the same multi-channel station twice on the same
seeds — once with ``batched_encode=True`` (whole-block numpy kernels)
and once with ``batched_encode=False`` (the per-frame/per-band scalar
reference loops) — and asserts that every speaker's playout
(``play_log``, ``write_offsets``), every ``SpeakerStats`` counter, and
the channel/pipeline ledgers agree exactly, clean and under GE faults.

The encode cache gets the same treatment: enabling it may only change
host-side work (its own hit/miss counters), never a wire byte, a played
sample, or the conservation ledger — cache counters are itemised
out-of-band of the conservation bound.
"""

import dataclasses

import pytest

from repro.audio import music
from repro.audio.params import CD_QUALITY
from repro.core import EthernetSpeakerSystem

CHANNELS = 2
SPEAKERS = 2
STREAM_SECONDS = 1.5
HORIZON = 7.0

#: PipelineReport fields that describe simulated reality (must match);
#: host-side bookkeeping (encode/decode cache counters, batch histograms)
#: may differ by construction and is deliberately absent
PIPELINE_FIELDS = (
    "underruns", "silence_seconds", "wire_drops", "wire_losses",
    "injected_losses", "injected_duplicates", "injected_reordered",
    "injected_corrupted", "injected_pending", "failovers", "standdowns",
    "epoch_resyncs", "rejoins", "max_rejoin_gap",
)


def build(scenario, seed, *, batched_encode=True, shared_encode=True,
          channels=CHANNELS, speakers=SPEAKERS,
          stream_seconds=STREAM_SECONDS, horizon=HORIZON):
    system = EthernetSpeakerSystem(
        seed=seed,
        telemetry=True,
        batched_encode=batched_encode,
        shared_encode=shared_encode,
    )
    pcm = music(stream_seconds, 44100, seed=seed)
    nodes = []
    for i in range(channels):
        producer = system.add_producer(
            name=f"origin{i}",
            slave_path=f"/dev/vads{i}",
            master_path=f"/dev/vadm{i}",
        )
        channel = system.add_channel(f"ch{i}", params=CD_QUALITY,
                                     compress="always")
        system.add_rebroadcaster(producer, channel, control_interval=0.5,
                                 master_path=f"/dev/vadm{i}")
        for _ in range(speakers):
            nodes.append(system.add_speaker(channel=channel))
        system.play_pcm(producer, pcm, CD_QUALITY,
                        slave_path=f"/dev/vads{i}")
    if scenario == "ge-loss-dup-reorder":
        system.inject_faults(loss_rate=0.05, burst_length=3,
                             duplicate_rate=0.02, reorder_rate=0.03,
                             reorder_window=4, seed=seed + 100)
    elif scenario == "corruption":
        system.inject_faults(corrupt_rate=0.04, seed=seed + 100)
    system.run(until=horizon)
    return system, nodes


def assert_fleets_identical(nodes_a, nodes_b):
    assert len(nodes_a) == len(nodes_b)
    for i, (na, nb) in enumerate(zip(nodes_a, nodes_b)):
        a, b = na.speaker.stats, nb.speaker.stats
        assert a.play_log == b.play_log, f"speaker {i} playout differs"
        assert a.write_offsets == b.write_offsets, \
            f"speaker {i} device offsets differ"
        for f in dataclasses.fields(a):
            assert getattr(a, f.name) == getattr(b, f.name), \
                f"speaker {i} stats.{f.name}: " \
                f"{getattr(a, f.name)!r} != {getattr(b, f.name)!r}"


def assert_ledgers_identical(report_a, report_b):
    assert len(report_a.channels) == len(report_b.channels)
    for ca, cb in zip(report_a.channels, report_b.channels):
        assert ca == cb, f"channel ledger differs:\n{ca}\n{cb}"
    for f in PIPELINE_FIELDS:
        assert getattr(report_a, f) == getattr(report_b, f), \
            f"pipeline.{f}: {getattr(report_a, f)!r} != " \
            f"{getattr(report_b, f)!r}"
    assert report_a.conservation_residual == report_b.conservation_residual
    assert report_a.conservation_ok and report_b.conservation_ok


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize("scenario", [
    "clean", "ge-loss-dup-reorder", "corruption",
])
def test_batched_origin_matches_scalar_origin(scenario, seed):
    sys_fast, nodes_fast = build(scenario, seed, batched_encode=True)
    sys_slow, nodes_slow = build(scenario, seed, batched_encode=False)
    assert nodes_fast[0].speaker.stats.played > 0
    assert_fleets_identical(nodes_fast, nodes_slow)
    assert_ledgers_identical(sys_fast.pipeline_report(),
                             sys_slow.pipeline_report())


@pytest.mark.parametrize("seed", [7, 23])
def test_encode_cache_changes_nothing_but_its_counters(seed):
    sys_on, nodes_on = build("ge-loss-dup-reorder", seed,
                             shared_encode=True)
    sys_off, nodes_off = build("ge-loss-dup-reorder", seed,
                               shared_encode=False)
    # both channels play the same source, so the second one hits
    assert sys_on.encode_cache.stats.hits > 0
    assert sys_off.encode_cache is None
    assert_fleets_identical(nodes_on, nodes_off)
    report_on, report_off = (sys_on.pipeline_report(),
                             sys_off.pipeline_report())
    assert_ledgers_identical(report_on, report_off)
    # the counters themselves are reported out-of-band
    assert report_on.encode_cache_hits > 0
    assert report_off.encode_cache_hits == 0


def test_encode_batch_histogram_reported():
    system, _ = build("clean", seed=7)
    report = system.pipeline_report()
    # only real-encoder invocations are observed; cache hits are not,
    # so the histogram count equals the cache misses
    assert report.encode_batch, "origin.encode_batch never observed"
    assert report.encode_batch["count"] == report.encode_cache_misses > 0
    assert "origin batch (frames)" in report.summary()


def test_conservation_closes_on_32_channel_station():
    """The satellite gate: encode-cache counters stay out-of-band of the
    conservation bound even on a full-width origin sweep."""
    system, nodes = build("clean", seed=7, channels=32, speakers=1,
                          stream_seconds=0.5, horizon=4.0)
    report = system.pipeline_report()
    assert len(report.channels) == 32
    for ch in report.channels:
        assert ch.played > 0, f"{ch.name} played nothing"
        assert ch.conservation_residual == 0
    assert report.conservation_ok
    # 32 channels of one source: 31 of 32 encodes were cache hits
    assert report.encode_cache_hits > 0
    assert report.encode_cache_hit_rate == pytest.approx(31 / 32)
