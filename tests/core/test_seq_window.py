"""The seq-aware playout window under wraparound and epoch changes.

``seq`` is a wrapping u32 and the duplicate window is a bounded
128-entry set, so three things have to stay true at the edges:

* a stream crossing ``2**32 - 1 -> 0`` is *one* stream — no spurious
  gap, no reorder drops;
* the window still tells exact duplicates from stale reordered copies
  after the wrap;
* an epoch change opens a fresh sequence space: stragglers from the old
  producer incarnation must not be confused with (or poison) the new
  one, and the new incarnation may legitimately reuse the very same
  sequence numbers.

Plus the failover regression: a new-epoch control with a wildly shifted
schedule re-anchors exactly once, even though the drift debounce would
have parked or double-triggered on the same shift within an epoch.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.codec.base import CodecID
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import SEQ_MOD, ControlPacket, DataPacket
from repro.kernel.machine import Machine

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
BLOCK_SEC = 0.02
BLOCK = LOW.bytes_for(BLOCK_SEC)


def build(rx_buffer_packets=256):
    system = EthernetSpeakerSystem()
    channel = system.add_channel("ch", params=LOW, compress="never")
    node = system.add_speaker(
        channel=channel, rx_buffer_packets=rx_buffer_packets
    )
    sender = Machine(system.sim, "tx", cpu_freq_hz=500e6)
    sender.attach_network(system.lan, "10.9.0.1")
    sock = sender.net.socket()

    def send(delay, packet):
        system.sim.schedule(
            delay, sock.sendto, packet.encode(),
            (channel.group_ip, channel.port),
        )

    return system, channel, node, send


def control(channel, seq, wall, pos, epoch=0):
    return ControlPacket(
        channel_id=channel.channel_id, seq=seq, wall_clock=wall,
        stream_pos=pos, params=LOW, codec_id=CodecID.RAW,
        quality=10, name=channel.name, epoch=epoch,
    )


def data(channel, seq, play_at, epoch=0, fill=0x11):
    return DataPacket(
        channel_id=channel.channel_id, seq=seq, play_at=play_at,
        payload=bytes([fill]) * BLOCK, codec_id=CodecID.RAW,
        synthetic=False, pcm_bytes=BLOCK, epoch=epoch,
    )


def test_seq_wraparound_is_one_continuous_stream():
    system, channel, node, send = build()
    send(0.05, control(channel, 1, 0.05, 0.0))
    seqs = [SEQ_MOD - 2, SEQ_MOD - 1, 0, 1, 2]
    for k, seq in enumerate(seqs):
        send(0.1 + k * BLOCK_SEC, data(channel, seq, k * BLOCK_SEC))
    system.run(until=3.0)
    st = node.stats
    assert st.played == 5
    assert st.seq_gaps == 0
    assert st.reorder_dropped == 0
    assert st.dup_dropped == 0


def test_window_classifies_dups_and_stale_across_wrap():
    system, channel, node, send = build()
    send(0.05, control(channel, 1, 0.05, 0.0))
    seqs = [SEQ_MOD - 2, SEQ_MOD - 1, 0, 1, 2]
    for k, seq in enumerate(seqs):
        send(0.1 + k * BLOCK_SEC, data(channel, seq, k * BLOCK_SEC))
    # re-deliveries from both sides of the wrap: all in the window
    send(0.5, data(channel, SEQ_MOD - 1, 1 * BLOCK_SEC))
    send(0.52, data(channel, 1, 3 * BLOCK_SEC))
    system.run(until=3.0)
    st = node.stats
    assert st.played == 5
    assert st.dup_dropped == 2
    assert st.reorder_dropped == 0


def test_window_eviction_demotes_ancient_dup_to_stale():
    # the window keeps the last 128 accepted seqs: a copy older than
    # that can no longer be proven a duplicate and is dropped as stale
    window = 128
    n = window + 5
    system, channel, node, send = build(rx_buffer_packets=2 * n)
    send(0.05, control(channel, 1, 0.05, 0.0))
    for k in range(n):
        send(0.1 + k * BLOCK_SEC, data(channel, k + 1, k * BLOCK_SEC))
    t_after = 0.1 + n * BLOCK_SEC + 0.2
    send(t_after, data(channel, 1, 0.0))          # evicted: stale
    send(t_after + 0.02, data(channel, n, (n - 1) * BLOCK_SEC))  # dup
    system.run(until=10.0)
    st = node.stats
    assert st.played == n
    assert st.reorder_dropped == 1
    assert st.dup_dropped == 1


def test_old_epoch_stragglers_cannot_poison_new_epoch():
    system, channel, node, send = build()
    # epoch 0: anchor + five blocks
    send(0.05, control(channel, 1, 0.05, 0.0, epoch=0))
    for k in range(5):
        send(0.1 + k * BLOCK_SEC,
             data(channel, k + 1, k * BLOCK_SEC, epoch=0))
    # failover: epoch 1 anchors a new schedule...
    send(1.0, control(channel, 1, 1.0, 1.0, epoch=1))
    # ...while stragglers from the dead epoch-0 producer are still on
    # the wire, *including seq numbers the new epoch will reuse*
    send(1.05, data(channel, 3, 2 * BLOCK_SEC, epoch=0, fill=0x33))
    send(1.06, data(channel, 1, 0.0, epoch=0, fill=0x33))
    # epoch 1 legitimately reuses seqs 1..5 with its own schedule
    for k in range(5):
        send(1.1 + k * BLOCK_SEC,
             data(channel, k + 1, 1.0 + k * BLOCK_SEC, epoch=1))
    system.run(until=5.0)
    st = node.stats
    assert st.epoch_resyncs == 1
    assert st.epoch_dropped == 2      # the stragglers, classified
    assert st.dup_dropped == 0        # NOT mistaken for duplicates
    assert st.reorder_dropped == 0    # NOT mistaken for stale copies
    assert st.played == 10            # both incarnations in full


def test_stale_epoch_control_does_not_reanchor():
    system, channel, node, send = build()
    send(0.05, control(channel, 1, 0.05, 0.0, epoch=1))
    for k in range(3):
        send(0.1 + k * BLOCK_SEC,
             data(channel, k + 1, k * BLOCK_SEC, epoch=1))
    # a delayed control from the long-dead epoch 0, with a schedule that
    # would tear the speaker off the live anchor if obeyed
    send(0.5, control(channel, 9, 0.5, 40.0, epoch=0))
    send(0.6, data(channel, 4, 0.25, epoch=1))
    system.run(until=3.0)
    st = node.stats
    assert st.stale_controls == 1
    assert st.resyncs == 0
    assert st.played == 4


def test_epoch_shift_reanchors_exactly_once():
    """Satellite regression: a large schedule shift delivered *with* an
    epoch bump (producer crash/restart) re-anchors immediately and
    exactly once — repeated controls from the new incarnation are
    schedule-consistent no-ops, not a second resync."""
    system, channel, node, send = build()
    send(0.05, control(channel, 1, 0.05, 0.0, epoch=0))
    for k in range(3):
        send(0.1 + k * BLOCK_SEC,
             data(channel, k + 1, k * BLOCK_SEC, epoch=0))
    # restart: epoch 1 with a schedule shifted far beyond the debounce
    # window (stream_pos jumps by 30 s) — two controls in a row, as a
    # real producer emits them at its control interval
    send(1.0, control(channel, 1, 1.0, 30.0, epoch=1))
    send(1.5, control(channel, 2, 1.5, 30.5, epoch=1))
    for k in range(3):
        send(1.1 + k * BLOCK_SEC,
             data(channel, k + 1, 30.0 + k * BLOCK_SEC, epoch=1))
    system.run(until=5.0)
    st = node.stats
    assert st.epoch_resyncs == 1
    assert st.resyncs == 1            # the epoch re-anchor, nothing else
    assert st.played == 6
    # exactly one measured outage gap spans the handover: from the last
    # epoch-0 commit (~0.5) to the first epoch-1 commit (its playout
    # deadline, ~1.4)
    assert len(st.rejoin_gaps) == 1
    assert 0.7 < st.rejoin_gaps[0] < 1.2
