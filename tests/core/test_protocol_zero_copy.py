"""The zero-copy parser must behave exactly like a copying one.

``parse_packet`` reads headers with ``unpack_from`` at absolute offsets and
hands back a ``DataPacket.payload`` that is a read-only ``memoryview`` into
the original datagram.  These tests pin that rewrite to a straightforward
reference implementation that slices copies everywhere: for any input —
valid, truncated at every byte, or randomly mutated — both parsers must
agree on the result, or both must reject with :class:`ProtocolError`.
"""

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams
from repro.codec import CodecID
from repro.core.protocol import (
    MAGIC,
    VERSION,
    ACMP_CONNECT_RX_COMMAND,
    ACMP_DISCONNECT_RX_RESPONSE,
    ADP_AVAILABLE,
    ADP_DEPARTING,
    AECP_COMMAND,
    AECP_RESPONSE,
    ENTITY_REBROADCASTER,
    ENTITY_SPEAKER,
    TYPE_ACMP,
    TYPE_ADP,
    TYPE_AECP,
    TYPE_ANNOUNCE,
    TYPE_CONTROL,
    TYPE_DATA,
    _ACMP,
    _ADP,
    _AECP,
    _ANNOUNCE_ENTRY,
    _ANNOUNCE_HEAD,
    _COMMON,
    _CONTROL,
    _DATA,
    AcmpPacket,
    AdpPacket,
    AecpPacket,
    AnnounceEntry,
    AnnouncePacket,
    ControlPacket,
    DataPacket,
    ProtocolError,
    parse_packet,
)

# -- reference implementation: the pre-optimisation copying parser ------------


def reference_parse(data):
    """Parse with plain slices and copies — the behavioural oracle."""
    data = bytes(data)
    if len(data) < _COMMON.size:
        raise ProtocolError("short packet")
    magic, version, ptype, channel_id, seq, epoch = _COMMON.unpack(
        data[: _COMMON.size]
    )
    if magic != MAGIC:
        raise ProtocolError("bad magic")
    if version != VERSION:
        raise ProtocolError("unsupported version")
    body = data[_COMMON.size :]
    try:
        if ptype == TYPE_CONTROL:
            return _ref_control(channel_id, seq, epoch, body)
        if ptype == TYPE_DATA:
            return _ref_data(channel_id, seq, epoch, body)
        if ptype == TYPE_ANNOUNCE:
            return _ref_announce(seq, epoch, body)
        if ptype == TYPE_ADP:
            return _ref_adp(seq, epoch, body)
        if ptype == TYPE_AECP:
            return _ref_aecp(seq, epoch, body)
        if ptype == TYPE_ACMP:
            return _ref_acmp(seq, epoch, body)
    except (struct.error, ValueError, IndexError) as err:
        raise ProtocolError(f"malformed packet: {err}") from None
    raise ProtocolError(f"unknown packet type {ptype}")


def _ref_control(channel_id, seq, epoch, body):
    (wall_clock, stream_pos, enc, rate, channels, codec, quality) = (
        _CONTROL.unpack(body[: _CONTROL.size])
    )
    rest = body[_CONTROL.size :]
    if not rest:
        raise ProtocolError("missing name length byte")
    name_len = rest[0]
    if len(rest) != 1 + name_len:
        raise ProtocolError("control packet length mismatch")
    return ControlPacket(
        channel_id=channel_id,
        seq=seq,
        wall_clock=wall_clock,
        stream_pos=stream_pos,
        params=AudioParams(AudioEncoding.from_wire_id(enc), rate, channels),
        codec_id=CodecID(codec),
        quality=quality,
        name=rest[1 : 1 + name_len].decode("utf-8"),
        epoch=epoch,
    )


def _ref_data(channel_id, seq, epoch, body):
    play_at, codec, flags, pcm_bytes = _DATA.unpack(body[: _DATA.size])
    return DataPacket(
        channel_id=channel_id,
        seq=seq,
        play_at=play_at,
        payload=body[_DATA.size :],
        codec_id=CodecID(codec),
        synthetic=bool(flags & 0x01),
        pcm_bytes=pcm_bytes,
        epoch=epoch,
    )


def _ref_announce(seq, epoch, body):
    valid_time, count = _ANNOUNCE_HEAD.unpack(body[: _ANNOUNCE_HEAD.size])
    offset = _ANNOUNCE_HEAD.size
    entries = []
    for _ in range(count):
        channel_id, ip_bytes, port, codec = _ANNOUNCE_ENTRY.unpack(
            body[offset : offset + _ANNOUNCE_ENTRY.size]
        )
        offset += _ANNOUNCE_ENTRY.size
        if offset >= len(body):
            raise ProtocolError("announce entry truncated")
        name_len = body[offset]
        if len(body) < offset + 1 + name_len:
            raise ProtocolError("announce entry truncated inside name")
        name = body[offset + 1 : offset + 1 + name_len].decode("utf-8")
        offset += 1 + name_len
        entries.append(
            AnnounceEntry(
                channel_id=channel_id,
                group_ip=".".join(str(b) for b in ip_bytes),
                port=port,
                codec_id=CodecID(codec),
                name=name,
            )
        )
    if offset != len(body):
        raise ProtocolError("announce packet length mismatch")
    return AnnouncePacket(
        seq=seq, entries=tuple(entries), epoch=epoch, valid_time=valid_time
    )


def _ref_adp(seq, epoch, body):
    (
        message_type, entity_kind, entity_id, valid_time,
        available_index, channel_id, mgmt_port,
    ) = _ADP.unpack(body[: _ADP.size])
    rest = body[_ADP.size :]
    if not rest:
        raise ProtocolError("missing name length byte")
    name_len = rest[0]
    if len(rest) != 1 + name_len:
        raise ProtocolError("adp packet length mismatch")
    return AdpPacket(
        entity_id=entity_id,
        message_type=message_type,
        entity_kind=entity_kind,
        valid_time=valid_time,
        available_index=available_index,
        channel_id=channel_id,
        mgmt_port=mgmt_port,
        name=rest[1 : 1 + name_len].decode("utf-8"),
        seq=seq,
        epoch=epoch,
    )


def _ref_aecp(seq, epoch, body):
    message_type, command, status, entity_id, payload_len = _AECP.unpack(
        body[: _AECP.size]
    )
    payload = body[_AECP.size :]
    if len(payload) != payload_len:
        raise ProtocolError("aecp packet length mismatch")
    return AecpPacket(
        entity_id=entity_id,
        message_type=message_type,
        command=command,
        status=status,
        payload=payload,
        seq=seq,
        epoch=epoch,
    )


def _ref_acmp(seq, epoch, body):
    if len(body) != _ACMP.size:
        raise ProtocolError("acmp packet length mismatch")
    (
        message_type, status, talker_entity_id, listener_entity_id,
        ip_bytes, port, channel_id,
    ) = _ACMP.unpack(body)
    return AcmpPacket(
        message_type=message_type,
        talker_entity_id=talker_entity_id,
        listener_entity_id=listener_entity_id,
        group_ip=".".join(str(b) for b in ip_bytes),
        port=port,
        channel_id=channel_id,
        status=status,
        seq=seq,
        epoch=epoch,
    )


def assert_parsers_agree(data):
    """Both parsers accept with equal results, or both reject."""
    try:
        expected = reference_parse(data)
    except ProtocolError:
        with pytest.raises(ProtocolError):
            parse_packet(data)
        return None
    got = parse_packet(data)
    assert got == expected
    return got


# -- corpus -------------------------------------------------------------------


def sample_packets():
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
    return [
        ControlPacket(3, 42, 123.456, 12.5, params,
                      CodecID.VORBIS_LIKE, 10, "lobby music"),
        ControlPacket(1, 0, 0.0, 0.0, params, CodecID.RAW, 0, ""),
        DataPacket(1, 7, 3.25, b"\x01\x02\x03" * 100,
                   CodecID.VORBIS_LIKE, False, 300),
        DataPacket(2, 8, 0.0, b"", CodecID.RAW, True, 4096),
        DataPacket(2, 2, 7.5, b"\x7f" * 32, CodecID.RAW, False, 32,
                   epoch=3),
        ControlPacket(2, 1, 9.0, 8.0, params, CodecID.RAW, 10, "standby",
                      epoch=65535),
        AnnouncePacket(5, (
            AnnounceEntry(1, "239.192.0.1", 5001, CodecID.VORBIS_LIKE,
                          "news"),
            AnnounceEntry(2, "239.192.0.2", 5002, CodecID.RAW, "lobby"),
        ), valid_time=2.5),
        AnnouncePacket(1),
        AdpPacket(entity_id=0xDEADBEEF, message_type=ADP_AVAILABLE,
                  entity_kind=ENTITY_SPEAKER, valid_time=2.0,
                  available_index=65535, channel_id=3, mgmt_port=4998,
                  name="es7", seq=12),
        AdpPacket(entity_id=1, message_type=ADP_DEPARTING,
                  entity_kind=ENTITY_REBROADCASTER, epoch=9),
        AecpPacket(entity_id=42, message_type=AECP_COMMAND, seq=7),
        AecpPacket(entity_id=42, message_type=AECP_RESPONSE, seq=7,
                   payload=b"\x01descriptor-blob"),
        AcmpPacket(message_type=ACMP_CONNECT_RX_COMMAND,
                   talker_entity_id=1, listener_entity_id=42,
                   group_ip="239.192.0.1", port=5001, channel_id=1,
                   seq=3),
        AcmpPacket(message_type=ACMP_DISCONNECT_RX_RESPONSE,
                   listener_entity_id=42, seq=4),
    ]


# -- agreement on valid and systematically damaged inputs ---------------------


def test_round_trips_agree():
    for pkt in sample_packets():
        out = assert_parsers_agree(pkt.encode())
        assert out == pkt


def test_every_truncation_agrees():
    for pkt in sample_packets():
        wire = pkt.encode()
        for cut in range(len(wire)):
            assert_parsers_agree(wire[:cut])


def test_every_trailing_extension_agrees():
    for pkt in sample_packets():
        wire = pkt.encode()
        for extra in (b"\x00", b"\xff" * 3, b"junk!"):
            assert_parsers_agree(wire + extra)


def test_single_byte_mutations_agree():
    rng = random.Random(1234)
    for pkt in sample_packets():
        wire = bytearray(pkt.encode())
        for _ in range(200):
            pos = rng.randrange(len(wire))
            old = wire[pos]
            wire[pos] = rng.randrange(256)
            assert_parsers_agree(bytes(wire))
            wire[pos] = old


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=120))
def test_random_binary_agrees(data):
    assert_parsers_agree(data)


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=_COMMON.size, max_size=80))
def test_forced_magic_random_body_agrees(data):
    # valid magic/version so fuzzing actually reaches the body parsers
    wire = struct.pack("<HB", MAGIC, VERSION) + data[3:]
    assert_parsers_agree(wire)


# -- zero-copy properties -----------------------------------------------------


def test_data_payload_is_view_into_datagram():
    pkt = DataPacket(1, 9, 1.0, b"abc" * 50, CodecID.RAW)
    wire = pkt.encode()
    out = parse_packet(wire)
    assert isinstance(out.payload, memoryview)
    assert out.payload.readonly
    assert out.payload.obj is wire        # no copy was made
    assert out.payload == pkt.payload     # still compares equal to bytes
    assert bytes(out.payload) == pkt.payload


def test_writable_input_yields_readonly_view():
    wire = bytearray(DataPacket(1, 9, 1.0, b"xyz" * 10).encode())
    out = parse_packet(wire)
    assert out.payload.readonly
    with pytest.raises(TypeError):
        out.payload[0] = 0


def test_bytearray_and_memoryview_inputs_parse():
    for pkt in sample_packets():
        wire = pkt.encode()
        assert parse_packet(bytearray(wire)) == pkt
        assert parse_packet(memoryview(wire)) == pkt
