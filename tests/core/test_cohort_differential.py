"""Differential harness: a vectorized cohort fleet must be bit-identical
to the per-object fleet it stands in for.

Every scenario builds the same deployment twice on the same seeds — once
with ``cohort=True`` (one exemplar + numpy member rows + mid-stream
spills) and once with ``cohort=False`` (N real ``add_speaker`` nodes
behind the same member API) — and asserts that every member's playout
(``play_log``, ``write_offsets``), every ``SpeakerStats`` counter, and
the channel/pipeline ledgers agree exactly.

Host-side-only quantities are excluded from the ledger comparison: the
decode cache sees different request streams (one exemplar vs N nodes),
fan-out batching is a host optimisation, and the cohort_* telemetry rows
exist only on the cohort side.  Everything the virtual world can observe
must match.
"""

import dataclasses

import pytest

from repro.audio.params import CD_QUALITY
from repro.core import EthernetSpeakerSystem

MEMBERS = 6
STREAM_SECONDS = 3.0
HORIZON = 9.0

#: PipelineReport fields that describe simulated reality (must match),
#: as opposed to host-side bookkeeping (may differ by construction)
PIPELINE_FIELDS = (
    "underruns", "silence_seconds", "wire_drops", "wire_losses",
    "injected_losses", "injected_duplicates", "injected_reordered",
    "injected_corrupted", "injected_pending", "failovers", "standdowns",
    "epoch_resyncs", "rejoins", "max_rejoin_gap",
)


def build(cohort, scenario, seed):
    system = EthernetSpeakerSystem(seed=seed, cohort=cohort)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=CD_QUALITY)
    rb = system.add_rebroadcaster(producer, channel, control_interval=0.5)
    if scenario == "crash-failover":
        system.add_standby(producer, channel, takeover_timeout=1.0,
                           check_interval=0.2, control_interval=0.5)
    fleet = system.add_speaker_cohort(channel, MEMBERS)
    if scenario == "ge-loss-dup-reorder":
        system.inject_faults(loss_rate=0.05, burst_length=3,
                             duplicate_rate=0.02, reorder_rate=0.03,
                             reorder_window=4, seed=seed + 100)
    elif scenario == "corruption":
        system.inject_faults(corrupt_rate=0.04, seed=seed + 100)
    system.play_synthetic(producer, STREAM_SECONDS, CD_QUALITY,
                          source_paced=True)
    if scenario == "crash-failover":
        system.schedule_fault(rb, after=1.2, kind="crash")
        # one member crashes and cold-restarts mid-stream: the spill
        # carries seq window, ring offset and ledger into a full speaker
        system.schedule_fault(fleet.tokens[2], after=1.5, kind="crash",
                              restart_after=0.8)
    system.run(until=HORIZON)
    return system, fleet


def assert_fleets_identical(cohort_fleet, object_fleet):
    for i in range(MEMBERS):
        a = cohort_fleet.member_stats(i)
        b = object_fleet.member_stats(i)
        assert cohort_fleet.member_play_log(i) == \
            object_fleet.member_play_log(i), f"member {i} playout differs"
        assert cohort_fleet.member_write_offsets(i) == \
            object_fleet.member_write_offsets(i), \
            f"member {i} device offsets differ"
        for f in dataclasses.fields(a):
            assert getattr(a, f.name) == getattr(b, f.name), \
                f"member {i} stats.{f.name}: " \
                f"{getattr(a, f.name)!r} != {getattr(b, f.name)!r}"


def assert_ledgers_identical(report_a, report_b):
    assert len(report_a.channels) == len(report_b.channels)
    for ca, cb in zip(report_a.channels, report_b.channels):
        assert ca == cb, f"channel ledger differs:\n{ca}\n{cb}"
    for f in PIPELINE_FIELDS:
        assert getattr(report_a, f) == getattr(report_b, f), \
            f"pipeline.{f}: {getattr(report_a, f)!r} != " \
            f"{getattr(report_b, f)!r}"
    assert report_a.conservation_residual == report_b.conservation_residual
    assert report_a.conservation_ok and report_b.conservation_ok


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize("scenario", [
    "clean", "ge-loss-dup-reorder", "corruption", "crash-failover",
])
def test_cohort_matches_per_object_fleet(scenario, seed):
    sys_cohort, fleet_cohort = build(True, scenario, seed)
    sys_object, fleet_object = build(False, scenario, seed)
    assert_fleets_identical(fleet_cohort, fleet_object)
    assert_ledgers_identical(sys_cohort.pipeline_report(),
                             sys_object.pipeline_report())


@pytest.mark.parametrize("seed", [7, 23])
def test_detach_mid_stream_matches_per_object_fleet(seed):
    """Tearing the injector down while member copies are parked for
    reordering (and a shared batch is in flight) flushes the holdback
    identically on both sides: every flushed copy lands once, the drop
    counters don't double-count, and the fleets stay bit-identical."""

    def run(cohort):
        system = EthernetSpeakerSystem(seed=seed, cohort=cohort)
        producer = system.add_producer()
        channel = system.add_channel("hall", params=CD_QUALITY)
        system.add_rebroadcaster(producer, channel, control_interval=0.5)
        fleet = system.add_speaker_cohort(channel, MEMBERS)
        inj = system.inject_faults(reorder_rate=0.15, reorder_window=8,
                                   reorder_hold=30.0, loss_rate=0.03,
                                   burst_length=2.0, seed=seed + 100)
        system.play_synthetic(producer, STREAM_SECONDS, CD_QUALITY,
                              source_paced=True)
        system.sim.schedule(1.25, system.remove_faults, inj)
        system.run(until=HORIZON)
        return system, fleet, inj

    sys_cohort, fleet_cohort, inj_cohort = run(True)
    sys_object, fleet_object, inj_object = run(False)
    assert inj_cohort.stats.flushed > 0
    assert inj_cohort.stats == inj_object.stats
    assert inj_cohort.pending == inj_object.pending == 0
    assert_fleets_identical(fleet_cohort, fleet_object)
    assert_ledgers_identical(sys_cohort.pipeline_report(),
                             sys_object.pipeline_report())


def test_clean_run_stays_vectorized():
    """No fault ever fires: nobody spills, and N-1 of every N delivery
    events are saved."""
    _, fleet = build(True, "clean", seed=7)
    assert fleet.spills == 0
    assert fleet.aligned == MEMBERS
    assert fleet.events_saved > 0


def test_faulty_run_spills_mid_stream():
    """Per-receiver fates actually exercised the spill path: some members
    became full speakers mid-stream, the rest stayed array rows."""
    _, fleet = build(True, "ge-loss-dup-reorder", seed=7)
    assert 0 < fleet.spills <= MEMBERS
    assert fleet.events_saved > 0


def test_crash_spill_is_exact_mid_stream():
    """The crashed member's clone carries the ledger at the fault instant:
    play resumes after restart and the rejoin gap is recorded."""
    _, fleet = build(True, "crash-failover", seed=7)
    stats = fleet.member_stats(2)
    assert stats.rejoin_gaps, "restarted member never rejoined"
    assert fleet.tokens[2].spilled


def test_cohort_telemetry_rows():
    system, fleet = build(True, "ge-loss-dup-reorder", seed=7)
    report = system.pipeline_report()
    assert report.cohort_members == MEMBERS
    assert report.cohort_spills == fleet.spills > 0
    assert report.cohort_events_saved == fleet.events_saved > 0
    text = report.summary()
    assert "cohort members" in text and "cohort spills" in text
