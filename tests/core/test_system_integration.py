"""End-to-end integration: app -> VAD -> rebroadcaster -> LAN -> speakers.

Each test builds a whole deployment with EthernetSpeakerSystem and checks a
behaviour the paper claims.
"""

import numpy as np
import pytest

from repro.audio import CD_QUALITY, AudioEncoding, AudioParams, music, sine, snr_db
from repro.codec import CodecID
from repro.core import EthernetSpeakerSystem

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)  # cheap to simulate


def build(n_speakers=2, compress="never", params=LOW, sys_kw=None, rb_kw=None,
          sp_kw=None, quality=10):
    system = EthernetSpeakerSystem(**(sys_kw or {}))
    producer = system.add_producer()
    channel = system.add_channel("ch", params=params, compress=compress,
                                 quality=quality)
    system.add_rebroadcaster(producer, channel, **(rb_kw or {}))
    speakers = [
        system.add_speaker(channel=channel, **(sp_kw or {}))
        for _ in range(n_speakers)
    ]
    return system, producer, channel, speakers


def test_every_speaker_plays_the_same_audio():
    system, producer, channel, speakers = build(n_speakers=3)
    x = sine(440, 2.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=6.0)
    for node in speakers:
        out = node.sink.waveform()
        assert snr_db(x, out[: len(x)]) > 40


def test_compressed_channel_still_sounds_right():
    system, producer, channel, speakers = build(
        n_speakers=1, compress="always", params=CD_QUALITY
    )
    x = music(1.5, 44100, seed=3)
    system.play_pcm(producer, x, CD_QUALITY)
    system.run(until=5.0)
    out = speakers[0].sink.waveform()
    assert snr_db(x, out[: len(x)]) > 25  # lossy but clean


def test_speaker_waits_for_control_packet():
    """§2.3: data packets arriving before any control packet are useless."""
    system, producer, channel, speakers = build(
        n_speakers=1, rb_kw={"control_interval": 3600.0}
    )
    # Suppress even the config-triggered control packet by monkey-patching
    # the stats: instead, start a second speaker late and observe the
    # waiting_dropped counter on a speaker that joins before any control.
    x = sine(440, 2.0, 8000)
    system.play_pcm(producer, x, LOW)
    # late speaker misses the single initial control packet (interval 1 h)
    late = system.add_speaker(channel=channel, start=False)
    system.sim.schedule(0.5, late.speaker.start)
    system.run(until=6.0)
    assert late.stats.waiting_dropped > 0
    assert late.stats.played == 0
    # the punctual speaker played fine
    assert speakers[0].stats.played > 0


def test_late_joiner_syncs_with_running_stream():
    """§3.2: ESs 'started at different times in the middle of the stream'
    end up aligned."""
    system, producer, channel, speakers = build(
        n_speakers=1, rb_kw={"control_interval": 0.5}
    )
    x = sine(440, 6.0, 8000)
    system.play_pcm(producer, x, LOW)
    late = system.add_speaker(channel=channel, start=False)
    system.sim.schedule(2.7, late.speaker.start)
    system.run(until=10.0)
    assert late.stats.played > 0
    report = system.skew_report([speakers[0], late])
    assert report["positions"] > 10
    assert report["max_skew"] < 0.050


def test_rate_limited_stream_takes_real_time():
    """§3.1: a 4-second clip takes ~4 seconds to transmit."""
    system, producer, channel, speakers = build()
    x = sine(440, 4.0, 8000)
    app = system.play_pcm(producer, x, LOW)
    rb = system.rebroadcasters[0]
    done = []
    system.sim.schedule(0.1, lambda: None)
    system.run(until=20.0)
    # the last data packet cannot have left before ~4 s
    last_play_at = max(p for p, _ in speakers[0].stats.play_log)
    assert last_play_at > 3.5
    assert rb.limiter.stream_pos == pytest.approx(4.0, abs=0.1)


def test_without_rate_limiter_only_the_start_survives():
    """§3.1: 'you will only hear the first few seconds of the song' —
    the unpaced producer floods the speakers' buffers."""
    system, producer, channel, speakers = build(
        n_speakers=1,
        rb_kw={"rate_limit": False},
        sp_kw={"rx_buffer_packets": 16},
    )
    x = sine(440, 30.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=40.0)
    st = speakers[0].stats
    lost = st.seq_gaps + speakers[0].speaker._sock.drops
    assert lost > 0.5 * st.data_rx  # most of the stream vanished
    played_seconds = st.played * producer.vad.slave.blocksize / LOW.bytes_per_second
    assert played_seconds < 10.0  # only the first seconds were heard


def test_with_rate_limiter_everything_survives():
    system, producer, channel, speakers = build(
        n_speakers=1, sp_kw={"rx_buffer_packets": 16}
    )
    x = sine(440, 15.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=20.0)
    st = speakers[0].stats
    assert st.seq_gaps == 0
    assert st.late_dropped == 0
    assert speakers[0].sink.audio_seconds == pytest.approx(15.0, abs=0.3)


def test_packet_loss_causes_gaps_but_stream_recovers():
    system, producer, channel, speakers = build(
        n_speakers=1,
        sys_kw={"loss_rate": 0.08, "seed": 7},
        rb_kw={"control_interval": 0.5},
    )
    x = sine(440, 10.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=15.0)
    st = speakers[0].stats
    assert st.seq_gaps > 0  # losses observed
    assert st.played > 0.7 * st.data_rx  # but most audio still played


def test_raw_cd_quality_costs_about_1_4_mbps():
    """§2.2: 'around 1.3Mbps for CD-quality audio' (1.41 Mb/s of PCM)."""
    system, producer, channel, speakers = build(
        n_speakers=1, compress="never", params=CD_QUALITY
    )
    system.play_synthetic(producer, 10.0, CD_QUALITY)
    system.add_rebroadcaster  # no-op reference, keep single channel
    system.run(until=10.0)
    # measure over the streaming window only
    payload_bits = system.monitor.total_payload_bytes * 8
    stream_seconds = system.rebroadcasters[0].limiter.stream_pos
    mbps = payload_bits / stream_seconds / 1e6
    assert mbps == pytest.approx(1.41, rel=0.05)


def test_compression_cuts_bandwidth_several_fold():
    results = {}
    for compress in ("never", "always"):
        system, producer, channel, speakers = build(
            n_speakers=1, compress=compress, params=CD_QUALITY,
            rb_kw={"real_codec": False},
        )
        system.play_synthetic(producer, 10.0, CD_QUALITY)
        system.run(until=10.0)
        results[compress] = system.monitor.total_payload_bytes
    assert results["always"] < results["never"] / 2.5


def test_producer_state_independent_of_speaker_count():
    """§2.3: 'the Rebroadcaster does not need to maintain any state for
    the Ethernet Speakers that listen in'."""
    sent = {}
    for n in (1, 8):
        system, producer, channel, speakers = build(n_speakers=n)
        x = sine(440, 2.0, 8000)
        system.play_pcm(producer, x, LOW)
        system.run(until=5.0)
        rb = system.rebroadcasters[0]
        sent[n] = (rb.stats.data_sent, rb.stats.control_sent)
        for node in speakers:
            assert node.stats.played > 0
    assert sent[1] == sent[8]  # identical producer behaviour


def test_speakers_never_transmit():
    """Receive-only devices: no frame on the LAN originates at a speaker."""
    system, producer, channel, speakers = build(n_speakers=3)
    speaker_ips = {n.machine.net.ip for n in speakers}
    sources = set()
    system.lan.add_tap(lambda d: sources.add(d.src_ip))
    x = sine(440, 2.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=5.0)
    assert sources and not (sources & speaker_ips)


def test_skew_with_jitter_stays_inaudible():
    """§3.2: phase differences 'attributed to network delay or otherwise'
    remain inaudible (< ~20 ms) even with per-receiver jitter."""
    system, producer, channel, speakers = build(
        n_speakers=4,
        sys_kw={"jitter": 0.004, "seed": 3},
        rb_kw={"control_interval": 0.5},
    )
    x = sine(440, 5.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=9.0)
    report = system.skew_report()
    assert report["positions"] > 20
    assert report["max_skew"] < 0.020


def test_mid_stream_reconfiguration_reaches_speakers():
    """A new SETINFO propagates via control packets; speakers retune."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel)
    node = system.add_speaker(channel=channel)
    p2 = AudioParams(AudioEncoding.ULAW, 8000, 1)
    system.play_pcm(producer, sine(440, 1.0, 8000), LOW)
    system.play_pcm(producer, sine(220, 1.0, 8000), p2, start_after=2.5)
    system.run(until=8.0)
    assert node.speaker._params == p2
    assert node.stats.played > 0
    # both segments audible
    assert node.sink.audio_seconds == pytest.approx(2.0, abs=0.3)
