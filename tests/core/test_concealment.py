"""Loss concealment: repeat-last-block vs the driver's silence insertion."""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def run_lossy(conceal: bool, loss_rate=0.10, seed=11):
    system = EthernetSpeakerSystem(loss_rate=loss_rate, seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    node = system.add_speaker(channel=channel, conceal_losses=conceal)
    system.play_pcm(producer, sine(220, 10.0, 8000), LOW)
    system.run(until=14.0)
    return node


def test_concealment_fills_holes():
    node = run_lossy(conceal=True)
    assert node.stats.seq_gaps > 0
    assert node.stats.concealed > 0
    assert node.stats.concealed <= node.stats.seq_gaps * 3


def test_concealment_reduces_silent_output():
    concealed = run_lossy(conceal=True)
    plain = run_lossy(conceal=False)
    # both lost packets...
    assert plain.stats.seq_gaps > 0
    # ...but concealment keeps the DAC busier with audio
    assert concealed.sink.audio_seconds > plain.sink.audio_seconds
    assert concealed.device.silence_bytes < plain.device.silence_bytes


def test_concealment_off_by_default():
    node = run_lossy(conceal=False)
    assert node.stats.concealed == 0


def test_no_losses_no_concealment():
    node = run_lossy(conceal=True, loss_rate=0.0)
    assert node.stats.seq_gaps == 0
    assert node.stats.concealed == 0


def test_long_outage_capped():
    """A multi-second outage repeats at most 3 blocks, then goes quiet."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    node = system.add_speaker(channel=channel, conceal_losses=True)
    system.play_synthetic(producer, 12.0, LOW)
    nic = node.machine.net.nic
    system.sim.schedule(4.0, system.lan.detach, nic)
    system.sim.schedule(8.0, system.lan.attach, nic)
    system.run(until=15.0)
    assert node.stats.seq_gaps > 10
    assert node.stats.concealed == 3
