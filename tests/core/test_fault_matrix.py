"""The fault matrix: end-to-end scenarios on a hostile LAN.

Each scenario injects one class of wire misbehaviour (bursty loss,
duplication, bounded reordering, corruption, a producer restart) through
:class:`~repro.net.faults.FaultInjector` with a fixed seed, then asserts
two things:

* **byte-exactness** — the audio that reached the DAC is exactly the
  payloads of the blocks the speaker committed to playing, in stream
  order, with no duplicated and no out-of-order PCM;
* **a closed ledger** — ``pipeline_report()``'s conservation check still
  balances, with every injected fault itemised.

These are the regression tests for the seq-aware playout stage: before
it, a duplicated wire copy played twice and a reordered copy played out
of order.
"""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import DataPacket, ProtocolError, parse_packet

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(n_speakers=1, conceal=False, telemetry=True, **fault_kwargs):
    system = EthernetSpeakerSystem(telemetry=telemetry)
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    nodes = [
        system.add_speaker(channel=channel, conceal_losses=conceal)
        for _ in range(n_speakers)
    ]
    injector = system.inject_faults(**fault_kwargs) if fault_kwargs else None
    captured = []

    def tap(dgram):
        try:
            pkt = parse_packet(dgram.payload)
        except ProtocolError:
            return
        if isinstance(pkt, DataPacket):
            captured.append(pkt)

    system.lan.add_tap(tap)
    return system, producer, nodes, injector, captured


def played_bytes(node):
    """PCM the DAC actually emitted, silence insertions excluded."""
    return b"".join(d for _, d, s, _ in node.sink.records if not s)


def expected_bytes(captured, node):
    """The reference stream restricted to the blocks the speaker logged,
    in transmit (= stream) order."""
    logged = {p for p, _ in node.stats.play_log}
    return b"".join(p.payload for p in captured if p.play_at in logged)


def assert_clean_playout(node, captured):
    positions = [p for p, _ in node.stats.play_log]
    # zero duplicated blocks, never out-of-order PCM
    assert len(positions) == len(set(positions))
    assert positions == sorted(positions)
    assert played_bytes(node) == expected_bytes(captured, node)


# -- duplication ---------------------------------------------------------------


def test_wire_duplication_plays_every_block_exactly_once():
    system, producer, (node,), inj, captured = build(
        duplicate_rate=0.3, seed=21
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    assert inj.stats.duplicated > 5
    assert node.stats.dup_dropped > 0
    # every transmitted block played exactly once: the sink holds the
    # full reference stream byte for byte
    assert played_bytes(node) == b"".join(p.payload for p in captured)
    assert_clean_playout(node, captured)
    rep = system.pipeline_report()
    assert rep.injected_duplicates == inj.stats.duplicated
    assert rep.conservation_ok
    # extra minted copies push the residual negative, never below -dups
    assert -rep.injected_duplicates <= rep.conservation_residual < 0


# -- reordering ----------------------------------------------------------------


def test_wire_reordering_never_plays_out_of_order():
    system, producer, (node,), inj, captured = build(
        reorder_rate=0.2, reorder_window=3, seed=22
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    assert inj.stats.reordered > 5
    assert node.stats.reorder_dropped > 0
    assert node.stats.seq_gaps > 0  # the holes the held copies left
    assert_clean_playout(node, captured)
    rep = system.pipeline_report()
    assert rep.injected_reordered == inj.stats.reordered
    assert rep.injected_pending == 0  # nothing dangles at quiescence
    assert rep.conservation_ok
    # reordered copies all arrived: the residual closes to zero
    assert rep.conservation_residual == 0


# -- bursty loss ---------------------------------------------------------------


def test_burst_loss_concealed_and_itemised():
    system, producer, (node,), inj, captured = build(
        conceal=True, loss_rate=0.1, burst_length=4.0, seed=23
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    assert inj.stats.lost > 0
    assert node.stats.seq_gaps > 0
    assert node.stats.concealed > 0
    assert node.stats.concealed <= node.stats.seq_gaps * 3
    positions = [p for p, _ in node.stats.play_log]
    assert positions == sorted(positions)
    assert len(positions) == len(set(positions))
    rep = system.pipeline_report()
    assert rep.injected_losses == inj.stats.lost
    assert rep.conservation_ok
    # data-copy losses are inside the itemised injected losses (which
    # also count lost control copies)
    assert 0 < rep.conservation_residual <= rep.injected_losses


def test_burst_losses_cluster_on_the_wire():
    """Same mean loss, bursty vs memoryless: the bursty run must lose
    consecutive blocks more often."""

    def max_gap(burst_length, seed):
        system, producer, (node,), _, _ = build(
            loss_rate=0.15, burst_length=burst_length, seed=seed
        )
        system.play_pcm(producer, sine(440, 10.0, 8000), LOW)
        system.run(until=16.0)
        assert node.stats.seq_gaps > 0
        gaps = [
            e["args"]["missing"]
            for e in system.telemetry.tracer.events
            if e.get("name") == "speaker.gap"
        ]
        return max(gaps)

    assert max_gap(8.0, seed=25) > max_gap(1.0, seed=25)


# -- corruption ----------------------------------------------------------------


def test_corruption_survivable_and_accounted():
    system, producer, (node,), inj, captured = build(
        corrupt_rate=0.3, seed=25
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    assert inj.stats.corrupted > 5
    # the speaker survived (kept playing to the end of the stream) even
    # though flipped bytes reached it
    assert node.stats.played > 0
    assert max(p for p, _ in node.stats.play_log) > 5.0
    reference = b"".join(p.payload for p in captured)
    got = played_bytes(node)
    # corrupted payloads play with mangled bytes (RAW passthrough) or
    # are dropped as garbage when the header was hit; both are visible
    assert got != reference
    rep = system.pipeline_report()
    assert rep.injected_corrupted == inj.stats.corrupted
    assert rep.conservation_ok


# -- producer restart ----------------------------------------------------------


def test_producer_restart_resets_sequence_state():
    """A producer restart rewinds seq to 1 and the stream clock to 0.
    The speaker must re-anchor AND reset its sequence state — without the
    reset the monotonic playout filter would discard the entire second
    stream as stale."""
    system, producer, (node,), _, _ = build()
    rb1 = system.rebroadcasters[0]
    system.play_synthetic(producer, 5.0, LOW)
    system.sim.schedule(3.0, rb1.stop)

    def restart():
        from repro.kernel.vad import VadPair

        VadPair(producer.machine, slave_path="/dev/vads2",
                master_path="/dev/vadm2")
        system.add_rebroadcaster(producer, system.channels[0],
                                 master_path="/dev/vadm2",
                                 control_interval=0.5)
        system.play_synthetic(producer, 5.0, LOW, slave_path="/dev/vads2")

    system.sim.schedule(6.0, restart)
    system.run(until=15.0)
    st = node.stats
    assert st.resyncs >= 1
    # blocks of the new stream arriving before the second control packet
    # confirms the re-anchor are unavoidably discarded (they are already
    # past their deadline under the old anchor); the casualty window is
    # bounded by the resync debounce, about one control interval
    handoff_casualties = st.dup_dropped + st.reorder_dropped + st.late_dropped
    assert handoff_casualties <= 2 * 0.5 / 0.065  # two control intervals
    times = [t for _, t in st.play_log]
    assert min(times) < 3.0
    assert max(times) > 7.0
    # gap accounting did not explode across the seq rewind
    assert st.seq_gaps < 10


def test_resync_resets_concealment_context():
    """After a re-anchor the old stream's last block must not be used to
    conceal into the new stream."""
    system, producer, (node,), _, _ = build(conceal=True)
    rb1 = system.rebroadcasters[0]
    system.play_pcm(producer, sine(440, 4.0, 8000), LOW)
    system.sim.schedule(2.5, rb1.stop)

    def restart():
        from repro.kernel.vad import VadPair

        VadPair(producer.machine, slave_path="/dev/vads2",
                master_path="/dev/vadm2")
        system.add_rebroadcaster(producer, system.channels[0],
                                 master_path="/dev/vadm2",
                                 control_interval=0.5)
        system.play_pcm(producer, sine(880, 4.0, 8000), LOW,
                        slave_path="/dev/vads2")

    system.sim.schedule(6.0, restart)
    system.run(until=14.0)
    assert node.stats.resyncs >= 1
    assert node.speaker._last_pcm is not None  # the new stream is live
    # no concealment across the restart boundary: the reset cleared the
    # context, so concealed blocks can only come from same-stream gaps
    assert node.stats.concealed == 0


# -- the acceptance scenario ---------------------------------------------------


def test_acceptance_mixed_faults_scenario():
    """ISSUE acceptance: 1% Gilbert–Elliott loss + 0.5% duplication +
    reorder window 3 — zero duplicated blocks played, never out-of-order
    PCM, and the conservation ledger balances with faults itemised."""
    system, producer, (node,), inj, captured = build(
        loss_rate=0.01, burst_length=5.0, duplicate_rate=0.005,
        reorder_rate=0.05, reorder_window=3, seed=31,
    )
    system.play_pcm(producer, sine(440, 20.0, 8000), LOW)
    system.run(until=28.0)
    st = inj.stats
    assert st.lost > 0 and st.duplicated > 0 and st.reordered > 0
    assert_clean_playout(node, captured)
    rep = system.pipeline_report()
    assert rep.injected_losses == st.lost
    assert rep.injected_duplicates == st.duplicated
    assert rep.injected_reordered == st.reordered
    assert rep.injected_pending == 0
    assert rep.conservation_ok
    assert "injected losses" in rep.summary()


def test_mixed_faults_ledger_closes_without_telemetry():
    """The fault accounting is component stats, not telemetry: the
    ledger must close with the registry disabled too."""
    system, producer, (node,), inj, captured = build(
        telemetry=False, loss_rate=0.08, burst_length=3.0,
        duplicate_rate=0.1, reorder_rate=0.1, seed=27,
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    assert inj.stats.lost > 0 and inj.stats.duplicated > 0
    assert_clean_playout(node, captured)
    rep = system.pipeline_report()
    assert rep.conservation_ok
    (ch,) = rep.channels
    assert ch.dup_dropped == node.stats.dup_dropped
    assert ch.reorder_dropped == node.stats.reorder_dropped


def test_mixed_faults_multi_speaker_skew_still_tight():
    """Faults at one receiver must not drag the others: common positions
    still play within the paper's perceptual sync budget."""
    system, producer, nodes, inj, _ = build(
        n_speakers=3, loss_rate=0.02, burst_length=4.0,
        duplicate_rate=0.05, reorder_rate=0.05, seed=28,
    )
    system.play_pcm(producer, sine(440, 6.0, 8000), LOW)
    system.run(until=12.0)
    for node in nodes:
        positions = [p for p, _ in node.stats.play_log]
        assert positions == sorted(positions)
    skew = system.skew_report(nodes)
    assert skew["positions"] > 0
    # a dropped block leaves that speaker's device ring shallower, so the
    # same position can leave its DAC earlier: residual skew is bounded
    # by the ring depth (8 blocks x 65 ms), not by network misbehaviour
    ring = nodes[0].device.ring_blocks * 0.065
    assert skew["max_skew"] < ring
    assert system.pipeline_report().conservation_ok


# -- retune hygiene ------------------------------------------------------------


def test_retune_clears_per_stream_state():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    a = system.add_channel("a", params=LOW, compress="never")
    b = system.add_channel("b", params=LOW, compress="never")
    system.add_rebroadcaster(producer, a, control_interval=0.5)
    node = system.add_speaker(channel=a, conceal_losses=True)
    system.play_pcm(producer, sine(440, 3.0, 8000), LOW)
    system.run(until=2.0)
    sp = node.speaker
    written_before = sp._bytes_written
    assert written_before > 0
    assert sp._last_seq is not None
    sp.retune(b.group_ip, b.port)
    # nothing of the old channel may leak into the new session
    assert sp._anchor is None
    assert sp._params is None
    assert sp._last_seq is None
    assert sp._last_pcm is None
    assert sp._playing_started is False
    assert sp._bytes_written == 0
    assert sp._decoder is None and sp._decoder_key is None
    assert len(sp._recent_seqs) == 0
    # ...but the absolute device-byte mapping survives via the base
    assert sp._write_base == written_before


def test_retune_write_offsets_stay_consistent_with_the_dac():
    """After a retune the stream-offset -> DAC-time mapping must keep
    working: offsets are absolute even though _bytes_written restarts."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    from repro.kernel.vad import VadPair

    VadPair(producer.machine, slave_path="/dev/vads2",
            master_path="/dev/vadm2")
    a = system.add_channel("a", params=LOW, compress="never")
    b = system.add_channel("b", params=LOW, compress="never")
    system.add_rebroadcaster(producer, a, control_interval=0.5)
    system.add_rebroadcaster(producer, b, master_path="/dev/vadm2",
                             control_interval=0.5)
    node = system.add_speaker(channel=a)
    system.play_pcm(producer, sine(440, 10.0, 8000), LOW,
                    source_paced=True)
    system.play_pcm(producer, sine(880, 10.0, 8000), LOW,
                    source_paced=True, slave_path="/dev/vads2")
    system.sim.schedule(4.0, node.speaker.retune, b.group_ip, b.port)
    system.run(until=14.0)
    # offsets strictly increase across the retune boundary (absolute),
    # and each maps to a real DAC emission time
    offsets = [o for _, o in node.stats.write_offsets]
    assert offsets == sorted(offsets)
    times = [node.sink.time_at_bytes(o) for _, o in node.stats.write_offsets]
    emitted = [t for t in times if t is not None]
    assert len(emitted) > 10
    assert emitted == sorted(emitted)
