"""Warm-standby failover: takeover, stand-down, rejoin, determinism.

The scenarios drive the full system: a primary producer, a standby
mirroring the same source feed, N speakers.  The standby's watchdog
listens to the primary's control cadence on the channel's own multicast
group; killing the primary must hand the channel over within the
takeover timeout, with every speaker re-anchoring on the bumped epoch
exactly once and the audible gap bounded by
``takeover_timeout + check_interval + playout_delay``.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)

CONTROL_IVL = 0.5
TAKEOVER = 1.0
CHECK = 0.2


def build(n_speakers=2, telemetry=False, duration=12.0, seed=0,
          **fault_kwargs):
    system = EthernetSpeakerSystem(telemetry=telemetry, seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    standby = system.add_standby(
        producer, channel, takeover_timeout=TAKEOVER, check_interval=CHECK,
        control_interval=CONTROL_IVL,
    )
    nodes = [system.add_speaker(channel=channel) for _ in range(n_speakers)]
    if fault_kwargs:
        system.inject_faults(**fault_kwargs)
    system.play_synthetic(producer, duration, LOW)
    return system, rb, standby, nodes


def test_takeover_after_primary_crash():
    system, rb, standby, nodes = build()
    system.schedule_fault(rb, after=5.0, kind="crash")
    system.run(until=14.0)
    assert standby.active
    assert standby.stats.takeovers == 1
    assert standby.rb.epoch == 1
    # the silence the watchdog measured before deciding
    assert standby.stats.takeover_latencies[0] >= TAKEOVER
    assert standby.stats.takeover_latencies[0] <= TAKEOVER + CHECK + CONTROL_IVL
    for node in nodes:
        st = node.stats
        assert st.epoch_resyncs == 1
        assert len(st.rejoin_gaps) == 1
        # bounded audible hole: control silence + watchdog granularity
        # + the new incarnation's playout buffering
        bound = TAKEOVER + CHECK + CONTROL_IVL + node.speaker.playout_delay
        assert st.rejoin_gaps[0] <= bound
        # playback genuinely resumed after the handover
        assert st.play_log[-1][1] > 7.0
    report = system.pipeline_report()
    assert report.failovers == 1
    assert report.conservation_ok


def test_no_takeover_while_primary_healthy():
    # note the horizon stays inside the stream: once the source feed
    # ends, controls stop with it and the watchdog (correctly) reads
    # the silence as a dead producer
    system, rb, standby, nodes = build(duration=8.0)
    system.run(until=6.0)
    assert not standby.active
    assert standby.stats.takeovers == 0
    assert standby.stats.controls_seen > 0
    # the suspended standby paced the mirrored feed without transmitting
    assert standby.rb.stats.suspended_blocks > 0
    assert standby.rb.stats.data_sent == 0
    for node in nodes:
        assert node.stats.epoch_resyncs == 0
    assert system.pipeline_report().conservation_ok


def test_idle_channel_never_triggers_takeover():
    # no source feed at all: the watchdog must stay disarmed — an idle
    # channel is not a dead one
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("quiet", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=CONTROL_IVL)
    standby = system.add_standby(
        producer, channel, takeover_timeout=TAKEOVER, check_interval=CHECK,
    )
    system.run(until=10.0)
    assert not standby.active
    assert standby.stats.takeovers == 0


def test_standby_stands_down_to_newer_epoch():
    system, rb, standby, nodes = build(duration=16.0)
    system.schedule_fault(rb, after=4.0, kind="crash")
    # an operator brings the primary back at t=10 with a fresher epoch
    # than the standby claimed (standby took epoch 1, so use 2)
    system.sim.schedule(10.0, rb.restart, 2)
    system.run(until=15.0)
    assert standby.stats.takeovers == 1
    assert standby.stats.standdowns == 1
    assert not standby.active
    assert standby.rb.suspended
    for node in nodes:
        # once onto the standby, once back onto the restarted primary
        assert node.stats.epoch_resyncs == 2
    assert system.pipeline_report().conservation_ok


def test_hung_primary_triggers_takeover():
    system, rb, standby, nodes = build()
    system.schedule_fault(rb, after=5.0, kind="hang")
    system.run(until=14.0)
    assert standby.stats.takeovers == 1
    for node in nodes:
        assert node.stats.epoch_resyncs == 1
        assert node.stats.play_log[-1][1] > 7.0


def test_failover_is_deterministic_per_seed():
    def run_once():
        system, rb, standby, nodes = build(telemetry=False, seed=7)
        system.schedule_fault(rb, after=5.0, kind="crash", seed=3,
                              restart_after=None, jitter=0.5)
        system.run(until=14.0)
        return [tuple(n.stats.play_log) for n in nodes], [
            tuple(n.stats.rejoin_gaps) for n in nodes
        ]

    a = run_once()
    b = run_once()
    # bit-identical playout, including everything after the takeover
    assert a == b


def test_speaker_rejoin_from_cold():
    system, rb, standby, nodes = build(n_speakers=2)
    victim = nodes[0]
    system.schedule_fault(victim, after=4.0, kind="crash",
                          restart_after=1.0)
    system.run(until=14.0)
    st = victim.stats
    # the restarted speaker re-entered wait-for-control -> buffer -> play
    assert len(st.rejoin_gaps) == 1
    assert st.rejoin_gaps[0] < 1.0 + CONTROL_IVL + \
        victim.speaker.playout_delay + 0.2
    assert st.play_log[-1][1] > 6.0
    # the untouched speaker never hiccupped
    assert nodes[1].stats.rejoin_gaps == []
    # conservation closes: the downtime deliveries are classified drops
    # on the wreck socket, not vanished packets
    report = system.pipeline_report()
    assert report.conservation_ok
    assert report.channels[0].socket_drops > 0
