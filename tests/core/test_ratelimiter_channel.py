"""Rate limiter arithmetic (§3.1) and compression policy (§2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import CD_QUALITY, PHONE_QUALITY, AudioParams
from repro.codec import CodecID
from repro.core import ChannelConfig, RateLimiter


def test_limiter_first_block_goes_immediately():
    rl = RateLimiter()
    assert rl.delay_before(CD_QUALITY.bytes_for(0.5), CD_QUALITY, 10.0) == 0.0


def test_limiter_paces_back_to_back_blocks():
    rl = RateLimiter()
    block = CD_QUALITY.bytes_for(0.5)
    assert rl.delay_before(block, CD_QUALITY, 0.0) == 0.0
    # second block immediately after: must wait the first block's duration
    assert rl.delay_before(block, CD_QUALITY, 0.0) == pytest.approx(0.5)
    assert rl.delay_before(block, CD_QUALITY, 0.0) == pytest.approx(1.0)


def test_limiter_does_not_penalise_late_senders():
    rl = RateLimiter()
    block = CD_QUALITY.bytes_for(0.5)
    rl.delay_before(block, CD_QUALITY, 0.0)
    # sender shows up 3 s later (slow compression, say): no extra delay
    assert rl.delay_before(block, CD_QUALITY, 3.0) == 0.0


def test_five_minute_song_takes_five_minutes():
    """§3.1's headline: cumulative delays equal the playing time."""
    rl = RateLimiter()
    block = CD_QUALITY.bytes_for(1.0)
    clock = 0.0
    for _ in range(300):
        clock += rl.delay_before(block, CD_QUALITY, clock)
    assert clock == pytest.approx(299.0)  # last block released at t=299
    assert rl.stream_pos == pytest.approx(300.0)


def test_disabled_limiter_never_delays():
    rl = RateLimiter(enabled=False)
    block = CD_QUALITY.bytes_for(1.0)
    for _ in range(100):
        assert rl.delay_before(block, CD_QUALITY, 0.0) == 0.0
    # but the stream clock still advances (timestamps stay correct)
    assert rl.stream_pos == pytest.approx(100.0)


def test_reset():
    rl = RateLimiter()
    rl.delay_before(1000, CD_QUALITY, 5.0)
    rl.reset()
    assert rl.stream_pos == 0.0
    assert rl.delay_before(1000, CD_QUALITY, 50.0) == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=200000), min_size=1, max_size=50))
def test_property_release_times_match_stream_positions(sizes):
    """Invariant: block k is never released before the stream position of
    its first byte, and a sender that always sends immediately finishes at
    exactly total_duration - last_block_duration."""
    rl = RateLimiter()
    clock = 0.0
    pos = 0.0
    for nbytes in sizes:
        delay = rl.delay_before(nbytes, CD_QUALITY, clock)
        clock += delay
        assert clock == pytest.approx(max(pos, clock))
        assert clock >= pos - 1e-9
        pos += CD_QUALITY.duration_of(nbytes)
    assert rl.stream_pos == pytest.approx(pos)


# -- channel compression policy ----------------------------------------------------


def test_auto_policy_compresses_cd_quality():
    ch = _channel(compress="auto")
    assert ch.effective_codec(CD_QUALITY) == CodecID.VORBIS_LIKE


def test_auto_policy_leaves_phone_quality_raw():
    """§2.2: 'Audio channels with low bit-rates are still sent
    uncompressed'."""
    ch = _channel(compress="auto")
    assert ch.effective_codec(PHONE_QUALITY) == CodecID.RAW


def test_never_and_always_policies():
    assert _channel(compress="never").effective_codec(CD_QUALITY) == CodecID.RAW
    assert (
        _channel(compress="always").effective_codec(PHONE_QUALITY)
        == CodecID.VORBIS_LIKE
    )


def test_threshold_is_configurable():
    ch = _channel(compress="auto", compress_threshold_bps=32_000)
    assert ch.effective_codec(PHONE_QUALITY) == CodecID.VORBIS_LIKE


def test_bad_policy_rejected():
    with pytest.raises(ValueError):
        _channel(compress="sometimes")
    with pytest.raises(ValueError):
        _channel(quality=42)


def _channel(**kw):
    defaults = dict(
        channel_id=1,
        name="test",
        group_ip="239.192.0.1",
        port=5001,
        params=CD_QUALITY,
    )
    defaults.update(kw)
    return ChannelConfig(**defaults)
