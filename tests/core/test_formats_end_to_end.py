"""End-to-end coverage of every audio format the stack supports."""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, sine, snr_db
from repro.core import EthernetSpeakerSystem


def roundtrip(params, compress="never", duration=1.5, quality=10):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel(
        "fmt", params=params, compress=compress, quality=quality
    )
    system.add_rebroadcaster(producer, channel)
    node = system.add_speaker(channel=channel)
    rate = params.sample_rate
    if params.channels == 2:
        x = np.stack(
            [sine(440, duration, rate, amplitude=0.6),
             sine(660, duration, rate, amplitude=0.6)],
            axis=1,
        )
        ref = x.mean(axis=1)
    else:
        x = sine(440, duration, rate, amplitude=0.6)
        ref = x
    system.play_pcm(producer, x, params)
    system.run(until=duration + 4.0)
    out = node.sink.waveform()
    return ref, out, node


@pytest.mark.parametrize(
    "encoding,rate,channels,min_snr",
    [
        (AudioEncoding.SLINEAR16, 44100, 2, 40),
        (AudioEncoding.SLINEAR16, 22050, 1, 40),
        (AudioEncoding.SLINEAR8, 8000, 1, 25),
        (AudioEncoding.ULINEAR8, 8000, 1, 25),
        (AudioEncoding.ULAW, 8000, 1, 25),
        (AudioEncoding.ALAW, 8000, 1, 25),
        (AudioEncoding.ULAW, 8000, 2, 20),
        (AudioEncoding.SLINEAR16, 48000, 2, 40),
    ],
)
def test_every_encoding_survives_the_raw_pipeline(
    encoding, rate, channels, min_snr
):
    params = AudioParams(encoding, rate, channels)
    ref, out, node = roundtrip(params)
    assert node.stats.played > 0
    assert snr_db(ref, out[: len(ref)]) > min_snr


@pytest.mark.parametrize("channels", [1, 2])
def test_cd_rates_survive_the_compressed_pipeline(channels):
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, channels)
    ref, out, node = roundtrip(params, compress="always")
    assert snr_db(ref, out[: len(ref)]) > 20


def test_stereo_channels_stay_separate():
    """Left and right must not leak into each other through M/S coding
    or the interleaved device path."""
    params = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("st", params=params, compress="always")
    system.add_rebroadcaster(producer, channel)
    node = system.add_speaker(channel=channel)
    left = sine(440, 1.0, 44100, amplitude=0.8)
    right = np.zeros_like(left)  # right channel silent
    system.play_pcm(producer, np.stack([left, right], axis=1), params)
    system.run(until=5.0)
    # reconstruct the stereo stream from the sink records
    from repro.audio.encodings import decode_samples

    pieces = [
        decode_samples(d, p)
        for _, d, s, p in node.sink.records
        if not s
    ]
    stereo = np.concatenate(pieces, axis=0)
    n = min(len(stereo), len(left))
    left_power = float(np.mean(stereo[:n, 0] ** 2))
    right_power = float(np.mean(stereo[:n, 1] ** 2))
    assert left_power > 50 * right_power  # >17 dB separation
