"""Adversarial wire-format properties: the parser's only failure mode.

The contract under test: for *any* byte string, ``parse_packet`` either
returns a valid packet or raises :class:`ProtocolError`.  It must never
leak ``struct.error``, ``IndexError``, or ``UnicodeDecodeError`` — those
are implementation details a malformed datagram on the wire (§2.3) must
not be able to surface.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams
from repro.codec import CodecID
from repro.core.protocol import (
    _COMMON,
    _DATA,
    AnnounceEntry,
    AnnouncePacket,
    ControlPacket,
    DataPacket,
    Packet,
    ProtocolError,
    parse_packet,
)

# -- strategies --------------------------------------------------------------

# names are kept under 255 *encoded* bytes so encode() does not truncate
# them and round-trip equality is exact
_names = st.text(max_size=60).filter(lambda s: len(s.encode("utf-8")) <= 255)

_params = st.builds(
    AudioParams,
    encoding=st.sampled_from(list(AudioEncoding)),
    sample_rate=st.sampled_from([8000, 16000, 22050, 44100, 48000]),
    channels=st.sampled_from([1, 2]),
)

_floats = st.floats(min_value=0, max_value=1e9, allow_nan=False,
                    allow_infinity=False)

_control_packets = st.builds(
    ControlPacket,
    channel_id=st.integers(min_value=0, max_value=65535),
    seq=st.integers(min_value=0, max_value=2**32 - 1),
    wall_clock=_floats,
    stream_pos=_floats,
    params=_params,
    codec_id=st.sampled_from(list(CodecID)),
    quality=st.integers(min_value=0, max_value=10),
    name=_names,
)

_data_packets = st.builds(
    DataPacket,
    channel_id=st.integers(min_value=0, max_value=65535),
    seq=st.integers(min_value=0, max_value=2**32 - 1),
    play_at=_floats,
    payload=st.binary(max_size=1400),
    codec_id=st.sampled_from(list(CodecID)),
    synthetic=st.booleans(),
    pcm_bytes=st.integers(min_value=0, max_value=2**32 - 1),
)

_announce_entries = st.builds(
    AnnounceEntry,
    channel_id=st.integers(min_value=0, max_value=65535),
    group_ip=st.tuples(*[st.integers(0, 255)] * 4).map(
        lambda t: ".".join(str(b) for b in t)
    ),
    port=st.integers(min_value=0, max_value=65535),
    codec_id=st.sampled_from(list(CodecID)),
    name=_names,
)

_announce_packets = st.builds(
    AnnouncePacket,
    seq=st.integers(min_value=0, max_value=2**32 - 1),
    entries=st.lists(_announce_entries, max_size=8).map(tuple),
)

_any_packet = st.one_of(_control_packets, _data_packets, _announce_packets)


def _parse_or_protocol_error(data: bytes):
    """The universal contract: a packet or ProtocolError, nothing else."""
    try:
        return parse_packet(data)
    except ProtocolError:
        return None
    except (struct.error, IndexError, UnicodeDecodeError) as err:
        pytest.fail(f"parser leaked {type(err).__name__}: {err!r}")


# -- round trips -------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(_any_packet)
def test_any_packet_round_trips(pkt: Packet):
    assert parse_packet(pkt.encode()) == pkt


@settings(max_examples=100, deadline=None)
@given(_control_packets)
def test_control_round_trip_preserves_params(pkt: ControlPacket):
    out = parse_packet(pkt.encode())
    assert out.params == pkt.params
    assert out.codec_id is pkt.codec_id


# -- truncation --------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(_control_packets, st.data())
def test_truncated_control_always_rejected(pkt: ControlPacket, data):
    wire = pkt.encode()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    with pytest.raises(ProtocolError):
        parse_packet(wire[:cut])


@settings(max_examples=100, deadline=None)
@given(
    _announce_packets.filter(lambda p: p.entries), st.data()
)
def test_truncated_announce_always_rejected(pkt: AnnouncePacket, data):
    wire = pkt.encode()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    # every byte of an announce is promised by the count byte and the
    # per-entry name lengths, so removing any suffix must be detected
    with pytest.raises(ProtocolError):
        parse_packet(wire[:cut])


@settings(max_examples=100, deadline=None)
@given(_data_packets, st.data())
def test_truncated_data_rejected_or_valid(pkt: DataPacket, data):
    """Data payloads carry no length field (the UDP datagram *is* the
    frame), so truncation inside the payload is indistinguishable from a
    shorter block — but truncation into the header must raise."""
    wire = pkt.encode()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    if cut < _COMMON.size + _DATA.size:
        with pytest.raises(ProtocolError):
            parse_packet(wire[:cut])
    else:
        out = parse_packet(wire[:cut])
        assert isinstance(out, DataPacket)
        assert out.payload == pkt.payload[: cut - _COMMON.size - _DATA.size]


def test_control_with_trailing_junk_rejected():
    wire = ControlPacket(
        1, 1, 0.0, 0.0, AudioParams(), CodecID.RAW, 10, "name"
    ).encode()
    with pytest.raises(ProtocolError):
        parse_packet(wire + b"\x00")


# -- corruption --------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(_any_packet, st.data())
def test_single_bit_flip_never_leaks(pkt: Packet, data):
    wire = bytearray(pkt.encode())
    pos = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    wire[pos] ^= 1 << bit
    _parse_or_protocol_error(bytes(wire))


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200))
def test_random_bytes_never_leak(blob: bytes):
    _parse_or_protocol_error(blob)


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=_COMMON.size, max_size=300), st.data())
def test_valid_header_random_body_never_leaks(body: bytes, data):
    """Worst case for the sub-parsers: a well-formed common header so the
    type dispatch succeeds, followed by arbitrary bytes."""
    ptype = data.draw(st.integers(min_value=0, max_value=255))
    header = _COMMON.pack(0xE55A, 1, ptype, 1, 1, 0)
    _parse_or_protocol_error(header + body)
