"""Wire-format round trips and robustness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams
from repro.codec import CodecID
from repro.core.protocol import (
    AnnounceEntry,
    AnnouncePacket,
    ControlPacket,
    DataPacket,
    ProtocolError,
    parse_packet,
)


def test_control_round_trip():
    pkt = ControlPacket(
        channel_id=3,
        seq=42,
        wall_clock=123.456,
        stream_pos=12.5,
        params=AudioParams(AudioEncoding.SLINEAR16, 44100, 2),
        codec_id=CodecID.VORBIS_LIKE,
        quality=10,
        name="lobby music",
    )
    out = parse_packet(pkt.encode())
    assert out == pkt


def test_data_round_trip():
    pkt = DataPacket(
        channel_id=1,
        seq=7,
        play_at=3.25,
        payload=b"\x01\x02\x03" * 100,
        codec_id=CodecID.RAW,
        synthetic=False,
        pcm_bytes=300,
    )
    out = parse_packet(pkt.encode())
    assert out == pkt


def test_data_synthetic_flag_round_trip():
    pkt = DataPacket(1, 1, 0.0, b"x", CodecID.VORBIS_LIKE, True, 1000)
    assert parse_packet(pkt.encode()).synthetic is True


def test_announce_round_trip():
    pkt = AnnouncePacket(
        seq=5,
        entries=(
            AnnounceEntry(1, "239.192.0.1", 5001, CodecID.VORBIS_LIKE, "news"),
            AnnounceEntry(2, "239.192.0.2", 5002, CodecID.RAW, "lobby"),
        ),
    )
    out = parse_packet(pkt.encode())
    assert out == pkt


def test_empty_announce():
    out = parse_packet(AnnouncePacket(seq=1).encode())
    assert out.entries == ()


def test_garbage_rejected():
    with pytest.raises(ProtocolError):
        parse_packet(b"not a packet at all, definitely")
    with pytest.raises(ProtocolError):
        parse_packet(b"\x00")
    with pytest.raises(ProtocolError):
        parse_packet(b"")


def test_bad_magic_rejected():
    good = DataPacket(1, 1, 0.0, b"x").encode()
    with pytest.raises(ProtocolError):
        parse_packet(b"\xff\xff" + good[2:])


def test_bad_version_rejected():
    good = DataPacket(1, 1, 0.0, b"x").encode()
    bad = good[:2] + b"\x63" + good[3:]
    with pytest.raises(ProtocolError):
        parse_packet(bad)


def test_unknown_type_rejected():
    good = DataPacket(1, 1, 0.0, b"x").encode()
    bad = good[:3] + b"\x09" + good[4:]
    with pytest.raises(ProtocolError):
        parse_packet(bad)


def test_truncated_control_rejected():
    wire = ControlPacket(
        1, 1, 0.0, 0.0, AudioParams(), CodecID.RAW, 10, "name"
    ).encode()
    with pytest.raises(ProtocolError):
        parse_packet(wire[: len(wire) // 2])


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.sampled_from(list(AudioEncoding)),
    st.sampled_from([8000, 22050, 44100, 48000]),
    st.sampled_from([1, 2]),
    st.sampled_from(list(CodecID)),
    st.integers(min_value=0, max_value=10),
    st.text(max_size=60),
)
def test_property_control_round_trip(
    channel_id, seq, wall, pos, enc, rate, channels, codec, quality, name
):
    pkt = ControlPacket(
        channel_id=channel_id,
        seq=seq,
        wall_clock=wall,
        stream_pos=pos,
        params=AudioParams(enc, rate, channels),
        codec_id=codec,
        quality=quality,
        name=name,
    )
    assert parse_packet(pkt.encode()) == pkt


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.binary(max_size=2000),
    st.sampled_from(list(CodecID)),
    st.booleans(),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_data_round_trip(
    channel_id, seq, play_at, payload, codec, synthetic, pcm_bytes
):
    pkt = DataPacket(
        channel_id=channel_id,
        seq=seq,
        play_at=play_at,
        payload=payload,
        codec_id=codec,
        synthetic=synthetic,
        pcm_bytes=pcm_bytes,
    )
    assert parse_packet(pkt.encode()) == pkt


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_property_arbitrary_bytes_never_crash(data):
    """The parser either returns a packet or raises ProtocolError —
    never anything else (a speaker must survive any LAN garbage)."""
    try:
        parse_packet(data)
    except ProtocolError:
        pass
