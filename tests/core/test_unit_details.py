"""Unit-level checks on rebroadcaster and speaker internals."""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.codec import CodecID
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import ControlPacket, DataPacket

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(compress="never", **rb_kw):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("ch", params=LOW, compress=compress)
    rb = system.add_rebroadcaster(producer, channel, **rb_kw)
    node = system.add_speaker(channel=channel)
    return system, producer, channel, rb, node


def test_rebroadcaster_stats_accounting():
    system, producer, channel, rb, node = build()
    x = sine(440, 2.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=5.0)
    st = rb.stats
    assert st.raw_bytes == len(x) * 2
    assert st.sent_payload_bytes == st.raw_bytes  # raw channel
    assert st.compression_ratio == 1.0
    assert st.data_sent == node.stats.data_rx
    assert st.control_sent == node.stats.control_rx
    assert st.records_in == st.data_sent + 1  # + the config record


def test_compression_ratio_reported():
    """On CD-quality blocks the codec compresses well; the ratio is
    reported from real byte counts.  (Tiny low-bit-rate blocks barely
    compress at q=10 — one more reason §2.2 leaves them raw.)"""
    from repro.audio import CD_QUALITY, music

    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("cd", params=CD_QUALITY, compress="always")
    rb = system.add_rebroadcaster(producer, channel)
    node = system.add_speaker(channel=channel)
    system.play_pcm(producer, music(2.0, 44100, seed=2), CD_QUALITY)
    system.run(until=5.0)
    assert 0.0 < rb.stats.compression_ratio < 0.6
    assert rb.stats.sent_payload_bytes < rb.stats.raw_bytes


def test_control_packets_carry_current_codec():
    system, producer, channel, rb, node = build(compress="always")
    captured = []

    def tap(dgram):
        from repro.core.protocol import parse_packet

        try:
            captured.append(parse_packet(dgram.payload))
        except Exception:
            pass

    system.lan.add_tap(tap)
    system.play_pcm(producer, sine(440, 1.0, 8000), LOW)
    system.run(until=3.0)
    controls = [p for p in captured if isinstance(p, ControlPacket)]
    datas = [p for p in captured if isinstance(p, DataPacket)]
    assert controls and datas
    assert all(c.codec_id == CodecID.VORBIS_LIKE for c in controls)
    assert all(d.codec_id == CodecID.VORBIS_LIKE for d in datas)
    assert all(c.params == LOW for c in controls)
    # control packets interleave: first packet on the wire is a control
    assert isinstance(captured[0], ControlPacket)


def test_control_interval_respected():
    system, producer, channel, rb, node = build(control_interval=0.5)
    system.play_synthetic(producer, 10.0, LOW)
    system.run(until=12.0)
    # one control per interval over the 10 s stream, +/- edge effects
    assert 18 <= rb.stats.control_sent <= 23


def test_play_timestamps_match_stream_arithmetic():
    system, producer, channel, rb, node = build()
    captured = []

    def tap(dgram):
        from repro.core.protocol import parse_packet

        try:
            pkt = parse_packet(dgram.payload)
            if isinstance(pkt, DataPacket):
                captured.append(pkt)
        except Exception:
            pass

    system.lan.add_tap(tap)
    system.play_synthetic(producer, 3.0, LOW)
    system.run(until=6.0)
    # play_at advances by exactly the PCM duration of each payload
    pos = 0.0
    for pkt in captured:
        assert pkt.play_at == pytest.approx(pos, abs=1e-9)
        pos += LOW.duration_of(pkt.pcm_bytes)


def test_speaker_state_property():
    system, producer, channel, rb, node = build()
    assert node.speaker.state == "waiting"
    system.play_synthetic(producer, 1.0, LOW)
    system.run(until=3.0)
    assert node.speaker.state == "playing"


def test_retune_resets_sync_state():
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    a = system.add_channel("a", params=LOW, compress="never")
    b = system.add_channel("b", params=LOW, compress="never")
    system.add_rebroadcaster(producer, a)
    node = system.add_speaker(channel=a)
    system.play_synthetic(producer, 2.0, LOW)
    system.run(until=3.0)
    assert node.speaker._anchor is not None
    node.speaker.retune(b.group_ip, b.port)
    assert node.speaker._anchor is None
    assert node.speaker.state == "waiting"
    assert node.speaker.group_ip == b.group_ip


def test_synthetic_payload_plays_silence_of_right_length():
    system, producer, channel, rb, node = build()
    system.play_synthetic(producer, 2.0, LOW)
    system.run(until=5.0)
    # synthetic blocks expand to their pcm_bytes as silence
    assert node.sink.played_seconds == pytest.approx(2.0, abs=0.2)
    import numpy as np

    assert float(np.max(np.abs(node.sink.waveform()))) == 0.0


def test_speaker_gain_scales_output():
    system, producer, channel, rb, node = build()
    node.speaker.gain = 0.5
    x = sine(440, 1.0, 8000, amplitude=0.8)
    system.play_pcm(producer, x, LOW)
    system.run(until=4.0)
    import numpy as np

    out = node.sink.waveform()
    assert float(np.max(np.abs(out))) == pytest.approx(0.4, abs=0.02)
    assert node.speaker.last_output_rms == pytest.approx(
        0.4 / np.sqrt(2), rel=0.05
    )


def test_stopping_speaker_stops_reception():
    system, producer, channel, rb, node = build()
    system.play_synthetic(producer, 5.0, LOW)
    system.sim.schedule(2.0, node.speaker.stop)
    system.run(until=8.0)
    seen = node.stats.data_rx
    assert seen < rb.stats.data_sent  # stopped listening early
