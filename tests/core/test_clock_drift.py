"""DAC crystal drift across speakers (§3.2's hardware phase differences).

The paper waves this away — "our initial testing indicates that any phase
difference attributed to network delay or otherwise is inaudible".  Here
we check *when* that holds: at real crystal tolerances (±100 ppm) the
divergence over a whole song stays inaudible, and we quantify where the
assumption would break.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def run_drifted(ppm_a: float, ppm_b: float, duration: float = 60.0):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("pa", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=1.0)
    a = system.add_speaker(channel=channel, dac_drift_ppm=ppm_a)
    b = system.add_speaker(channel=channel, dac_drift_ppm=ppm_b)
    system.play_synthetic(producer, duration, LOW)
    system.run(until=duration + 5.0)
    return system, a, b


def test_crystal_tolerance_drift_stays_inaudible():
    """±100 ppm crystals, a 60 s stream: divergence ~12 ms, inaudible —
    the paper's empirical claim holds at spec'd tolerances."""
    system, a, b = run_drifted(+100.0, -100.0)
    report = system.skew_report([a, b])
    assert report["positions"] > 100
    # 200 ppm relative drift x 60 s = 12 ms at the end of the stream
    assert 0.004 < report["max_skew"] < 0.016
    assert report["max_skew"] < 0.030  # inaudible (echo threshold)


def test_zero_drift_zero_skew():
    system, a, b = run_drifted(0.0, 0.0, duration=20.0)
    assert system.skew_report([a, b])["max_skew"] < 1e-6


def test_skew_grows_linearly_with_time():
    """The divergence is cumulative: skew at the end of the stream is
    roughly twice the skew at the middle."""
    system, a, b = run_drifted(+150.0, -150.0, duration=40.0)
    log_a = dict(a.stats.write_offsets)
    log_b = dict(b.stats.write_offsets)
    common = sorted(set(log_a) & set(log_b))
    early = common[len(common) // 4]
    late = common[-1]

    def skew_at(pos):
        ta = a.sink.time_at_bytes(log_a[pos])
        tb = b.sink.time_at_bytes(log_b[pos])
        return abs(ta - tb)

    assert skew_at(late) > 1.5 * skew_at(early)


def test_pathological_drift_would_be_audible():
    """Sanity bound: a broken 5000 ppm clock diverges audibly within a
    minute — the paper's assumption is about good hardware, not magic."""
    system, a, b = run_drifted(+5000.0, 0.0, duration=30.0)
    report = system.skew_report([a, b])
    assert report["max_skew"] > 0.050


def test_drifted_speaker_still_plays_cleanly():
    """Drift shifts phase but must not cause drops or underruns: the
    producer-paced flow keeps the ring near-full either way."""
    system, a, b = run_drifted(+100.0, -100.0, duration=30.0)
    for node in (a, b):
        assert node.stats.late_dropped == 0
        assert node.stats.seq_gaps == 0
        # at most the end-of-stream drain underrun
        assert node.device.underruns <= 1
