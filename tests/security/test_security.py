"""HORS signatures, CA, authenticators, replay, and live attacks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.security import (
    CertificationAuthority,
    GarbageFlooder,
    HmacAuthenticator,
    HorsAuthenticator,
    HorsKeyPair,
    Injector,
    NullAuthenticator,
    SimulatedPkiAuthenticator,
)
from repro.security.auth import ReplayWindow
from repro.security.hors import verify
from repro.security.keys import validate_certificate

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


# -- HORS ------------------------------------------------------------------------


def test_hors_sign_verify():
    kp = HorsKeyPair(b"seed", t=256, k=16)
    sig = kp.sign(b"hello world")
    assert verify(kp.public_key, b"hello world", sig, k=16)


def test_hors_rejects_tampered_message():
    kp = HorsKeyPair(b"seed", t=256, k=16)
    sig = kp.sign(b"hello world")
    assert not verify(kp.public_key, b"hello w0rld", sig, k=16)


def test_hors_rejects_wrong_key():
    kp1 = HorsKeyPair(b"one", t=256, k=16)
    kp2 = HorsKeyPair(b"two", t=256, k=16)
    sig = kp1.sign(b"msg")
    assert not verify(kp2.public_key, b"msg", sig, k=16)


def test_hors_signature_encoding_round_trip():
    from repro.security.hors import HorsSignature

    kp = HorsKeyPair(b"seed", t=256, k=16)
    sig = kp.sign(b"payload")
    decoded, consumed = HorsSignature.decode(sig.encode())
    assert decoded == sig
    assert consumed == len(sig.encode())


def test_hors_exhaustion_tracking():
    kp = HorsKeyPair(b"seed", t=256, k=16)
    assert kp.max_signatures == 4
    for _ in range(4):
        kp.sign(b"x")
    assert kp.exhausted


def test_hors_invalid_params():
    with pytest.raises(ValueError):
        HorsKeyPair(b"s", t=100)  # not a power of two
    with pytest.raises(ValueError):
        HorsKeyPair(b"s", t=256, k=0)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_property_hors_round_trip_any_message(message):
    kp = HorsKeyPair(b"prop-seed", t=128, k=8)
    assert verify(kp.public_key, message, kp.sign(message), k=8)


# -- CA ----------------------------------------------------------------------------


def test_ca_certificate_validates_against_pinned_digest():
    ca = CertificationAuthority(seed=b"test-ca")
    pinned = ca.public_key_digest()
    stream_key = HorsKeyPair(b"stream", t=256, k=16)
    cert = ca.certify(7, stream_key.public_key)
    assert validate_certificate(cert, pinned)


def test_ca_certificate_fails_with_wrong_pin():
    ca = CertificationAuthority(seed=b"test-ca")
    evil = CertificationAuthority(seed=b"evil-ca")
    stream_key = HorsKeyPair(b"stream", t=256, k=16)
    cert = evil.certify(7, stream_key.public_key)
    assert not validate_certificate(cert, ca.public_key_digest())


def test_ca_rolls_keys_when_exhausted():
    ca = CertificationAuthority(seed=b"x", t=64, k=8)
    pins = set()
    for i in range(10):
        ca.certify(i, HorsKeyPair(b"s%d" % i, t=64, k=8).public_key)
        pins.add(ca.public_key_digest())
    assert len(pins) > 1  # rolled at least once


# -- authenticators ----------------------------------------------------------------


@pytest.mark.parametrize(
    "make",
    [
        lambda: NullAuthenticator(),
        lambda: HmacAuthenticator(b"k" * 32),
        lambda: HorsAuthenticator(
            CertificationAuthority(), 1, b"stream-seed"
        ),
        lambda: SimulatedPkiAuthenticator(b"k" * 32),
    ],
)
def test_wrap_unwrap_round_trip(make):
    auth = make()
    packet = b"the packet body" * 10
    assert auth.unwrap(auth.wrap(packet)) == packet


@pytest.mark.parametrize(
    "make",
    [
        lambda: HmacAuthenticator(b"k" * 32),
        lambda: HorsAuthenticator(CertificationAuthority(), 1, b"seed"),
        lambda: SimulatedPkiAuthenticator(b"k" * 32),
    ],
)
def test_tampering_detected(make):
    auth = make()
    env = bytearray(auth.wrap(b"honest data"))
    env[-1] ^= 0xFF
    assert auth.unwrap(bytes(env)) is None


def test_hmac_wrong_key_rejected():
    a = HmacAuthenticator(b"a" * 32)
    b = HmacAuthenticator(b"b" * 32)
    assert b.unwrap(a.wrap(b"data")) is None


def test_replay_rejected():
    auth = HmacAuthenticator(b"k" * 32)
    env = auth.wrap(b"data")
    assert auth.unwrap(env) == b"data"
    assert auth.unwrap(env) is None  # replayed


def test_replay_window_semantics():
    w = ReplayWindow(size=4)
    assert w.accept(1) and w.accept(2)
    assert not w.accept(1)
    assert w.accept(100)
    assert not w.accept(90)  # fell out of the window
    assert w.accept(99)


def test_hors_authenticator_rotates_keys():
    auth = HorsAuthenticator(
        CertificationAuthority(), 1, b"seed", t=64, k=8
    )
    for i in range(20):
        packet = b"pkt %d" % i
        assert auth.unwrap(auth.wrap(packet)) == packet
    assert auth.rotations > 0


def test_garbage_never_unwraps():
    import numpy as np

    rng = np.random.default_rng(1)
    auths = [
        HmacAuthenticator(b"k" * 32),
        HorsAuthenticator(CertificationAuthority(), 1, b"seed"),
        SimulatedPkiAuthenticator(b"k" * 32),
    ]
    for _ in range(50):
        junk = rng.integers(0, 256, rng.integers(1, 400), dtype=np.uint8)
        for auth in auths:
            assert auth.unwrap(junk.tobytes()) is None


def test_verify_costs_ordering():
    """The §5.1 argument in numbers: PKI verify is orders of magnitude
    dearer than HMAC or HORS."""
    hmac_auth = HmacAuthenticator(b"k" * 32)
    hors_auth = HorsAuthenticator(CertificationAuthority(), 1, b"s")
    pki_auth = SimulatedPkiAuthenticator(b"k" * 32)
    n = 1024
    assert pki_auth.verify_cycles(n) > 10 * hors_auth.verify_cycles(n)
    assert pki_auth.verify_cycles(n) > 10 * hmac_auth.verify_cycles(n)


# -- live attacks -----------------------------------------------------------------


def secure_system(auth_factory):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("secure", params=LOW, compress="never")
    sender_auth = auth_factory()
    system.add_rebroadcaster(producer, channel, authenticator=sender_auth)
    node = system.add_speaker(channel=channel, verifier=sender_auth)
    return system, producer, channel, node


def test_injected_packets_rejected_with_auth():
    system, producer, channel, node = secure_system(
        lambda: HmacAuthenticator(b"k" * 32)
    )
    attacker = system.add_producer(name="attacker", housekeeping=False)
    Injector(attacker.machine, channel, rate_pps=50).start()
    x = sine(440, 3.0, 8000)
    system.play_pcm(producer, x, LOW)
    system.run(until=6.0)
    st = node.stats
    assert st.auth_rejected > 50  # forgeries spotted
    assert st.played > 0  # the honest stream still plays
    assert node.sink.audio_seconds == pytest.approx(3.0, abs=0.3)


def test_injected_packets_pollute_without_auth():
    """Control experiment: with no authentication the forged packets are
    indistinguishable and do reach the playback path."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("open", params=LOW, compress="never")
    system.add_rebroadcaster(producer, channel)
    node = system.add_speaker(channel=channel)
    attacker = system.add_producer(name="attacker", housekeeping=False)
    Injector(attacker.machine, channel, rate_pps=50).start()
    system.play_pcm(producer, sine(440, 3.0, 8000), LOW)
    system.run(until=6.0)
    # attacker data counted as received data packets (seq chaos etc.)
    assert node.stats.data_rx > 46 + 100  # real blocks + many forgeries


def test_garbage_flood_is_cheap_for_fast_verifier_fatal_for_pki():
    """DoS resistance (§5.1): measure speaker CPU under a flood."""
    def run(auth_factory):
        system, producer, channel, node = secure_system(auth_factory)
        GarbageFlooder(
            system.add_producer(name="flood", housekeeping=False).machine,
            channel.group_ip,
            channel.port,
            rate_pps=300,
        ).start()
        system.play_pcm(producer, sine(440, 3.0, 8000), LOW)
        system.run(until=5.0)
        busy = node.machine.cpu.stats.busy_seconds / system.sim.now
        return busy, node

    hmac_busy, hmac_node = run(lambda: HmacAuthenticator(b"k" * 32))
    pki_busy, pki_node = run(lambda: SimulatedPkiAuthenticator(b"k" * 32))
    assert pki_busy > 3 * hmac_busy  # flood verification burns the CPU
    assert hmac_node.stats.played > 0
