"""Machine: devices, fds, syscall costs."""

import pytest

from repro.kernel import DeviceError, Machine
from repro.kernel.devices import NullDevice
from repro.sim import Simulator, Sleep


def test_open_write_close_null():
    sim = Simulator()
    m = Machine(sim, "box")
    m.register_device("/dev/null", NullDevice())

    def proc():
        fd = yield from m.sys_open("/dev/null")
        n = yield from m.sys_write(fd, b"hello")
        yield from m.sys_close(fd)
        return (fd, n)

    p = m.spawn(proc())
    sim.run()
    assert p.result == (3, 5)


def test_open_missing_device_raises():
    sim = Simulator()
    m = Machine(sim, "box")

    def proc():
        try:
            yield from m.sys_open("/dev/nope")
        except DeviceError:
            return "enoent"

    p = m.spawn(proc())
    sim.run()
    assert p.result == "enoent"


def test_bad_fd_raises():
    sim = Simulator()
    m = Machine(sim, "box")

    def proc():
        try:
            yield from m.sys_write(42, b"x")
        except DeviceError:
            return "ebadf"

    p = m.spawn(proc())
    sim.run()
    assert p.result == "ebadf"


def test_fd_invalid_after_close():
    sim = Simulator()
    m = Machine(sim, "box")
    m.register_device("/dev/null", NullDevice())

    def proc():
        fd = yield from m.sys_open("/dev/null")
        yield from m.sys_close(fd)
        try:
            yield from m.sys_write(fd, b"x")
        except DeviceError:
            return "closed"

    p = m.spawn(proc())
    sim.run()
    assert p.result == "closed"


def test_syscalls_charge_system_time():
    sim = Simulator()
    m = Machine(sim, "box", cpu_freq_hz=100e6, switch_cost=0.0)
    m.register_device("/dev/null", NullDevice())

    def proc():
        fd = yield from m.sys_open("/dev/null")
        yield from m.sys_write(fd, bytes(10000))

    m.spawn(proc())
    sim.run()
    expected_cycles = (
        2 * Machine.syscall_cycles + Machine.copy_cycles_per_byte * 10000
    )
    assert m.cpu.stats.domain_seconds["sys"] == pytest.approx(
        expected_cycles / 100e6, rel=0.01
    )


def test_write_cost_scales_with_size():
    durations = {}
    for size in (1000, 100000):
        sim = Simulator()
        m = Machine(sim, "box", cpu_freq_hz=100e6)
        m.register_device("/dev/null", NullDevice())

        def proc(n=size):
            fd = yield from m.sys_open("/dev/null")
            yield from m.sys_write(fd, bytes(n))
            return sim.now

        p = m.spawn(proc())
        sim.run()
        durations[size] = p.result
    assert durations[100000] > durations[1000]


def test_housekeeping_produces_baseline_switches():
    """The 'Unloaded Machine' line of Figure 5: a few switches/second."""
    sim = Simulator()
    m = Machine(sim, "box")
    m.start_housekeeping(wakes_per_second=2.0)
    sim.run(until=10.0)
    rate = m.cpu.stats.context_switches / 10.0
    assert 2.0 <= rate <= 8.0


def test_attach_network():
    from repro.net import EthernetSegment

    sim = Simulator()
    lan = EthernetSegment(sim)
    m = Machine(sim, "box")
    stack = m.attach_network(lan, "10.0.0.7")
    assert m.net is stack
    assert stack.ip == "10.0.0.7"
