"""High-level audio driver + simulated hardware: the audio(4) contract."""

import numpy as np
import pytest

from repro.audio import (
    AudioEncoding,
    AudioParams,
    encode_samples,
    sine,
    snr_db,
)
from repro.kernel import (
    AUDIO_DRAIN,
    AUDIO_FLUSH,
    AUDIO_GETINFO,
    AUDIO_SETINFO,
    AudioDevice,
    HardwareAudioDriver,
    Machine,
    SpeakerSink,
)
from repro.sim import Simulator, Sleep

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(sim, freq=500e6):
    machine = Machine(sim, "host", cpu_freq_hz=freq)
    sink = SpeakerSink()
    hw = HardwareAudioDriver(machine, sink)
    dev = AudioDevice(machine, hw, block_seconds=0.05)
    machine.register_device("/dev/audio", dev)
    return machine, dev, sink


def play(machine, samples, params=PARAMS, drain=True):
    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
        data = encode_samples(samples, params)
        yield from machine.sys_write(fd, data)
        if drain:
            yield from machine.sys_ioctl(fd, AUDIO_DRAIN)
        yield from machine.sys_close(fd)
        return machine.sim.now

    return machine.spawn(app())


def test_playback_reproduces_waveform():
    sim = Simulator()
    machine, dev, sink = build(sim)
    x = sine(440, 1.0, 8000)
    play(machine, x)
    sim.run()
    out = sink.waveform()
    # leading/trailing silence from block padding allowed; content intact
    assert snr_db(x, out[: len(x)]) > 30


def test_playback_is_rate_limited_by_hardware():
    """§3.1: five seconds of audio take five seconds to play."""
    sim = Simulator()
    machine, dev, sink = build(sim)
    x = sine(440, 5.0, 8000)
    p = play(machine, x)
    sim.run()
    # write+drain completes no earlier than the hardware can play
    assert p.result >= 4.9
    assert sink.audio_seconds == pytest.approx(5.0, abs=0.11)


def test_writer_blocks_at_hiwat():
    sim = Simulator()
    machine, dev, sink = build(sim)
    x = sine(440, 5.0, 8000)
    p = play(machine, x, drain=False)
    sim.run()
    # even without drain, the write itself cannot finish much before
    # playback frees ring space: finish >= duration - ring capacity
    ring_seconds = dev.hiwat / PARAMS.bytes_per_second
    assert p.result >= 5.0 - ring_seconds - 0.2


def test_underrun_inserts_silence():
    sim = Simulator()
    machine, dev, sink = build(sim)

    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        chunk = encode_samples(sine(440, 0.3, 8000), PARAMS)
        yield from machine.sys_write(fd, chunk)
        yield Sleep(1.0)  # starve the device
        yield from machine.sys_write(fd, chunk)
        yield from machine.sys_ioctl(fd, AUDIO_DRAIN)

    machine.spawn(app())
    sim.run()
    assert dev.underruns >= 1
    assert dev.silence_bytes > 0
    assert sink.silence_events >= 1


def test_output_halts_after_sustained_underrun_and_restarts():
    sim = Simulator()
    machine, dev, sink = build(sim)

    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        chunk = encode_samples(sine(440, 0.2, 8000), PARAMS)
        yield from machine.sys_write(fd, chunk)
        yield Sleep(5.0)
        yield from machine.sys_write(fd, chunk)
        yield from machine.sys_ioctl(fd, AUDIO_DRAIN)

    machine.spawn(app())
    sim.run()
    # silence insertion stopped after MAX_SILENT_BLOCKS, not 5 s worth
    max_silence = (dev.MAX_SILENT_BLOCKS + 2) * dev.blocksize
    assert dev.silence_bytes <= max_silence
    # and the second burst still played
    assert sink.audio_seconds == pytest.approx(0.4, abs=0.12)


def test_getinfo_reports_geometry():
    sim = Simulator()
    machine, dev, sink = build(sim)

    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        info = yield from machine.sys_ioctl(fd, AUDIO_GETINFO)
        return info

    p = machine.spawn(app())
    sim.run()
    assert p.result["params"] == PARAMS
    assert p.result["blocksize"] == PARAMS.bytes_for(0.05)
    assert p.result["hiwat"] == 8 * p.result["blocksize"]


def test_setinfo_recomputes_blocksize():
    sim = Simulator()
    machine, dev, sink = build(sim)
    cd = AudioParams(AudioEncoding.SLINEAR16, 44100, 2)

    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, cd)

    machine.spawn(app())
    sim.run()
    assert dev.blocksize == cd.bytes_for(0.05)
    assert dev.blocksize % cd.frame_bytes == 0


def test_flush_discards_buffer():
    sim = Simulator()
    machine, dev, sink = build(sim)

    def app():
        fd = yield from machine.sys_open("/dev/audio")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        yield from machine.sys_write(
            fd, encode_samples(sine(440, 0.4, 8000), PARAMS)
        )
        yield from machine.sys_ioctl(fd, AUDIO_FLUSH)
        return dev.level

    p = machine.spawn(app())
    sim.run()
    assert p.result == 0


def test_mulaw_stream_plays():
    sim = Simulator()
    machine, dev, sink = build(sim)
    params = AudioParams(AudioEncoding.ULAW, 8000, 1)
    x = sine(440, 0.5, 8000, amplitude=0.5)
    play(machine, x, params=params)
    sim.run()
    out = sink.waveform()
    assert snr_db(x, out[: len(x)]) > 20


def test_dma_interrupts_charge_cpu():
    sim = Simulator()
    machine, dev, sink = build(sim)
    play(machine, sine(440, 1.0, 8000))
    sim.run()
    assert machine.cpu.stats.domain_seconds["intr"] > 0


def test_slow_cpu_still_plays_clean():
    """The EON 4000's 233 MHz is 'perfectly adequate' (§3.4) for playback."""
    sim = Simulator()
    machine, dev, sink = build(sim, freq=233e6)
    x = sine(440, 2.0, 8000)
    play(machine, x)
    sim.run()
    assert snr_db(x, sink.waveform()[: len(x)]) > 30
    assert dev.underruns == 0
