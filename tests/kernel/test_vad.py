"""The Virtual Audio Device: transparency, ordering, flow control (§2.1, §3.3)."""

import numpy as np
import pytest

from repro.audio import (
    AudioEncoding,
    AudioParams,
    decode_samples,
    encode_samples,
    sine,
    snr_db,
)
from repro.kernel import AUDIO_SETINFO, Machine, VadPair, VadRecord
from repro.sim import Simulator, Sleep, Timeout

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build(sim, strategy="kthread", **kw):
    machine = Machine(sim, "producer")
    pair = VadPair(machine, strategy=strategy, **kw)
    return machine, pair


def writer_app(machine, samples, params=PARAMS):
    def app():
        fd = yield from machine.sys_open("/dev/vads")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
        yield from machine.sys_write(fd, encode_samples(samples, params))
        yield from machine.sys_close(fd)

    return machine.spawn(app(), name="writer")


def collect_records(machine, out, stop_after_bytes):
    """Reader process: drain master records until enough data arrived."""

    def app():
        fd = yield from machine.sys_open("/dev/vadm")
        got = 0
        while got < stop_after_bytes:
            rec = yield from machine.sys_read(fd, 65536)
            out.append(rec)
            if rec.kind == "data":
                got += len(rec.payload)

    return machine.spawn(app(), name="reader")


@pytest.mark.parametrize("strategy", ["kthread", "modified"])
def test_config_record_precedes_data(strategy):
    sim = Simulator()
    machine, pair = build(sim, strategy)
    x = sine(440, 0.5, 8000)
    records = []
    writer_app(machine, x)
    collect_records(machine, records, stop_after_bytes=len(x) * 2)
    sim.run()
    kinds = [r.kind for r in records]
    assert kinds[0] == "config"
    assert records[0].params == PARAMS
    assert all(k == "data" for k in kinds[1:])


@pytest.mark.parametrize("strategy", ["kthread", "modified"])
def test_audio_passes_through_bit_exact(strategy):
    """§2.1: redirection is totally transparent — every byte the app wrote
    appears on the master side, in order."""
    sim = Simulator()
    machine, pair = build(sim, strategy)
    x = sine(440, 1.0, 8000)
    wire = encode_samples(x, PARAMS)
    records = []
    writer_app(machine, x)
    collect_records(machine, records, stop_after_bytes=len(wire))
    sim.run()
    payload = b"".join(r.payload for r in records if r.kind == "data")
    assert payload[: len(wire)] == wire


def test_vad_is_not_rate_limited():
    """§3.1: 'the producer will essentially send the entire file at wire
    speed' — a 60-second clip moves through the VAD in well under a second
    of virtual time."""
    sim = Simulator()
    machine, pair = build(sim, "kthread")
    x = sine(440, 60.0, 8000)
    wire_len = len(x) * 2
    records = []
    w = writer_app(machine, x)
    r = collect_records(machine, records, stop_after_bytes=wire_len)
    sim.run()
    assert not w.alive and not r.alive
    assert sim.now < 1.0  # 60 s of audio in < 1 s: no rate limit


def test_slow_reader_backpressures_writer():
    """Flow control: with the master reader stalled, the writer blocks at
    ring+queue capacity instead of data vanishing."""
    sim = Simulator()
    machine, pair = build(sim, "kthread", queue_blocks=4)
    x = sine(440, 20.0, 8000)
    w = writer_app(machine, x)
    sim.run(until=5.0)
    assert w.alive  # writer is stuck: nobody reads the master
    capacity = pair.slave.hiwat + 4 * pair.slave.blocksize
    assert pair.slave.bytes_written <= capacity + pair.slave.blocksize * 2


def test_reconfiguration_mid_stream():
    """New SETINFO mid-stream must surface as a config record positioned
    between the old-format and new-format data."""
    sim = Simulator()
    machine, pair = build(sim, "kthread")
    p1 = PARAMS
    p2 = AudioParams(AudioEncoding.ULAW, 8000, 1)
    x = sine(330, 0.3, 8000)

    def app():
        fd = yield from machine.sys_open("/dev/vads")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, p1)
        yield from machine.sys_write(fd, encode_samples(x, p1))
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, p2)
        yield from machine.sys_write(fd, encode_samples(x, p2))

    machine.spawn(app(), name="writer")
    records = []
    collect_records(
        machine, records, stop_after_bytes=len(x) * 2 + len(x)
    )
    sim.run()
    kinds = [(r.kind, r.params) for r in records]
    config_positions = [i for i, r in enumerate(records) if r.kind == "config"]
    assert len(config_positions) == 2
    first_cfg, second_cfg = config_positions
    assert records[first_cfg].params == p1
    assert records[second_cfg].params == p2
    # all data between the two configs decodes under p1's byte count
    between = sum(
        len(r.payload)
        for r in records[first_cfg + 1 : second_cfg]
        if r.kind == "data"
    )
    assert between == len(x) * 2  # the p1-format bytes, exactly


def test_data_records_have_increasing_seq():
    sim = Simulator()
    machine, pair = build(sim, "kthread")
    x = sine(440, 0.5, 8000)
    records = []
    writer_app(machine, x)
    collect_records(machine, records, stop_after_bytes=len(x) * 2)
    sim.run()
    seqs = [r.seq for r in records if r.kind == "data"]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_kernel_consumer_mode():
    """Preliminary in-kernel streaming design (§3.3): records go to a
    kernel-resident consumer, never to the master device."""
    sim = Simulator()
    machine = Machine(sim, "producer")
    consumed = []

    def consumer(record):
        consumed.append(record)
        yield machine.cpu.run(1000, domain="sys")

    pair = VadPair(machine, strategy="kthread", kernel_consumer=consumer)
    x = sine(440, 0.5, 8000)
    writer_app(machine, x)
    sim.run()
    data = b"".join(r.payload for r in consumed if r.kind == "data")
    assert len(data) >= len(x) * 2 - pair.slave.blocksize
    assert len(pair.master_queue) == 0


def test_modified_strategy_spawns_no_kthread():
    sim = Simulator()
    machine, pair = build(sim, "modified")
    x = sine(440, 0.3, 8000)
    records = []
    writer_app(machine, x)
    collect_records(machine, records, stop_after_bytes=len(x) * 2)
    sim.run()
    assert pair._kthread is None


def test_user_level_strategy_costs_more_context_switches():
    """The essence of Figure 5: moving the stream consumer to user space
    costs measurably more context switches than in-kernel streaming."""

    def run(kernel_mode):
        sim = Simulator()
        machine = Machine(sim, "producer")
        if kernel_mode:
            def consumer(record):
                yield machine.cpu.run(2000, domain="sys")
            pair = VadPair(machine, kernel_consumer=consumer)
        else:
            pair = VadPair(machine)
            records = []
            collect_records(machine, records, stop_after_bytes=10**9)
        x = sine(440, 10.0, 8000)

        def app():
            fd = yield from machine.sys_open("/dev/vads")
            yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
            data = encode_samples(x, PARAMS)
            # paced writes so switches accumulate over time, as in Fig 5
            step = PARAMS.bytes_for(0.5)
            for pos in range(0, len(data), step):
                yield from machine.sys_write(fd, data[pos : pos + step])
                yield Sleep(0.5)

        machine.spawn(app(), name="writer")
        sim.run(until=10.0)
        return machine.cpu.stats.context_switches

    kernel_switches = run(kernel_mode=True)
    user_switches = run(kernel_mode=False)
    assert user_switches > kernel_switches


def test_invalid_strategy_rejected():
    sim = Simulator()
    machine = Machine(sim, "m")
    with pytest.raises(ValueError):
        VadPair(machine, strategy="bogus")
    with pytest.raises(ValueError):
        VadPair(
            machine,
            strategy="modified",
            kernel_consumer=lambda r: iter(()),
            slave_path="/dev/vads2",
            master_path="/dev/vadm2",
        )


def test_close_wakes_blocked_reader():
    sim = Simulator()
    machine, pair = build(sim, "kthread")

    def reader():
        fd = yield from machine.sys_open("/dev/vadm")
        try:
            yield from machine.sys_read(fd, 1024)
        except Exception as err:
            return type(err).__name__

    p = machine.spawn(reader())
    sim.schedule(1.0, pair.close)
    sim.run()
    assert p.result == "QueueClosed"
