"""Microphone capture device and the mic-driven auto-volume path (§5.2)."""

import numpy as np
import pytest

from repro.audio import AudioEncoding, AudioParams, decode_samples, sine
from repro.audio.room import AmbientProfile, Room
from repro.core import EthernetSpeakerSystem
from repro.kernel import AUDIO_GETINFO, Machine, MicDevice
from repro.mgmt import AutoVolumeController
from repro.sim import Simulator, Sleep

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
LOW = PARAMS


def build_mic(sim, ambient=0.3, coupling=0.5):
    machine = Machine(sim, "es")
    room = Room(AmbientProfile.constant(ambient), coupling=coupling)
    mic = MicDevice(machine, room, params=PARAMS, seed=4)
    machine.register_device("/dev/mic", mic)
    return machine, room, mic


def test_mic_read_blocks_until_captured():
    sim = Simulator()
    machine, room, mic = build_mic(sim)

    def app():
        fd = yield from machine.sys_open("/dev/mic")
        data = yield from machine.sys_read(fd, PARAMS.bytes_for(0.2))
        return (sim.now, data)

    p = machine.spawn(app())
    sim.run(until=2.0)
    t, data = p.result
    assert t >= 0.2  # had to wait for the capture
    assert len(data) == PARAMS.bytes_for(0.2)


def test_mic_level_tracks_ambient():
    readings = {}
    for ambient in (0.05, 0.5):
        sim = Simulator()
        machine, room, mic = build_mic(sim, ambient=ambient)

        def app():
            fd = yield from machine.sys_open("/dev/mic")
            data = yield from machine.sys_read(fd, PARAMS.bytes_for(0.5))
            samples = decode_samples(data, PARAMS)
            return float(np.sqrt(np.mean(samples**2)))

        p = machine.spawn(app())
        sim.run(until=2.0)
        readings[ambient] = p.result
    assert readings[0.05] == pytest.approx(0.05, rel=0.2)
    assert readings[0.5] == pytest.approx(0.5, rel=0.2)


def test_mic_hears_speaker_output():
    sim = Simulator()
    machine, room, mic = build_mic(sim, ambient=0.0, coupling=0.5)
    room.speaker_rms = 0.8

    def app():
        fd = yield from machine.sys_open("/dev/mic")
        data = yield from machine.sys_read(fd, PARAMS.bytes_for(0.5))
        samples = decode_samples(data, PARAMS)
        return float(np.sqrt(np.mean(samples**2)))

    p = machine.spawn(app())
    sim.run(until=2.0)
    assert p.result == pytest.approx(0.4, rel=0.2)  # coupling x output


def test_mic_ring_bounded_without_reader():
    sim = Simulator()
    machine, room, mic = build_mic(sim)
    mic.open(machine)  # start capture, nobody reads
    sim.run(until=10.0)
    assert mic.overruns > 0
    assert mic._level <= mic.ring_blocks * PARAMS.bytes_for(0.05)


def test_mic_getinfo():
    sim = Simulator()
    machine, room, mic = build_mic(sim)

    def app():
        fd = yield from machine.sys_open("/dev/mic")
        info = yield from machine.sys_ioctl(fd, AUDIO_GETINFO)
        return info

    p = machine.spawn(app())
    sim.run(until=1.0)
    assert p.result["params"] == PARAMS


def test_auto_volume_through_real_mic_device():
    """End-to-end §5.2: the controller's only sensor is /dev/mic."""
    gains = {}
    for ambient in (0.02, 0.6):
        system = EthernetSpeakerSystem()
        producer = system.add_producer()
        ch = system.add_channel("pa", params=LOW, compress="never")
        system.add_rebroadcaster(producer, ch)
        room = Room(AmbientProfile.constant(ambient), coupling=0.5)
        node = system.add_speaker(channel=ch, room=room)
        node.machine.register_device(
            "/dev/mic", MicDevice(node.machine, room, params=LOW, seed=8)
        )
        AutoVolumeController(
            node.speaker, room, mode="music", mic_path="/dev/mic"
        ).start()
        content = sine(330, 8.0, 8000, amplitude=0.5)
        system.play_pcm(producer, content, LOW, source_paced=True)
        system.run(until=10.0)
        gains[ambient] = node.speaker.gain
    # quiet room ducks, noisy room boosts — sensed through the device
    assert gains[0.02] < gains[0.6]
