"""Property-based tests on the VAD's core invariant: bit-exact,
order-preserving pass-through for ANY write pattern (§2.1's transparency)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import AudioEncoding, AudioParams
from repro.kernel import AUDIO_SETINFO, Machine, VadPair
from repro.sim import Simulator

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def pump_through_vad(write_sizes, strategy, chunk_pause=0.0):
    """Write deterministic bytes in the given chunk sizes; drain records."""
    sim = Simulator()
    machine = Machine(sim, "m")
    pair = VadPair(machine, strategy=strategy)
    total = sum(write_sizes)
    blob = bytes(np.arange(total, dtype=np.uint8) if total else b"")
    received = bytearray()

    def writer():
        fd = yield from machine.sys_open("/dev/vads")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        pos = 0
        for size in write_sizes:
            yield from machine.sys_write(fd, blob[pos : pos + size])
            pos += size
        yield from machine.sys_close(fd)

    def reader():
        fd = yield from machine.sys_open("/dev/vadm")
        while len(received) < total:
            rec = yield from machine.sys_read(fd, 65536)
            if rec.kind == "data":
                received.extend(rec.payload)

    machine.spawn(writer())
    machine.spawn(reader())
    sim.run(until=1000.0)
    return blob, bytes(received)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=50_000), min_size=1,
             max_size=12),
    st.sampled_from(["kthread", "modified"]),
)
def test_property_vad_pass_through_any_write_pattern(write_sizes, strategy):
    """Whatever chunking the application uses, the master side sees the
    same bytes in the same order (the modified strategy may hold back a
    final partial block until close, which flushes it)."""
    blob, received = pump_through_vad(write_sizes, strategy)
    assert received[: len(blob)] == blob[: len(received)]
    # everything but at most one partial trailing block arrived
    assert len(blob) - len(received) == 0


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=20_000), min_size=1,
                max_size=6))
def test_property_vad_sequence_numbers_dense(write_sizes):
    """Data record sequence numbers are dense and start at 1."""
    sim = Simulator()
    machine = Machine(sim, "m")
    VadPair(machine)
    total = sum(write_sizes)
    seqs = []

    def writer():
        fd = yield from machine.sys_open("/dev/vads")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        pos = 0
        data = bytes(total)
        for size in write_sizes:
            yield from machine.sys_write(fd, data[pos : pos + size])
            pos += size

    def reader():
        fd = yield from machine.sys_open("/dev/vadm")
        got = 0
        while got < total:
            rec = yield from machine.sys_read(fd, 65536)
            if rec.kind == "data":
                seqs.append(rec.seq)
                got += len(rec.payload)

    machine.spawn(writer())
    machine.spawn(reader())
    sim.run(until=1000.0)
    assert seqs == list(range(1, len(seqs) + 1))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=300_000),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=4, max_value=32),
)
def test_property_flow_control_bounds_buffering(total_bytes, ring_blocks,
                                                queue_blocks):
    """With no reader, buffered bytes never exceed ring + queue capacity
    (the writer blocks; kernel memory stays bounded)."""
    sim = Simulator()
    machine = Machine(sim, "m")
    pair = VadPair(machine, ring_blocks=ring_blocks,
                   queue_blocks=queue_blocks)

    def writer():
        fd = yield from machine.sys_open("/dev/vads")
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, PARAMS)
        yield from machine.sys_write(fd, bytes(total_bytes))

    machine.spawn(writer())
    sim.run(until=100.0)
    slave = pair.slave
    capacity = slave.hiwat + (queue_blocks + 1) * slave.blocksize
    buffered = slave.level + sum(
        len(r.payload) for r in pair.master_queue._items
        if r.kind == "data"
    )
    assert buffered <= capacity
