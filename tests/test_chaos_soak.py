"""Chaos soak: node crashes composed with wire faults, many seeds.

Every scenario in the matrix — crash the primary producer, crash a
speaker, crash both, each with and without the PR 2 wire fault injector
running — must end the same way:

* **playback resumes** on every speaker before the stream ends;
* the **silence gap is bounded**: takeover timeout (or the restart
  delay) plus control cadence, watchdog granularity, and one playout
  buffer of depth — never an unbounded outage;
* the **conservation ledger closes** across the epoch boundary, wire
  faults itemised;
* the whole run is **deterministic per seed** — two executions of the
  same scenario produce bit-identical playout logs.

Set ``CHAOS_SOAK_REPORT=<path>`` to dump a per-scenario JSON report of
the measured rejoin gaps (the CI ``chaos-soak`` job uploads it as an
artifact).
"""

import json
import os

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)

CONTROL_IVL = 0.5
TAKEOVER = 1.0
CHECK = 0.2
SPEAKER_RESTART = 1.0
DURATION = 14.0
HORIZON = 13.5      # stay inside the live stream (controls stop with it)
CRASH_PRIMARY_AT = 4.0
CRASH_SPEAKER_AT = 5.0

#: worst admissible silence per fault class: decision latency + one
#: control interval to re-anchor (doubled under wire loss) + playout
#: buffering + scheduling margin
PLAYOUT = 0.400
JITTER = 0.3
GAP_BOUND = {
    "primary": TAKEOVER + CHECK + 2 * CONTROL_IVL + PLAYOUT + 0.25,
    "speaker": SPEAKER_RESTART + 2 * CONTROL_IVL + PLAYOUT + 0.25,
    # overlapping outages compound: a speaker that died while the
    # channel was already silent stays quiet from the *primary's* crash
    # until its own restart has re-anchored
    "both": (CRASH_SPEAKER_AT - CRASH_PRIMARY_AT) + 2 * JITTER
            + SPEAKER_RESTART + 2 * CONTROL_IVL + PLAYOUT + 0.25,
}

MODES = ("primary", "speaker", "both")
SEEDS = (1, 2, 3, 4)
SCENARIOS = [
    (mode, wire, seed)
    for mode in MODES for wire in (False, True) for seed in SEEDS
]
assert len(SCENARIOS) >= 20

_report_rows = []


def run_scenario(mode, wire, seed):
    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("soak", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    standby = system.add_standby(
        producer, channel, takeover_timeout=TAKEOVER, check_interval=CHECK,
        control_interval=CONTROL_IVL,
    )
    nodes = [system.add_speaker(channel=channel) for _ in range(3)]
    if wire:
        system.inject_faults(
            loss_rate=0.02, burst_length=3.0, duplicate_rate=0.01,
            reorder_rate=0.02, reorder_window=4, seed=seed,
        )
    system.play_synthetic(producer, DURATION, LOW)
    if mode in ("primary", "both"):
        system.schedule_fault(rb, after=CRASH_PRIMARY_AT, kind="crash",
                              seed=seed, jitter=0.3)
    if mode in ("speaker", "both"):
        system.schedule_fault(nodes[0], after=CRASH_SPEAKER_AT,
                              kind="crash", restart_after=SPEAKER_RESTART,
                              seed=seed + 100, jitter=0.3)
    system.run(until=HORIZON)
    return system, standby, nodes


@pytest.mark.parametrize("mode,wire,seed", SCENARIOS)
def test_chaos_scenario(mode, wire, seed):
    system, standby, nodes = run_scenario(mode, wire, seed)
    gaps = []
    for node in nodes:
        st = node.stats
        # playback always resumes, well after the last fault
        assert st.play_log, f"{node.speaker.name} never played"
        assert st.play_log[-1][1] > CRASH_SPEAKER_AT + 4.0
        gaps.extend(st.rejoin_gaps)
    if mode in ("primary", "both"):
        assert standby.stats.takeovers == 1
        # a speaker that was down across the takeover first-anchors on
        # the new epoch from cold instead of resyncing — both are one
        # re-anchor, never two
        survivors = nodes[1:] if mode == "both" else nodes
        for node in survivors:
            assert node.stats.epoch_resyncs == 1
        assert nodes[0].stats.epoch_resyncs <= 1
    if mode in ("speaker", "both"):
        assert len(nodes[0].stats.rejoin_gaps) >= 1
    bound = GAP_BOUND[mode]
    for gap in gaps:
        assert gap <= bound, f"gap {gap:.3f}s exceeds bound {bound:.3f}s"
    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open: residual={report.conservation_residual}"
    )
    _report_rows.append({
        "mode": mode, "wire_faults": wire, "seed": seed,
        "rejoin_gaps": [round(g, 6) for g in gaps],
        "max_gap": round(max(gaps, default=0.0), 6),
        "bound": round(bound, 6),
        "takeovers": standby.stats.takeovers,
        "conservation_residual": report.conservation_residual,
    })


# -- cohort fleets under the same chaos ---------------------------------------
#
# The vectorized SpeakerCohort must survive the identical fault matrix:
# members that draw faults spill into full per-object speakers mid-run,
# and the fleet as a whole keeps the same guarantees — playback resumes,
# rejoin gaps bounded, ledger closed, runs deterministic per seed.

COHORT_MEMBERS = 12
COHORT_SEEDS = (1, 2)
COHORT_SCENARIOS = [
    (mode, wire, seed)
    for mode in MODES for wire in (False, True) for seed in COHORT_SEEDS
]


def run_cohort_scenario(mode, wire, seed):
    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("soak", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    standby = system.add_standby(
        producer, channel, takeover_timeout=TAKEOVER, check_interval=CHECK,
        control_interval=CONTROL_IVL,
    )
    fleet = system.add_speaker_cohort(channel, COHORT_MEMBERS)
    if wire:
        system.inject_faults(
            loss_rate=0.02, burst_length=3.0, duplicate_rate=0.01,
            reorder_rate=0.02, reorder_window=4, seed=seed,
        )
    system.play_synthetic(producer, DURATION, LOW)
    if mode in ("primary", "both"):
        system.schedule_fault(rb, after=CRASH_PRIMARY_AT, kind="crash",
                              seed=seed, jitter=0.3)
    if mode in ("speaker", "both"):
        system.schedule_fault(fleet.tokens[0], after=CRASH_SPEAKER_AT,
                              kind="crash", restart_after=SPEAKER_RESTART,
                              seed=seed + 100, jitter=0.3)
    system.run(until=HORIZON)
    return system, standby, fleet


@pytest.mark.parametrize("mode,wire,seed", COHORT_SCENARIOS)
def test_cohort_chaos_scenario(mode, wire, seed):
    system, standby, fleet = run_cohort_scenario(mode, wire, seed)
    gaps = []
    for i in range(COHORT_MEMBERS):
        st = fleet.member_stats(i)
        assert st.play_log, f"cohort member {i} never played"
        assert st.play_log[-1][1] > CRASH_SPEAKER_AT + 4.0
        gaps.extend(st.rejoin_gaps)
    if mode in ("primary", "both"):
        assert standby.stats.takeovers == 1
        for i in range(1, COHORT_MEMBERS):
            assert fleet.member_stats(i).epoch_resyncs == 1
        assert fleet.member_stats(0).epoch_resyncs <= 1
    if mode in ("speaker", "both"):
        assert fleet.tokens[0].spilled
        assert len(fleet.member_stats(0).rejoin_gaps) >= 1
    bound = GAP_BOUND[mode]
    for gap in set(gaps):
        assert gap <= bound, f"gap {gap:.3f}s exceeds bound {bound:.3f}s"
    # faults spill, clean members stay vectorized: whoever drew a fate
    # (over a 14 s soak with wire faults, likely everyone) became a real
    # speaker, but the fast path still saved events while rows stayed
    # aligned; with no per-member fault source nobody spills at all
    if mode == "primary" and not wire:
        assert fleet.spills == 0
    assert fleet.spills <= COHORT_MEMBERS
    assert fleet.events_saved > 0
    report = system.pipeline_report()
    assert report.cohort_members == COHORT_MEMBERS
    assert report.cohort_spills == fleet.spills
    assert report.conservation_ok, (
        f"ledger open: residual={report.conservation_residual}"
    )


@pytest.mark.parametrize("mode", MODES)
def test_cohort_chaos_is_deterministic(mode):
    def fingerprint():
        _, standby, fleet = run_cohort_scenario(mode, wire=True, seed=2)
        return (
            [tuple(fleet.member_play_log(i)) for i in range(COHORT_MEMBERS)],
            [tuple(fleet.member_stats(i).rejoin_gaps)
             for i in range(COHORT_MEMBERS)],
            standby.stats.takeover_latencies,
            fleet.spills,
            fleet.events_saved,
        )

    assert fingerprint() == fingerprint()


@pytest.mark.parametrize("mode", MODES)
def test_chaos_is_deterministic(mode):
    """Bit-identical post-takeover playout across two runs of the same
    seeded scenario — the acceptance bar for reproducible chaos."""

    def fingerprint():
        _, standby, nodes = run_scenario(mode, wire=True, seed=2)
        return (
            [tuple(n.stats.play_log) for n in nodes],
            [tuple(n.stats.rejoin_gaps) for n in nodes],
            standby.stats.takeover_latencies,
        )

    assert fingerprint() == fingerprint()


# -- WAN relay tree under the same chaos ---------------------------------------
#
# Killing a regional relay mid-stream must leave its leaf LANs with a
# *bounded* playout hole, never an unbounded outage: with a local
# fallback source the edge relay fills within its cadence watchdog
# window; without one, the hole is bounded by the relay restart delay
# plus re-anchor cadence.  A sibling subtree that was never touched must
# sail through with zero resyncs and no holes at all.

RELAY_CRASH_AT = 4.0
RELAY_RESTART = 2.0
FB_TIMEOUT = 0.8
FB_CHECK = 0.2
RELAY_DURATION = 14.0
RELAY_HORIZON = 13.5

#: largest admissible hole in the leaf's played stream (positions are
#: producer stream time, so a hole is exactly the audio that never played)
RELAY_GAP_BOUND = {
    # fallback filler engages after the cadence watchdog fires, then one
    # control interval to re-anchor, plus playout depth + margin; the
    # stand-down resync is strictly cheaper
    True: FB_TIMEOUT + FB_CHECK + CONTROL_IVL + PLAYOUT + 0.25,
    # no fallback: silence spans the restart delay (with its jitter
    # window on both fault and recovery) plus re-anchor + playout
    False: RELAY_RESTART + 2 * JITTER + 2 * CONTROL_IVL + PLAYOUT + 0.25,
}

RELAY_SCENARIOS = [
    (fallback, seed) for fallback in (False, True) for seed in (1, 2, 3)
]


def run_relay_scenario(fallback, seed):
    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("soak", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    # victim subtree: regional relay (killed) -> edge relay -> leaf LAN
    regional = system.add_relay(rb, name="regional", latency=0.03)
    edge = system.add_relay(
        regional, name="edge", latency=0.01, fallback=fallback,
        fallback_timeout=FB_TIMEOUT, check_interval=FB_CHECK,
        control_interval=CONTROL_IVL,
    )
    victim_lan = system.add_leaf_lan(edge, channel, name="victim")
    victim = system.add_speaker(channel=channel, lan=victim_lan)
    # control subtree: an untouched sibling regional with its own leaf
    sibling = system.add_relay(rb, name="sibling", latency=0.03)
    control_lan = system.add_leaf_lan(sibling, channel, name="control")
    control = system.add_speaker(channel=channel, lan=control_lan)
    system.play_synthetic(producer, RELAY_DURATION, LOW)
    system.schedule_fault(regional, after=RELAY_CRASH_AT, kind="crash",
                          restart_after=RELAY_RESTART, seed=seed, jitter=JITTER)
    system.run(until=RELAY_HORIZON)
    return system, regional, edge, victim, control


def _stream_holes(stats):
    """Gaps in played stream time (the audio that never reached the DAC)."""
    positions = [play_at for play_at, _ in stats.play_log]
    return [b - a for a, b in zip(positions, positions[1:])]


@pytest.mark.parametrize("fallback,seed", RELAY_SCENARIOS)
def test_relay_kill_bounds_leaf_gap(fallback, seed):
    system, regional, edge, victim, control = run_relay_scenario(
        fallback, seed
    )
    assert regional.stats.restarts == 1
    # playback resumes on the victim leaf well after the outage window
    assert victim.stats.play_log, "victim leaf never played"
    assert victim.stats.play_log[-1][1] > RELAY_CRASH_AT + 2 * JITTER + \
        RELAY_RESTART + 2.0
    bound = RELAY_GAP_BOUND[fallback]
    holes = _stream_holes(victim.stats)
    worst = max(holes, default=0.0)
    assert worst <= bound, f"hole {worst:.3f}s exceeds bound {bound:.3f}s"
    if fallback:
        # filler engaged exactly once and stood down when the uplink
        # epoch reappeared; the victim re-anchored twice (onto the
        # fallback epoch, then back)
        assert edge.stats.fallbacks == 1
        assert edge.stats.standdowns == 1
        assert edge.stats.filler_data > 0
        assert victim.stats.epoch_resyncs == 2
        for gap in victim.stats.rejoin_gaps:
            assert gap <= bound
    else:
        assert edge.stats.fallbacks == 0
        assert victim.stats.epoch_resyncs == 0
    # the untouched sibling subtree never noticed
    assert control.stats.epoch_resyncs == 0
    assert not control.stats.rejoin_gaps
    assert max(_stream_holes(control.stats), default=0.0) <= PLAYOUT
    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open: residual={report.conservation_residual}"
    )
    _report_rows.append({
        "mode": f"relay-kill/{'fallback' if fallback else 'no-fallback'}",
        "wire_faults": False, "seed": seed,
        "rejoin_gaps": [round(g, 6) for g in victim.stats.rejoin_gaps],
        "max_gap": round(worst, 6),
        "bound": round(bound, 6),
        "takeovers": edge.stats.fallbacks,
        "conservation_residual": report.conservation_residual,
    })


@pytest.mark.parametrize("fallback", (False, True))
def test_relay_kill_is_deterministic(fallback):
    def fingerprint():
        _, regional, edge, victim, control = run_relay_scenario(fallback, 2)
        return (
            tuple(victim.stats.play_log),
            tuple(victim.stats.rejoin_gaps),
            tuple(control.stats.play_log),
            edge.stats.fallbacks,
            edge.stats.filler_data,
            regional.stats.dropped_down,
        )

    assert fingerprint() == fingerprint()


# -- control-plane churn under the same chaos ----------------------------------
#
# The ATDECC-style control plane must keep its own guarantees when the
# entities it tracks misbehave: a zombie (advertise-then-crash, no
# ENTITY_DEPARTING) ages out of the registry within 2x valid_time; a
# listener that dies mid-ACMP-transaction costs a bounded, counted
# failure, never a hang; a controller restart mid-churn repopulates from
# live adverts and resurrects nothing dead; and a rebroadcaster crash
# detected by lease expiry drives exactly one supervisor restart even
# with heartbeats watching the same node.  Every scenario closes the
# audio ledger and fingerprints bit-identically across two same-seed runs.

CP_VALID = 1.0
CP_CHECK = 0.1
CP_MODES = ("zombie", "acmp-crash", "ctl-restart", "rb-zombie")
CP_SEEDS = (3, 11)
CP_SCENARIOS = [(mode, seed) for mode in CP_MODES for seed in CP_SEEDS]
assert len(CP_SCENARIOS) == 8


def run_churn_scenario(mode, seed):
    from repro.sim.process import Process, Sleep, WaitProcess

    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("churn", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    supervisor = system.add_supervisor(
        heartbeat_interval=0.25, restart_delay=0.25
    )
    nodes = [system.add_speaker(channel=channel) for _ in range(3)]
    advs = [
        system.advertise_speaker(n, valid_time=CP_VALID) for n in nodes
    ]
    system.advertise_rebroadcaster(rb, valid_time=CP_VALID)
    system.supervise_rebroadcaster(supervisor, rb)
    controller = system.add_controller(
        supervisor=supervisor, check_interval=CP_CHECK,
        txn_timeout=0.1, txn_retries=3,
    )
    expiries = {}
    controller.on_expired = lambda rec: expiries.setdefault(
        rec.name, system.sim.now
    )
    outcome = {}
    system.play_synthetic(producer, 8.0, LOW)

    if mode == "zombie":
        # advertise-then-crash, no goodbye: the lease is the only signal
        system.sim.schedule(3.0, nodes[0].speaker.crash)
        outcome["crash_at"] = 3.0
    elif mode == "acmp-crash":
        victim = system.add_speaker(channel=None, start=False,
                                    name="victim")
        system.advertise_speaker(victim, valid_time=CP_VALID)

        def driver():
            yield Sleep(3.0)
            victim.machine.cpu.halt()   # dies as the CONNECT is issued
            proc = system.connect_speaker(controller, victim, channel)
            outcome["connect_ok"] = yield WaitProcess(proc)

        Process.spawn(system.sim, driver(), name="churn-driver")
        outcome["crash_at"] = 3.0
    elif mode == "ctl-restart":
        # churn (one clean leave, one zombie), then the controller itself
        # bounces in the middle of it
        system.sim.schedule(2.0, advs[1].depart)
        system.sim.schedule(2.5, nodes[2].speaker.crash)
        system.sim.schedule(3.0, controller.crash)
        system.sim.schedule(3.5, controller.restart)
        outcome["crash_at"] = 2.5
    elif mode == "rb-zombie":
        # the talker dies silently mid-stream: lease expiry and missed
        # heartbeats race to notice; the latch keeps it to one restart
        system.sim.schedule(3.0, rb.stop)
        outcome["crash_at"] = 3.0

    system.run(until=7.5)
    return system, controller, supervisor, nodes, rb, expiries, outcome


def _churn_fingerprint(mode, seed):
    system, controller, supervisor, nodes, rb, expiries, outcome = \
        run_churn_scenario(mode, seed)
    stats = controller.stats
    return (
        tuple(tuple(n.stats.play_log) for n in nodes),
        tuple(sorted(expiries.items())),
        (stats.adp_advertises, stats.stale_adverts, stats.departs,
         stats.expiries, stats.acmp_connects, stats.acmp_retries,
         stats.acmp_failures, stats.restarts),
        (supervisor.stats.restarts, supervisor.stats.lease_expiries),
        rb.epoch,
        outcome.get("connect_ok"),
    ), (system, controller, supervisor, nodes, rb, expiries, outcome)


@pytest.mark.parametrize("mode,seed", CP_SCENARIOS)
def test_control_plane_churn_scenario(mode, seed):
    fp1, state = _churn_fingerprint(mode, seed)
    fp2, _ = _churn_fingerprint(mode, seed)
    assert fp1 == fp2, "same-seed churn runs diverged"
    system, controller, supervisor, nodes, rb, expiries, outcome = state

    if mode == "zombie":
        name = nodes[0].speaker.name
        assert name in expiries
        assert expiries[name] - outcome["crash_at"] <= 2 * CP_VALID
        # the untouched speakers never expire and keep playing
        for n in nodes[1:]:
            assert n.speaker.name not in expiries
            assert n.stats.play_log[-1][1] > outcome["crash_at"] + 2.0
    elif mode == "acmp-crash":
        assert outcome["connect_ok"] is False
        assert controller.stats.acmp_failures == 1
        assert controller.stats.acmp_retries == 2
        assert "victim" in expiries
        assert expiries["victim"] - outcome["crash_at"] <= 2 * CP_VALID
    elif mode == "ctl-restart":
        assert controller.stats.restarts == 1
        live = {rec.name for rec in controller.available()}
        # the survivor and the talker re-register from live adverts...
        assert nodes[0].speaker.name in live
        # ...the departed and the crashed stay dead through the bounce
        assert nodes[1].speaker.name not in live
        assert nodes[2].speaker.name not in live
    elif mode == "rb-zombie":
        assert supervisor.stats.restarts == 1          # never two
        assert supervisor.stats.lease_expiries <= 1
        assert rb.epoch > 0                            # restart bumped it
        # playback resumes on every speaker after the restart window
        for n in nodes:
            assert n.stats.play_log[-1][1] > outcome["crash_at"] + 2.0

    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open: residual={report.conservation_residual}"
    )
    _report_rows.append({
        "mode": f"control-plane/{mode}", "wire_faults": False, "seed": seed,
        "rejoin_gaps": [],
        "max_gap": 0.0,
        "bound": 2 * CP_VALID,
        "takeovers": supervisor.stats.restarts,
        "conservation_residual": report.conservation_residual,
    })


# -- the WAN recovery ladder under the same chaos -------------------------------
#
# FEC on a hostile hop must degrade, never stall: GE bursts at or below
# repair capacity leave *zero* holes in the leaf's played stream (and,
# FEC-only, zero reverse traffic); bursts above capacity leave holes
# bounded by the abandon deadline and the burst geometry; corruption on
# the parity path is rejected at the parser and can never poison a
# repair; a relay crash mid-FEC-group restarts with an empty reassembler
# and a hole bounded by the restart window.  Every scenario closes the
# ledger and fingerprints bit-identically across two same-seed runs.

FEC_BLOCK = 0.065   # one VAD block of stream time per data frame
FEC_CFG = {
    # GE bursts the (r=2, interleave=2) geometry fully absorbs
    "below": dict(loss_rate=0.04, burst_length=2.0, fec_r=2,
                  fec_interleave=2),
    # bursts far beyond r=1: unrepairable groups become bounded holes
    "above": dict(loss_rate=0.30, burst_length=5.0, fec_r=1,
                  fec_interleave=1),
    # heavy corruption on the same wire the parity rides
    "parity-corrupt": dict(loss_rate=0.04, burst_length=2.0,
                           corrupt_rate=0.10, fec_r=2, fec_interleave=2),
}

#: largest admissible gap between consecutive played stream positions
#: (one block = contiguous playback)
FEC_GAP_BOUND = {
    "below": FEC_BLOCK + 0.01,           # no holes at all
    "above": 16 * FEC_BLOCK,             # longest credible abandoned run
    "parity-corrupt": 4 * FEC_BLOCK,     # lone corrupt-and-unlucky frames
    "relay-crash": RELAY_RESTART + 2 * JITTER + 2 * CONTROL_IVL
                   + PLAYOUT + 0.25,
}

FEC_SCENARIOS = [
    ("below", "fec"),
    ("below", "fec+nack"),
    ("above", "fec"),
    ("above", "fec+nack"),
    ("parity-corrupt", "fec"),
    ("relay-crash", "fec"),
]
FEC_SEEDS = (1, 2)


def run_fec_scenario(kind, recovery, seed):
    cfg = dict(FEC_CFG.get(kind, FEC_CFG["below"]))
    fec_r = cfg.pop("fec_r")
    fec_interleave = cfg.pop("fec_interleave")
    system = EthernetSpeakerSystem(seed=seed)
    producer = system.add_producer()
    channel = system.add_channel("soak", params=LOW, compress="never")
    rb = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_IVL
    )
    regional = system.add_relay(
        rb, name="regional", latency=0.03, recovery=recovery,
        fec_k=4, fec_r=fec_r, fec_interleave=fec_interleave,
        wan_faults=dict(seed=seed + 40, **cfg),
    )
    edge = system.add_relay(regional, name="edge", latency=0.01)
    leaf = system.add_leaf_lan(edge, channel, name="leaf")
    spk = system.add_speaker(channel=channel, lan=leaf)
    system.play_synthetic(producer, RELAY_DURATION, LOW)
    if kind == "relay-crash":
        system.schedule_fault(regional, after=RELAY_CRASH_AT, kind="crash",
                              restart_after=RELAY_RESTART, seed=seed,
                              jitter=JITTER)
    system.run(until=RELAY_HORIZON)
    return system, regional, spk


@pytest.mark.parametrize("kind,recovery", FEC_SCENARIOS)
@pytest.mark.parametrize("seed", FEC_SEEDS)
def test_fec_ladder_scenario(kind, recovery, seed):
    system, regional, spk = run_fec_scenario(kind, recovery, seed)
    hop = system.wan_hops[0]
    inj = hop.link.faults.stats
    assert inj.lost > 0, "injector idle; scenario is vacuous"
    # playback runs to (nearly) the end of the stream — degradation
    # under fire, never a stall
    assert spk.stats.play_log, "leaf never played"
    assert spk.stats.play_log[-1][1] > 12.5
    bound = FEC_GAP_BOUND[kind]
    worst = max(_stream_holes(spk.stats), default=0.0)
    assert worst <= bound, f"hole {worst:.3f}s exceeds bound {bound:.3f}s"
    if kind == "below":
        # within capacity every loss repairs: no holes, and (FEC-only)
        # the reverse path stays silent
        assert hop.fec.repaired > 0
        assert hop.stats.abandoned == 0
        if recovery == "fec":
            assert hop.stats.nacks_sent == 0
            assert hop.link.retransmits == 0
    elif kind == "above":
        assert hop.stats.abandoned > 0      # holes exist and were bounded
        assert hop.fec.repaired > 0         # the repairable part repaired
    elif kind == "parity-corrupt":
        assert inj.corrupted > 0
        assert hop.stats.corrupt_dropped > 0  # parser rejected, counted
        assert hop.fec.repaired > 0           # intact parity still repairs
    elif kind == "relay-crash":
        assert regional.stats.restarts == 1
        assert hop.fec.repaired > 0
    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open: residual={report.conservation_residual}"
    )
    _report_rows.append({
        "mode": f"fec-ladder/{kind}/{recovery}", "wire_faults": True,
        "seed": seed,
        "rejoin_gaps": [round(g, 6) for g in spk.stats.rejoin_gaps],
        "max_gap": round(worst, 6),
        "bound": round(bound, 6),
        "takeovers": 0,
        "conservation_residual": report.conservation_residual,
    })


@pytest.mark.parametrize("kind,recovery", FEC_SCENARIOS)
def test_fec_ladder_is_deterministic(kind, recovery):
    def fingerprint():
        system, regional, spk = run_fec_scenario(kind, recovery, 2)
        hop = system.wan_hops[0]
        return (
            tuple(spk.stats.play_log),
            hop.fec.repaired, hop.fec.unrepairable, hop.fec.parity_sent,
            hop.stats.abandoned, hop.stats.nacks_sent,
            hop.link.faults.stats.lost, hop.link.faults.stats.corrupted,
        )

    assert fingerprint() == fingerprint()


def teardown_module(module):
    path = os.environ.get("CHAOS_SOAK_REPORT")
    if path and _report_rows:
        with open(path, "w") as fh:
            json.dump({"scenarios": _report_rows}, fh, indent=2)
