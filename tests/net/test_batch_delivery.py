"""Batched fan-out delivery: one heap event per frame, same semantics.

On a jitter-free link every matching receiver hears a multicast frame at
the same instant, so the segment/switch can schedule ONE event that fans
out to all of them instead of one event per copy.  These tests pin the
contract: virtual arrival times, receiver sets, and seeded loss draws are
bit-identical to per-receiver scheduling; jitter and fault injectors fall
back transparently; and the batch sizes show up in telemetry.
"""

import pytest

from repro.core import EthernetSpeakerSystem
from repro.audio import CD_QUALITY, music
from repro.metrics.telemetry import Telemetry
from repro.net import Datagram, EthernetSegment, Nic
from repro.net.faults import FaultInjector
from repro.net.switch import SwitchedSegment
from repro.sim import Simulator


def build_lan(n_receivers, *, switched=False, telemetry=None, **kw):
    sim = Simulator()
    if telemetry is not None:
        sim.set_telemetry(telemetry)
    if switched:
        link = SwitchedSegment(sim, latency=0.0, telemetry=telemetry, **kw)
    else:
        link = EthernetSegment(sim, latency=0.0, **kw)
    arrivals = []
    for i in range(n_receivers):
        nic = Nic(link, f"10.0.0.{i + 2}")
        nic.join_group("239.1.1.1")
        nic.rx_handler = (
            lambda d, name=nic.ip: arrivals.append((sim.now, name, d.payload))
        )
    return sim, link, arrivals


def blast(sim, link, frames=20):
    for i in range(frames):
        sim.schedule(
            i * 0.001, link.transmit,
            Datagram("10.0.0.1", 1, "239.1.1.1", 5000, bytes([i]) * 50),
        )
    sim.run()


@pytest.mark.parametrize("switched", [False, True])
def test_batched_matches_unbatched_exactly(switched):
    logs = {}
    for batched in (False, True):
        sim, link, arrivals = build_lan(
            8, switched=switched, batch_delivery=batched
        )
        blast(sim, link)
        logs[batched] = arrivals
    assert logs[True] == logs[False]
    assert len(logs[True]) == 8 * 20


@pytest.mark.parametrize("switched", [False, True])
def test_batched_matches_unbatched_under_seeded_loss(switched):
    # loss draws happen in NIC order on both paths, so a seeded run loses
    # the exact same copies whether deliveries are batched or not
    logs = {}
    for batched in (False, True):
        sim, link, arrivals = build_lan(
            8, switched=switched, batch_delivery=batched,
            loss_rate=0.3, seed=42,
        )
        blast(sim, link, frames=50)
        logs[batched] = arrivals
    assert logs[True] == logs[False]
    assert 0 < len(logs[True]) < 8 * 50


def test_batching_executes_fewer_events():
    counts = {}
    for batched in (False, True):
        sim, link, arrivals = build_lan(32, batch_delivery=batched)
        blast(sim, link, frames=10)
        counts[batched] = sim.events_executed
        assert len(arrivals) == 32 * 10
    # one delivery event per frame instead of one per receiver copy
    assert counts[True] <= counts[False] - 10 * (32 - 1)


def test_jitter_falls_back_to_per_receiver():
    tel = Telemetry()
    sim, link, arrivals = build_lan(4, jitter=0.01, seed=1, telemetry=tel)
    blast(sim, link, frames=5)
    assert len(arrivals) == 4 * 5
    # per-frame arrival instants differ across receivers under jitter...
    times = {t for t, _, p in arrivals if p == bytes([0]) * 50}
    assert len(times) > 1
    # ...and nothing was counted as a batch
    assert "net.fanout_batch" not in tel.histograms


def test_fault_injector_falls_back_and_still_applies():
    sim, link, arrivals = build_lan(4)
    faults = FaultInjector(sim, loss_rate=0.5, seed=3)
    faults.attach(link)
    blast(sim, link, frames=25)
    # the injector interposed on every copy: whatever it killed never
    # arrived, and kills + arrivals account for the full fan-out
    assert faults.stats.offered == 4 * 25
    assert faults.stats.lost > 0
    assert faults.stats.lost + len(arrivals) == 4 * 25


@pytest.mark.parametrize("switched", [False, True])
def test_fanout_batch_histogram_records_group_sizes(switched):
    tel = Telemetry()
    sim, link, arrivals = build_lan(
        8, switched=switched, telemetry=tel
    )
    blast(sim, link, frames=10)
    assert len(arrivals) == 8 * 10
    hist = tel.histograms["net.fanout_batch"]
    assert hist.count == 10          # one batch per frame
    assert hist.vmin == hist.vmax == 8


def test_unicast_single_receiver_still_batches_cheaply():
    tel = Telemetry()
    sim = Simulator()
    sim.set_telemetry(tel)
    lan = EthernetSegment(sim, latency=0.0)
    a = Nic(lan, "10.0.0.1")
    b = Nic(lan, "10.0.0.2")
    got = []
    b.rx_handler = got.append
    lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, b"hi"), sender=a)
    sim.run()
    assert len(got) == 1
    assert tel.histograms["net.fanout_batch"].vmax == 1


def _run_system(batched):
    system = EthernetSpeakerSystem(
        telemetry=False, batched_delivery=batched
    )
    producer = system.add_producer()
    channel = system.add_channel("hall", params=CD_QUALITY,
                                 compress="always")
    system.add_rebroadcaster(producer, channel)
    nodes = [system.add_speaker(channel=channel) for _ in range(4)]
    system.play_pcm(producer, music(1.0, 44100, seed=7), CD_QUALITY)
    system.run(until=4.0)
    return nodes


def test_full_system_playout_identical_with_batching():
    nodes_on = _run_system(batched=True)
    nodes_off = _run_system(batched=False)
    for on, off in zip(nodes_on, nodes_off):
        assert on.stats.played == off.stats.played > 0
        assert len(on.sink.records) == len(off.sink.records)
        for (t1, d1, s1, p1), (t2, d2, s2, p2) in zip(
            on.sink.records, off.sink.records
        ):
            assert t1 == t2
            assert bytes(d1) == bytes(d2)
            assert s1 == s2 and p1 == p2
