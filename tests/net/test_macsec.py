"""802.1AE-style link-layer authentication (§5.1)."""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.core.speaker import EthernetSpeaker
from repro.kernel import AudioDevice, HardwareAudioDriver, Machine, SpeakerSink
from repro.net import Datagram, EthernetSegment, NetworkStack, Nic
from repro.net.macsec import ConnectivityAssociation, MacsecNic
from repro.sim import Simulator

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def test_members_communicate():
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    ca = ConnectivityAssociation(b"link-key")
    a = NetworkStack(sim, MacsecNic(lan, "10.0.0.1", ca))
    b = NetworkStack(sim, MacsecNic(lan, "10.0.0.2", ca))
    rx = b.socket(5000)
    a.socket().sendto(b"hello", ("10.0.0.2", 5000))
    sim.run()
    msg = rx.recv_nowait()
    assert msg.payload == b"hello"  # SecTAG stripped transparently
    assert ca.stats.tagged == 1
    assert ca.stats.verified == 1


def test_outsider_frames_rejected_at_the_port():
    """Even with the right VLAN tag, a non-member cannot inject — the
    hole in plain VLAN separation that §5.1 worries about, closed."""
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    ca = ConnectivityAssociation(b"link-key")
    b = NetworkStack(sim, MacsecNic(lan, "10.0.0.2", ca))
    rx = b.socket(5000)
    attacker = NetworkStack(sim, Nic(lan, "10.0.0.66", vlan=1))
    attacker.socket().sendto(b"evil", ("10.0.0.2", 5000))
    sim.run()
    assert rx.recv_nowait() is None
    assert ca.stats.rejected == 1


def test_wrong_key_rejected():
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    ca_good = ConnectivityAssociation(b"good")
    ca_evil = ConnectivityAssociation(b"evil")
    b = NetworkStack(sim, MacsecNic(lan, "10.0.0.2", ca_good))
    rx = b.socket(5000)
    attacker = NetworkStack(sim, MacsecNic(lan, "10.0.0.66", ca_evil))
    attacker.socket().sendto(b"forged", ("10.0.0.2", 5000))
    sim.run()
    assert rx.recv_nowait() is None
    assert ca_good.stats.rejected == 1


def test_replay_rejected_per_port():
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    ca = ConnectivityAssociation(b"key")
    b = NetworkStack(sim, MacsecNic(lan, "10.0.0.2", ca))
    rx = b.socket(5000)
    # capture a protected frame and replay it verbatim
    captured = []
    lan.add_tap(lambda d: captured.append(d))
    a = NetworkStack(sim, MacsecNic(lan, "10.0.0.1", ca))
    a.socket().sendto(b"once", ("10.0.0.2", 5000))
    sim.run()
    assert rx.recv_nowait().payload == b"once"
    lan.transmit(captured[0])  # the replay
    sim.run()
    assert rx.recv_nowait() is None
    assert ca.stats.replayed == 1


def test_multicast_members_all_verify():
    """Per-port replay state: every member of the group accepts the same
    packet number once."""
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    ca = ConnectivityAssociation(b"key")
    receivers = []
    for i in range(2, 5):
        stack = NetworkStack(sim, MacsecNic(lan, f"10.0.0.{i}", ca))
        sock = stack.socket(5000)
        sock.join_multicast("239.1.1.1")
        receivers.append(sock)
    sender = NetworkStack(sim, MacsecNic(lan, "10.0.0.1", ca))
    sender.socket().sendto(b"stream", ("239.1.1.1", 5000))
    sim.run()
    for sock in receivers:
        assert sock.recv_nowait().payload == b"stream"
    assert ca.stats.verified == 3
    assert ca.stats.replayed == 0


def test_full_es_system_over_macsec():
    """The whole Ethernet Speaker pipeline runs unchanged over protected
    links while an injector's forged data packets die at the NIC."""
    from repro.core import ChannelConfig
    from repro.core.rebroadcaster import Rebroadcaster
    from repro.kernel.vad import VadPair
    from repro.security import Injector

    sim = Simulator()
    lan = EthernetSegment(sim, latency=50e-6)
    ca = ConnectivityAssociation(b"es-link-key")

    producer = Machine(sim, "producer", cpu_freq_hz=500e6)
    producer.net = NetworkStack(
        sim, MacsecNic(lan, "10.1.0.1", ca)
    )
    VadPair(producer)
    channel = ChannelConfig(
        channel_id=1, name="pa", group_ip="239.192.0.1", port=5001,
        params=LOW, compress="never",
    )
    Rebroadcaster(producer, channel).start()

    es = Machine(sim, "es", cpu_freq_hz=233e6)
    es.net = NetworkStack(sim, MacsecNic(lan, "10.1.0.2", ca))
    sink = SpeakerSink()
    es.register_device("/dev/audio",
                       AudioDevice(es, HardwareAudioDriver(es, sink)))
    speaker = EthernetSpeaker(es, channel.group_ip, channel.port)
    speaker.start()

    evil = Machine(sim, "evil", cpu_freq_hz=500e6)
    evil.net = NetworkStack(sim, Nic(lan, "10.1.0.66"))
    Injector(evil, channel, rate_pps=50).start()

    from repro.audio.encodings import encode_samples
    from repro.kernel.audio import AUDIO_SETINFO

    def app():
        fd = yield from producer.sys_open("/dev/vads")
        yield from producer.sys_ioctl(fd, AUDIO_SETINFO, LOW)
        yield from producer.sys_write(
            fd, encode_samples(sine(440, 3.0, 8000), LOW)
        )

    producer.spawn(app())
    sim.run(until=6.0)
    assert speaker.stats.played > 0
    assert sink.audio_seconds == pytest.approx(3.0, abs=0.3)
    # the injector's 250+ forged frames were all dropped at the port:
    # the speaker never even saw them as data packets
    assert speaker.stats.data_rx == speaker.stats.played
    assert ca.stats.rejected > 100
