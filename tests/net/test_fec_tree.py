"""The WAN recovery ladder end to end: FEC repair on live relay trees.

Covers the acceptance bar for the FEC tentpole:

* **differential** — a 2-tier tree under seeded GE burst loss at or
  below repair capacity, ``recovery="fec"``, plays **bit-identically**
  to the lossless tree (play counts, write offsets, waveform, closed
  ledger) with **zero reverse traffic** (no NACKs, no retransmits);
* above capacity the holes stay bounded — playback continues, the
  abandoned count is finite, and the conservation ledger still closes
  with the ``wan_fec_*`` rows folded in;
* ``"fec+nack"`` runs the full ladder: parity repairs first and the
  reverse path is only exercised for FEC's failures, so it sends
  strictly fewer NACKs than a NACK-only hop on the same loss pattern;
* the full hostile-WAN fault chain (GE loss, duplication, corruption,
  bounded reorder) attached to a hop: corrupt frames die at the parser
  and are counted, duplicates/reorders are absorbed, ledger closes;
* the receiver-restart bugfix: a retransmit in flight across
  ``reset_receiver()`` must never re-anchor the cold resequencer or
  regress a live epoch (both were possible before; each produced a
  phantom-gap abandon storm).
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.codec import CodecID
from repro.core import EthernetSpeakerSystem
from repro.core.protocol import DataPacket
from repro.net import WanLink
from repro.net.wan import WanHop
from repro.sim import Simulator

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def build_tree(seed=3, tiers=2, **wan_kw):
    s = EthernetSpeakerSystem(seed=seed)
    p = s.add_producer()
    ch = s.add_channel("radio", params=LOW, compress="never")
    rb = s.add_rebroadcaster(p, ch, control_interval=0.5)
    parent = rb
    for i in range(tiers):
        parent = s.add_relay(parent, name=f"relay{i}", **wan_kw)
    leaf = s.add_leaf_lan(parent, ch, name="leaf")
    spk = s.add_speaker(channel=ch, lan=leaf)
    return s, p, spk


def run_tree(**wan_kw):
    s, p, spk = build_tree(**wan_kw)
    s.play_synthetic(p, 10.0, LOW)
    s.run(until=12.5)
    return s, spk


def leaf_fingerprint(spk):
    return (
        spk.stats.played,
        [off for _, off in spk.stats.write_offsets],
        bytes(spk.sink.waveform().tobytes()),
    )


# -- the differential --------------------------------------------------------


def test_fec_differential_bit_identical_with_zero_reverse_traffic():
    """GE burst loss <= repair capacity, FEC-only: the leaf plays the
    exact bytes of the lossless run and the reverse path stays silent."""
    s0, spk0 = run_tree(latency=0.03)
    s1, spk1 = run_tree(
        latency=0.03, recovery="fec", fec_k=4, fec_r=2, fec_interleave=2,
        wan_faults=dict(loss_rate=0.04, burst_length=2.0, seed=3),
    )
    assert leaf_fingerprint(spk1) == leaf_fingerprint(spk0)
    lost = sum(h.link.faults.stats.lost for h in s1.wan_hops)
    repaired = sum(h.fec.repaired for h in s1.wan_hops)
    assert lost > 0, "injector idle; differential is vacuous"
    assert repaired > 0, "no repairs exercised; differential is vacuous"
    for hop in s1.wan_hops:
        # zero reverse traffic: FEC-only never NACKs, never retransmits
        assert hop.stats.nacks_sent == 0
        assert hop.stats.retransmitted == 0
        assert hop.link.retransmits == 0
        assert hop.fec.unrepairable == 0
        assert hop.stats.abandoned == 0
    rep = s1.pipeline_report()
    assert rep.wan_fec_sent > 0
    assert rep.wan_fec_repaired == repaired
    assert rep.conservation_residual == 0, rep.summary()


def test_fec_above_capacity_holes_bounded_ledger_closed():
    """Bursts beyond r=1: some groups are unrepairable, the hop abandons
    the holes after a bounded timeout, playback never stalls, and the
    ledger still closes with the FEC rows included."""
    s, spk = run_tree(
        tiers=1, latency=0.03, recovery="fec", fec_k=4, fec_r=1,
        wan_faults=dict(loss_rate=0.25, burst_length=4.0, seed=9),
    )
    hop = s.wan_hops[0]
    assert hop.fec.repaired > 0          # the repairable groups repaired
    assert hop.stats.abandoned > 0       # the rest became bounded holes
    assert hop.stats.nacks_sent == 0     # still zero reverse traffic
    # bounded degradation, not a stall: most of the stream still plays
    assert spk.stats.played > 100
    positions = [t for t, _ in spk.stats.play_log]
    assert all(b > a for a, b in zip(positions, positions[1:]))
    rep = s.pipeline_report()
    assert rep.wan_fec_sent > 0
    assert "wan fec" in rep.summary()
    assert rep.conservation_ok, rep.summary()


def test_fec_nack_ladder_spares_the_reverse_path():
    """Same GE loss pattern, NACK-only vs the full ladder: FEC absorbs
    most holes first, so fec+nack NACKs and retransmits strictly less."""
    def run(recovery):
        s, spk = run_tree(
            tiers=1, latency=0.03, recovery=recovery, fec_k=4, fec_r=1,
            fec_interleave=2,
            wan_faults=dict(loss_rate=0.12, burst_length=2.0, seed=7),
        )
        return s, spk

    s_nack, spk_nack = run("nack")
    s_both, spk_both = run("fec+nack")
    h_nack = s_nack.wan_hops[0]
    h_both = s_both.wan_hops[0]
    assert h_nack.stats.nacks_sent > 0
    assert h_both.fec.repaired > 0
    assert h_both.stats.nacks_sent < h_nack.stats.nacks_sent
    assert h_both.stats.retransmitted < h_nack.stats.retransmitted
    # the ladder recovers at least as much as NACK alone
    assert spk_both.stats.played >= spk_nack.stats.played
    assert s_both.pipeline_report().conservation_ok
    assert s_nack.pipeline_report().conservation_ok


# -- the full per-hop fault chain --------------------------------------------


def test_wan_fault_chain_corruption_duplication_reorder():
    """GE loss + dup + corrupt + bounded reorder on one hop: corrupt
    frames die at the parser (counted), dup/reorder are absorbed by the
    resequencer, and the ledger closes exactly."""
    s, spk = run_tree(
        tiers=1, latency=0.03, recovery="fec", fec_k=4, fec_r=2,
        fec_interleave=2,
        wan_faults=dict(loss_rate=0.05, burst_length=2.0,
                        duplicate_rate=0.05, corrupt_rate=0.05,
                        reorder_rate=0.05, reorder_hold=0.04, seed=5),
    )
    hop = s.wan_hops[0]
    inj = hop.link.faults.stats
    assert inj.lost > 0 and inj.duplicated > 0
    assert inj.corrupted > 0 and inj.reordered > 0
    # a corrupted frame either fails the header peek / body crc (counted
    # here) or parses as stale (dup of a delivered seq) — never forwarded
    assert hop.stats.corrupt_dropped > 0
    rep = s.pipeline_report()
    assert rep.wan_injected_losses == inj.lost
    assert rep.wan_injected_duplicates == inj.duplicated
    assert rep.wan_injected_corrupted == inj.corrupted
    assert rep.wan_injected_reordered == inj.reordered
    assert rep.wan_corrupt_dropped == hop.stats.corrupt_dropped
    assert rep.conservation_ok, rep.summary()
    assert spk.stats.played > 100


def test_wan_injector_must_be_dedicated():
    """An injector already serving LAN links cannot attach to a WanLink
    (its counters would corrupt the hop's conservation budget)."""
    from repro.net.faults import FaultInjector

    sim = Simulator()
    inj = FaultInjector(sim, loss_rate=0.1, seed=1)
    inj.links.append(object())  # pretend a LAN link is attached
    link = WanLink(sim, name="wx")
    with pytest.raises(ValueError):
        link.set_fault_injector(inj)


def test_fault_chain_determinism():
    def fingerprint():
        s, spk = run_tree(
            tiers=2, latency=0.03, recovery="fec+nack", fec_k=4, fec_r=1,
            wan_faults=dict(loss_rate=0.10, burst_length=3.0,
                            duplicate_rate=0.03, corrupt_rate=0.03,
                            reorder_rate=0.03, reorder_hold=0.05, seed=13),
        )
        hop = s.wan_hops[0]
        return (spk.stats.played, tuple(spk.stats.play_log),
                hop.fec.repaired, hop.stats.abandoned,
                hop.link.faults.stats.lost)

    assert fingerprint() == fingerprint()


# -- receiver restart vs in-flight retransmits (the bugfix) ------------------


def _data(seq, epoch=0, payload=b"payload!"):
    return DataPacket(
        channel_id=1, seq=seq, play_at=0.0, payload=payload,
        codec_id=CodecID.RAW, epoch=epoch,
    ).encode()


def _lossy_send(hop, wire):
    """Offer ``wire`` to the hop but kill it on the link (deterministic
    single-frame loss: the sender ring keeps it, the wire drops it)."""
    saved = hop.link.loss_rate
    hop.link.loss_rate = 1.0
    hop.send(wire)
    hop.link.loss_rate = saved


def test_restart_during_recovery_never_anchors_on_retransmit():
    """reset_receiver() with a retransmit in flight: the replay lands on
    a cold resequencer and must be stale-dropped, not adopted as the
    anchor (which would re-open a phantom gap behind the live stream
    and abandon its way forward through it)."""
    from repro.core.protocol import peek_header

    sim = Simulator()
    link = WanLink(sim, bandwidth_bps=1e9, latency=0.05, jitter=0.0)
    got = []
    hop = WanHop(link, lambda w: got.append(peek_header(w)[2]),
                 recovery="nack")

    for seq in (0, 1):
        hop.send(_data(seq))
    _lossy_send(hop, _data(2))          # in the ring, dead on the wire
    for seq in (3, 4):
        hop.send(_data(seq))
    # gap detected at t=0.05; NACK at ~0.055; retransmit serialised at
    # ~0.105, arriving ~0.155 — restart the receiver while it is in flight
    sim.run(until=0.12)
    assert got == [0, 1]                # 3, 4 parked behind the gap
    assert hop.stats.retransmitted == 1
    hop.reset_receiver()
    sim.schedule(0.0, hop.send, _data(5))
    sim.schedule(0.0, hop.send, _data(6))
    sim.run()
    # the replay of 2 (epoch-live but cold resequencer) was refused
    assert got == [0, 1, 5, 6]
    assert hop.stats.abandoned == 0, "phantom gap: retransmit re-anchored"
    # 2 parked frames died in the reset + the refused replay
    assert hop.stats.stale_dropped == 3


def test_stale_epoch_retransmit_never_flushes_live_state():
    """A retransmit from a dead epoch arriving after the hop adopted a
    newer one must be dropped — before the fix it flushed the live
    resequencer and regressed the epoch, stalling the new stream."""
    from repro.core.protocol import peek_header

    sim = Simulator()
    link = WanLink(sim, bandwidth_bps=1e9, latency=0.05, jitter=0.0)
    got = []

    def collect(w):
        _, _, seq, epoch = peek_header(w)
        got.append((epoch, seq))

    hop = WanHop(link, collect, recovery="nack")

    for seq in (10, 11):
        hop.send(_data(seq, epoch=0))
    hop.send(_data(0, epoch=1))  # upstream restarted: epoch steps
    hop.send(_data(1, epoch=1))
    sim.run()
    assert hop._rx_epoch == 1
    # a jitter-delayed epoch-0 replay limps in through the retransmit
    # delivery path after the hop has moved on
    hop._arrive_retransmit(_data(12, epoch=0))
    assert hop._rx_epoch == 1, "stale retransmit regressed the epoch"
    assert hop.stats.stale_dropped == 1
    hop.send(_data(2, epoch=1))
    sim.run()
    # epoch-1 frames flowed uninterrupted around the replay
    assert [g for g in got if g[0] == 1] == [(1, 0), (1, 1), (1, 2)]
    assert got[:2] == [(0, 10), (0, 11)]


def test_fec_hop_restart_mid_group_stays_consistent():
    """Crash a relay mid-FEC-group: the restarted receiver's reassembler
    is empty, stale parity from the old incarnation is dropped (never
    adopted), and the tree keeps playing with a closed ledger."""
    s, p, spk = build_tree(
        seed=2, tiers=2, latency=0.03, recovery="fec", fec_k=4, fec_r=2,
        fec_interleave=2,
        wan_faults=dict(loss_rate=0.05, burst_length=2.0, seed=4),
    )
    s.play_synthetic(p, 10.0, LOW)
    s.schedule_fault(s.relays[1], after=4.0, restart_after=1.0)
    s.run(until=12.5)
    assert s.relays[1].stats.restarts == 1
    assert spk.stats.played > 80
    rep = s.pipeline_report()
    assert rep.conservation_ok, rep.summary()
