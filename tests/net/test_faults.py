"""FaultInjector unit tests: distributions under a fixed seed.

The injector is driven directly (a dummy receiver, one call per copy) so
every knob can be checked in isolation: the Gilbert–Elliott chain's mean
and burstiness, the duplicate rate, the bounded reorder window, the
one-byte corruption, and the injector-level conservation law
``offered == delivered - duplicated + lost`` at quiescence.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.metrics.telemetry import Telemetry
from repro.net.faults import FaultInjector, GilbertElliott
from repro.net.segment import Datagram, EthernetSegment
from repro.net.nic import Nic
from repro.net.switch import SwitchedSegment
from repro.sim.core import Simulator


class Receiver:
    """Stands in for a Nic: records (arrival time, datagram)."""

    def __init__(self, sim):
        self.sim = sim
        self.got = []

    def deliver(self, dgram):
        self.got.append((self.sim.now, dgram))

    def ids(self):
        return [int.from_bytes(d.payload[:4], "little") for _, d in self.got]


def make_dgram(i, size=20):
    payload = i.to_bytes(4, "little") + bytes(size - 4)
    return Datagram("10.0.0.1", 1, "239.0.0.1", 2, payload)


def drive(inj, rx, n, spacing=0.01, delay=0.001):
    """Offer ``n`` copies at a fixed pacing, then run to quiescence."""
    sim = inj.sim
    for i in range(n):
        sim.schedule(i * spacing, inj.deliver, rx, make_dgram(i), delay)
    sim.run()


# -- Gilbert–Elliott ----------------------------------------------------------


def test_ge_from_mean_hits_target_loss_rate():
    rng = np.random.default_rng(5)
    chain = GilbertElliott.from_mean(rng, mean_loss=0.1, burst_length=4.0)
    losses = sum(chain.lose() for _ in range(50_000))
    assert losses / 50_000 == pytest.approx(0.1, abs=0.02)


def test_ge_burstiness_clusters_losses():
    def mean_burst(burst_length, seed=9):
        rng = np.random.default_rng(seed)
        chain = GilbertElliott.from_mean(rng, 0.1, burst_length)
        outcomes = [chain.lose() for _ in range(50_000)]
        runs, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        return float(np.mean(runs))

    # burst_length=1: the chain exits BAD after every loss, so runs
    # barely exceed one packet; burst_length=8 clusters them hard
    assert mean_burst(1.0) == pytest.approx(1.0, abs=0.1)
    assert mean_burst(8.0) == pytest.approx(8.0, rel=0.25)


def test_ge_rejects_bad_parameters():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        GilbertElliott.from_mean(rng, mean_loss=1.5)
    with pytest.raises(ValueError):
        GilbertElliott.from_mean(rng, mean_loss=0.1, burst_length=0.5)
    with pytest.raises(ValueError):
        GilbertElliott(rng, p_enter_bad=2.0, p_exit_bad=0.5)


def test_zero_loss_chain_never_loses():
    rng = np.random.default_rng(0)
    chain = GilbertElliott.from_mean(rng, 0.0)
    assert not any(chain.lose() for _ in range(1000))


# -- loss through the injector -------------------------------------------------


def test_injected_loss_rate_and_conservation():
    sim = Simulator()
    inj = FaultInjector(sim, loss_rate=0.05, burst_length=5.0, seed=3)
    rx = Receiver(sim)
    drive(inj, rx, 10_000)
    st = inj.stats
    assert st.offered == 10_000
    assert st.lost / st.offered == pytest.approx(0.05, abs=0.01)
    # every copy is delivered or admitted lost; nothing dangles
    assert len(rx.got) == st.offered - st.lost
    assert inj.pending == 0


def test_per_receiver_chains_are_independent():
    """A multicast copy lost at one receiver can arrive at another."""
    sim = Simulator()
    inj = FaultInjector(sim, loss_rate=0.2, burst_length=4.0, seed=2)
    rx_a, rx_b = Receiver(sim), Receiver(sim)
    for i in range(2000):
        sim.schedule(i * 0.01, inj.deliver, rx_a, make_dgram(i), 0.001)
        sim.schedule(i * 0.01, inj.deliver, rx_b, make_dgram(i), 0.001)
    sim.run()
    ids_a, ids_b = set(rx_a.ids()), set(rx_b.ids())
    assert ids_a != ids_b
    assert ids_a | ids_b > ids_a  # b received copies a lost


# -- duplication ---------------------------------------------------------------


def test_duplicates_minted_at_rate_and_delivered_twice():
    sim = Simulator()
    inj = FaultInjector(sim, duplicate_rate=0.2, seed=4)
    rx = Receiver(sim)
    drive(inj, rx, 5000)
    st = inj.stats
    assert st.duplicated / st.offered == pytest.approx(0.2, abs=0.02)
    assert len(rx.got) == st.offered + st.duplicated
    counts = np.bincount(rx.ids())
    assert set(counts) == {1, 2}
    assert int(np.sum(counts == 2)) == st.duplicated
    # the echo lands after the original
    times = {}
    for t, d in rx.got:
        times.setdefault(int.from_bytes(d.payload[:4], "little"), []).append(t)
    for seen in times.values():
        assert seen == sorted(seen)


# -- reordering ----------------------------------------------------------------


def test_reordering_is_bounded_by_the_window():
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.3, reorder_window=3, seed=5)
    rx = Receiver(sim)
    drive(inj, rx, 2000)
    ids = rx.ids()
    assert sorted(ids) == list(range(2000))  # nothing lost or duplicated
    assert ids != list(range(2000))          # but genuinely reordered
    assert inj.stats.reordered > 0
    # bounded: no copy is overtaken by more than reorder_window later ones
    for pos, i in enumerate(ids):
        overtakers = sum(1 for j in ids[:pos] if j > i)
        assert overtakers <= 3


def test_held_copies_released_by_timeout_at_stream_end():
    """A copy parked for reordering never dangles: if the stream stops,
    the hold timer releases it and the ledger closes."""
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.999, reorder_window=3,
                        reorder_hold=0.05, seed=6)
    rx = Receiver(sim)
    drive(inj, rx, 5)
    assert sorted(rx.ids()) == list(range(5))
    assert inj.pending == 0


# -- corruption ----------------------------------------------------------------


def test_corruption_flips_exactly_one_byte():
    sim = Simulator()
    inj = FaultInjector(sim, corrupt_rate=0.5, seed=7)
    rx = Receiver(sim)
    # redundant payload: the id five times over, so a single flipped byte
    # can always be located by majority vote
    for i in range(2000):
        dgram = Datagram("10.0.0.1", 1, "239.0.0.1", 2,
                         i.to_bytes(4, "little") * 5)
        sim.schedule(i * 0.01, inj.deliver, rx, dgram, 0.001)
    sim.run()
    st = inj.stats
    assert st.corrupted / st.offered == pytest.approx(0.5, abs=0.05)
    mangled = 0
    for _, d in rx.got:
        groups = [d.payload[k : k + 4] for k in range(0, 20, 4)]
        majority = max(set(groups), key=groups.count)
        assert groups.count(majority) >= 4
        reference = majority * 5
        assert len(d.payload) == len(reference)
        diff = sum(a != b for a, b in zip(d.payload, reference))
        assert diff <= 1  # never more than the one byte
        mangled += diff
    assert mangled == st.corrupted


# -- jitter, determinism, wiring ----------------------------------------------


def test_jitter_spreads_arrivals():
    sim = Simulator()
    inj = FaultInjector(sim, jitter=0.004, seed=8)
    rx = Receiver(sim)
    drive(inj, rx, 500)
    offsets = [t - i * 0.01 - 0.001 for (t, _), i in zip(rx.got, rx.ids())]
    assert max(offsets) > 0.002
    assert inj.stats.jitter_seconds == pytest.approx(sum(offsets), rel=1e-6)


def test_same_seed_same_fate():
    def outcome(seed):
        sim = Simulator()
        inj = FaultInjector(sim, loss_rate=0.1, duplicate_rate=0.1,
                            reorder_rate=0.1, corrupt_rate=0.1,
                            jitter=0.002, seed=seed)
        rx = Receiver(sim)
        drive(inj, rx, 3000)
        return inj.stats, rx.ids()

    assert outcome(11) == outcome(11)
    assert outcome(11) != outcome(12)


def test_faults_counted_in_telemetry():
    tel = Telemetry()
    sim = Simulator()
    inj = FaultInjector(sim, loss_rate=0.1, duplicate_rate=0.1,
                        corrupt_rate=0.1, reorder_rate=0.1, seed=13,
                        name="lan0", telemetry=tel)
    drive(inj, Receiver(sim), 3000)
    st = inj.stats
    assert tel.counters["faults.lost[lan0]"].value == st.lost > 0
    assert tel.counters["faults.duplicated[lan0]"].value == st.duplicated > 0
    assert tel.counters["faults.reordered[lan0]"].value == st.reordered > 0
    assert tel.counters["faults.corrupted[lan0]"].value == st.corrupted > 0


def test_injector_attaches_to_segment_and_switch():
    """Both link types route receiver copies through the injector."""
    for make_link in (
        lambda sim: EthernetSegment(sim),
        lambda sim: SwitchedSegment(sim, igmp_snooping=False),
    ):
        sim = Simulator()
        link = make_link(sim)
        sender = Nic(link, "10.0.0.1", name="tx")
        rx = Nic(link, "10.0.0.2", promiscuous=True, name="rx")
        seen = []
        rx.rx_handler = seen.append
        inj = FaultInjector(sim, loss_rate=0.5, seed=1).attach(link)
        for i in range(200):
            sim.schedule(i * 0.01, link.transmit, make_dgram(i), sender)
        sim.run()
        assert inj.stats.offered == 200
        assert 0 < len(seen) < 200
        assert len(seen) == 200 - inj.stats.lost


def test_invalid_rates_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FaultInjector(sim, loss_rate=1.0)
    with pytest.raises(ValueError):
        FaultInjector(sim, duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        FaultInjector(sim, reorder_window=0)


# -- detach / flush ------------------------------------------------------------


def test_detach_flushes_parked_copies():
    """Tearing the injector down mid-stream must not strand packets:
    everything parked for reordering is released and counted."""
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.999, reorder_window=8,
                        reorder_hold=60.0, seed=6)
    rx = Receiver(sim)
    for i in range(20):
        sim.schedule(i * 0.01, inj.deliver, rx, make_dgram(i), 0.001)
    sim.run(until=0.5)
    parked = inj.pending
    assert parked > 0
    flushed = inj.detach()
    assert flushed == parked
    assert inj.pending == 0
    assert inj.stats.flushed == flushed
    sim.run()
    assert sorted(rx.ids()) == list(range(20))


def test_flush_after_timeout_release_is_a_noop():
    """The hold timer prunes what it releases, so a later flush finds
    nothing to double-deliver."""
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.999, reorder_window=3,
                        reorder_hold=0.05, seed=6)
    rx = Receiver(sim)
    drive(inj, rx, 10)  # runs to quiescence: all released by timeout
    assert inj.pending == 0
    assert inj.flush_pending() == 0
    assert sorted(rx.ids()) == list(range(10))


class StubToken:
    """A cohort member token as the injector sees it: a state flag and a
    NIC-shaped ``deliver`` (pre-spill it would buffer; here it records)."""

    def __init__(self, sim):
        self.sim = sim
        self.state = 0  # ALIGNED
        self.got = []

    def deliver(self, dgram):
        self.got.append((self.sim.now, dgram))


class StubCohort:
    """Just enough cohort surface for ``deliver_cohort``."""

    def __init__(self, sim, members):
        self.tokens = [StubToken(sim) for _ in range(members)]
        self.frames = []

    def mark_divergent(self, tok, dgram, reason):
        tok.state = 1  # PENDING

    def finish_frame(self, dgram, delay, represented):
        self.frames.append((dgram, delay, represented))


def test_detach_mid_cohort_batch_flushes_holds_exactly_once():
    """Detaching while member copies sit parked for reordering releases
    each held copy to its member token exactly once — no copy stranded,
    none double-delivered, and the loss/reorder counters untouched by
    the flush (a flushed copy is not a second drop)."""
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.4, reorder_window=8,
                        reorder_hold=60.0, seed=6)
    cohort = StubCohort(sim, members=5)
    for i in range(12):
        sim.schedule(i * 0.01, inj.deliver_cohort, cohort,
                     make_dgram(i), 0.001)
    sim.run(until=0.2)
    st_before = replace(inj.stats)
    parked = inj.pending
    assert parked > 0
    flushed = inj.detach()
    assert flushed == parked
    assert inj.pending == 0
    sim.run()
    st = inj.stats
    # the flush is accounted once, as a flush — not as extra offers,
    # losses, or reorders on top of the ones already drawn
    assert st.flushed == flushed
    assert st.offered == st_before.offered
    assert st.lost == st_before.lost
    assert st.reordered == st_before.reordered
    # every member copy that survived the fate draw reached its token
    # exactly once: offered copies minus losses, per token
    delivered = sum(len(t.got) for t in cohort.tokens)
    shared = sum(r for _, _, r in cohort.frames)
    assert delivered + shared == st.offered + st.duplicated - st.lost
    for tok in cohort.tokens:
        seen = [d.payload for _, d in tok.got]
        assert len(seen) == len(set(seen)), "a flushed copy arrived twice"


def test_hold_timer_after_detach_flush_is_a_noop_for_member_holds():
    """The reorder-hold safety valve fires after the detach flush has
    already released a member's parked copy; it must not deliver (or
    count) that copy a second time."""
    sim = Simulator()
    inj = FaultInjector(sim, reorder_rate=0.999, reorder_window=8,
                        reorder_hold=0.3, seed=6)
    cohort = StubCohort(sim, members=2)
    for i in range(6):
        sim.schedule(i * 0.01, inj.deliver_cohort, cohort,
                     make_dgram(i), 0.001)
    sim.run(until=0.1)
    parked = inj.pending
    assert parked > 0
    assert inj.detach() == parked
    sim.run()  # hold timers all expire now
    assert inj.pending == 0
    assert inj.stats.flushed == parked
    for tok in cohort.tokens:
        seen = [d.payload for _, d in tok.got]
        assert len(seen) == len(set(seen))


def test_detach_stops_interposition_on_the_link():
    sim = Simulator()
    link = EthernetSegment(sim)
    sender = Nic(link, "10.0.0.1", name="tx")
    rx = Nic(link, "10.0.0.2", promiscuous=True, name="rx")
    seen = []
    rx.rx_handler = seen.append
    inj = FaultInjector(sim, loss_rate=0.5, seed=1).attach(link)
    for i in range(100):
        sim.schedule(i * 0.01, link.transmit, make_dgram(i), sender)
    sim.schedule(0.52, inj.detach)
    sim.run()
    # the injector only saw the first half of the stream; afterwards
    # every copy goes straight to the wire untouched
    assert inj.stats.offered < 100
    assert len(seen) == 100 - inj.stats.lost
    assert inj.links == []
