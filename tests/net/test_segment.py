"""Segment, NIC, addressing: delivery semantics and the bandwidth model."""

import pytest

from repro.net import (
    BandwidthMonitor,
    Datagram,
    EthernetSegment,
    Nic,
    is_multicast,
    wire_bytes,
)
from repro.net.addr import ETHER_OVERHEAD, UDP_IP_OVERHEAD, MTU
from repro.sim import Simulator


def make_lan(sim, **kw):
    kw.setdefault("latency", 0.0)
    return EthernetSegment(sim, **kw)


class Sink:
    def __init__(self, nic):
        self.got = []
        nic.rx_handler = lambda d: self.got.append(d)


def test_is_multicast():
    assert is_multicast("224.0.0.1")
    assert is_multicast("239.255.0.5")
    assert not is_multicast("223.9.9.9")
    assert not is_multicast("10.0.0.1")
    assert not is_multicast("garbage")


def test_wire_bytes_small_packet():
    assert wire_bytes(100) == 100 + UDP_IP_OVERHEAD + ETHER_OVERHEAD


def test_wire_bytes_fragmented_packet():
    big = 4000
    cost = wire_bytes(big)
    assert cost > big + UDP_IP_OVERHEAD + ETHER_OVERHEAD
    # three fragments' worth of header overhead
    assert cost >= big + 3 * (20 + ETHER_OVERHEAD)


def test_unicast_delivered_to_target_only():
    sim = Simulator()
    lan = make_lan(sim)
    a = Nic(lan, "10.0.0.1")
    b = Nic(lan, "10.0.0.2")
    c = Nic(lan, "10.0.0.3")
    sb, sc = Sink(b), Sink(c)
    lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, b"hi"), sender=a)
    sim.run()
    assert len(sb.got) == 1
    assert len(sc.got) == 0


def test_multicast_delivered_to_joined_nics_only():
    sim = Simulator()
    lan = make_lan(sim)
    a = Nic(lan, "10.0.0.1")
    b = Nic(lan, "10.0.0.2")
    c = Nic(lan, "10.0.0.3")
    b.join_group("239.1.1.1")
    sb, sc = Sink(b), Sink(c)
    lan.transmit(Datagram("10.0.0.1", 1, "239.1.1.1", 2, b"x"), sender=a)
    sim.run()
    assert len(sb.got) == 1
    assert len(sc.got) == 0


def test_sender_does_not_hear_own_frame():
    sim = Simulator()
    lan = make_lan(sim)
    a = Nic(lan, "10.0.0.1")
    a.join_group("239.1.1.1")
    sa = Sink(a)
    lan.transmit(Datagram("10.0.0.1", 1, "239.1.1.1", 2, b"x"), sender=a)
    sim.run()
    assert sa.got == []


def test_broadcast_reaches_everyone():
    sim = Simulator()
    lan = make_lan(sim)
    nics = [Nic(lan, f"10.0.0.{i}") for i in range(1, 5)]
    sinks = [Sink(n) for n in nics]
    lan.transmit(
        Datagram("10.0.0.9", 1, "255.255.255.255", 2, b"b"), sender=None
    )
    sim.run()
    assert all(len(s.got) == 1 for s in sinks)


def test_vlan_isolation():
    """§5.1: speakers in their own VLAN do not see other VLANs' frames."""
    sim = Simulator()
    lan = make_lan(sim)
    speaker = Nic(lan, "10.0.0.2", vlan=10)
    speaker.join_group("239.1.1.1")
    sink = Sink(speaker)
    attacker_frame = Datagram("10.0.0.66", 1, "239.1.1.1", 2, b"evil", vlan=1)
    lan.transmit(attacker_frame)
    good_frame = Datagram("10.0.0.1", 1, "239.1.1.1", 2, b"good", vlan=10)
    lan.transmit(good_frame)
    sim.run()
    assert [d.payload for d in sink.got] == [b"good"]


def test_promiscuous_nic_sees_everything():
    sim = Simulator()
    lan = make_lan(sim)
    snooper = Nic(lan, "10.0.0.9", promiscuous=True)
    sink = Sink(snooper)
    lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, b"a"))
    lan.transmit(Datagram("10.0.0.1", 1, "239.1.1.1", 2, b"b"))
    sim.run()
    assert len(sink.got) == 2


def test_join_group_validates_address():
    sim = Simulator()
    nic = Nic(make_lan(sim), "10.0.0.1")
    with pytest.raises(ValueError):
        nic.join_group("10.0.0.255")


def test_transmission_takes_wire_time():
    sim = Simulator()
    lan = make_lan(sim, bandwidth_bps=10e6)
    a = Nic(lan, "10.0.0.1")
    b = Nic(lan, "10.0.0.2")
    sink = Sink(b)
    arrivals = []
    b.rx_handler = lambda d: arrivals.append(sim.now)
    payload = bytes(1000)
    lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, payload), sender=a)
    sim.run()
    expected = wire_bytes(1000) * 8 / 10e6
    assert arrivals[0] == pytest.approx(expected)


def test_wire_serialises_back_to_back_frames():
    sim = Simulator()
    lan = make_lan(sim, bandwidth_bps=10e6)
    b = Nic(lan, "10.0.0.2")
    arrivals = []
    b.rx_handler = lambda d: arrivals.append(sim.now)
    for _ in range(3):
        lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, bytes(1000)))
    sim.run()
    gap = wire_bytes(1000) * 8 / 10e6
    assert arrivals[1] - arrivals[0] == pytest.approx(gap)
    assert arrivals[2] - arrivals[1] == pytest.approx(gap)


def test_backlog_overflow_drops_frames():
    sim = Simulator()
    lan = make_lan(sim, bandwidth_bps=10e6, max_backlog=5)
    ok = 0
    for _ in range(50):
        ok += lan.transmit(Datagram("10.0.0.1", 1, "10.0.0.2", 2, bytes(1400)))
    assert ok < 50
    assert lan.stats.frames_dropped == 50 - ok


def test_loss_rate_drops_proportionally():
    sim = Simulator()
    lan = make_lan(sim, loss_rate=0.3, seed=42)
    b = Nic(lan, "10.0.0.2")
    sink = Sink(b)
    for i in range(500):
        sim.schedule(
            i * 0.001,
            lan.transmit,
            Datagram("10.0.0.1", 1, "10.0.0.2", 2, b"x"),
        )
    sim.run()
    assert 280 <= len(sink.got) <= 420


def test_jitter_spreads_arrivals():
    sim = Simulator()
    lan = make_lan(sim, jitter=0.01, seed=1)
    b = Nic(lan, "10.0.0.2")
    c = Nic(lan, "10.0.0.3")
    times = {}
    b.rx_handler = lambda d: times.setdefault("b", sim.now)
    c.rx_handler = lambda d: times.setdefault("c", sim.now)
    lan.transmit(Datagram("10.0.0.1", 1, "255.255.255.255", 2, b"x"))
    sim.run()
    assert times["b"] != times["c"]


def test_zero_jitter_is_uniform_arrival():
    """The paper's §3.2 assumption: everyone hears multicast at once."""
    sim = Simulator()
    lan = make_lan(sim, jitter=0.0)
    times = []
    for i in range(2, 6):
        nic = Nic(lan, f"10.0.0.{i}")
        nic.rx_handler = lambda d, t=times: t.append(sim.now)
    lan.transmit(Datagram("10.0.0.1", 1, "255.255.255.255", 2, b"x"))
    sim.run()
    assert len(set(times)) == 1


def test_bandwidth_monitor_measures_rate():
    sim = Simulator()
    lan = make_lan(sim, bandwidth_bps=100e6)
    mon = BandwidthMonitor(sim, lan)
    payload = bytes(1000)
    # 100 packets over one second
    for i in range(100):
        sim.schedule(i * 0.01, lan.transmit,
                     Datagram("10.0.0.1", 1, "239.1.1.1", 5000, payload))
    sim.run(until=1.0)
    expected_payload_mbps = 100 * 1000 * 8 / 1e6
    assert mon.payload_mbps == pytest.approx(expected_payload_mbps, rel=0.02)
    assert mon.mbps > mon.payload_mbps  # headers cost extra
    assert mon.flow_mbps("239.1.1.1", 5000) == pytest.approx(mon.mbps, rel=0.01)


def test_invalid_segment_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        EthernetSegment(sim, bandwidth_bps=0)
    with pytest.raises(ValueError):
        EthernetSegment(sim, loss_rate=1.5)
