"""FEC codec properties and the encoder/reassembler state machines.

The erasure-code contract, exercised in isolation from any WAN hop:

* any erasure pattern of ``e <= r`` members repairs **byte-exactly**
  from **any** ``e`` surviving parity rows (the Cauchy submatrix
  property, not just the contiguous-burst case);
* more than ``r`` erasures report unrepairable (``None``) — the codec
  never fabricates a partial or speculative repair;
* a corrupted parity frame can never corrupt data: the PDU's body crc
  rejects bit-flips at parse time, and a reassembler fed a wrong-payload
  parity row refuses to inject anything whose reconstruction disagrees
  with the group's member crc32s.

Plus deterministic unit coverage of the sliding-group encoder (group
completion, interleave lanes, epoch and timer flush) and the
reassembler (late parity, late data, stale epochs, duplicate rows).
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    FecPacket,
    ProtocolError,
    parse_packet,
)
from repro.net.fec import (
    MAX_K,
    MAX_R,
    FecEncoder,
    FecReassembler,
    FecStats,
    coefficient,
    encode_group,
    repair_group,
)
from repro.sim import Simulator

# -- strategies --------------------------------------------------------------

_member = st.binary(min_size=1, max_size=48)


@st.composite
def _groups(draw):
    """A group geometry, its members, and an erasure pattern <= r."""
    k = draw(st.integers(min_value=1, max_value=8))
    r = draw(st.integers(min_value=1, max_value=4))
    members = draw(st.lists(_member, min_size=k, max_size=k))
    e = draw(st.integers(min_value=0, max_value=min(r, k)))
    erased = draw(
        st.lists(
            st.integers(min_value=0, max_value=k - 1),
            min_size=e, max_size=e, unique=True,
        )
    )
    surviving = draw(
        st.lists(
            st.integers(min_value=0, max_value=r - 1),
            min_size=e, max_size=r, unique=True,
        )
    )
    return k, r, members, sorted(erased), sorted(surviving)


# -- codec properties --------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(_groups())
def test_any_erasure_pattern_repairs_byte_exactly(group):
    """<= r erasures repair from any >= e surviving parity rows."""
    k, r, members, erased, surviving = group
    rows = encode_group(members, r)
    present = {t: members[t] for t in range(k) if t not in erased}
    parity = {j: rows[j] for j in surviving}
    rebuilt = repair_group(present, parity, k, r)
    assert rebuilt is not None
    assert sorted(rebuilt) == erased
    for t in erased:
        # reconstructions are padded to the group width; the original
        # prefix must be byte-exact and the padding must be zero
        fixed = rebuilt[t]
        assert fixed[: len(members[t])] == members[t]
        assert not any(fixed[len(members[t]):])


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_over_capacity_reports_unrepairable(k, r, data):
    """More erasures than surviving parity rows -> None, never a guess."""
    members = data.draw(st.lists(_member, min_size=k, max_size=k))
    rows = encode_group(members, r)
    e = data.draw(st.integers(min_value=1, max_value=min(k, r + 1)))
    erased = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=k - 1),
            min_size=e, max_size=e, unique=True,
        )
    )
    # strictly fewer surviving rows than erasures
    keep = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=r - 1),
            min_size=0, max_size=e - 1, unique=True,
        )
    )
    present = {t: members[t] for t in range(k) if t not in erased}
    parity = {j: rows[j] for j in keep}
    assert repair_group(present, parity, k, r) is None


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=MAX_R - 1),
    st.integers(min_value=0, max_value=MAX_K - 1),
)
def test_cauchy_coefficients_nonzero(j, t):
    """Every Cauchy matrix element is invertible (generators disjoint)."""
    assert coefficient(j, t, 2) != 0


def test_xor_special_case_matches_plain_parity():
    members = [b"abcd", b"efgh", b"ij"]
    (row,) = encode_group(members, 1)
    expect = bytes(
        a ^ b ^ c
        for a, b, c in zip(b"abcd", b"efgh", b"ij\x00\x00")
    )
    assert row == expect


# -- corrupt parity never corrupts data --------------------------------------


def _one_parity_packet(members, seed=0):
    rows = encode_group(members, 1)
    return FecPacket(
        channel_id=1,
        base_seq=100,
        k=len(members),
        r=1,
        parity_index=0,
        stride=1,
        member_sizes=tuple(len(m) for m in members),
        member_crcs=tuple(zlib.crc32(m) for m in members),
        payload=rows[0],
        epoch=0,
    )


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=12, max_value=200),  # flip offset (past header)
    st.integers(min_value=1, max_value=255),
)
def test_bit_flipped_parity_rejected_by_parser(offset, xor):
    """A corrupted parity frame fails its body crc at parse time."""
    members = [b"payload-one!", b"payload-two!", b"payload-three"]
    wire = bytearray(_one_parity_packet(members).encode())
    offset %= len(wire)
    if offset < 12:
        offset = 12  # stay inside the crc-protected body
    wire[offset] ^= xor
    with pytest.raises(ProtocolError):
        parse_packet(bytes(wire))


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=35), st.data())
def test_wrong_parity_payload_never_injects_bad_data(pos, data):
    """Even a parity row that *parses* (crc recomputed over a corrupted
    payload) cannot make the reassembler hand back wrong bytes: the
    reconstruction fails the member crc and nothing is injected."""
    members = [b"frame-aaaa", b"frame-bbbb", b"frame-cccc"]
    rows = encode_group(members, 1)
    bad = bytearray(rows[0])
    pos %= len(bad)
    bad[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
    pkt = FecPacket(
        channel_id=1,
        base_seq=100,
        k=3,
        r=1,
        parity_index=0,
        stride=1,
        member_sizes=tuple(len(m) for m in members),
        member_crcs=tuple(zlib.crc32(m) for m in members),
        payload=bytes(bad),
        epoch=0,
    )
    stats = FecStats()
    rx = FecReassembler(stats=stats)
    # members 0 and 2 arrive; member 1 is erased
    rx.on_data(1, 100, 0, members[0])
    rx.on_data(1, 102, 0, members[2])
    out = rx.on_parity(pkt)
    assert out == []
    assert stats.repaired == 0
    assert stats.unrepairable > 0  # accounted, not silently dropped


# -- FecPacket wire format ---------------------------------------------------


def test_fec_packet_round_trip():
    members = [b"abc", b"defg", b"h"]
    rows = encode_group(members, 2)
    for j, payload in enumerate(rows):
        pkt = FecPacket(
            channel_id=7,
            base_seq=2**32 - 2,
            k=3,
            r=2,
            parity_index=j,
            stride=2,
            member_sizes=(3, 4, 1),
            member_crcs=tuple(zlib.crc32(m) for m in members),
            payload=payload,
            epoch=5,
        )
        back = parse_packet(pkt.encode())
        assert back == pkt
        # members wrap the seq space: base, base+2, base+4 mod 2^32
        assert back.member_seqs() == (2**32 - 2, 0, 2)


# -- encoder state machine ---------------------------------------------------


def _collect_encoder(k=3, r=1, interleave=1, flush_timeout=None):
    sim = Simulator()
    out = []
    enc = FecEncoder(sim, out.append, k=k, r=r, interleave=interleave,
                     flush_timeout=flush_timeout)
    return sim, out, enc


def test_encoder_emits_after_k_members():
    sim, out, enc = _collect_encoder(k=3, r=2)
    for i in range(3):
        enc.on_data(1, 100 + i, 0, b"m%d" % i)
    assert len(out) == 2
    pkts = [parse_packet(w) for w in out]
    assert [p.parity_index for p in pkts] == [0, 1]
    assert all(p.base_seq == 100 and p.k == 3 and p.stride == 1
               for p in pkts)


def test_encoder_interleave_spreads_consecutive_seqs():
    sim, out, enc = _collect_encoder(k=2, r=1, interleave=2)
    for i in range(4):
        enc.on_data(1, 200 + i, 0, b"x%d" % i)
    # lane 0 holds seqs 200, 202; lane 1 holds 201, 203
    pkts = sorted((parse_packet(w) for w in out), key=lambda p: p.base_seq)
    assert [p.base_seq for p in pkts] == [200, 201]
    assert [p.member_seqs() for p in pkts] == [(200, 202), (201, 203)]


def test_encoder_epoch_change_flushes_partial_group():
    sim, out, enc = _collect_encoder(k=4, r=1)
    enc.on_data(1, 10, 0, b"a")
    enc.on_data(1, 11, 0, b"b")
    enc.on_data(1, 0, 1, b"c")  # epoch step: restart from seq 0
    assert len(out) == 1
    pkt = parse_packet(out[0])
    assert pkt.k == 2 and pkt.base_seq == 10 and pkt.epoch == 0
    assert enc.stats.flushed_groups == 1


def test_encoder_seq_jump_reanchors():
    sim, out, enc = _collect_encoder(k=4, r=1)
    enc.on_data(1, 10, 0, b"a")
    enc.on_data(1, 50, 0, b"b")  # upstream skipped: group can't be arithmetic
    assert len(out) == 1
    assert parse_packet(out[0]).member_seqs() == (10,)


def test_encoder_timer_flushes_stalled_group():
    sim, out, enc = _collect_encoder(k=4, r=1, flush_timeout=0.25)
    enc.on_data(1, 10, 0, b"a")
    sim.run(until=1.0)
    assert len(out) == 1
    assert parse_packet(out[0]).k == 1
    # timer must not double-fire after the flush
    sim.run(until=2.0)
    assert len(out) == 1


def test_encoder_reset_drops_open_groups():
    sim, out, enc = _collect_encoder(k=4, r=1)
    enc.on_data(1, 10, 0, b"a")
    enc.reset()
    enc.on_data(1, 20, 0, b"b")
    enc.flush()
    assert len(out) == 1
    assert parse_packet(out[0]).member_seqs() == (20,)


# -- reassembler state machine -----------------------------------------------


def _feed_group(rx, members, base=100, channel=1, epoch=0, skip=()):
    for t, m in enumerate(members):
        if t not in skip:
            rx.on_data(channel, base + t, epoch, m)


def test_reassembler_parity_after_loss_repairs():
    members = [b"aaa", b"bbb", b"ccc"]
    rx = FecReassembler()
    _feed_group(rx, members, skip={1})
    out = rx.on_parity(_one_parity_packet(members))
    assert out == [members[1]]
    assert rx.stats.repaired == 1


def test_reassembler_late_data_completes_group():
    """Parity arrives while two members are missing; the group stays
    pending until one of them shows up as (reordered) data."""
    members = [b"aaa", b"bbb", b"ccc"]
    rx = FecReassembler()
    _feed_group(rx, members, skip={1, 2})
    assert rx.on_parity(_one_parity_packet(members)) == []
    out = rx.on_data(1, 102, 0, members[2])
    assert out == [members[1]]


def test_reassembler_intact_group_counts_wasted_parity():
    members = [b"aaa", b"bbb"]
    rx = FecReassembler()
    _feed_group(rx, members)
    pkt = FecPacket(
        channel_id=1, base_seq=100, k=2, r=1, parity_index=0, stride=1,
        member_sizes=(3, 3),
        member_crcs=tuple(zlib.crc32(m) for m in members),
        payload=encode_group(members, 1)[0], epoch=0,
    )
    assert rx.on_parity(pkt) == []
    assert rx.stats.repaired == 0
    assert rx.stats.wasted == 1
    # a duplicate for an already-closed group is also wasted
    assert rx.on_parity(pkt) == []
    assert rx.stats.wasted == 2


def test_reassembler_drops_stale_epoch_parity():
    members = [b"aaa", b"bbb", b"ccc"]
    rx = FecReassembler()
    rx.on_data(1, 500, 3, b"new-epoch")  # channel is on epoch 3
    assert rx.on_parity(_one_parity_packet(members)) == []  # epoch 0
    assert rx.stats.stale_parity == 1
    assert rx.stats.repaired == 0


def test_reassembler_epoch_step_flushes_pending():
    """A newer epoch abandons pending groups with accounting (mirrors
    the resequencer's epoch-boundary flush)."""
    members = [b"aaa", b"bbb", b"ccc"]
    rx = FecReassembler()
    _feed_group(rx, members, skip={1, 2})  # two missing, one parity row:
    rx.on_parity(_one_parity_packet(members))  # stays pending
    rx.on_data(1, 0, 1, b"new-epoch")
    assert rx.stats.unrepairable == 2  # both missing members written off
    assert rx.stats.wasted >= 1  # the stranded parity row too
    assert rx.stats.repaired == 0


def test_reassembler_reset_forgets_everything():
    members = [b"aaa", b"bbb", b"ccc"]
    rx = FecReassembler()
    _feed_group(rx, members, skip={1})
    rx.reset()
    # post-reset the channel has no epoch, so old parity is stale
    assert rx.on_parity(_one_parity_packet(members)) == []
    assert rx.stats.stale_parity == 1
