"""WAN relay tree: tandem-free forwarding, per-hop recovery, accounting.

Covers the relay-tree subsystem end to end:

* the :class:`~repro.net.wan.WanLink` determinism bugfix (loss and jitter
  draw from independent seeded streams, so toggling loss cannot shift the
  jitter of surviving frames);
* the WAN telemetry counters and the conservation ledger across lossy
  multi-hop trees, NACK retransmissions, and relay failover;
* ``reset()`` cold-starting the serialization queue after a relay restart;
* reorder-heavy links still yielding strictly monotonic playout at a leaf
  LAN speaker;
* the acceptance bar: leaf playout bit-identical between a 1-tier and a
  2-tier tree on a lossless run.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.net import WanLink
from repro.sim import Simulator

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


# -- WanLink bugfix sweep --------------------------------------------------------


def test_wan_jitter_independent_of_loss():
    """Same seed, loss on vs off: surviving frames arrive at identical times.

    Before the RNG split a dropped frame consumed a jitter draw (or vice
    versa), so enabling loss reshuffled the timing of every later frame.
    """
    def run(loss_rate):
        sim = Simulator()
        wan = WanLink(sim, bandwidth_bps=1e9, latency=0.05, jitter=0.04,
                      loss_rate=loss_rate, seed=7)
        arrivals = {}
        for i in range(200):
            wan.send(bytes([i % 251]),
                     lambda p, i=i: arrivals.setdefault(i, sim.now))
        sim.run()
        return arrivals

    clean = run(0.0)
    lossy = run(0.5)
    assert len(clean) == 200
    assert 0 < len(lossy) < 200
    for i, t in lossy.items():
        assert t == clean[i], f"frame {i} jitter shifted when loss enabled"


def test_wan_telemetry_counters():
    sim = Simulator()
    wan = WanLink(sim, loss_rate=0.5, seed=3, jitter=0.0)
    got = []
    for _ in range(200):
        wan.send(b"x", lambda p: got.append(p))
    sim.run()
    assert wan.sent == 200
    assert wan.delivered == len(got)
    assert wan.lost == 200 - len(got)
    assert wan.sent == wan.delivered + wan.lost
    assert wan.retransmits == 0
    assert wan.in_flight == 0


def test_wan_retransmit_counter_separated():
    sim = Simulator()
    wan = WanLink(sim, jitter=0.0)
    wan.send(b"a", lambda p: None)
    wan.send(b"a", lambda p: None, retransmit=True)
    sim.run()
    assert wan.sent == 2
    assert wan.retransmits == 1


def test_wan_reset_cold_starts_serialization():
    """A restarted relay must not inherit the dead incarnation's backlog.

    Without the ``_free_at`` reset, frames queued before a crash keep the
    line busy into the future and every post-restart frame serialises
    behind ghosts.
    """
    sim = Simulator()
    wan = WanLink(sim, bandwidth_bps=1e6, latency=0.0, jitter=0.0)
    for _ in range(10):
        wan.send(bytes(12500), lambda p: None)  # 100 ms each -> busy to t=1.0
    wan.reset()
    arrivals = []
    wan.send(bytes(12500), lambda p: arrivals.append(sim.now))
    sim.run()
    # Cold start: the post-reset frame serialises from t=0, not t=1.0.
    assert arrivals[0] == pytest.approx(0.1)


# -- tree construction and tandem-free forwarding --------------------------------


def build_tree(seed=0, tiers=1, **wan_kw):
    """Origin -> (tiers x relay) -> leaf LAN with one speaker."""
    s = EthernetSpeakerSystem(seed=seed)
    p = s.add_producer()
    ch = s.add_channel("radio", params=LOW, compress="never")
    rb = s.add_rebroadcaster(p, ch, control_interval=0.5)
    parent = rb
    for i in range(tiers):
        parent = s.add_relay(parent, name=f"relay{i}", **wan_kw)
    leaf = s.add_leaf_lan(parent, ch, name="leaf")
    spk = s.add_speaker(channel=ch, lan=leaf)
    return s, p, spk


def test_leaf_speaker_plays_through_tree():
    s, p, spk = build_tree(tiers=2, latency=0.02)
    s.play_synthetic(p, 8.0, LOW)
    s.run(until=10.0)
    assert spk.stats.played > 0
    rep = s.pipeline_report()
    assert rep.conservation_ok, rep.summary()
    relay = s.relays[0]
    assert relay.stats.forwarded > 0
    # Tandem-free: relays re-multicast without transcoding, so no codec
    # work is billed to them (only parse-and-forward).
    assert relay.stats.garbage_rx == 0


def test_playout_bit_identical_across_tiers():
    """Acceptance: 1-tier and 2-tier trees play bit-identical audio.

    Relays forward the compressed wire image untouched (no decode/re-encode
    tandem), so on a lossless run the leaf DAC must see the same bytes at
    the same stream offsets regardless of tree depth.
    """
    results = {}
    for tiers in (1, 2):
        s, p, spk = build_tree(seed=5, tiers=tiers, latency=0.02)
        s.play_synthetic(p, 6.0, LOW)
        s.run(until=9.0)
        rep = s.pipeline_report()
        assert rep.conservation_residual == 0, rep.summary()
        results[tiers] = (
            spk.stats.played,
            [off for _, off in spk.stats.write_offsets],
            bytes(spk.sink.waveform().tobytes()),
        )
    played_1, offsets_1, wave_1 = results[1]
    played_2, offsets_2, wave_2 = results[2]
    assert played_1 == played_2 > 0
    assert offsets_1 == offsets_2
    assert wave_1 == wave_2


def test_tree_determinism():
    def fingerprint():
        s, p, spk = build_tree(seed=11, tiers=2, latency=0.03, jitter=0.02,
                               loss_rate=0.05, wan_seed=9)
        s.play_synthetic(p, 6.0, LOW)
        s.run(until=8.0)
        return (spk.stats.played, tuple(spk.stats.play_log))

    assert fingerprint() == fingerprint()


# -- reorder / loss recovery -----------------------------------------------------


def test_reordering_wan_keeps_leaf_monotonic():
    """Satellite 4: a jitter-heavy (reordering) WAN hop never makes the
    downstream LAN stream go backwards — the leaf speaker's playout
    positions stay strictly monotonic and the ledger still closes."""
    s, p, spk = build_tree(seed=4, tiers=1, latency=0.02, jitter=0.25,
                           wan_seed=5)
    s.play_synthetic(p, 10.0, LOW)
    s.run(until=12.0)
    st = spk.stats
    assert st.played > 50
    assert st.reorder_dropped > 0, "link not reordering; test is vacuous"
    positions = [play_at for play_at, _ in st.play_log]
    assert all(b > a for a, b in zip(positions, positions[1:]))
    assert s.pipeline_report().conservation_ok


def test_nack_recovers_lost_frames():
    def run(nack):
        s, p, spk = build_tree(seed=3, tiers=1, latency=0.03, loss_rate=0.08,
                               wan_seed=11, nack=nack)
        s.play_synthetic(p, 10.0, LOW)
        s.run(until=12.0)
        return s, spk

    s0, spk0 = run(False)
    s1, spk1 = run(True)
    hop = s1.wan_hops[0]
    assert hop.stats.nacks_sent > 0
    assert hop.stats.recovered > 0
    assert hop.link.retransmits == hop.stats.retransmitted > 0
    assert spk1.stats.played > spk0.stats.played
    rep = s1.pipeline_report()
    assert rep.wan_retransmits == hop.link.retransmits
    assert rep.conservation_ok, rep.summary()
    # With every first-copy loss recovered, the ledger closes exactly.
    if hop.stats.abandoned == 0 and hop.link.lost == hop.stats.recovered:
        assert rep.conservation_residual == 0


def test_conservation_closes_across_lossy_multihop():
    s, p, spk = build_tree(seed=8, tiers=2, latency=0.02, jitter=0.01,
                           loss_rate=0.06, wan_seed=21)
    s.play_synthetic(p, 8.0, LOW)
    s.run(until=10.0)
    rep = s.pipeline_report()
    assert rep.wan_lost > 0, "links not lossy; test is vacuous"
    assert rep.wan_sent == rep.wan_delivered + rep.wan_lost + rep.wan_in_flight
    assert rep.conservation_ok, rep.summary()


# -- relay failover --------------------------------------------------------------


def build_failover_tree(seed=2):
    """Origin -> regional (crashes) -> leaf relay with local fallback."""
    s = EthernetSpeakerSystem(seed=seed)
    p = s.add_producer()
    ch = s.add_channel("radio", params=LOW, compress="never")
    rb = s.add_rebroadcaster(p, ch, control_interval=0.5)
    regional = s.add_relay(rb, name="regional", latency=0.03)
    leaf_relay = s.add_relay(regional, name="edge", latency=0.01,
                             fallback=True, fallback_timeout=0.8,
                             check_interval=0.2, control_interval=0.5)
    leaf = s.add_leaf_lan(leaf_relay, ch, name="leaf")
    spk = s.add_speaker(channel=ch, lan=leaf)
    return s, p, spk, regional, leaf_relay


def test_relay_fallback_and_standdown():
    """Losing the uplink switches the edge relay to a local filler source;
    the uplink epoch reappearing stands it down (Liquidsoap-style)."""
    s, p, spk, regional, edge = build_failover_tree()
    s.play_synthetic(p, 13.0, LOW)
    s.schedule_fault(regional, after=4.0, restart_after=2.0)
    s.run(until=12.5)

    assert edge.stats.fallbacks == 1
    assert edge.stats.standdowns == 1
    assert edge.stats.filler_data > 0
    assert regional.stats.restarts == 1
    # Speaker re-anchors onto the fallback epoch, then back on recovery.
    assert spk.stats.epoch_resyncs == 2
    assert len(spk.stats.rejoin_gaps) == 2
    # Rejoin bounded by fallback_timeout + check_interval + control cadence
    # + playout latency + margin.
    for gap in spk.stats.rejoin_gaps:
        assert gap < 0.8 + 0.2 + 0.5 + 0.4 + 0.2
    # Playback continues past the outage.
    last_play = spk.stats.play_log[-1][0]
    assert last_play > 11.0
    rep = s.pipeline_report()
    assert rep.relay_fallbacks == 1
    assert rep.relay_standdowns == 1
    assert rep.relay_filler == edge.stats.filler_data
    assert rep.conservation_ok, rep.summary()


def test_relay_restart_resets_downlink_serialization():
    """Crash with a queued backlog; after restart the downlink line is idle."""
    s, p, spk, regional, edge = build_failover_tree(seed=6)
    s.play_synthetic(p, 8.0, LOW)
    s.schedule_fault(regional, after=3.0, restart_after=1.0)
    s.run(until=7.5)
    for hop in regional.downlinks:
        assert hop.link._free_at <= s.sim.now
    assert spk.stats.played > 0
    assert s.pipeline_report().conservation_ok


def test_failover_determinism():
    def fingerprint():
        s, p, spk, regional, edge = build_failover_tree()
        s.play_synthetic(p, 13.0, LOW)
        s.schedule_fault(regional, after=4.0, restart_after=2.0)
        s.run(until=12.5)
        return (spk.stats.played, spk.stats.epoch_resyncs,
                tuple(spk.stats.rejoin_gaps), tuple(spk.stats.play_log))

    assert fingerprint() == fingerprint()
