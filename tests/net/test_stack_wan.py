"""UDP sockets, demultiplexing, WAN link behaviour."""

import pytest

from repro.net import EthernetSegment, NetworkStack, Nic, WanLink
from repro.sim import Process, Simulator, Sleep, Timeout


def build_host(sim, lan, ip, vlan=1):
    return NetworkStack(sim, Nic(lan, ip, vlan=vlan))


def test_unicast_send_recv():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    b = build_host(sim, lan, "10.0.0.2")
    rx = b.socket(5000)

    def sender():
        sock = a.socket()
        sock.sendto(b"hello", ("10.0.0.2", 5000))
        yield Sleep(0)

    def receiver():
        msg = yield rx.recv()
        return msg

    Process.spawn(sim, sender())
    p = Process.spawn(sim, receiver())
    sim.run()
    assert p.result.payload == b"hello"
    assert p.result.src[0] == "10.0.0.1"


def test_multicast_requires_join():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    b = build_host(sim, lan, "10.0.0.2")
    c = build_host(sim, lan, "10.0.0.3")
    rx_b = b.socket(5000)
    rx_b.join_multicast("239.1.1.1")
    rx_c = c.socket(5000)  # bound but never joined

    def sender():
        sock = a.socket()
        sock.sendto(b"stream", ("239.1.1.1", 5000))
        yield Sleep(0)

    Process.spawn(sim, sender())
    sim.run()
    assert rx_b.queued == 1
    assert rx_c.queued == 0


def test_port_demux():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    b = build_host(sim, lan, "10.0.0.2")
    s1 = b.socket(5000)
    s2 = b.socket(6000)
    tx = a.socket()
    tx.sendto(b"one", ("10.0.0.2", 5000))
    tx.sendto(b"two", ("10.0.0.2", 6000))
    sim.run()
    assert s1.recv_nowait().payload == b"one"
    assert s2.recv_nowait().payload == b"two"


def test_double_bind_rejected():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    a.socket(5000)
    with pytest.raises(Exception):
        a.socket(5000)


def test_ephemeral_ports_unique():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    ports = {a.socket().port for _ in range(10)}
    assert len(ports) == 10


def test_bounded_rx_queue_drops_and_counts():
    sim = Simulator()
    lan = EthernetSegment(sim)
    a = build_host(sim, lan, "10.0.0.1")
    b = build_host(sim, lan, "10.0.0.2")
    rx = b.socket(5000, rx_capacity=4)
    tx = a.socket()
    for i in range(10):
        tx.sendto(bytes([i]), ("10.0.0.2", 5000))
    sim.run()
    assert rx.queued == 4
    assert rx.drops == 6


def test_recv_blocks_until_arrival():
    sim = Simulator()
    lan = EthernetSegment(sim, latency=0.0)
    a = build_host(sim, lan, "10.0.0.1")
    b = build_host(sim, lan, "10.0.0.2")
    rx = b.socket(5000)

    def receiver():
        msg = yield rx.recv()
        return sim.now

    def sender():
        yield Sleep(2.0)
        a.socket().sendto(b"x", ("10.0.0.2", 5000))

    p = Process.spawn(sim, receiver())
    Process.spawn(sim, sender())
    sim.run()
    assert p.result == pytest.approx(2.0, abs=1e-3)


def test_recv_with_timeout():
    sim = Simulator()
    lan = EthernetSegment(sim)
    b = build_host(sim, lan, "10.0.0.2")
    rx = b.socket(5000)

    def receiver():
        try:
            yield Timeout(rx.recv(), 1.0)
        except TimeoutError:
            return "gave up"

    p = Process.spawn(sim, receiver())
    sim.run()
    assert p.result == "gave up"


# -- WAN ------------------------------------------------------------------------


def test_wan_delivers_with_latency():
    sim = Simulator()
    wan = WanLink(sim, bandwidth_bps=1e6, latency=0.1, jitter=0.0)
    arrivals = []
    wan.send(bytes(1250), lambda p: arrivals.append(sim.now))
    sim.run()
    # 1250 bytes at 1 Mbps = 10 ms tx + 100 ms latency
    assert arrivals[0] == pytest.approx(0.11)


def test_wan_loss():
    sim = Simulator()
    wan = WanLink(sim, loss_rate=0.5, seed=3, jitter=0.0)
    got = []
    for _ in range(200):
        wan.send(b"x", lambda p: got.append(p))
    sim.run()
    assert 60 <= len(got) <= 140
    assert wan.lost == 200 - len(got)


def test_wan_jitter_varies_arrivals():
    sim = Simulator()
    wan = WanLink(sim, bandwidth_bps=1e9, latency=0.05, jitter=0.05, seed=1)
    arrivals = []
    for _ in range(20):
        wan.send(b"x", lambda p: arrivals.append(sim.now))
    sim.run()
    spread = max(arrivals) - min(arrivals)
    assert spread > 0.01


def test_wan_serialisation_backlog():
    """A burst through a thin pipe drains at line rate, not instantly."""
    sim = Simulator()
    wan = WanLink(sim, bandwidth_bps=1e6, latency=0.0, jitter=0.0)
    arrivals = []
    for _ in range(10):
        wan.send(bytes(12500), lambda p: arrivals.append(sim.now))
    sim.run()
    assert arrivals[-1] == pytest.approx(1.0)  # 10 x 100 ms each
