"""Switched Ethernet with IGMP snooping."""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine, snr_db
from repro.net import Datagram, NetworkStack, Nic
from repro.net.switch import SwitchedSegment
from repro.sim import Simulator

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def host(sim, switch, ip, vlan=1):
    return NetworkStack(sim, Nic(switch, ip, vlan=vlan))


def test_unicast_forwarded_to_owner_port_only():
    sim = Simulator()
    sw = SwitchedSegment(sim, latency=0.0)
    a = host(sim, sw, "10.0.0.1")
    b = host(sim, sw, "10.0.0.2")
    c = host(sim, sw, "10.0.0.3")
    rx_b = b.socket(5000)
    rx_c = c.socket(5000)
    a.socket().sendto(b"direct", ("10.0.0.2", 5000))
    sim.run()
    assert rx_b.recv_nowait().payload == b"direct"
    assert rx_c.recv_nowait() is None
    assert sw.stats.frames_switched == 1
    assert sw.stats.per_port_bytes_out.get(c.nic.name, 0) == 0


def test_igmp_snooping_prunes_multicast():
    """Only joined ports carry the stream — the switch-era version of
    the paper's 'multicast support by default'."""
    sim = Simulator()
    sw = SwitchedSegment(sim, latency=0.0, igmp_snooping=True)
    src = host(sim, sw, "10.0.0.1")
    member = host(sim, sw, "10.0.0.2")
    outsider = host(sim, sw, "10.0.0.3")
    rx = member.socket(5000)
    rx.join_multicast("239.1.1.1")
    outsider.socket(5000)
    for _ in range(10):
        src.socket().sendto(bytes(500), ("239.1.1.1", 5000))
    sim.run()
    assert rx.queued == 10
    assert sw.stats.per_port_bytes_out.get(member.nic.name, 0) > 0
    assert sw.stats.per_port_bytes_out.get(outsider.nic.name, 0) == 0


def test_without_snooping_multicast_floods():
    sim = Simulator()
    sw = SwitchedSegment(sim, latency=0.0, igmp_snooping=False)
    src = host(sim, sw, "10.0.0.1")
    member = host(sim, sw, "10.0.0.2")
    outsider = host(sim, sw, "10.0.0.3")
    member.socket(5000).join_multicast("239.1.1.1")
    src.socket().sendto(bytes(500), ("239.1.1.1", 5000))
    sim.run()
    # the outsider's drop cable carried the frame (its NIC then filtered)
    assert sw.stats.per_port_bytes_out.get(outsider.nic.name, 0) > 0
    assert sw.flooded_fraction == 1.0


def test_ports_do_not_contend():
    """Two full-rate unicast flows on disjoint port pairs both run at
    line rate — the whole point of switching over a shared segment."""
    sim = Simulator()
    sw = SwitchedSegment(sim, port_bps=10e6, latency=0.0)
    a, b = host(sim, sw, "10.0.0.1"), host(sim, sw, "10.0.0.2")
    c, d = host(sim, sw, "10.0.0.3"), host(sim, sw, "10.0.0.4")
    rx_b, rx_d = b.socket(5000), d.socket(5000)
    payload = bytes(1250)  # ~1 ms per frame at 10 Mbps
    tx_a, tx_c = a.socket(), c.socket()
    for _ in range(50):
        tx_a.sendto(payload, ("10.0.0.2", 5000))
        tx_c.sendto(payload, ("10.0.0.4", 5000))
    sim.run()
    assert rx_b.queued + rx_b.drops == 50
    assert rx_d.queued + rx_d.drops == 50
    # both flows complete in about the time one flow needs alone
    assert sim.now < 0.13  # 50 frames x ~1.06 ms + store-and-forward


def test_vlan_respected_by_switch():
    sim = Simulator()
    sw = SwitchedSegment(sim, latency=0.0)
    a = host(sim, sw, "10.0.0.1", vlan=10)
    b = host(sim, sw, "10.0.0.2", vlan=20)
    rx = b.socket(5000)
    a.socket().sendto(b"x", ("10.0.0.2", 5000))
    sim.run()
    assert rx.recv_nowait() is None


def test_es_system_runs_over_a_switch():
    """Full pipeline over switched infrastructure, snooping on: the
    producer's uplink carries the stream once, non-member ports are
    quiet."""
    from repro.core import ChannelConfig
    from repro.core.rebroadcaster import Rebroadcaster
    from repro.core.speaker import EthernetSpeaker
    from repro.kernel import (
        AudioDevice,
        HardwareAudioDriver,
        Machine,
        SpeakerSink,
        VadPair,
    )
    from repro.audio.encodings import encode_samples
    from repro.kernel.audio import AUDIO_SETINFO

    sim = Simulator()
    sw = SwitchedSegment(sim, latency=20e-6)
    producer = Machine(sim, "producer", cpu_freq_hz=500e6)
    producer.net = NetworkStack(sim, Nic(sw, "10.1.0.1"))
    VadPair(producer)
    channel = ChannelConfig(
        channel_id=1, name="pa", group_ip="239.192.0.1", port=5001,
        params=LOW, compress="never",
    )
    Rebroadcaster(producer, channel).start()

    sinks = []
    speakers = []
    for i in range(2):
        es = Machine(sim, f"es{i}", cpu_freq_hz=233e6)
        es.net = NetworkStack(sim, Nic(sw, f"10.1.0.{i+2}",
                                       name=f"es{i}-port"))
        sink = SpeakerSink()
        es.register_device(
            "/dev/audio", AudioDevice(es, HardwareAudioDriver(es, sink))
        )
        sp = EthernetSpeaker(es, channel.group_ip, channel.port)
        sp.start()
        sinks.append(sink)
        speakers.append(sp)
    bystander = Machine(sim, "desktop", cpu_freq_hz=1e9)
    bystander.net = NetworkStack(sim, Nic(sw, "10.1.0.99",
                                          name="desktop-port"))

    x = sine(440, 2.0, 8000)

    def app():
        fd = yield from producer.sys_open("/dev/vads")
        yield from producer.sys_ioctl(fd, AUDIO_SETINFO, LOW)
        yield from producer.sys_write(fd, encode_samples(x, LOW))

    producer.spawn(app())
    sim.run(until=6.0)
    for sink, sp in zip(sinks, speakers):
        assert sp.stats.played > 0
        assert snr_db(x, sink.waveform()[: len(x)]) > 40
    # snooping kept the bystander's port silent
    assert sw.stats.per_port_bytes_out.get("desktop-port", 0) == 0


def test_invalid_port_bandwidth():
    with pytest.raises(ValueError):
        SwitchedSegment(Simulator(), port_bps=0)
