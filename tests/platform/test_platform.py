"""Hardware profiles, NVRAM, archives, and the full netboot sequence."""

import pytest

from repro.kernel import Machine
from repro.net import EthernetSegment
from repro.platform import (
    BootServer,
    DhcpServer,
    EON_4000,
    FAST_WORKSTATION,
    Nvram,
    build_ramdisk,
    make_machine,
    netboot,
    pack_archive,
    unpack_archive,
)
from repro.platform.archive import overlay
from repro.sim import Process, Simulator


# -- profiles -------------------------------------------------------------------


def test_profiles_match_paper():
    assert EON_4000.cpu_freq_hz == 233e6
    assert EON_4000.ram_mb == 64
    assert EON_4000.has_flash
    assert FAST_WORKSTATION.cpu_freq_hz > 2 * EON_4000.cpu_freq_hz


def test_make_machine_applies_profile():
    sim = Simulator()
    m = make_machine(sim, "es1", EON_4000)
    assert m.cpu.freq_hz == 233e6
    assert m.nvram["profile"] == "Neoware EON 4000"


# -- NVRAM ----------------------------------------------------------------------


def test_nvram_store_load():
    nv = Nvram()
    nv.store("ca_digest", b"\x01" * 32)
    assert nv.load("ca_digest") == b"\x01" * 32
    assert nv.load("missing") is None


def test_nvram_capacity_enforced():
    nv = Nvram(capacity_bytes=64)
    nv.store("a", b"x" * 40)
    with pytest.raises(ValueError):
        nv.store("b", b"y" * 40)
    # overwriting the same key reuses its space
    nv.store("a", b"z" * 50)


def test_nvram_type_checked():
    with pytest.raises(TypeError):
        Nvram().store("k", "not-bytes")


# -- archive --------------------------------------------------------------------


def test_archive_round_trip():
    files = {"/etc/a": b"alpha", "/etc/b": b"", "/bin/c": bytes(range(256))}
    assert unpack_archive(pack_archive(files)) == files


def test_archive_rejects_garbage():
    with pytest.raises(ValueError):
        unpack_archive(b"TAR?nope")


def test_overlay_machine_specific_wins():
    skeleton = {"/etc/es.conf": b"channel=auto\n", "/etc/common": b"1"}
    specific = {"/etc/es.conf": b"channel=lobby\n"}
    merged = overlay(skeleton, specific)
    assert merged["/etc/es.conf"] == b"channel=lobby\n"
    assert merged["/etc/common"] == b"1"


def test_ramdisk_checksum_changes_with_content():
    a = build_ramdisk("1.0")
    b = build_ramdisk("1.0", extra_files={"/etc/x": b"y"})
    assert a.checksum() != b.checksum()
    assert b.size_bytes > a.size_bytes


# -- netboot ------------------------------------------------------------------------


def boot_fixture(sim, n_speakers=1, bandwidth=100e6, configs=None):
    lan = EthernetSegment(sim, bandwidth_bps=bandwidth, latency=50e-6)
    server = Machine(sim, "bootsrv", cpu_freq_hz=1e9)
    server.attach_network(lan, "10.1.9.1")
    key = b"host-key-secret"
    image = build_ramdisk("2.3", boot_server_key=key)
    boot = BootServer(
        server,
        image,
        key,
        configs=configs or {},
        default_config={"/etc/es.conf": b"channel=lobby\n"},
    )
    boot.start()
    DhcpServer(server).start()
    speakers = []
    for i in range(n_speakers):
        es = make_machine(sim, f"es{i}", EON_4000)
        es.attach_network(lan, "0.0.0.0")
        speakers.append(es)
    return lan, boot, speakers


def test_single_speaker_boots():
    sim = Simulator()
    lan, boot, (es,) = boot_fixture(sim)
    proc = Process.spawn(sim, netboot(es), "boot")
    sim.run()
    result = proc.result
    assert result.ip == "10.1.9.10"
    assert es.net.nic.ip == result.ip
    assert result.image_version == "2.3"
    assert result.etc["/etc/es.conf"] == b"channel=lobby\n"
    assert result.boot_seconds > 0.1  # a 2 MB image is not instant
    assert result.image_bytes >= 2_000_000


def test_machine_specific_config_overrides_skeleton():
    sim = Simulator()
    lan, boot, (es,) = boot_fixture(
        sim, configs={"es0": {"/etc/es.conf": b"channel=announce\n",
                              "/etc/hostname": b"es-lobby-3\n"}}
    )
    proc = Process.spawn(sim, netboot(es), "boot")
    sim.run()
    assert proc.result.etc["/etc/es.conf"] == b"channel=announce\n"
    assert proc.result.etc["/etc/hostname"] == b"es-lobby-3\n"


def test_many_speakers_boot_and_get_unique_ips():
    sim = Simulator()
    lan, boot, speakers = boot_fixture(sim, n_speakers=5)
    procs = [Process.spawn(sim, netboot(es), "boot") for es in speakers]
    sim.run()
    ips = {p.result.ip for p in procs}
    assert len(ips) == 5
    assert boot.tftp_transfers == 5
    assert boot.config_served == 5


def test_boot_slower_on_thin_lan():
    times = {}
    for bw in (10e6, 100e6):
        sim = Simulator()
        lan, boot, (es,) = boot_fixture(sim, bandwidth=bw)
        proc = Process.spawn(sim, netboot(es), "boot")
        sim.run()
        times[bw] = proc.result.boot_seconds
    assert times[10e6] > 3 * times[100e6]


def test_tampered_config_rejected():
    """The host-key check: a config not MAC'd with the ramdisk-embedded
    key must be refused (the §5.1 trust bootstrap)."""
    sim = Simulator()
    lan = EthernetSegment(sim)
    server = Machine(sim, "bootsrv", cpu_freq_hz=1e9)
    server.attach_network(lan, "10.1.9.1")
    image = build_ramdisk("2.3", boot_server_key=b"the-real-key")
    boot = BootServer(
        server, image, b"a-different-key",  # evil or misconfigured server
        default_config={"/etc/es.conf": b"channel=evil\n"},
    )
    boot.start()
    DhcpServer(server).start()
    es = make_machine(sim, "es0", EON_4000)
    es.attach_network(lan, "0.0.0.0")

    def guard():
        try:
            yield from netboot(es)
        except PermissionError:
            return "rejected"

    proc = Process.spawn(sim, guard(), "boot")
    sim.run()
    assert proc.result == "rejected"


def test_boot_without_dhcp_times_out():
    sim = Simulator()
    lan = EthernetSegment(sim)
    es = make_machine(sim, "es0", EON_4000)
    es.attach_network(lan, "0.0.0.0")

    def guard():
        try:
            yield from netboot(es)
        except TimeoutError:
            return "no-dhcp"

    proc = Process.spawn(sim, guard(), "boot")
    sim.run()
    assert proc.result == "no-dhcp"
