"""Tracer unit tests: token nesting, determinism, Chrome-trace schema."""

import json

import pytest

from repro.metrics.trace import NULL_SPAN, NULL_TRACER, Tracer


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clocked():
    clock = ManualClock()
    return clock, Tracer(clock=clock)


# -- spans and tokens --------------------------------------------------------


def test_span_records_duration(clocked):
    clock, tr = clocked
    tok = tr.begin("work", track="cpu0")
    clock.now = 0.25
    assert tr.end(tok) == pytest.approx(0.25)
    (ev,) = tr.events
    assert ev["ph"] == "X"
    assert ev["ts"] == 0.0
    assert ev["dur"] == pytest.approx(0.25e6)  # microseconds


def test_out_of_order_interleaved_spans(clocked):
    """Process A opens, yields to B which opens/closes, then A closes —
    the token API must attribute durations to the right span even though
    the close order is not LIFO."""
    clock, tr = clocked
    a = tr.begin("a", track="procA")
    clock.now = 1.0
    b = tr.begin("b", track="procB")
    clock.now = 2.0
    c = tr.begin("c", track="procA")
    clock.now = 3.0
    assert tr.end(a) == pytest.approx(3.0)  # closed before b, started first
    clock.now = 4.0
    assert tr.end(c) == pytest.approx(2.0)
    clock.now = 10.0
    assert tr.end(b) == pytest.approx(9.0)
    by_name = {e["name"]: e for e in tr.events}
    assert by_name["a"]["ts"] == 0.0 and by_name["a"]["dur"] == 3.0e6
    assert by_name["b"]["ts"] == 1.0e6 and by_name["b"]["dur"] == 9.0e6
    assert by_name["c"]["ts"] == 2.0e6 and by_name["c"]["dur"] == 2.0e6


def test_double_end_is_noop(clocked):
    clock, tr = clocked
    tok = tr.begin("once")
    clock.now = 1.0
    tr.end(tok)
    clock.now = 2.0
    assert tr.end(tok) == 0.0
    assert len(tr.events) == 1


def test_end_merges_args(clocked):
    clock, tr = clocked
    tok = tr.begin("enc", blocks=1)
    clock.now = 0.1
    tr.end(tok, wire_bytes=42)
    assert tr.events[0]["args"] == {"blocks": 1, "wire_bytes": 42}


def test_span_context_manager(clocked):
    clock, tr = clocked
    with tr.span("cm"):
        clock.now = 0.5
    assert tr.events[0]["dur"] == pytest.approx(0.5e6)


def test_complete_uses_explicit_timing(clocked):
    _, tr = clocked
    tr.complete("fwd", start=2.0, duration=0.5, track="sw:p1")
    (ev,) = tr.events
    assert ev["ts"] == pytest.approx(2.0e6)
    assert ev["dur"] == pytest.approx(0.5e6)


def test_summary_aggregates_per_name(clocked):
    clock, tr = clocked
    for dur in (0.1, 0.3):
        tok = tr.begin("step")
        clock.now += dur
        tr.end(tok)
    rows = tr.summary_rows()
    (row,) = rows
    name, count, total_ms, mean_ms, max_ms = row
    assert name == "step"
    assert count == 2
    assert total_ms == pytest.approx(400.0)
    assert mean_ms == pytest.approx(200.0)
    assert max_ms == pytest.approx(300.0)
    assert "step" in tr.summary()


# -- instants, counters, flows ----------------------------------------------


def test_instant_and_counter_events(clocked):
    clock, tr = clocked
    clock.now = 1.5
    tr.instant("hiwat", track="dev", level=8)
    tr.counter("net", track="net", mbps=1.3)
    inst, ctr = tr.events
    assert inst["ph"] == "i" and inst["args"] == {"level": 8}
    assert ctr["ph"] == "C" and ctr["args"] == {"mbps": 1.3}
    assert inst["ts"] == ctr["ts"] == pytest.approx(1.5e6)


def test_flow_measures_elapsed(clocked):
    clock, tr = clocked
    tr.flow_begin(("ch", 1), "flight", track="tx")
    clock.now = 0.02
    assert tr.flow_end(("ch", 1), "flight", track="rx") == pytest.approx(0.02)


def test_flow_fanout_without_pop(clocked):
    clock, tr = clocked
    tr.flow_begin(("ch", 1), "flight")
    clock.now = 0.01
    assert tr.flow_end(("ch", 1), "flight") == pytest.approx(0.01)
    clock.now = 0.03
    # multicast: a second receiver terminates the same flow
    assert tr.flow_end(("ch", 1), "flight") == pytest.approx(0.03)


def test_flow_pop_consumes_key(clocked):
    clock, tr = clocked
    tr.flow_begin("k", "f")
    assert tr.flow_end("k", "f", pop=True) == 0.0
    assert tr.flow_end("k", "f") is None


def test_unknown_flow_returns_none(clocked):
    _, tr = clocked
    assert tr.flow_end("nope", "f") is None
    assert tr.events == []


def test_open_flows_bounded():
    tr = Tracer(max_open_flows=4)
    for i in range(10):
        tr.flow_begin(i, "f")
    assert len(tr._flows) == 4
    assert tr.flow_end(0, "f") is None  # oldest evicted
    assert tr.flow_end(9, "f") is not None


def test_event_cap_counts_drops():
    tr = Tracer(max_events=3)
    for i in range(10):
        tr.instant(f"e{i}")
    assert len(tr.events) == 3
    assert tr.dropped_events == 7


# -- determinism -------------------------------------------------------------


def _scripted_run() -> Tracer:
    clock = ManualClock()
    tr = Tracer(clock=clock)
    tok = tr.begin("encode", track="rb", blocks=2)
    clock.now = 0.011
    tr.end(tok, wire_bytes=880)
    tr.flow_begin((1, 0), "packet.flight", track="rb")
    clock.now = 0.013
    tr.flow_end((1, 0), "packet.flight", track="es1")
    tr.instant("buffer.hiwat", track="es1/dev")
    tr.counter("net", track="net", mbps=0.5)
    return tr


def test_same_script_same_bytes():
    """Two runs of the same simulated schedule export byte-identical
    JSON — virtual clocks make traces reproducible artifacts."""
    assert _scripted_run().to_json() == _scripted_run().to_json()


def test_track_tids_assigned_in_first_use_order():
    tr = _scripted_run()
    assert tr._tracks == {"rb": 1, "es1": 2, "es1/dev": 3, "net": 4}


# -- Chrome trace schema -----------------------------------------------------

_REQUIRED_BY_PH = {
    "X": {"name", "ts", "dur", "pid", "tid"},
    "i": {"name", "ts", "s", "pid", "tid"},
    "C": {"name", "ts", "pid", "tid", "args"},
    "s": {"name", "ts", "id", "pid", "tid"},
    "f": {"name", "ts", "id", "bp", "pid", "tid"},
    "M": {"name", "ph", "pid", "args"},
}


def test_chrome_trace_schema():
    doc = json.loads(_scripted_run().to_json())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    phs = {e["ph"] for e in events}
    assert {"X", "i", "C", "s", "f", "M"} <= phs
    for ev in events:
        required = _REQUIRED_BY_PH[ev["ph"]]
        missing = required - set(ev)
        assert not missing, f"{ev['ph']} event missing {missing}: {ev}"
        if "ts" in ev:
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
    # metadata names every tid used by real events
    named_tids = {e["tid"] for e in events if e["ph"] == "M"}
    used_tids = {e["tid"] for e in events if e["ph"] != "M"}
    assert used_tids <= named_tids


def test_write_round_trips(tmp_path):
    tr = _scripted_run()
    path = tmp_path / "trace.json"
    tr.write(str(path))
    assert json.loads(path.read_text()) == tr.to_chrome()


def test_clear_resets(clocked):
    clock, tr = clocked
    tok = tr.begin("x")
    clock.now = 1.0
    tr.end(tok)
    tr.flow_begin("k", "f")
    tr.clear()
    assert tr.events == [] and tr._flows == {} and tr.summary_rows() == []


# -- disabled tracer ---------------------------------------------------------


def test_null_tracer_records_nothing():
    tok = NULL_TRACER.begin("x")
    assert tok is NULL_SPAN
    assert NULL_TRACER.end(tok) == 0.0
    NULL_TRACER.instant("i")
    NULL_TRACER.counter("c", v=1)
    NULL_TRACER.flow_begin("k", "f")
    assert NULL_TRACER.flow_end("k", "f") is None
    NULL_TRACER.complete("x", 0.0, 1.0)
    assert NULL_TRACER.events == []
