"""vmstat sampler and report helpers."""

import pytest

from repro.kernel import Machine
from repro.metrics import VmstatSampler, ascii_table, series_summary
from repro.sim import Simulator, Sleep


def test_sampler_counts_intervals():
    sim = Simulator()
    m = Machine(sim, "box")
    vs = VmstatSampler(m, interval=1.0)
    vs.start()
    sim.run(until=10.5)
    assert len(vs.samples) == 10


def test_idle_machine_shows_idle():
    sim = Simulator()
    m = Machine(sim, "box")
    vs = VmstatSampler(m)
    vs.start()
    sim.run(until=5.0)
    assert all(s.idle_pct > 99.0 for s in vs.samples)
    assert vs.mean_busy_pct() < 1.0


def test_busy_machine_shows_user_time():
    sim = Simulator()
    m = Machine(sim, "box", cpu_freq_hz=100e6)

    def hog():
        while True:
            yield m.cpu.run(50e6, domain="user")  # 0.5 s of work
            yield Sleep(0.5)

    m.spawn(hog())
    vs = VmstatSampler(m)
    vs.start()
    sim.run(until=10.0)
    assert vs.mean_user_pct() == pytest.approx(50.0, abs=8.0)


def test_context_switch_rate_tracks_wakes():
    sim = Simulator()
    m = Machine(sim, "box")
    m.start_housekeeping(wakes_per_second=3.0)
    vs = VmstatSampler(m)
    vs.start()
    sim.run(until=20.0)
    assert vs.mean_context_switch_rate() == pytest.approx(6.0, abs=1.0)


def test_sampler_does_not_perturb_target():
    """The observer itself must not add CPU load or switches."""
    results = {}
    for sampled in (False, True):
        sim = Simulator()
        m = Machine(sim, "box")
        m.start_housekeeping()
        if sampled:
            VmstatSampler(m).start()
        sim.run(until=10.0)
        results[sampled] = m.cpu.stats.context_switches
    assert results[True] == results[False]


def test_stop_sampler():
    sim = Simulator()
    m = Machine(sim, "box")
    vs = VmstatSampler(m)
    vs.start()
    sim.schedule(3.5, vs.stop)
    sim.run(until=10.0)
    assert len(vs.samples) == 3


def test_ascii_table_alignment():
    table = ascii_table(["name", "value"], [["a", 1.23456], ["long-name", 7]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.235" in table
    assert all(len(l) == len(lines[0]) for l in lines[:2])


def test_series_summary():
    s = series_summary([1.0, 2.0, 3.0])
    assert s == {"min": 1.0, "mean": 2.0, "max": 3.0}
    assert series_summary([]) == {"min": 0.0, "mean": 0.0, "max": 0.0}
