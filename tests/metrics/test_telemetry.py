"""Unit tests for the telemetry registry and its instruments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.telemetry import (
    DEFAULT_TIME_BUCKETS,
    NULL,
    ChannelReport,
    Counter,
    Gauge,
    Histogram,
    PipelineReport,
    Telemetry,
    get_telemetry,
    log_buckets,
    set_default,
)

# -- instruments -------------------------------------------------------------


def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_gauge_tracks_extremes():
    g = Gauge("depth")
    for v in (3.0, -1.0, 7.0, 2.0):
        g.set(v)
    assert g.value == 2.0
    assert g.min == -1.0
    assert g.max == 7.0
    assert g.samples == 4
    g.add(10.0)
    assert g.value == 12.0
    assert g.max == 12.0


def test_log_buckets_geometric_and_covering():
    bounds = log_buckets(1e-6, 10.0, per_decade=4)
    assert bounds == tuple(sorted(bounds))
    assert bounds[0] == pytest.approx(1e-6)
    assert bounds[-1] >= 10.0
    # four per decade means adjacent edges differ by 10^(1/4)
    assert bounds[1] / bounds[0] == pytest.approx(10 ** 0.25)


def test_log_buckets_rejects_bad_range():
    with pytest.raises(ValueError):
        log_buckets(0, 1)
    with pytest.raises(ValueError):
        log_buckets(2, 1)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("h", (3.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", ())


def test_histogram_empty_snapshot():
    h = Histogram("h")
    snap = h.snapshot()
    assert snap["count"] == 0
    assert snap["mean"] == 0.0
    assert snap["p99"] == 0.0


def test_histogram_single_value_percentiles_exact():
    h = Histogram("h")
    h.observe(0.125)
    for p in (1, 50, 90, 99, 100):
        assert h.percentile(p) == pytest.approx(0.125)


def test_histogram_overflow_bucket():
    h = Histogram("h", bounds=(1.0, 2.0))
    h.observe(100.0)
    assert h.buckets[-1] == 1
    assert h.percentile(99) == pytest.approx(100.0)
    assert h.vmax == 100.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1,
                max_size=200))
def test_histogram_percentiles_bounded_and_monotone(values):
    h = Histogram("h")
    for v in values:
        h.observe(v)
    ps = [h.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
    assert all(min(values) <= p <= max(values) for p in ps)
    assert ps == sorted(ps)
    assert h.mean == pytest.approx(sum(values) / len(values))


def test_histogram_median_accuracy():
    h = Histogram("h", bounds=tuple(float(i) for i in range(1, 101)))
    for v in range(1, 101):
        h.observe(float(v))
    # with one value per unit bucket the interpolated p50 must land close
    # to the true median of 50.5
    assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
    assert h.percentile(90) == pytest.approx(90.0, abs=1.0)


# -- the registry ------------------------------------------------------------


def test_get_or_create_returns_same_instrument():
    tel = Telemetry()
    assert tel.counter("a") is tel.counter("a")
    assert tel.gauge("g") is tel.gauge("g")
    assert tel.histogram("h") is tel.histogram("h")


def test_conveniences_record():
    tel = Telemetry()
    tel.count("c", 3)
    tel.set_gauge("g", 1.5)
    tel.observe("h", 0.01)
    assert tel.counters["c"].value == 3
    assert tel.gauges["g"].value == 1.5
    assert tel.histograms["h"].count == 1


def test_total_sums_across_labels():
    tel = Telemetry()
    tel.count("rb.sent[ch1]", 10)
    tel.count("rb.sent[ch2]", 5)
    tel.count("rb.sent", 1)
    tel.count("rb.sent_failures", 99)  # different metric, not a label of rb.sent
    assert tel.total("rb.sent") == 16


def test_clock_binds_to_sim():
    class FakeSim:
        now = 4.5

    tel = Telemetry(sim=FakeSim())
    assert tel.clock() == 4.5
    assert tel.tracer.clock() == 4.5


def test_snapshot_and_report_render():
    tel = Telemetry()
    tel.count("c", 2)
    tel.set_gauge("g", 3.0)
    tel.observe("h", 0.5)
    snap = tel.snapshot()
    assert snap["counters"]["c"] == 2
    assert snap["gauges"]["g"]["max"] == 3.0
    assert snap["histograms"]["h"]["count"] == 1
    text = tel.report()
    assert "counters" in text and "histograms" in text


def test_empty_report():
    assert Telemetry().report() == "(no telemetry recorded)"


# -- disabled mode -----------------------------------------------------------


def test_null_registry_hands_out_shared_noops():
    assert NULL.counter("a") is NULL.counter("b")
    assert NULL.gauge("a") is NULL.gauge("b")
    assert NULL.histogram("a") is NULL.histogram("b")
    assert not NULL.tracer.enabled


def test_null_instruments_record_nothing():
    NULL.count("x", 100)
    NULL.set_gauge("y", 1.0)
    NULL.observe("z", 1.0)
    c = NULL.counter("x")
    c.inc(50)
    assert c.value == 0
    assert NULL.counters == {}
    assert NULL.gauges == {}
    assert NULL.histograms == {}
    assert NULL.total("x") == 0


def test_disabled_tracer_span_is_null_token():
    token = NULL.tracer.begin("work")
    assert NULL.tracer.end(token) == 0.0
    assert NULL.tracer.events == []


# -- the injectable default --------------------------------------------------


def test_default_starts_null_and_is_restorable():
    assert get_telemetry() is NULL
    mine = Telemetry()
    prev = set_default(mine)
    try:
        assert prev is NULL
        assert get_telemetry() is mine
    finally:
        set_default(None)
    assert get_telemetry() is NULL


# -- derived reports ---------------------------------------------------------


def test_channel_report_conservation_residual():
    c = ChannelReport(
        name="lobby", channel_id=1, speakers=3,
        data_sent=100, data_received=290, socket_drops=4, in_flight=6,
    )
    assert c.expected_deliveries == 300
    assert c.conservation_residual == 0


def test_channel_report_counts_send_failures_per_listener():
    c = ChannelReport(
        name="x", channel_id=1, speakers=2,
        data_sent=10, send_failures=1, data_received=18,
    )
    assert c.conservation_residual == 0


def test_pipeline_report_conservation_bounds_wire_loss():
    ch = ChannelReport(
        name="x", channel_id=1, speakers=2, data_sent=10, data_received=17,
    )
    rep = PipelineReport(duration=1.0, channels=[ch], wire_drops=2)
    assert rep.conservation_residual == 3
    assert rep.conservation_ok  # 3 <= 2 wire drops * 2 speakers
    rep.wire_drops = 1
    assert not rep.conservation_ok  # 3 > 1 * 2: packets truly unaccounted


def test_pipeline_report_summary_renders():
    ch = ChannelReport(name="x", channel_id=1, speakers=1,
                       data_sent=5, data_received=5, played=5)
    rep = PipelineReport(
        duration=2.0, channels=[ch],
        latency={"count": 5, "mean": 0.1, "p50": 0.1, "p90": 0.1,
                 "p99": 0.1, "min": 0.1, "max": 0.1},
    )
    text = rep.summary()
    assert "e2e latency" in text
    assert "conservation ok" in text
    assert rep.total_sent == 5
    assert rep.total_played == 5
