"""Smoke tests: every example script runs and prints sane results."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "playback skew across speakers" in out
    assert "compression" in out
    assert "Mbit/s" in out


def test_internet_radio_relay():
    out = run_example("internet_radio_relay.py")
    assert "WAN:" in out
    assert "skew across the four speakers" in out


def test_campus_pa():
    out = run_example("campus_pa.py")
    assert "Zone auto-volume" in out
    assert "12/12 speakers returned" in out


def test_time_shift():
    out = run_example("time_shift.py")
    assert "captured 10.0 s" in out
    assert "exported" in out


def test_secure_streaming():
    out = run_example("secure_streaming.py")
    assert "digest: True" in out
    assert "HORS signatures" in out
    assert "per-packet PKI" in out


def test_failover_demo():
    out = run_example("failover_demo.py")
    assert "standby takeovers: 1" in out
    assert "epoch 1" in out
    assert "conservation across the epoch boundary: closed" in out
