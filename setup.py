"""Setup shim.

The execution environment has no network and no `wheel` package, so
PEP 517 editable installs (`pip install -e .`) cannot build the editable
wheel.  `python setup.py develop` performs the equivalent egg-link editable
install entirely offline.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
