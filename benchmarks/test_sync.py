"""SYNC — §3.2: synchronisation via the control-packet wall clock and
per-packet play timestamps, with an epsilon leeway.

Claims reproduced:
* multiple speakers, including ones "started at different times in the
  middle of the stream", play within an inaudible skew of each other;
* transmission-delay uniformity is the mechanism: per-receiver jitter is
  the skew floor;
* "it is necessary to provide an epsilon value ... if this is not done
  [data] will be unnecessarily thrown out and skipping in playback will
  be noticeable" — an epsilon sweep shows drops exploding as epsilon -> 0.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def run_staggered_join(jitter: float = 0.002):
    system = EthernetSpeakerSystem(jitter=jitter, seed=13)
    producer = system.add_producer()
    channel = system.add_channel("pa", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    on_time = [system.add_speaker(channel=channel) for _ in range(3)]
    late = []
    for delay in (5.0, 11.3):
        node = system.add_speaker(channel=channel, start=False)
        system.sim.schedule(delay, node.speaker.start)
        late.append(node)
    system.play_synthetic(producer, 25.0, PARAMS)
    system.run(until=30.0)
    return system, on_time, late


def test_late_joiners_align_with_running_speakers(benchmark):
    system, on_time, late = benchmark.pedantic(
        run_staggered_join, rounds=1, iterations=1
    )
    all_report = system.skew_report(on_time + late)
    late_report = system.skew_report([on_time[0], late[1]])
    print()
    print("SYNC: 3 speakers from stream start + joins at t=5.0 and t=11.3:")
    print(ascii_table(
        ["comparison", "paper", "measured max skew (ms)"],
        [
            ["all five speakers", "'inaudible'", all_report["max_skew"] * 1e3],
            ["first vs latest joiner", "'inaudible'",
             late_report["max_skew"] * 1e3],
        ],
    ))
    assert all(n.stats.played > 0 for n in late)
    assert all_report["positions"] > 50
    # inaudible: well under the ~30-50 ms echo-perception threshold
    assert all_report["max_skew"] < 0.020


def test_skew_floor_tracks_network_jitter(benchmark):
    def run_three():
        out = {}
        for jitter in (0.0, 0.002, 0.010):
            system, on_time, late = run_staggered_join(jitter)
            out[jitter] = system.skew_report(on_time)["max_skew"]
        return out

    skews = benchmark.pedantic(run_three, rounds=1, iterations=1)
    print()
    print("SYNC: skew vs per-receiver multicast jitter "
          "(the §3.2 uniform-arrival assumption, relaxed):")
    print(ascii_table(
        ["jitter (ms)", "max skew (ms)"],
        [[j * 1e3, s * 1e3] for j, s in sorted(skews.items())],
    ))
    assert skews[0.0] <= 0.001
    assert skews[0.0] <= skews[0.002] <= skews[0.010]
    assert skews[0.010] < 0.050  # still inaudible even at 10 ms jitter


def run_epsilon(epsilon: float):
    system = EthernetSpeakerSystem(jitter=0.004, seed=21)
    producer = system.add_producer()
    channel = system.add_channel("pa", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    # zero playout budget: whether a block survives depends entirely on
    # the epsilon leeway against the 4 ms receive jitter.  Several
    # speakers average out each one's (jittered) anchor draw.
    nodes = [
        system.add_speaker(channel=channel, epsilon=epsilon,
                           playout_delay=0.0)
        for _ in range(4)
    ]
    system.play_synthetic(producer, 20.0, PARAMS)
    system.run(until=25.0)
    return nodes


def test_epsilon_sweep(benchmark):
    def run_all():
        return {
            eps: run_epsilon(eps)
            for eps in (0.0, 0.001, 0.005, 0.020, 0.100)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    totals = {}
    for eps, nodes in sorted(results.items()):
        dropped = sum(n.stats.late_dropped for n in nodes)
        played = sum(n.stats.played for n in nodes)
        gaps = sum(n.sink.silence_events for n in nodes)
        totals[eps] = (dropped, played, gaps)
        rows.append([eps * 1e3, dropped, played, gaps])
    print()
    print("SYNC epsilon sweep (zero playout budget, 4 ms jitter, "
          "4 speakers aggregated):")
    print(ascii_table(
        ["epsilon (ms)", "late-dropped", "played", "audible gaps"], rows
    ))
    tight_drop, _, tight_gaps = totals[0.0]
    loose_drop, _, loose_gaps = totals[0.100]
    # §3.2: without leeway, data is unnecessarily thrown out and
    # playback audibly skips
    assert tight_drop > 20
    assert tight_drop > 10 * max(1, loose_drop)
    assert tight_gaps > loose_gaps
    assert loose_drop == 0
    # monotone: more leeway never drops more
    drops = [totals[e][0] for e in sorted(totals)]
    assert all(b <= a for a, b in zip(drops, drops[1:]))
