"""Ablations for the design decisions the paper argues for.

Not figures from the paper, but the trade-offs behind its choices,
measured: the two VAD workaround strategies (§3.3), the control-packet
interval (§2.3), the playout buffering depth (§3.2), and multicast's
whole reason for existing (§2.2's "we may not want to load our WAN link
with multiple unicast connections").
"""

import pytest

from benchmarks.scenarios import FIG_BLOCK_SECONDS, sampled_run
from repro.audio import AudioEncoding, AudioParams, CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

LOW = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def test_vad_strategy_ablation(benchmark):
    """kthread vs modified-driver pass-through: same bytes, slightly
    different kernel overheads (the paper called both 'inelegant')."""
    def run(strategy):
        system = EthernetSpeakerSystem()
        producer = system.add_producer(
            vad_strategy=strategy, block_seconds=FIG_BLOCK_SECONDS
        )
        channel = system.add_channel("cd", params=CD_QUALITY,
                                     compress="never")
        system.add_rebroadcaster(producer, channel, real_codec=False)
        node = system.add_speaker(channel=channel)
        system.play_synthetic(producer, 30.0, CD_QUALITY)
        sampler = sampled_run(system, producer.machine, until=31.0)
        return {
            "cs_rate": sampler.mean_context_switch_rate(),
            "producer_busy_pct": sampler.mean_busy_pct(),
            "blocks_delivered": node.stats.played,
        }

    results = benchmark.pedantic(
        lambda: {s: run(s) for s in ("kthread", "modified")},
        rounds=1, iterations=1,
    )
    print()
    print("ABLATION: VAD strategy (§3.3's two workarounds):")
    print(ascii_table(
        ["strategy", "ctx switches/s", "producer busy %", "blocks delivered"],
        [
            [s, r["cs_rate"], r["producer_busy_pct"], r["blocks_delivered"]]
            for s, r in results.items()
        ],
    ))
    kt, mod = results["kthread"], results["modified"]
    # both deliver the stream completely
    assert abs(kt["blocks_delivered"] - mod["blocks_delivered"]) <= 2
    # the modified driver skips the pump thread: fewer context switches
    assert mod["cs_rate"] < kt["cs_rate"]


def test_control_interval_ablation(benchmark):
    """§2.3's periodic control packets: how often is often enough?
    Join latency is ~interval/2 + playout; overhead is ~1/interval pkts/s."""
    def run(interval):
        system = EthernetSpeakerSystem()
        producer = system.add_producer()
        channel = system.add_channel("pa", params=LOW, compress="never")
        rb = system.add_rebroadcaster(producer, channel,
                                      control_interval=interval)
        system.play_synthetic(producer, 25.0, LOW)
        joiner = system.add_speaker(channel=channel, start=False)
        system.sim.schedule(10.0, joiner.speaker.start)
        system.run(until=25.0)
        return {
            "join_latency": joiner.stats.first_play_time - 10.0,
            "control_pkts": rb.stats.control_sent,
        }

    results = benchmark.pedantic(
        lambda: {i: run(i) for i in (0.25, 1.0, 4.0)},
        rounds=1, iterations=1,
    )
    rows = [
        [i, r["join_latency"], r["control_pkts"]]
        for i, r in sorted(results.items())
    ]
    print()
    print("ABLATION: control packet interval vs join latency:")
    print(ascii_table(
        ["interval (s)", "join-to-audio (s)", "control pkts in 25 s"], rows
    ))
    # longer interval -> slower joins, fewer packets
    assert results[0.25]["join_latency"] < results[4.0]["join_latency"]
    assert results[0.25]["control_pkts"] > results[4.0]["control_pkts"]
    # a joiner always waits at most ~interval + playout
    for interval, r in results.items():
        assert r["join_latency"] < interval + 0.6


def test_playout_delay_ablation(benchmark):
    """The ES input buffering depth: robustness against jitter versus
    added end-to-end latency (§3.2's buffering trade-off)."""
    def run(playout):
        system = EthernetSpeakerSystem(jitter=0.030, seed=17)
        producer = system.add_producer()
        channel = system.add_channel("pa", params=LOW, compress="never")
        system.add_rebroadcaster(producer, channel, control_interval=0.5)
        nodes = [
            system.add_speaker(channel=channel, playout_delay=playout)
            for _ in range(3)
        ]
        system.play_synthetic(producer, 20.0, LOW)
        system.run(until=25.0)
        dropped = sum(n.stats.late_dropped for n in nodes)
        played = sum(n.stats.played for n in nodes)
        return {
            "drop_fraction": dropped / max(1, dropped + played),
            "latency": playout,
        }

    results = benchmark.pedantic(
        lambda: {p: run(p) for p in (0.005, 0.050, 0.400)},
        rounds=1, iterations=1,
    )
    rows = [
        [p * 1000, r["drop_fraction"] * 100]
        for p, r in sorted(results.items())
    ]
    print()
    print("ABLATION: playout delay vs late drops (30 ms network jitter):")
    print(ascii_table(["playout (ms)", "late-dropped %"], rows))
    # shallow buffering drops audibly under heavy jitter; deep is clean
    assert results[0.005]["drop_fraction"] > 0.005
    assert results[0.400]["drop_fraction"] == 0.0
    fracs = [results[p]["drop_fraction"] for p in sorted(results)]
    assert all(b <= a for a, b in zip(fracs, fracs[1:]))


def test_multicast_vs_unicast_ablation(benchmark):
    """Why multicast (§2.2): N listeners for the price of one."""
    def run(n_speakers, unicast):
        system = EthernetSpeakerSystem()
        producer = system.add_producer()
        channel = system.add_channel("pa", params=LOW, compress="never")
        system.add_rebroadcaster(producer, channel)
        nodes = [system.add_speaker(channel=channel)
                 for _ in range(n_speakers)]
        if unicast:
            # simulate per-listener unicast: a tap re-sends every data
            # frame once per extra listener
            extra = n_speakers - 1
            sock = producer.machine.net.socket()

            def duplicate(dgram):
                if dgram.dst_port == channel.port and extra > 0:
                    for i in range(extra):
                        sock.sendto(dgram.payload,
                                    (nodes[i + 1].machine.net.ip, 9999))

            system.lan.add_tap(duplicate)
        system.play_synthetic(producer, 10.0, LOW)
        system.run(until=12.0)
        return system.monitor.total_wire_bytes

    def run_all():
        return {
            ("multicast", 8): run(8, unicast=False),
            ("unicast", 8): run(8, unicast=True),
            ("multicast", 1): run(1, unicast=False),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("ABLATION: multicast vs unicast delivery, wire bytes for 10 s:")
    print(ascii_table(
        ["delivery", "speakers", "wire MB"],
        [[mode, n, b / 1e6] for (mode, n), b in results.items()],
    ))
    # multicast: 8 speakers cost the same wire bytes as 1
    assert results[("multicast", 8)] == pytest.approx(
        results[("multicast", 1)], rel=0.02
    )
    # unicast: ~8x the traffic
    assert results[("unicast", 8)] > 6 * results[("multicast", 8)]


def test_fleet_scale_skew(benchmark):
    """Scale check: 32 speakers, one stream — skew still inaudible and
    bandwidth unchanged (the 'large scale public address' goal, §1)."""
    def run():
        system = EthernetSpeakerSystem(jitter=0.003, seed=23)
        producer = system.add_producer()
        channel = system.add_channel("pa", params=LOW, compress="never")
        system.add_rebroadcaster(producer, channel, control_interval=0.5)
        nodes = [system.add_speaker(channel=channel) for _ in range(32)]
        system.play_synthetic(producer, 10.0, LOW)
        system.run(until=14.0)
        return system, nodes

    system, nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    report = system.skew_report(nodes)
    print()
    print(f"SCALE: 32 speakers, max skew {report['max_skew']*1000:.2f} ms "
          f"over {report['positions']} positions; "
          f"wire {system.monitor.total_wire_bytes/1e6:.2f} MB")
    assert all(n.stats.played > 0 for n in nodes)
    assert report["max_skew"] < 0.020
