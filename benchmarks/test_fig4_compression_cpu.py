"""FIG4 — Figure 4: "Compression impact on CPU load, as we increase the
number of compressed streams transmitted by the local rebroadcaster.
Each stream is a separate CD-quality stereo audio stream."

Paper series: userland CPU % vs time over 60 s, four streams vs eight
streams.  Expected shape: eight streams ~2x the CPU of four, both as
roughly flat bands; eight approaching saturation.
"""

import pytest

from benchmarks.scenarios import producer_with_streams, sampled_run
from repro.metrics import ascii_table, series_summary


def run_fig4(n_streams: int):
    system, producer = producer_with_streams(n_streams)
    sampler = sampled_run(system, producer.machine, until=61.0)
    series = [s.user_pct for s in sampler.samples]
    return series


@pytest.mark.parametrize("n_streams", [4, 8])
def test_fig4_userland_cpu_usage(benchmark, n_streams):
    series = benchmark.pedantic(run_fig4, args=(n_streams,), rounds=1,
                                iterations=1)
    summary = series_summary(series)
    print()
    print(f"FIG4 / {n_streams} compressed CD-quality streams "
          f"(userland CPU %, 60 one-second vmstat samples):")
    print(ascii_table(
        ["series", "min %", "mean %", "max %"],
        [[f"{n_streams} streams", summary["min"], summary["mean"],
          summary["max"]]],
    ))
    print("time series:",
          " ".join(f"{v:.0f}" for v in series[:30]), "...")
    # shape: a sustained, roughly flat band
    assert summary["mean"] > 10.0
    assert summary["max"] <= 100.0


def test_fig4_eight_streams_costs_double_of_four(benchmark):
    def run_both():
        return (
            series_summary(run_fig4(4))["mean"],
            series_summary(run_fig4(8))["mean"],
        )

    four, eight = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("FIG4 paper-vs-measured:")
    print(ascii_table(
        ["series", "paper (visual)", "measured mean user %"],
        [
            ["four streams", "~45-60 %", four],
            ["eight streams", "~90-110 % (clipped)", eight],
        ],
    ))
    # who wins / by what factor: CPU scales with stream count, eight
    # approaches saturation
    assert 1.6 < eight / four < 2.4
    assert eight > 75.0
    assert four < 70.0
