"""TELEMETRY — observing the pipeline must not distort it.

Two claims, bench-marked on the same boot-to-audio scenario:

* **enabled**: a full run with telemetry on produces a usable
  :class:`~repro.metrics.telemetry.PipelineReport` (non-zero latency
  percentiles, settled conservation ledger) and a loadable Chrome trace —
  this is the smoke benchmark CI runs;
* **disabled**: the instrumented hot paths cost so little with telemetry
  off that wall-clock stays within noise of the seed (the disabled-mode
  instruments are shared no-ops), and the *virtual* outcome is identical
  either way.
"""

import json

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
STREAM_SECONDS = 8.0
N_SPEAKERS = 3


def run_pipeline(telemetry: bool):
    system = EthernetSpeakerSystem(telemetry=telemetry)
    producer = system.add_producer()
    channel = system.add_channel("bench", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    for _ in range(N_SPEAKERS):
        system.add_speaker(channel=channel)
    system.play_pcm(producer, sine(440, STREAM_SECONDS, 8000), PARAMS)
    system.run(until=STREAM_SECONDS + 4.0)
    return system


def test_telemetry_on_smoke(benchmark):
    """The CI smoke run: telemetry on, report and trace both usable."""
    system = benchmark.pedantic(run_pipeline, args=(True,), rounds=1,
                                iterations=1)
    rep = system.pipeline_report()

    assert rep.latency["count"] > 0
    assert rep.latency["p50"] > 0
    assert rep.arrival["p99"] > 0
    assert rep.conservation_ok
    assert rep.total_played > 0

    trace = json.loads(system.telemetry.tracer.to_json())
    assert len(trace["traceEvents"]) == rep.trace_events + len(
        system.telemetry.tracer._tracks
    )

    print()
    print(rep.summary())
    print()
    print("span aggregates:")
    print(system.telemetry.tracer.summary())


def test_telemetry_off_same_outcome(benchmark):
    """Disabled mode: identical virtual outcome, no events retained."""
    off = benchmark.pedantic(run_pipeline, args=(False,), rounds=3,
                             iterations=1)
    on = run_pipeline(True)

    assert off.telemetry.tracer.events == []
    assert off.telemetry.counters == {}
    assert [n.stats.played for n in off.speakers] == [
        n.stats.played for n in on.speakers
    ]
    assert off.sim.now == on.sim.now

    rows = [
        ["played blocks", sum(n.stats.played for n in off.speakers),
         sum(n.stats.played for n in on.speakers)],
        ["underruns", sum(n.device.underruns for n in off.speakers),
         sum(n.device.underruns for n in on.speakers)],
        ["trace events", 0, len(on.telemetry.tracer.events)],
    ]
    print()
    print(ascii_table(["quantity", "telemetry off", "telemetry on"], rows))
