"""BUF — §3.4: "The slow speed of the processor on the EON 4000 computer,
revealed a problem that was not observed during our testing on faster
machines; namely the need to keep the pipeline full.  If we use very
large buffers ... time delays add up, resulting in skipped audio.  By
reducing the buffer size, each of the stages on the ES finishes faster
and the audio stream is processed without problems."

Reproduced as a buffer-size sweep of a live compressed CD stream played
on (a) the 233 MHz EON 4000 and (b) a 1 GHz workstation, with a fixed
playout budget.  Expected shape: the EON skips at large buffers where the
workstation stays clean, and shrinking the buffer fixes the EON.
"""

import pytest

from repro.audio import CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.platform import EON_4000, FAST_WORKSTATION

#: fixed playout budget: the producer's encode time and the speaker's
#: decode time both scale with the buffer size, and together they must
#: fit inside this budget (control packets carry no such delay, so the
#: wall-clock anchor does not absorb it).  60 ms puts the EON's failure
#: threshold near 190 ms buffers and the workstation's near 400 ms.
PLAYOUT = 0.060
EPSILON = 0.010


def run_buffer(block_seconds: float, cpu_freq_hz: float):
    system = EthernetSpeakerSystem()
    producer = system.add_producer(block_seconds=block_seconds)
    channel = system.add_channel(
        "live", params=CD_QUALITY, compress="always", quality=10
    )
    system.add_rebroadcaster(producer, channel, real_codec=False)
    node = system.add_speaker(
        channel=channel,
        cpu_freq_hz=cpu_freq_hz,
        block_seconds=block_seconds,
        playout_delay=PLAYOUT,
        epsilon=EPSILON,
    )
    # a live source (internet radio): each block only exists once its
    # last sample has been produced
    system.play_synthetic(producer, 20.0, CD_QUALITY,
                          chunk_seconds=block_seconds, source_paced=True)
    system.run(until=25.0)
    skipped = node.stats.late_dropped
    return {
        "skipped_blocks": skipped,
        "played": node.stats.played,
        "audible_gaps": node.sink.silence_events,
        "skip_fraction": skipped / max(1, skipped + node.stats.played),
    }


def test_buffer_size_sweep_on_both_machines(benchmark):
    sizes = (0.065, 0.15, 0.25, 0.35)

    def run_all():
        table = {}
        for block in sizes:
            table[block] = {
                "eon": run_buffer(block, EON_4000.cpu_freq_hz),
                "fast": run_buffer(block, FAST_WORKSTATION.cpu_freq_hz),
            }
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for block in sizes:
        eon = table[block]["eon"]
        fast = table[block]["fast"]
        rows.append([
            int(block * 1000),
            eon["skipped_blocks"],
            f"{eon['skip_fraction']*100:.1f}%",
            fast["skipped_blocks"],
            f"{fast['skip_fraction']*100:.1f}%",
        ])
    print()
    print("BUF paper-vs-measured: skipped audio vs buffer size "
          f"(playout budget {PLAYOUT*1000:.0f} ms):")
    print(ascii_table(
        ["buffer (ms)", "EON skips", "EON skip %", "workstation skips",
         "workstation skip %"],
        rows,
    ))
    # the paper's observations, as assertions:
    # 1. large buffers skip on the EON 4000...
    assert table[0.35]["eon"]["skip_fraction"] > 0.5
    # 2. ...but were "not observed during our testing on faster machines"
    assert table[0.35]["fast"]["skip_fraction"] < 0.01
    # 3. "by reducing the buffer size ... the audio stream is processed
    #    without problems" — the small buffer fixes the EON
    assert table[0.065]["eon"]["skip_fraction"] < 0.01
    assert table[0.065]["eon"]["audible_gaps"] <= 3
    # 4. monotone degradation with buffer size on the EON (block-count
    #    quantisation allows a little noise at the top of the curve)
    eon_skips = [table[b]["eon"]["skip_fraction"] for b in sizes]
    assert all(b >= a - 0.05 for a, b in zip(eon_skips, eon_skips[1:]))


def test_decode_is_the_machine_dependent_term(benchmark):
    """Ablation: with compression off, the RAW decode is nearly free and
    the EON handles large buffers too — confirming that the §3.4 effect
    is decompression time, not the network."""
    def run_pair():
        return (
            run_buffer_raw(0.35, EON_4000.cpu_freq_hz),
            run_buffer(0.35, EON_4000.cpu_freq_hz),
        )

    raw, compressed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    print("BUF ablation at 350 ms buffers on the EON 4000:")
    print(ascii_table(
        ["stream", "skipped", "skip %"],
        [
            ["raw PCM", raw["skipped_blocks"],
             f"{raw['skip_fraction']*100:.1f}%"],
            ["VorbisLike q=10", compressed["skipped_blocks"],
             f"{compressed['skip_fraction']*100:.1f}%"],
        ],
    ))
    assert raw["skip_fraction"] < compressed["skip_fraction"]


def run_buffer_raw(block_seconds: float, cpu_freq_hz: float):
    system = EthernetSpeakerSystem()
    producer = system.add_producer(block_seconds=block_seconds)
    channel = system.add_channel("live", params=CD_QUALITY, compress="never")
    system.add_rebroadcaster(producer, channel, real_codec=False)
    node = system.add_speaker(
        channel=channel,
        cpu_freq_hz=cpu_freq_hz,
        block_seconds=block_seconds,
        playout_delay=PLAYOUT,
        epsilon=EPSILON,
    )
    system.play_synthetic(producer, 20.0, CD_QUALITY,
                          chunk_seconds=block_seconds, source_paced=True)
    system.run(until=25.0)
    skipped = node.stats.late_dropped
    return {
        "skipped_blocks": skipped,
        "played": node.stats.played,
        "audible_gaps": node.sink.silence_events,
        "skip_fraction": skipped / max(1, skipped + node.stats.played),
    }
