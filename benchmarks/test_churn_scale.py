"""CHURN — the control plane must absorb 1k joins+leaves/s.

The discovery registry's whole job is surviving fleet churn: entities
joining (ADP adverts), leaving cleanly (ENTITY_DEPARTING) and leaving as
zombies (silent crash; the lease does the work).  This benchmark drives
a fixed slot pool through a join/leave cycle at increasing rates up to
the headline 1000 ops/s, checks the registry ends *exactly* consistent
with the surviving slots, and emits ``BENCH_churn.json``.

The regression gate is host-independent: simulator **events per churn
op** at the headline rate is a pure function of the control-plane code
(advert cadence, scan cadence, transaction structure), deterministic per
seed — against the committed baseline
(``benchmarks/BENCH_churn_baseline.json``) it must not grow by more
than 25 %.
"""

import json
import random
import time
from pathlib import Path

from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.sim.process import Process, Sleep

POOL = 32                 # slots cycling join -> leave -> join
SWEEP = [(100, 4.0), (300, 4.0), (1000, 4.0)]   # (ops/s, sim seconds)
HEADLINE_RATE = 1000
ZOMBIE_FRACTION = 1 / 3   # leaves that crash instead of departing
VALID = 0.2
CHECK = 0.05
INTERVAL = 0.05
CHURN_START = 0.5
SETTLE = 1.0              # > VALID + CHECK: every zombie lease lapses
MAX_EVENTS_PER_OP_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_churn.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_churn_baseline.json"


def run_churn(rate, sim_seconds):
    system = EthernetSpeakerSystem(telemetry=False)
    slots = [
        system.add_speaker(channel=None, start=False, name=f"slot{i}")
        for i in range(POOL)
    ]
    advs = [
        system.advertise_speaker(
            node, valid_time=VALID, interval=INTERVAL
        )
        for node in slots
    ]
    controller = system.add_controller(check_interval=CHECK)
    total_ops = int(rate * sim_seconds)
    joined = [True] * POOL
    counts = {"joins": 0, "clean_leaves": 0, "zombie_leaves": 0}
    rng = random.Random(rate * 1000 + 7)

    def churn():
        yield Sleep(CHURN_START)
        for op in range(total_ops):
            slot = op % POOL
            adv = advs[slot]
            if joined[slot]:
                if rng.random() < ZOMBIE_FRACTION:
                    adv.stop()              # zombie: no goodbye
                    counts["zombie_leaves"] += 1
                else:
                    adv.depart()
                    counts["clean_leaves"] += 1
                joined[slot] = False
            else:
                adv.start()
                counts["joins"] += 1
                joined[slot] = True
            yield Sleep(1.0 / rate)

    Process.spawn(system.sim, churn(), name="churn-driver")
    start = time.perf_counter()
    system.run(until=CHURN_START + sim_seconds + SETTLE)
    wall = time.perf_counter() - start

    # the registry must agree exactly with the surviving slots
    live = {rec.name for rec in controller.available()}
    expected = {f"slot{i}" for i in range(POOL) if joined[i]}
    assert live == expected, (
        f"registry diverged after churn: extra={sorted(live - expected)} "
        f"missing={sorted(expected - live)}"
    )
    assert controller.stats.stale_adverts == 0
    assert len(controller.entities) <= POOL    # slots reuse entity ids
    ops = total_ops
    return {
        "rate_ops_per_sim_s": rate,
        "sim_seconds": sim_seconds,
        "ops": ops,
        "joins": counts["joins"],
        "clean_leaves": counts["clean_leaves"],
        "zombie_leaves": counts["zombie_leaves"],
        "wall_seconds": round(wall, 4),
        "ops_per_wall_sec": int(ops / wall),
        "events_executed": system.sim.events_executed,
        # the host-independent gate metric: deterministic per seed
        "events_per_op": round(system.sim.events_executed / ops, 3),
        "adverts": controller.stats.adp_advertises,
        "departs": controller.stats.departs,
        "expiries": controller.stats.expiries,
        "final_live": len(live),
    }


def test_churn_scale_and_regression_gate():
    sweep = [run_churn(rate, secs) for rate, secs in SWEEP]
    headline = next(
        r for r in sweep if r["rate_ops_per_sim_s"] == HEADLINE_RATE
    )

    # the control plane actually saw the churn, both leave flavours
    for r in sweep:
        assert r["departs"] > 0, "no clean departures registered"
        assert r["adverts"] > 0
    # at low rate the zombie dwell exceeds the lease: expiries must fire
    assert sweep[0]["expiries"] > 0, "no zombie ever aged out"

    result = {
        "pool": POOL,
        "valid_time": VALID,
        "check_interval": CHECK,
        "advert_interval": INTERVAL,
        "zombie_fraction": round(ZOMBIE_FRACTION, 4),
        "sweep": sweep,
        "headline": {
            "rate_ops_per_sim_s": HEADLINE_RATE,
            "events_per_op": headline["events_per_op"],
            "ops_per_wall_sec": headline["ops_per_wall_sec"],
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["ops/sim s", "ops", "zombies", "expiries", "departs",
         "events/op", "ops/wall s"],
        [[r["rate_ops_per_sim_s"], r["ops"], r["zombie_leaves"],
          r["expiries"], r["departs"], r["events_per_op"],
          r["ops_per_wall_sec"]]
         for r in sweep],
    ))

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base = baseline["headline"]["events_per_op"]
        limit = base * MAX_EVENTS_PER_OP_REGRESSION
        print(f"events/op at {HEADLINE_RATE} ops/s: "
              f"{headline['events_per_op']} "
              f"(baseline {base}, limit {limit:.3f})")
        assert headline["events_per_op"] <= limit, (
            f"control-plane event cost per churn op regressed >25% vs "
            f"baseline: {headline['events_per_op']} > {limit:.3f}"
        )
