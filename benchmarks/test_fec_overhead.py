"""FEC OVERHEAD — the price of zero-reverse-traffic loss recovery.

Application-layer FEC trades a fixed forward overhead (``r/k`` parity
frames, each the size of the largest member plus a ~50-byte group
header) for repair without a reverse path.  This benchmark measures the
trade on a live relay tree:

* a **repair-rate-vs-loss-rate sweep**: GE burst loss swept across a
  ``recovery="fec"`` hop, recording the fraction of lost data frames
  FEC reconstructed, the fraction abandoned as holes, and the parity
  overhead as a percentage of protected data bytes;
* a **recovery-ladder comparison** at the headline loss rate — ``none``
  / ``nack`` / ``fec`` / ``fec+nack`` on the same seeded loss pattern —
  the table behind ``docs/performance.md``'s ladder guidance (forward
  overhead vs reverse-path traffic vs residual holes);
* the regression gate: **events per played block** on the headline FEC
  run is deterministic per seed and compared against the committed
  ``benchmarks/BENCH_fec_baseline.json`` with a 25 % allowance.

Emits ``BENCH_fec.json`` (uploaded by the CI ``fec-bench`` job).
"""

import json
import time
from pathlib import Path

from repro.audio import AudioEncoding, AudioParams, music
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table, percent

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)
STREAM_SECONDS = 8.0

FEC_GEOMETRY = dict(fec_k=4, fec_r=2, fec_interleave=2)
LOSS_SWEEP = [0.0, 0.02, 0.05, 0.10, 0.20]
HEADLINE_LOSS = 0.10
LADDER = ["none", "nack", "fec", "fec+nack"]
MAX_EVENTS_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_fec.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_fec_baseline.json"


def run_hop(recovery, loss_rate):
    system = EthernetSpeakerSystem(seed=1, telemetry=False)
    producer = system.add_producer()
    channel = system.add_channel("bench", params=PARAMS, compress="always")
    rb = system.add_rebroadcaster(producer, channel)
    wan_faults = (
        dict(loss_rate=loss_rate, burst_length=2.0, seed=17)
        if loss_rate else None
    )
    relay = system.add_relay(
        rb, name="regional", latency=0.030, recovery=recovery,
        wan_faults=wan_faults, **FEC_GEOMETRY,
    )
    leaf = system.add_leaf_lan(relay, channel, name="leaf")
    speakers = [system.add_speaker(channel=channel, lan=leaf)
                for _ in range(2)]
    system.play_pcm(
        producer, music(STREAM_SECONDS, PARAMS.sample_rate, seed=3), PARAMS
    )
    start = time.perf_counter()
    system.run(until=STREAM_SECONDS + 4.0)
    wall = time.perf_counter() - start

    played = sum(n.stats.played for n in speakers)
    assert played > 0, "leaf never played"
    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open at {recovery}/{loss_rate}: "
        f"residual={report.conservation_residual}"
    )
    hop = system.wan_hops[0]
    inj_lost = hop.link.faults.stats.lost if hop.link.faults else 0
    return {
        "recovery": recovery,
        "loss_rate": loss_rate,
        "stream_seconds": STREAM_SECONDS,
        "wall_seconds": round(wall, 4),
        "events_executed": system.sim.events_executed,
        "blocks_played": played,
        "events_per_played": round(system.sim.events_executed / played, 2),
        "injected_losses": inj_lost,
        "repaired": hop.fec.repaired,
        "repair_rate_pct": percent(hop.fec.repaired, inj_lost),
        "abandoned": hop.stats.abandoned,
        "recovered": hop.stats.recovered,
        "nacks_sent": hop.stats.nacks_sent,
        "retransmits": hop.link.retransmits,
        "parity_frames": hop.fec.parity_sent,
        "overhead_pct": percent(hop.fec.parity_bytes, hop.fec.data_bytes),
    }


def test_fec_overhead_sweep_and_regression_gate():
    sweep = [run_hop("fec", loss) for loss in LOSS_SWEEP]
    ladder = [run_hop(policy, HEADLINE_LOSS) for policy in LADDER]
    headline = next(r for r in sweep if r["loss_rate"] == HEADLINE_LOSS)

    # the sweep must exercise real repair at every lossy point, with
    # zero reverse traffic throughout (FEC-only hops never NACK)
    for row in sweep:
        assert row["nacks_sent"] == 0 and row["retransmits"] == 0
        if row["loss_rate"] > 0:
            assert row["repaired"] > 0
    # ladder sanity: FEC spares the reverse path NACK-only leans on
    by_policy = {r["recovery"]: r for r in ladder}
    assert by_policy["nack"]["nacks_sent"] > 0
    assert by_policy["fec"]["nacks_sent"] == 0
    assert (by_policy["fec+nack"]["nacks_sent"]
            <= by_policy["nack"]["nacks_sent"])
    assert by_policy["none"]["overhead_pct"] == 0.0

    result = {
        "params": {
            "encoding": str(PARAMS.encoding.name),
            "sample_rate": PARAMS.sample_rate,
            "channels": PARAMS.channels,
            "compress": "always",
            **FEC_GEOMETRY,
            "headline_loss": HEADLINE_LOSS,
        },
        "sweep": sweep,
        "ladder": ladder,
        "headline": headline,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["loss", "lost", "repaired", "repair %", "abandoned",
         "overhead %", "events/played"],
        [[r["loss_rate"], r["injected_losses"], r["repaired"],
          r["repair_rate_pct"], r["abandoned"], r["overhead_pct"],
          r["events_per_played"]]
         for r in sweep],
    ))
    print()
    print(ascii_table(
        ["recovery", "repaired", "recovered", "abandoned", "nacks",
         "retx", "overhead %", "events/played"],
        [[r["recovery"], r["repaired"], r["recovered"], r["abandoned"],
          r["nacks_sent"], r["retransmits"], r["overhead_pct"],
          r["events_per_played"]]
         for r in ladder],
    ))

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base = baseline["headline"]["events_per_played"]
        limit = base * MAX_EVENTS_REGRESSION
        measured = headline["events_per_played"]
        print(f"events/played: {measured:.2f} "
              f"(baseline {base:.2f}, limit {limit:.2f})")
        assert measured <= limit, (
            f"FEC event cost regressed >25% vs baseline: "
            f"{measured:.2f} events per played block > {limit:.2f}"
        )
