"""PROTOCOL — pack/parse must stay off the per-packet critical path.

Every data packet crosses ``encode`` once (producer) and ``parse_packet``
once per receiving speaker, so these two functions bound the packet rate
the whole simulation can sustain.  The hot paths are a single pre-composed
``struct.Struct`` pack and a zero-copy ``unpack_from`` parse whose payload
is a read-only ``memoryview`` into the datagram.

The floors are ~5x below measured throughput on a developer host, so the
guard trips on an algorithmic regression (a reintroduced copy, a per-call
``struct.pack`` format compile), not on CI host noise.
"""

from repro.codec import CodecID
from repro.core.protocol import DataPacket, parse_packet

#: MTU-sized payload: the shape the rebroadcaster actually sends
PACKET = DataPacket(
    channel_id=1,
    seq=7,
    play_at=3.25,
    payload=b"\x01\x02" * 700,
    codec_id=CodecID.VORBIS_LIKE,
    synthetic=False,
    pcm_bytes=1400,
)
WIRE = PACKET.encode()
BATCH = 10_000
MIN_PACK_PER_SEC = 300_000
MIN_PARSE_PER_SEC = 60_000


def pack_batch():
    encode = PACKET.encode
    for _ in range(BATCH):
        encode()


def parse_batch():
    for _ in range(BATCH):
        parse_packet(WIRE)


def test_pack_throughput(benchmark):
    benchmark.pedantic(pack_batch, rounds=3, iterations=1)
    rate = BATCH / benchmark.stats.stats.min
    print(f"\npack: {rate:,.0f} packets/s (floor {MIN_PACK_PER_SEC:,})")
    assert rate >= MIN_PACK_PER_SEC


def test_parse_throughput(benchmark):
    benchmark.pedantic(parse_batch, rounds=3, iterations=1)
    rate = BATCH / benchmark.stats.stats.min
    print(f"\nparse: {rate:,.0f} packets/s (floor {MIN_PARSE_PER_SEC:,})")
    assert rate >= MIN_PARSE_PER_SEC


def test_parse_is_zero_copy():
    # the companion correctness guard: the benchmarked path really is the
    # zero-copy one (payload views the wire buffer, no slice copy)
    out = parse_packet(WIRE)
    assert isinstance(out.payload, memoryview)
    assert out.payload.obj is WIRE
    assert out == PACKET
