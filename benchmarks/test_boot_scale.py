"""BOOT — §2.3/§2.4: the deployment-scale claims.

* "having machines mount their root and swap filesystems over the network
  would lead to scalability problems" -> the ramdisk design: one TFTP
  transfer per boot, nothing mounted afterwards;
* "the Rebroadcaster does not need to maintain any state for the Ethernet
  Speakers that listen in" -> time-to-first-audio for a joining speaker is
  independent of how many speakers already listen, and the producer does
  identical work for 1 or 24 speakers;
* boot time scales with LAN bandwidth and fleet size (everyone shares the
  segment).
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.kernel import Machine
from repro.metrics import ascii_table
from repro.platform import (
    BootServer,
    DhcpServer,
    EON_4000,
    build_ramdisk,
    make_machine,
    netboot,
)
from repro.sim import Process

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)


def run_fleet_boot(n_speakers: int, bandwidth: float = 100e6):
    from repro.sim import Simulator
    from repro.net import EthernetSegment

    sim = Simulator()
    lan = EthernetSegment(sim, bandwidth_bps=bandwidth, latency=50e-6,
                          max_backlog=2000)
    server = Machine(sim, "bootsrv", cpu_freq_hz=1e9)
    server.attach_network(lan, "10.1.9.1")
    key = b"host-key"
    image = build_ramdisk("1.0", boot_server_key=key)
    BootServer(server, image, key,
               default_config={"/etc/es.conf": b"channel=pa\n"}).start()
    DhcpServer(server).start()
    procs = []
    for i in range(n_speakers):
        es = make_machine(sim, f"es{i}", EON_4000)
        es.attach_network(lan, "0.0.0.0")
        procs.append(Process.spawn(sim, netboot(es), f"boot{i}"))
    sim.run()
    times = [p.result.boot_seconds for p in procs]
    assert all(p.result.etc["/etc/es.conf"] == b"channel=pa\n" for p in procs)
    return {
        "mean_boot": sum(times) / len(times),
        "max_boot": max(times),
        "image_mb": image.size_bytes / 1e6,
    }


def test_fleet_boot_scales_with_size_and_bandwidth(benchmark):
    def run_grid():
        return {
            (n, bw): run_fleet_boot(n, bw)
            for n in (1, 8)
            for bw in (10e6, 100e6)
        }

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [n, f"{bw/1e6:.0f} Mbps", r["mean_boot"], r["max_boot"]]
        for (n, bw), r in sorted(grid.items())
    ]
    print()
    print("BOOT: PXE fleet boot times (2 MB ramdisk image each):")
    print(ascii_table(
        ["speakers", "LAN", "mean boot (s)", "max boot (s)"], rows
    ))
    # the whole fleet boots unattended in seconds-to-a-minute
    assert grid[(8, 100e6)]["max_boot"] < 10.0
    # contention: 8 concurrent transfers on the same segment are slower
    assert grid[(8, 100e6)]["max_boot"] > grid[(1, 100e6)]["max_boot"]
    # a legacy segment is proportionally slower
    assert grid[(1, 10e6)]["mean_boot"] > 3 * grid[(1, 100e6)]["mean_boot"]


def run_join_time(n_existing: int):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("pa", params=PARAMS, compress="never")
    system.add_rebroadcaster(producer, channel, control_interval=0.5)
    for _ in range(n_existing):
        system.add_speaker(channel=channel)
    system.play_synthetic(producer, 30.0, PARAMS)
    joiner = system.add_speaker(channel=channel, start=False)
    join_at = 10.0
    system.sim.schedule(join_at, joiner.speaker.start)
    system.run(until=20.0)
    rb = system.rebroadcasters[0]
    return {
        "time_to_first_audio": joiner.stats.first_play_time - join_at,
        "producer_sent": rb.stats.data_sent + rb.stats.control_sent,
    }


def test_join_time_independent_of_fleet_size(benchmark):
    def run_three():
        return {n: run_join_time(n) for n in (1, 8, 24)}

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)
    rows = [
        [n, r["time_to_first_audio"], r["producer_sent"]]
        for n, r in sorted(results.items())
    ]
    print()
    print("BOOT/stateless-join: time-to-first-audio for a speaker joining "
          "mid-stream vs existing fleet size:")
    print(ascii_table(
        ["existing speakers", "join-to-audio (s)", "producer packets"], rows
    ))
    times = [r["time_to_first_audio"] for r in results.values()]
    # §2.3: no per-speaker state, no join protocol: first audio within
    # one control interval + playout delay, regardless of fleet size
    assert max(times) < 1.2
    assert max(times) - min(times) < 0.050
    # the producer did exactly the same work in all three runs
    sent = {r["producer_sent"] for r in results.values()}
    assert len(sent) == 1
