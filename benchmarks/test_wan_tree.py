"""WAN RELAY TREE — tandem-free fan-out must stay cheap as the tree grows.

A relay re-multicasts the compressed wire image without decoding it
(zero-copy parse of the 12-byte header, then forward), so adding a tier
or a leaf LAN should cost wire events, not codec work.  This benchmark
sweeps regional relays × leaf LANs per relay — the headline point is the
ISSUE's baseline topology, origin → 2 regional relays → 4 leaf LANs —
and emits ``BENCH_wan.json``.

The regression gate is host-independent: simulator **events per played
block** is deterministic per seed, so it is compared directly against
the committed ``benchmarks/BENCH_wan_baseline.json`` with a 25 %
allowance.  Every run must also close the conservation ledger and play
audio on every leaf.
"""

import json
import time
from pathlib import Path

from repro.audio import AudioEncoding, AudioParams, music
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)
STREAM_SECONDS = 8.0
SPEAKERS_PER_LEAF = 2

#: (regional relays, leaf LANs per relay)
SWEEP = [(1, 1), (1, 2), (2, 1), (2, 2)]
HEADLINE = (2, 2)  # origin -> 2 relays -> 4 leaf LANs
MAX_EVENTS_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_wan.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_wan_baseline.json"


def run_tree(regionals, leaves_per_relay):
    system = EthernetSpeakerSystem(seed=1, telemetry=False)
    producer = system.add_producer()
    channel = system.add_channel("bench", params=PARAMS, compress="always")
    rb = system.add_rebroadcaster(producer, channel)
    leaf_speakers = []
    for r in range(regionals):
        relay = system.add_relay(rb, name=f"regional{r}", latency=0.030)
        for l in range(leaves_per_relay):
            leaf = system.add_leaf_lan(relay, channel, name=f"leaf{r}.{l}")
            leaf_speakers.append([
                system.add_speaker(channel=channel, lan=leaf)
                for _ in range(SPEAKERS_PER_LEAF)
            ])
    system.play_pcm(
        producer, music(STREAM_SECONDS, PARAMS.sample_rate, seed=3), PARAMS
    )
    start = time.perf_counter()
    system.run(until=STREAM_SECONDS + 4.0)
    wall = time.perf_counter() - start

    played = sum(n.stats.played for lan in leaf_speakers for n in lan)
    for lan in leaf_speakers:
        for node in lan:
            assert node.stats.played > 0, "a leaf speaker never played"
    report = system.pipeline_report()
    assert report.conservation_ok, (
        f"ledger open at {regionals}x{leaves_per_relay}: "
        f"residual={report.conservation_residual}"
    )
    forwarded = sum(r.stats.forwarded for r in system.relays)
    return {
        "regionals": regionals,
        "leaf_lans": regionals * leaves_per_relay,
        "speakers": regionals * leaves_per_relay * SPEAKERS_PER_LEAF,
        "stream_seconds": STREAM_SECONDS,
        "wall_seconds": round(wall, 4),
        "events_executed": system.sim.events_executed,
        "blocks_played": played,
        # host-independent cost metric: deterministic per seed
        "events_per_played": round(system.sim.events_executed / played, 2),
        "relay_forwarded": forwarded,
        "wan_sent": report.wan_sent,
        "wan_delivered": report.wan_delivered,
    }


def test_wan_tree_scale_and_regression_gate():
    sweep = [run_tree(r, l) for r, l in SWEEP]
    headline = next(
        r for r in sweep
        if (r["regionals"], r["leaf_lans"] // r["regionals"]) == HEADLINE
    )

    result = {
        "params": {
            "encoding": str(PARAMS.encoding.name),
            "sample_rate": PARAMS.sample_rate,
            "channels": PARAMS.channels,
            "compress": "always",
            "speakers_per_leaf": SPEAKERS_PER_LEAF,
        },
        "sweep": sweep,
        "headline": headline,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["relays", "leaf LANs", "speakers", "wall s", "events",
         "events/played", "forwarded"],
        [[r["regionals"], r["leaf_lans"], r["speakers"], r["wall_seconds"],
          r["events_executed"], r["events_per_played"],
          r["relay_forwarded"]]
         for r in sweep],
    ))

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base = baseline["headline"]["events_per_played"]
        limit = base * MAX_EVENTS_REGRESSION
        measured = headline["events_per_played"]
        print(f"events/played: {measured:.2f} "
              f"(baseline {base:.2f}, limit {limit:.2f})")
        assert measured <= limit, (
            f"relay-tree event cost regressed >25% vs baseline: "
            f"{measured:.2f} events per played block > {limit:.2f}"
        )
