"""COHORT — ten thousand speakers should cost barely more than one.

A unity-gain fleet is N copies of the same state machine fed the same
multicast bytes.  ``SpeakerCohort`` collapses the copies into numpy rows
behind one exemplar speaker, advancing the whole fleet one event per
delivered frame instead of N — so host wall-clock scales with the
*stream*, not the audience, exactly like the wire does (§2.3: the
producer "does not need to maintain any state for the Ethernet
Speakers").

This benchmark sweeps cohort sizes up to 10,000 members × 10 simulated
seconds, races the vectorized fleet against a per-object fleet
(``cohort=False``) at the 1,024-member race point, and emits
``BENCH_cohort.json``.  Three gates:

* the cohort must execute **>= 10x fewer** simulator events than the
  per-object fleet at the race point;
* the sweep must be **sublinear**: growing the fleet 1,000 -> 10,000
  members may cost at most 3x the wall-clock (per-object would be 10x);
* against the committed baseline
  (``benchmarks/BENCH_cohort_baseline.json``) the *normalised*
  wall-clock — cohort divided by per-object, so host speed cancels
  out — must not regress by more than 25 %.
"""

import json
import time
from pathlib import Path

from repro.audio import AudioEncoding, AudioParams, music
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)
STREAM_SECONDS = 10.0
SWEEP = [1000, 4000, 10000]
RACE_MEMBERS = 1024
MIN_EVENT_RATIO = 10.0
MAX_SWEEP_GROWTH = 3.0
MAX_NORMALISED_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_cohort.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_cohort_baseline.json"


def run_fleet(members, *, cohort):
    system = EthernetSpeakerSystem(telemetry=False, cohort=cohort)
    producer = system.add_producer()
    channel = system.add_channel("bench", params=PARAMS, compress="always")
    system.add_rebroadcaster(producer, channel)
    fleet = system.add_speaker_cohort(channel, members)
    system.play_pcm(
        producer, music(STREAM_SECONDS, PARAMS.sample_rate, seed=3), PARAMS
    )
    start = time.perf_counter()
    system.run(until=STREAM_SECONDS + 4.0)
    wall = time.perf_counter() - start
    played = sum(
        fleet.member_stats(i).played for i in range(members)
    ) if not cohort else fleet.stat_sum("played")
    packets = sum(rb.stats.data_sent for rb in system.rebroadcasters)
    return {
        "members": members,
        "cohort": cohort,
        "stream_seconds": STREAM_SECONDS,
        "wall_seconds": round(wall, 4),
        "wall_per_sim_second": round(wall / STREAM_SECONDS, 4),
        "events_executed": system.sim.events_executed,
        "events_saved": fleet.events_saved if cohort else 0,
        "spills": fleet.spills if cohort else 0,
        "packets_sent": packets,
        "blocks_played": played,
    }


def test_cohort_scale_and_regression_gate():
    sweep = [run_fleet(n, cohort=True) for n in SWEEP]
    race_cohort = run_fleet(RACE_MEMBERS, cohort=True)
    race_object = run_fleet(RACE_MEMBERS, cohort=False)

    # the fast path must not change what the audience hears: every
    # member plays the same number of blocks either way, nobody spills
    # on a clean wire, and the wire itself is untouched
    assert race_cohort["blocks_played"] == race_object["blocks_played"] > 0
    assert race_cohort["packets_sent"] == race_object["packets_sent"]
    assert race_cohort["spills"] == 0

    event_ratio = (race_object["events_executed"]
                   / race_cohort["events_executed"])
    speedup = race_object["wall_seconds"] / race_cohort["wall_seconds"]
    normalised = race_cohort["wall_seconds"] / race_object["wall_seconds"]
    growth = sweep[-1]["wall_seconds"] / sweep[0]["wall_seconds"]
    result = {
        "params": {
            "encoding": str(PARAMS.encoding.name),
            "sample_rate": PARAMS.sample_rate,
            "channels": PARAMS.channels,
            "compress": "always",
            "stream_seconds": STREAM_SECONDS,
        },
        "sweep": sweep,
        "sweep_growth_1k_to_10k": round(growth, 2),
        "race": {
            "members": RACE_MEMBERS,
            "cohort": race_cohort,
            "per_object": race_object,
            "event_ratio": round(event_ratio, 2),
            "speedup": round(speedup, 2),
            # host-speed-independent: cohort wall over per-object wall
            "normalised_wall": round(normalised, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["members", "mode", "wall s", "wall/sim s", "events", "saved"],
        [[r["members"], "cohort" if r["cohort"] else "object",
          r["wall_seconds"], r["wall_per_sim_second"],
          r["events_executed"], r["events_saved"]]
         for r in sweep + [race_cohort, race_object]],
    ))
    print(f"race event ratio: {event_ratio:.1f}x fewer events "
          f"(gate: >= {MIN_EVENT_RATIO}x); wall speedup {speedup:.1f}x")
    print(f"sweep growth 1k->10k members: {growth:.2f}x wall "
          f"(gate: <= {MAX_SWEEP_GROWTH}x)")

    assert event_ratio >= MIN_EVENT_RATIO, (
        f"cohort only cut events {event_ratio:.1f}x vs per-object at "
        f"{RACE_MEMBERS} members (need >= {MIN_EVENT_RATIO}x)"
    )
    assert growth <= MAX_SWEEP_GROWTH, (
        f"10x more members cost {growth:.2f}x wall-clock "
        f"(sublinearity gate: <= {MAX_SWEEP_GROWTH}x)"
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_norm = baseline["race"]["normalised_wall"]
        limit = base_norm * MAX_NORMALISED_REGRESSION
        print(f"normalised wall: {normalised:.4f} "
              f"(baseline {base_norm:.4f}, limit {limit:.4f})")
        assert normalised <= limit, (
            f"normalised wall-clock regressed >25% vs baseline: "
            f"{normalised:.4f} > {limit:.4f}"
        )
