"""LOWRATE — §2.2: "Audio channels with low bit-rates are still sent
uncompressed because the use of Ogg Vorbis introduces latency and
increases the workload on the sender.  The selective use of compression
can be enhanced by allowing the rebroadcast application to select the
Ogg Vorbis compression rate."

Reproduced as the policy's cost/benefit table across stream types: what
compression buys (bandwidth) and costs (producer CPU, pipeline latency)
for CD-quality stereo vs 8 kHz telephone-quality mono, plus the
quality-index knob trading CPU against bitrate on high-rate channels.
"""

import pytest

from repro.audio import CD_QUALITY, PHONE_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table


def run_channel(params, compress, quality=10, duration=20.0):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel(
        "ch", params=params, compress=compress, quality=quality
    )
    system.add_rebroadcaster(producer, channel, real_codec=False)
    node = system.add_speaker(channel=channel)
    system.play_synthetic(producer, duration, params)
    system.run(until=duration + 5.0)
    cpu_pct = (
        producer.machine.cpu.stats.domain_seconds["user"]
        / duration
        * 100.0
    )
    kbps = system.monitor.total_payload_bytes * 8 / duration / 1e3
    return {
        "kbps": kbps,
        "producer_user_pct": cpu_pct,
        "speaker_ok": node.stats.played > 0 and node.stats.late_dropped == 0,
    }


def test_selective_compression_policy(benchmark):
    def run_all():
        return {
            ("CD stereo", "raw"): run_channel(CD_QUALITY, "never"),
            ("CD stereo", "compressed"): run_channel(CD_QUALITY, "always"),
            ("phone mono", "raw"): run_channel(PHONE_QUALITY, "never"),
            ("phone mono", "compressed"): run_channel(
                PHONE_QUALITY, "always"
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [stream, mode, r["kbps"], r["producer_user_pct"], r["speaker_ok"]]
        for (stream, mode), r in results.items()
    ]
    print()
    print("LOWRATE: what compression buys and costs per stream type:")
    print(ascii_table(
        ["stream", "mode", "payload kbit/s", "producer user CPU %", "clean"],
        rows,
    ))
    cd_raw = results[("CD stereo", "raw")]
    cd_cmp = results[("CD stereo", "compressed")]
    ph_raw = results[("phone mono", "raw")]
    ph_cmp = results[("phone mono", "compressed")]
    # high-rate channel: compression saves most of the bandwidth...
    assert cd_cmp["kbps"] < 0.4 * cd_raw["kbps"]
    # ...at a significant sender cost
    assert cd_cmp["producer_user_pct"] > 5 * max(
        0.1, cd_raw["producer_user_pct"]
    )
    # low-rate channel: barely any bandwidth to win (64 kbit/s raw), so
    # the CPU spent compressing it buys almost nothing in absolute terms
    assert ph_raw["kbps"] < 70.0
    saved_phone = ph_raw["kbps"] - ph_cmp["kbps"]
    saved_cd = cd_raw["kbps"] - cd_cmp["kbps"]
    assert saved_phone < 0.07 * saved_cd


def test_auto_policy_picks_per_stream(benchmark):
    def run_auto():
        return (
            run_channel(CD_QUALITY, "auto"),
            run_channel(PHONE_QUALITY, "auto"),
        )

    cd, phone = benchmark.pedantic(run_auto, rounds=1, iterations=1)
    print()
    print("LOWRATE auto policy (threshold 256 kbit/s):")
    print(ascii_table(
        ["stream", "payload kbit/s", "producer user CPU %"],
        [
            ["CD stereo (compressed)", cd["kbps"], cd["producer_user_pct"]],
            ["phone mono (left raw)", phone["kbps"],
             phone["producer_user_pct"]],
        ],
    ))
    assert cd["kbps"] < 600  # compressed
    assert phone["kbps"] > 60  # left raw
    assert phone["producer_user_pct"] < 1.0


def test_quality_index_trades_cpu_for_bitrate(benchmark):
    """The §2.2 enhancement: more aggressive compression on high-rate
    channels where quality matters less."""
    def run_sweep():
        return {
            q: run_channel(CD_QUALITY, "always", quality=q, duration=12.0)
            for q in (2, 6, 10)
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [q, r["kbps"], r["producer_user_pct"]]
        for q, r in sorted(results.items())
    ]
    print()
    print("LOWRATE quality-index sweep on a CD stereo channel:")
    print(ascii_table(
        ["quality index", "payload kbit/s", "producer user CPU %"], rows
    ))
    kbps = [results[q]["kbps"] for q in (2, 6, 10)]
    cpu = [results[q]["producer_user_pct"] for q in (2, 6, 10)]
    assert kbps[0] < kbps[1] < kbps[2]
    assert cpu[0] < cpu[2]
