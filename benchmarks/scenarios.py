"""Shared scenario builders for the benchmark suite.

Every benchmark regenerates one figure/table/claim from the paper; these
helpers build the corresponding deployments.  All scenarios are
deterministic (fixed seeds, virtual time).
"""

from __future__ import annotations

from repro.audio import CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.core.ratelimiter import RateLimiter
from repro.kernel.vad import VadPair
from repro.metrics import VmstatSampler
from repro.sim import Sleep

#: block size used for the Figure 4/5 machine (calibration documented in
#: EXPERIMENTS.md: the paper does not state its blocksize; 0.1 s matches
#: the reported context-switch means)
FIG_BLOCK_SECONDS = 0.1


def producer_with_streams(
    n_streams: int,
    duration: float = 70.0,
    compress: str = "always",
    quality: int = 10,
    cpu_freq_hz: float = 500e6,
):
    """A producer machine pushing ``n_streams`` CD-quality streams through
    n VADs and n rebroadcasters (the Figure 4 workload)."""
    system = EthernetSpeakerSystem()
    producer = system.add_producer(
        cpu_freq_hz=cpu_freq_hz, block_seconds=FIG_BLOCK_SECONDS
    )
    for i in range(n_streams):
        if i == 0:
            slave, master = "/dev/vads", "/dev/vadm"
        else:
            slave, master = f"/dev/vads{i}", f"/dev/vadm{i}"
            VadPair(
                producer.machine,
                slave_path=slave,
                master_path=master,
                block_seconds=FIG_BLOCK_SECONDS,
            )
        channel = system.add_channel(
            f"stream{i}", params=CD_QUALITY, compress=compress,
            quality=quality,
        )
        system.add_rebroadcaster(
            producer, channel, master_path=master, real_codec=False
        )
        system.play_synthetic(
            producer, duration, CD_QUALITY, slave_path=slave
        )
    return system, producer


def kernel_streaming_consumer(system, producer, channel):
    """Wire the paper's preliminary design: rate limiting and network send
    inside the VAD kernel thread (§3.3), no user-level reader."""
    machine = producer.machine
    sock = machine.net.socket()
    limiter = RateLimiter()

    def consumer(record):
        if record.kind == "data":
            delay = limiter.delay_before(
                len(record.payload), CD_QUALITY, machine.sim.now
            )
            if delay > 0:
                yield Sleep(delay)
            yield machine.cpu.run(20_000, domain="sys")
            sock.sendto(record.payload, (channel.group_ip, channel.port))

    producer.vad.kernel_consumer = consumer


def sampled_run(system, machine, until: float, interval: float = 1.0):
    """Run a system under a vmstat sampler; returns the sampler."""
    sampler = VmstatSampler(machine, interval=interval)
    sampler.start()
    system.run(until=until)
    return sampler
