"""BW13 — §2.2: "this created significant network overhead (around 1.3Mbps
for CD-quality audio).  On a fast Ethernet this was not a problem, but on
legacy 10Mbps or wireless links, the overhead was unacceptable.  We,
therefore, decided to compress the audio stream."

Reproduced: (a) one raw CD stream costs ~1.41 Mbit/s of payload
(1.35 Mibit/s — the paper's "around 1.3"); (b) eight raw streams overload
a 10 Mbps segment and speakers lose audio, while eight compressed streams
fit comfortably.
"""

import pytest

from repro.audio import CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.kernel.vad import VadPair
from repro.metrics import ascii_table


def run_single_stream_bandwidth():
    system = EthernetSpeakerSystem(bandwidth_bps=100e6)
    producer = system.add_producer()
    channel = system.add_channel("cd", params=CD_QUALITY, compress="never")
    system.add_rebroadcaster(producer, channel, real_codec=False)
    system.play_synthetic(producer, 20.0, CD_QUALITY)
    system.run(until=20.0)
    stream_seconds = system.rebroadcasters[0].limiter.stream_pos
    payload_mbps = (
        system.monitor.total_payload_bytes * 8 / stream_seconds / 1e6
    )
    wire_mbps = system.monitor.total_wire_bytes * 8 / stream_seconds / 1e6
    return payload_mbps, wire_mbps


def test_raw_cd_stream_is_about_1_3_mbps(benchmark):
    payload_mbps, wire_mbps = benchmark.pedantic(
        run_single_stream_bandwidth, rounds=1, iterations=1
    )
    mibps = payload_mbps * 1e6 / (1 << 20)
    print()
    print("BW13 paper-vs-measured (one raw CD-quality stereo stream):")
    print(ascii_table(
        ["quantity", "paper", "measured"],
        [
            ["payload rate (Mbit/s)", "1.41 (PCM arithmetic)", payload_mbps],
            ["payload rate (Mibit/s)", "'around 1.3Mbps'", mibps],
            ["on-wire rate w/ headers (Mbit/s)", "-", wire_mbps],
        ],
    ))
    assert payload_mbps == pytest.approx(1.41, rel=0.03)
    assert 1.25 < mibps < 1.45
    assert wire_mbps > payload_mbps


def run_saturation(n_streams: int, compress: str, bandwidth: float):
    system = EthernetSpeakerSystem(bandwidth_bps=bandwidth)
    producer = system.add_producer()
    nodes = []
    for i in range(n_streams):
        if i == 0:
            slave, master = "/dev/vads", "/dev/vadm"
        else:
            slave, master = f"/dev/vads{i}", f"/dev/vadm{i}"
            VadPair(producer.machine, slave_path=slave, master_path=master)
        channel = system.add_channel(
            f"s{i}", params=CD_QUALITY, compress=compress
        )
        system.add_rebroadcaster(
            producer, channel, master_path=master, real_codec=False
        )
        nodes.append(system.add_speaker(channel=channel))
        system.play_synthetic(producer, 15.0, CD_QUALITY, slave_path=slave)
    system.run(until=25.0)
    # a saturated segment hurts twice: frames drop at the backlog limit,
    # and queueing delay makes surviving packets miss their deadlines
    sent = sum(rb.stats.data_sent for rb in system.rebroadcasters)
    played = sum(n.stats.played for n in nodes)
    return {
        "offered_mbps": system.monitor.total_wire_bytes * 8 / 15.0 / 1e6,
        "loss_fraction": 1.0 - played / max(1, sent),
        "wire_drops": system.lan.stats.frames_dropped,
    }


def test_eight_raw_streams_overload_legacy_ethernet(benchmark):
    def run_both():
        raw = run_saturation(8, "never", 10e6)
        compressed = run_saturation(8, "always", 10e6)
        return raw, compressed

    raw, compressed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("BW13 on a legacy 10 Mbps segment, 8 CD streams:")
    print(ascii_table(
        ["mode", "offered Mbit/s", "speaker loss fraction", "wire drops"],
        [
            ["raw PCM", raw["offered_mbps"], raw["loss_fraction"],
             raw["wire_drops"]],
            ["VorbisLike q=10", compressed["offered_mbps"],
             compressed["loss_fraction"], compressed["wire_drops"]],
        ],
    ))
    # raw: 8 x 1.47 > 10 Mbps -> drops and audible loss ("unacceptable")
    assert raw["offered_mbps"] > 10.0
    assert raw["wire_drops"] > 0
    assert raw["loss_fraction"] > 0.20
    # compressed: fits with room to spare
    assert compressed["offered_mbps"] < 6.0
    assert compressed["wire_drops"] == 0
    assert compressed["loss_fraction"] < 0.01


def test_compression_ratio_on_the_wire(benchmark):
    def run_both():
        results = {}
        for compress in ("never", "always"):
            system = EthernetSpeakerSystem()
            producer = system.add_producer()
            channel = system.add_channel(
                "cd", params=CD_QUALITY, compress=compress
            )
            system.add_rebroadcaster(producer, channel, real_codec=False)
            system.play_synthetic(producer, 15.0, CD_QUALITY)
            system.run(until=16.0)
            results[compress] = system.monitor.total_payload_bytes
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratio = results["always"] / results["never"]
    print()
    print(f"wire payload, compressed vs raw: {ratio:.2f} "
          f"(VorbisLike q=10 on CD stereo)")
    assert 0.15 < ratio < 0.45  # "excellent compression" at max quality
