"""FIG5 — Figure 5: "Comparison of context switch rate between a streaming
application contained with the VAD driver inside the kernel and a
user-level application.  Data gathered by vmstat over a sixty second
period at one second intervals."

Paper means: Unloaded Machine 4.2, Kernel Threaded VAD 28.716,
VAD (user-level) 37.2 switches/interval.  Expected shape:
user-level > kernel-threaded >> unloaded, user/kernel ratio ~1.3.
"""

import pytest

from benchmarks.scenarios import (
    FIG_BLOCK_SECONDS,
    kernel_streaming_consumer,
    sampled_run,
)
from repro.audio import CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PAPER_MEANS = {"unloaded": 4.2, "kernel": 28.716, "user": 37.2}


def run_fig5(mode: str) -> float:
    system = EthernetSpeakerSystem()
    producer = system.add_producer(block_seconds=FIG_BLOCK_SECONDS)
    channel = system.add_channel("cd", params=CD_QUALITY, compress="never")
    if mode == "kernel":
        kernel_streaming_consumer(system, producer, channel)
        system.play_synthetic(producer, 70.0, CD_QUALITY)
    elif mode == "user":
        system.add_rebroadcaster(producer, channel, real_codec=False)
        system.play_synthetic(producer, 70.0, CD_QUALITY)
    sampler = sampled_run(system, producer.machine, until=61.0)
    return sampler.mean_context_switch_rate()


@pytest.mark.parametrize("mode", ["unloaded", "kernel", "user"])
def test_fig5_context_switch_rate(benchmark, mode):
    mean = benchmark.pedantic(run_fig5, args=(mode,), rounds=1, iterations=1)
    print()
    print(ascii_table(
        ["configuration", "paper mean", "measured mean"],
        [[mode, PAPER_MEANS[mode], mean]],
    ))
    # within 35 % of the paper's reported mean
    assert mean == pytest.approx(PAPER_MEANS[mode], rel=0.35)


def test_fig5_ordering_and_ratios(benchmark):
    def run_all():
        return {m: run_fig5(m) for m in ("unloaded", "kernel", "user")}

    means = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("FIG5 paper-vs-measured (context switches per 1 s interval):")
    print(ascii_table(
        ["configuration", "paper mean", "measured mean"],
        [
            ["Unloaded Machine", 4.2, means["unloaded"]],
            ["Kernel Threaded VAD", 28.716, means["kernel"]],
            ["VAD (user-level)", 37.2, means["user"]],
        ],
    ))
    assert means["unloaded"] < means["kernel"] < means["user"]
    # the paper's user/kernel ratio is 1.30; require the same ballpark
    ratio = means["user"] / means["kernel"]
    assert 1.1 < ratio < 1.7
    # both streaming modes dwarf the unloaded baseline
    assert means["kernel"] > 4 * means["unloaded"]
