"""FAN-OUT — adding a listener must be (nearly) free on the host, too.

The paper's producer "does not need to maintain any state for the Ethernet
Speakers" (§2.3): the wire cost of a multicast stream is independent of the
audience size.  The simulator's *host* cost was not — every speaker decoded
every block privately and every receiver copy was its own heap event.  The
fan-out fast path (shared-decode cache + zero-copy parsing + batched
delivery + event free-list) makes host wall-clock scale like the wire.

This benchmark sweeps speakers × stream-seconds on the fast path, races the
headline point (64 speakers × 10 s) against the compatibility switches
(``shared_decode=False, batched_delivery=False``), and emits
``BENCH_fanout.json``.  Two gates:

* the fast path must be **>= 3x** faster at the headline point;
* against the committed baseline (``benchmarks/BENCH_fanout_baseline.json``)
  the *normalised* wall-clock per simulated second — fast divided by compat,
  so host speed cancels out — must not regress by more than 25 %.
"""

import json
import time
from pathlib import Path

from repro.audio import AudioEncoding, AudioParams, music
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)
SWEEP = [(4, 2.0), (16, 2.0), (64, 2.0), (64, 10.0)]
HEADLINE = (64, 10.0)
MIN_SPEEDUP = 3.0
MAX_NORMALISED_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_fanout.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_fanout_baseline.json"


def run_fanout(speakers, stream_seconds, *, shared_decode, batched_delivery):
    system = EthernetSpeakerSystem(
        telemetry=False,
        shared_decode=shared_decode,
        batched_delivery=batched_delivery,
    )
    producer = system.add_producer()
    channel = system.add_channel("bench", params=PARAMS, compress="always")
    system.add_rebroadcaster(producer, channel)
    for _ in range(speakers):
        system.add_speaker(channel=channel)
    system.play_pcm(
        producer, music(stream_seconds, PARAMS.sample_rate, seed=3), PARAMS
    )
    start = time.perf_counter()
    system.run(until=stream_seconds + 4.0)
    wall = time.perf_counter() - start
    played = sum(n.stats.played for n in system.speakers)
    packets = sum(rb.stats.data_sent for rb in system.rebroadcasters)
    return {
        "speakers": speakers,
        "stream_seconds": stream_seconds,
        "wall_seconds": round(wall, 4),
        "wall_per_sim_second": round(wall / stream_seconds, 4),
        "events_executed": system.sim.events_executed,
        "events_per_sec": int(system.sim.events_executed / wall),
        "packets_sent": packets,
        "packets_per_sec": int(packets / wall),
        "blocks_played": played,
    }


def test_fanout_scale_and_regression_gate():
    sweep = [
        run_fanout(n, secs, shared_decode=True, batched_delivery=True)
        for n, secs in SWEEP
    ]
    fast = next(
        r for r in sweep
        if (r["speakers"], r["stream_seconds"]) == HEADLINE
    )
    compat = run_fanout(
        *HEADLINE, shared_decode=False, batched_delivery=False
    )

    # the fast path must not change what the audience hears
    assert fast["blocks_played"] == compat["blocks_played"] > 0
    assert fast["packets_sent"] == compat["packets_sent"]

    speedup = compat["wall_seconds"] / fast["wall_seconds"]
    normalised = fast["wall_seconds"] / compat["wall_seconds"]
    result = {
        "params": {
            "encoding": str(PARAMS.encoding.name),
            "sample_rate": PARAMS.sample_rate,
            "channels": PARAMS.channels,
            "compress": "always",
        },
        "sweep": sweep,
        "headline": {
            "speakers": HEADLINE[0],
            "stream_seconds": HEADLINE[1],
            "fast": fast,
            "compat": compat,
            "speedup": round(speedup, 2),
            # host-speed-independent: fast wall over compat wall
            "normalised_wall": round(normalised, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["speakers", "sim s", "wall s", "wall/sim s", "events/s",
         "packets/s"],
        [[r["speakers"], r["stream_seconds"], r["wall_seconds"],
          r["wall_per_sim_second"], r["events_per_sec"],
          r["packets_per_sec"]]
         for r in sweep + [compat]],
    ))
    print(f"headline speedup: {speedup:.1f}x "
          f"(gate: >= {MIN_SPEEDUP}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"fan-out fast path only {speedup:.2f}x faster than the "
        f"compatibility path at {HEADLINE[0]} speakers x "
        f"{HEADLINE[1]} s (need >= {MIN_SPEEDUP}x)"
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_norm = baseline["headline"]["normalised_wall"]
        limit = base_norm * MAX_NORMALISED_REGRESSION
        print(f"normalised wall: {normalised:.4f} "
              f"(baseline {base_norm:.4f}, limit {limit:.4f})")
        assert normalised <= limit, (
            f"normalised wall-clock per simulated second regressed "
            f">25% vs baseline: {normalised:.4f} > {limit:.4f}"
        )
