"""ORIGIN — one broadcasting station must encode many channels at once.

PR 3 and PR 6 made the *receive* side scale (shared decode, batched
delivery, vectorized cohorts); the origin still ran per-frame, per-band
Python loops inside every rebroadcaster block.  The paper's station
serves many channels concurrently (§2.1–2.2) — the Liquidsoap workload
in PAPERS.md is tens of simultaneous streams from one host — so the
serial encoder wall was the last unvectorized hot path.

This benchmark sweeps 1/8/32/64 channels on one origin, each channel a
producer + rebroadcaster + listener encoding 250 ms blocks of the same
source (the *encode* cache stays off so every channel pays the full
encoder cost; the shared decode cache keeps the listener side identical
between arms), races the headline point (32 channels) against the scalar
reference kernels (``batched_encode=False``), and emits
``BENCH_origin.json``.  Two gates:

* batched encode kernels must be **>= 4x** faster at 32 channels;
* against the committed baseline
  (``benchmarks/BENCH_origin_baseline.json``) the *normalised*
  wall-clock — fast divided by scalar, so host speed cancels out — must
  not regress by more than 25 %.
"""

import json
import time
from pathlib import Path

from repro.audio import music
from repro.audio.params import CD_QUALITY
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

SWEEP = [1, 8, 32, 64]
HEADLINE = 32
STREAM_SECONDS = 2.0
BLOCK_SECONDS = 0.25
MIN_SPEEDUP = 4.0
MAX_NORMALISED_REGRESSION = 1.25

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_origin.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_origin_baseline.json"


def run_origin(channels, *, batched_encode):
    system = EthernetSpeakerSystem(
        telemetry=False,
        batched_encode=batched_encode,
        # the race measures the encoder kernels, not same-source dedupe:
        # every channel must pay for its own encode
        shared_encode=False,
    )
    pcm = music(STREAM_SECONDS, 44100, seed=3)
    for i in range(channels):
        producer = system.add_producer(
            name=f"origin{i}",
            slave_path=f"/dev/vads{i}",
            master_path=f"/dev/vadm{i}",
            block_seconds=BLOCK_SECONDS,
        )
        channel = system.add_channel(f"ch{i}", params=CD_QUALITY,
                                     compress="always")
        system.add_rebroadcaster(producer, channel,
                                 master_path=f"/dev/vadm{i}")
        system.add_speaker(channel=channel)
        system.play_pcm(producer, pcm, CD_QUALITY,
                        slave_path=f"/dev/vads{i}")
    start = time.perf_counter()
    system.run(until=STREAM_SECONDS + 4.0)
    wall = time.perf_counter() - start
    played = sum(n.stats.played for n in system.speakers)
    blocks = sum(rb.stats.data_sent for rb in system.rebroadcasters)
    pcm_seconds = channels * STREAM_SECONDS
    return {
        "channels": channels,
        "stream_seconds": STREAM_SECONDS,
        "block_seconds": BLOCK_SECONDS,
        "wall_seconds": round(wall, 4),
        "wall_per_sim_second": round(wall / STREAM_SECONDS, 4),
        "events_executed": system.sim.events_executed,
        "events_per_sec": int(system.sim.events_executed / wall),
        "blocks_encoded": blocks,
        "blocks_per_sec": int(blocks / wall),
        # encoder throughput: seconds of source audio pushed through the
        # origin per second of host wall-clock
        "encode_throughput_x": round(pcm_seconds / wall, 2),
        "blocks_played": played,
    }


def test_origin_scale_and_regression_gate():
    sweep = [run_origin(n, batched_encode=True) for n in SWEEP]
    fast = next(r for r in sweep if r["channels"] == HEADLINE)
    scalar = run_origin(HEADLINE, batched_encode=False)

    # the batched kernels must not change a byte of what anyone hears
    assert fast["blocks_played"] == scalar["blocks_played"] > 0
    assert fast["blocks_encoded"] == scalar["blocks_encoded"]

    speedup = scalar["wall_seconds"] / fast["wall_seconds"]
    normalised = fast["wall_seconds"] / scalar["wall_seconds"]
    result = {
        "params": {
            "encoding": str(CD_QUALITY.encoding.name),
            "sample_rate": CD_QUALITY.sample_rate,
            "channels_per_stream": CD_QUALITY.channels,
            "compress": "always",
            "block_seconds": BLOCK_SECONDS,
        },
        "sweep": sweep,
        "headline": {
            "channels": HEADLINE,
            "stream_seconds": STREAM_SECONDS,
            "fast": fast,
            "scalar": scalar,
            "speedup": round(speedup, 2),
            # host-speed-independent: fast wall over scalar wall
            "normalised_wall": round(normalised, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(ascii_table(
        ["channels", "sim s", "wall s", "wall/sim s", "events/s",
         "blocks/s", "encode x"],
        [[r["channels"], r["stream_seconds"], r["wall_seconds"],
          r["wall_per_sim_second"], r["events_per_sec"],
          r["blocks_per_sec"], r["encode_throughput_x"]]
         for r in sweep + [scalar]],
    ))
    print(f"headline speedup: {speedup:.1f}x "
          f"(gate: >= {MIN_SPEEDUP}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"batched origin only {speedup:.2f}x faster than the scalar "
        f"kernels at {HEADLINE} channels (need >= {MIN_SPEEDUP}x)"
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_norm = baseline["headline"]["normalised_wall"]
        limit = base_norm * MAX_NORMALISED_REGRESSION
        print(f"normalised wall: {normalised:.4f} "
              f"(baseline {base_norm:.4f}, limit {limit:.4f})")
        assert normalised <= limit, (
            f"normalised wall-clock regressed >25% vs baseline: "
            f"{normalised:.4f} > {limit:.4f}"
        )
