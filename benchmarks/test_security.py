"""SEC — §5.1: "digitally signing every audio packet is not feasible as it
allows an attacker to overwhelm an ES by simply feeding it garbage.  We
are, therefore, examining techniques for fast signing and verification
such as those proposed by Reyzin et al."

Reproduced: the per-packet verification cost ladder (HMAC / HORS /
conventional PKI), a speaker's CPU under a garbage flood per scheme, and
the end-to-end requirement that "the ES should not play audio from an
unauthorized source" while the honest stream survives the attack.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.security import (
    CertificationAuthority,
    GarbageFlooder,
    HmacAuthenticator,
    HorsAuthenticator,
    Injector,
    SimulatedPkiAuthenticator,
)

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)

CA = CertificationAuthority(seed=b"bench-ca")


def make_auth(scheme):
    if scheme == "hmac":
        return HmacAuthenticator(b"k" * 32)
    if scheme == "hors":
        return HorsAuthenticator(CA, 1, b"bench-stream")
    if scheme == "pki":
        return SimulatedPkiAuthenticator(b"k" * 32)
    raise ValueError(scheme)


def run_flood(scheme, flood_pps):
    system = EthernetSpeakerSystem(seed=9)
    producer = system.add_producer()
    channel = system.add_channel("pa", params=PARAMS, compress="never")
    auth = make_auth(scheme)
    system.add_rebroadcaster(producer, channel, authenticator=auth)
    node = system.add_speaker(channel=channel, verifier=auth)
    evil = system.add_producer(name="evil", housekeeping=False)
    Injector(evil.machine, channel, rate_pps=20).start()
    if flood_pps:
        GarbageFlooder(evil.machine, channel.group_ip, channel.port,
                       rate_pps=flood_pps).start()
    system.play_pcm(producer, sine(440, 8.0, 8000), PARAMS)
    system.run(until=10.0)
    return {
        "es_cpu_pct": node.machine.cpu.stats.busy_seconds / 10.0 * 100,
        "played": node.stats.played,
        "rejected": node.stats.auth_rejected + node.stats.garbage_rx,
        "audio_seconds": node.sink.audio_seconds,
        "late_dropped": node.stats.late_dropped,
    }


def test_verify_cost_ladder(benchmark):
    def measure():
        rows = {}
        for scheme in ("hmac", "hors", "pki"):
            auth = make_auth(scheme)
            rows[scheme] = (
                auth.sign_cycles(1024),
                auth.verify_cycles(1024),
            )
        return rows

    costs = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("SEC per-packet cost model (cycles, 1 KiB packet):")
    print(ascii_table(
        ["scheme", "sign", "verify", "verifies/s on 233 MHz"],
        [
            [s, sign, verify, f"{233e6 / verify:,.0f}"]
            for s, (sign, verify) in costs.items()
        ],
    ))
    assert costs["pki"][1] > 10 * costs["hors"][1]
    assert costs["pki"][1] > 10 * costs["hmac"][1]
    # HORS is the paper's candidate: verify within ~2x of a bare MAC
    assert costs["hors"][1] < 2.0 * costs["hmac"][1]


@pytest.mark.parametrize("scheme", ["hmac", "hors", "pki"])
def test_speaker_under_garbage_flood(benchmark, scheme):
    result = benchmark.pedantic(
        run_flood, args=(scheme, 400), rounds=1, iterations=1
    )
    print()
    print(ascii_table(
        ["scheme", "ES CPU %", "played", "rejected", "audio (s)"],
        [[scheme, result["es_cpu_pct"], result["played"],
          result["rejected"], result["audio_seconds"]]],
    ))
    # under every scheme, no forged packet ever reaches the DAC
    assert result["rejected"] > 2000


def test_dos_resistance_comparison(benchmark):
    def run_all():
        return {
            scheme: run_flood(scheme, 400)
            for scheme in ("hmac", "hors", "pki")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("SEC paper-vs-measured: a 233 MHz ES under a 400 pps garbage "
          "flood (plus 20 pps forged injections):")
    print(ascii_table(
        ["scheme", "paper expectation", "ES CPU %", "audio played (s)"],
        [
            ["HMAC", "cheap", results["hmac"]["es_cpu_pct"],
             results["hmac"]["audio_seconds"]],
            ["HORS (Reyzin)", "'fast signing and verification'",
             results["hors"]["es_cpu_pct"],
             results["hors"]["audio_seconds"]],
            ["per-packet PKI", "'not feasible ... overwhelm an ES'",
             results["pki"]["es_cpu_pct"],
             results["pki"]["audio_seconds"]],
        ],
    ))
    # the infeasibility argument: the flood eats the CPU under PKI only
    assert results["pki"]["es_cpu_pct"] > 80.0
    assert results["hors"]["es_cpu_pct"] < 20.0
    assert results["hmac"]["es_cpu_pct"] < 20.0
    # fast schemes keep the honest stream intact through the attack
    assert results["hors"]["audio_seconds"] > 7.2
    assert results["hmac"]["audio_seconds"] > 7.2


def test_flood_scaling_breaks_pki_first(benchmark):
    def run_scaling():
        out = {}
        for pps in (50, 200, 800):
            out[pps] = {
                "hors": run_flood("hors", pps)["audio_seconds"],
                "pki": run_flood("pki", pps)["audio_seconds"],
            }
        return out

    out = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    print()
    print("SEC flood scaling (seconds of the 8 s honest stream that "
          "actually played):")
    print(ascii_table(
        ["flood pps", "HORS audio (s)", "PKI audio (s)"],
        [[pps, v["hors"], v["pki"]] for pps, v in sorted(out.items())],
    ))
    # §5.1 verbatim: at high flood rates the PKI verifier can no longer
    # keep up and the honest stream collapses ("overwhelm an ES by simply
    # feeding it garbage"); HORS sails through
    assert out[800]["pki"] < 0.5 * out[800]["hors"]
    assert out[800]["hors"] > 7.0
    # and the collapse is load-dependent: PKI was still fine at 50 pps
    assert out[50]["pki"] > 7.0
