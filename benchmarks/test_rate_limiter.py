"""RATE — §3.1: "Rate Limiter, or why does a 5 minute song take 5 minutes?"

"Without any rate limiting the rebroadcaster will send data that it
receives from the VAD as fast as it is written ... causing the buffers on
the Ethernet Speakers to fill up, and the extra data will be discarded
... you will only hear the first few seconds of the song."

Reproduced: a 5-minute song (a) takes ~5 minutes to transmit with the
limiter and arrives intact; (b) without it, transmission finishes in
seconds and the speaker hears only the head of the song.
"""

import pytest

from repro.audio import AudioEncoding, AudioParams
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

# 8 kHz mono keeps the 5-minute simulation cheap; the arithmetic is
# identical at CD rates
PARAMS = AudioParams(AudioEncoding.SLINEAR16, 8000, 1)
SONG_SECONDS = 300.0


def run_song(rate_limit: bool):
    system = EthernetSpeakerSystem()
    producer = system.add_producer()
    channel = system.add_channel("song", params=PARAMS, compress="never")
    rb = system.add_rebroadcaster(producer, channel, rate_limit=rate_limit)
    node = system.add_speaker(channel=channel, rx_buffer_packets=32)
    app = system.play_synthetic(producer, SONG_SECONDS, PARAMS)
    system.run(until=SONG_SECONDS + 30.0)

    # when did the last data packet leave the producer?
    sent_until = max(
        (p for p, _ in node.stats.play_log), default=0.0
    )
    heard_seconds = node.sink.played_seconds
    lost = node.stats.seq_gaps + node.speaker._sock.drops
    return {
        "transmit_seconds": rb.limiter.stream_pos
        if rate_limit
        else _producer_active_time(rb),
        "heard_seconds": heard_seconds,
        "lost_packets": lost,
        "data_sent": rb.stats.data_sent,
    }


def _producer_active_time(rb) -> float:
    # without the limiter the producer is done when it has sent everything;
    # its machine's CPU busy time bounds it from above
    return rb.machine.cpu.stats.busy_seconds


def test_five_minute_song_takes_five_minutes(benchmark):
    result = benchmark.pedantic(run_song, args=(True,), rounds=1,
                                iterations=1)
    print()
    print("RATE with the rate limiter (the paper's fix):")
    print(ascii_table(
        ["quantity", "paper", "measured"],
        [
            ["transmission time (s)", "= song length (300)",
             result["transmit_seconds"]],
            ["audio heard at the speaker (s)", "all 300",
             result["heard_seconds"]],
            ["packets lost", 0, result["lost_packets"]],
        ],
    ))
    assert result["transmit_seconds"] == pytest.approx(300.0, abs=1.0)
    assert result["heard_seconds"] == pytest.approx(300.0, abs=2.0)
    assert result["lost_packets"] == 0


def test_without_limiter_only_the_first_seconds_survive(benchmark):
    result = benchmark.pedantic(run_song, args=(False,), rounds=1,
                                iterations=1)
    print()
    print("RATE without the rate limiter (the §3.1 failure):")
    print(ascii_table(
        ["quantity", "paper", "measured"],
        [
            ["producer busy time (s)", "'at wire speed' (seconds)",
             result["transmit_seconds"]],
            ["audio heard at the speaker (s)",
             "'only the first few seconds'", result["heard_seconds"]],
            ["packets lost", "most of the song", result["lost_packets"]],
        ],
    ))
    assert result["transmit_seconds"] < 10.0  # 300 s of audio, sent in sec.
    assert result["heard_seconds"] < 30.0
    assert result["lost_packets"] > 0.7 * result["data_sent"]
