"""TANDEM — §2.2: "the combination of multiple lossy codecs onto the same
set of data can lead to greater quality loss than necessary ... In order
to try and compensate for this loss of quality we simply set the Ogg
Vorbis quality index to its maximum ... Luckily, our experience so far
has not revealed any audible defects to the stream."

Reproduced end to end: an MP3-like file played by the unmodified player
through the VAD, re-compressed by the rebroadcaster at each quality
index, decoded and played by an Ethernet Speaker.  Expected shape: at
q=10 the second codec costs almost nothing on top of the first; at low q
the tandem loss compounds audibly.
"""

import numpy as np
import pytest

from repro.apps import Mp3PlayerApp
from repro.audio import CD_QUALITY, music, segmental_snr_db
from repro.codec import Mp3LikeCodec, Mp3LikeFile, VorbisLikeCodec
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table


@pytest.fixture(scope="module")
def program():
    return music(3.0, 44100, seed=31)


@pytest.fixture(scope="module")
def mp3_stage(program):
    """The first lossy stage: what the 'favorite MP3 file' sounds like."""
    codec = Mp3LikeCodec(192)
    decoded = codec.decode_block(codec.encode_block(program))[:, 0]
    return decoded, segmental_snr_db(program, decoded)


def run_tandem_offline(program, quality):
    """MP3 -> VorbisLike(q) -> PCM, codec level."""
    mp3 = Mp3LikeCodec(192)
    stage1 = mp3.decode_block(mp3.encode_block(program))[:, 0]
    vorb = VorbisLikeCodec(quality=quality)
    stage2 = vorb.decode_block(vorb.encode_block(stage1))[:, 0]
    return segmental_snr_db(program, stage2)


def test_tandem_quality_sweep(benchmark, program, mp3_stage):
    _, single_snr = mp3_stage

    def run_sweep():
        return {q: run_tandem_offline(program, q) for q in (0, 2, 5, 8, 10)}

    snrs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [["MP3-like only (stage 1)", f"{single_snr:.1f} dB", "-"]]
    for q, snr in sorted(snrs.items()):
        rows.append([
            f"MP3-like -> VorbisLike q={q}",
            f"{snr:.1f} dB",
            f"{single_snr - snr:+.1f} dB",
        ])
    print()
    print("TANDEM paper-vs-measured (segmental SNR vs the original, two "
          "different lossy codecs back to back):")
    print(ascii_table(["pipeline", "segSNR", "tandem cost"], rows))
    # §2.2's hope, quantified: at max quality the second codec costs
    # under 3 dB ("no audible defects")...
    assert single_snr - snrs[10] < 3.0
    # ...whereas a low quality index compounds the loss badly
    assert single_snr - snrs[0] > 10.0
    # and the tandem cost decreases monotonically with quality
    ordered = [snrs[q] for q in sorted(snrs)]
    assert all(b >= a for a, b in zip(ordered, ordered[1:]))


def test_tandem_through_the_whole_system(benchmark, program, mp3_stage):
    """The same experiment through VAD + network + speaker."""
    def run_system():
        system = EthernetSpeakerSystem()
        producer = system.add_producer()
        channel = system.add_channel(
            "radio", params=CD_QUALITY, compress="always", quality=10
        )
        system.add_rebroadcaster(producer, channel)
        node = system.add_speaker(channel=channel)
        mp3 = Mp3LikeFile.encode(program, 44100, bitrate_kbps=192).to_bytes()
        # the unmodified player writes to the VAD at wire speed; the
        # rebroadcaster's rate limiter paces it (§3.1)
        Mp3PlayerApp(producer.machine, mp3, device_path="/dev/vads",
                     drain=False).start()
        system.run(until=8.0)
        return node

    node = benchmark.pedantic(run_system, rounds=1, iterations=1)
    out = node.sink.waveform()
    system_snr = segmental_snr_db(program, out[: len(program)])
    _, single_snr = mp3_stage
    print()
    print(f"TANDEM end-to-end: MP3 player -> VAD -> VorbisLike q=10 -> LAN "
          f"-> speaker DAC: {system_snr:.1f} dB segSNR "
          f"(stage-1-only: {single_snr:.1f} dB)")
    assert node.stats.played > 0
    assert system_snr > single_snr - 4.0
