#!/usr/bin/env python3
"""Authenticated streams under attack (§5.1).

The channel is signed with HORS few-time signatures (Reyzin & Reyzin —
fast signing and verifying), the stream key certified by a CA whose digest
each speaker pins in NVRAM.  Meanwhile an injector forges data packets
and a flooder blasts garbage at the group.  The speaker plays the honest
stream untouched, and we compare what the same flood would cost under
per-packet conventional public-key signatures.

Run:  python examples/secure_streaming.py
"""

from repro.audio import AudioEncoding, AudioParams, sine
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.platform import Nvram
from repro.security import (
    CertificationAuthority,
    GarbageFlooder,
    HmacAuthenticator,
    HorsAuthenticator,
    Injector,
    SimulatedPkiAuthenticator,
)
from repro.security.keys import validate_certificate

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)


def run_attack_scenario(auth_factory, label):
    system = EthernetSpeakerSystem(seed=5)
    producer = system.add_producer()
    channel = system.add_channel("secure-pa", params=PARAMS, compress="never")
    auth = auth_factory(channel)
    system.add_rebroadcaster(producer, channel, authenticator=auth)
    node = system.add_speaker(channel=channel, verifier=auth)

    evil = system.add_producer(name="evil", housekeeping=False)
    Injector(evil.machine, channel, rate_pps=40).start()
    GarbageFlooder(evil.machine, channel.group_ip, channel.port,
                   rate_pps=400).start()

    system.play_pcm(producer, sine(440, 5.0, 22050), PARAMS)
    system.run(until=8.0)
    busy = node.machine.cpu.stats.busy_seconds / system.sim.now * 100
    return [
        label,
        node.stats.played,
        node.stats.auth_rejected + node.stats.garbage_rx,
        f"{node.sink.audio_seconds:.1f}s",
        f"{busy:.1f}%",
    ]


def main() -> None:
    # the CA trust bootstrap a speaker performs at boot
    ca = CertificationAuthority(seed=b"campus-ca")
    nvram = Nvram()
    nvram.store("ca_digest", ca.public_key_digest())
    hors = HorsAuthenticator(ca, channel_id=1, seed=b"pa-stream")
    ok = validate_certificate(hors.certificate, nvram.load("ca_digest"))
    print(f"stream key certificate checks against the NVRAM-pinned CA "
          f"digest: {ok}")
    print()

    rows = [
        run_attack_scenario(
            lambda ch: HorsAuthenticator(ca, ch.channel_id, b"pa-stream"),
            "HORS signatures",
        ),
        run_attack_scenario(
            lambda ch: HmacAuthenticator(b"shared-key-32-bytes-long-enough!"),
            "HMAC-SHA256",
        ),
        run_attack_scenario(
            lambda ch: SimulatedPkiAuthenticator(b"pki-key"),
            "per-packet PKI (baseline)",
        ),
    ]
    print("Speaker under injection + 400 pps garbage flood (233 MHz ES):")
    print(ascii_table(
        ["scheme", "played", "rejected", "audio out", "ES CPU"], rows
    ))
    print()
    print("The PKI row is the §5.1 infeasibility argument: verification of "
          "garbage eats the speaker's CPU, while HORS/HMAC verify floods "
          "for a few hashes each and the stream plays on.")


if __name__ == "__main__":
    main()
