#!/usr/bin/env python3
"""A building-wide public address system (the paper's motivating scenario).

Twelve Ethernet Speakers across three zones play background music from a
shared channel; rooms differ in ambient noise, so each speaker's
auto-volume controller (§5.2) picks its own gain.  Mid-program, the
control station overrides every speaker onto the announcement channel
(§5.3) and releases them afterwards.

Run:  python examples/campus_pa.py
"""

from repro.audio import AudioEncoding, AudioParams, announcement, music
from repro.audio.room import AmbientProfile, Room
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.mgmt import AutoVolumeController, ControlStation, ManagementAgent

PA_PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)

ZONES = {
    "lobby": 0.05,      # quiet
    "cafeteria": 0.45,  # noisy
    "workshop": 0.7,    # very noisy
}


def main() -> None:
    system = EthernetSpeakerSystem(bandwidth_bps=100e6, seed=3)
    producer = system.add_producer(name="pa-head-end")
    music_ch = system.add_channel("background-music", params=PA_PARAMS,
                                  compress="always", quality=8)
    announce_ch = system.add_channel("announcements", params=PA_PARAMS,
                                     compress="never")
    system.add_rebroadcaster(producer, music_ch)

    announcer = system.add_producer(name="announcer",
                                    slave_path="/dev/vads",
                                    master_path="/dev/vadm")
    system.add_rebroadcaster(announcer, announce_ch)

    speakers = []
    controllers = []
    for zone, noise in ZONES.items():
        for i in range(4):
            room = Room(AmbientProfile.constant(noise), coupling=0.5)
            node = system.add_speaker(channel=music_ch,
                                      name=f"{zone}-{i}", room=room)
            ManagementAgent(node.speaker).start()
            ctl = AutoVolumeController(node.speaker, room, mode="music")
            ctl.start()
            speakers.append((zone, noise, node))
            controllers.append(ctl)

    # 20 s of background music, live-paced
    program = music(20.0, 22050, seed=9)
    system.play_pcm(producer, program, PA_PARAMS, source_paced=True)

    # at t=8 the control station cuts in an announcement on every speaker
    console = system.add_producer(name="console", housekeeping=False)
    station = ControlStation(console.machine)
    msg = announcement(4.0, 22050)
    system.play_pcm(announcer, msg, PA_PARAMS, source_paced=True,
                    start_after=8.2)
    system.sim.schedule(8.0, station.override,
                        announce_ch.group_ip, announce_ch.port)
    system.sim.schedule(13.0, station.release)

    system.run(until=24.0)

    rows = []
    for zone, noise, node in speakers[::4]:  # one representative per zone
        rows.append([
            zone,
            f"{noise:.2f}",
            f"{node.speaker.gain:.2f}",
            f"{node.speaker.last_output_rms:.3f}",
            node.stats.played,
        ])
    print("Zone auto-volume after 20 s of music (one speaker per zone):")
    print(ascii_table(
        ["zone", "ambient", "gain", "output RMS", "blocks"], rows
    ))
    print()
    back_on_music = sum(
        1 for _, _, node in speakers
        if (node.speaker.group_ip, node.speaker.port)
        == (music_ch.group_ip, music_ch.port)
    )
    print(f"{back_on_music}/{len(speakers)} speakers returned to the music "
          f"channel after the announcement override was released")
    skew = system.skew_report([node for _, _, node in speakers])
    print(f"building-wide playback skew: max {skew['max_skew']*1000:.2f} ms")


if __name__ == "__main__":
    main()
