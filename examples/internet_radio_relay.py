#!/usr/bin/env python3
"""Figure 1 end to end: WAN internet radio -> rebroadcaster -> LAN speakers.

A Real-Audio-style server on the public Internet streams an MP3-like file
over a jittery T1 to an unmodified client application on the gateway
machine.  The client writes PCM to what it thinks is /dev/audio — actually
the VAD — and the rebroadcaster multicasts it to the Ethernet Speakers.
One WAN connection serves any number of LAN listeners.

Run:  python examples/internet_radio_relay.py
"""

from repro.apps import StreamingClientApp, WanRadioServer
from repro.audio import music, segmental_snr_db
from repro.codec import Mp3LikeFile
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table
from repro.net import WanLink


def main() -> None:
    system = EthernetSpeakerSystem(bandwidth_bps=100e6, jitter=0.001, seed=7)
    gateway = system.add_producer(name="gateway")
    channel = system.add_channel(
        "internet-radio", compress="always", quality=10
    )
    system.add_rebroadcaster(gateway, channel)
    speakers = [system.add_speaker(channel=channel) for _ in range(4)]

    # the WAN leg: a T1 with 80 ms latency and 40 ms jitter
    program = music(8.0, 44100, seed=3)
    mp3 = Mp3LikeFile.encode(program, 44100, bitrate_kbps=192).to_bytes()
    wan = WanLink(system.sim, bandwidth_bps=1.5e6, latency=0.08,
                  jitter=0.04, seed=11)
    server = WanRadioServer(system.sim, wan, mp3)
    client = StreamingClientApp(gateway.machine, server,
                                device_path="/dev/vads")
    server.start()
    client.start()
    system.run(until=20.0)

    print(f"WAN: {wan.sent} blocks sent, {wan.delivered} delivered "
          f"({wan.bytes_sent/1e6:.2f} MB over one connection)")
    print(f"radio client decoded {client.blocks_played} blocks "
          f"behind a {client.jitter_buffer_blocks}-block jitter buffer")
    print()
    rows = []
    for node in speakers:
        out = node.sink.waveform()
        rows.append([
            node.speaker.name,
            node.stats.played,
            node.stats.late_dropped,
            f"{node.sink.audio_seconds:.1f}s",
            f"{segmental_snr_db(program, out[: len(program)]):.1f} dB",
        ])
    print(ascii_table(
        ["speaker", "played", "late-drop", "audio", "segSNR vs source"], rows
    ))
    skew = system.skew_report()
    print(f"\nskew across the four speakers: max {skew['max_skew']*1000:.2f} ms")
    print("(the WAN jitter never reaches the LAN: the rebroadcaster "
          "re-times everything)")


if __name__ == "__main__":
    main()
