#!/usr/bin/env python3
"""Time-shifting internet radio through the VAD (§3.3).

"With a virtual audio device configured in a system, any application can
now have access to uncompressed audio, irrespective of the original
format" — here a recorder taps the VAD master while an unmodified
MP3-style player plays a 'broadcast', then replays the capture two hours
later on a machine with real audio hardware, and exports it to WAV.

Run:  python examples/time_shift.py
"""

import tempfile
from pathlib import Path

from repro.apps import Mp3PlayerApp, TimeShiftRecorder, replay_recording
from repro.audio import music, read_wav, segmental_snr_db
from repro.codec import Mp3LikeFile
from repro.kernel import (
    AudioDevice,
    HardwareAudioDriver,
    Machine,
    SpeakerSink,
    VadPair,
)
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()

    # the gateway: player -> VAD -> recorder
    gateway = Machine(sim, "gateway", cpu_freq_hz=500e6)
    VadPair(gateway)
    recorder = TimeShiftRecorder(gateway)
    recorder.start()

    program = music(10.0, 44100, seed=17)
    mp3 = Mp3LikeFile.encode(program, 44100, bitrate_kbps=192).to_bytes()
    player = Mp3PlayerApp(gateway, mp3, device_path="/dev/vads", drain=False)
    player.start()
    sim.run(until=5.0)

    rec = recorder.recording
    print(f"captured {rec.duration:.1f} s ({rec.total_bytes/1e6:.1f} MB PCM) "
          f"in {sim.now:.2f} s of wall time — the VAD imposes no rate limit")

    # two hours later, replay on a machine with real audio hardware
    sim.run(until=7200.0)
    player_box = Machine(sim, "livingroom", cpu_freq_hz=233e6)
    sink = SpeakerSink()
    hw = HardwareAudioDriver(player_box, sink)
    player_box.register_device("/dev/audio", AudioDevice(player_box, hw))
    replay_recording(player_box, rec)
    sim.run()

    out = sink.waveform()
    quality = segmental_snr_db(program, out[: len(program)])
    print(f"replayed at t={sim.now - 7200:.1f} s after the shift; "
          f"fidelity vs the original program: {quality:.1f} dB segSNR")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "timeshifted.wav"
        nbytes = rec.export_wav(path)
        samples, rate = read_wav(path)
        print(f"exported {nbytes/1e6:.1f} MB WAV at {rate} Hz "
              f"({len(samples)/rate:.1f} s) for any other tool to use")


if __name__ == "__main__":
    main()
