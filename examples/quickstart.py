#!/usr/bin/env python3
"""Quickstart: one producer, three Ethernet Speakers, one channel.

Builds the Figure 1 topology on a simulated 100 Mbps LAN, plays a music
clip through the VAD -> rebroadcaster -> multicast -> speakers pipeline,
and prints what the paper cares about: did every speaker play the same
audio, in sync, at a sane bandwidth cost.

Run:  python examples/quickstart.py
"""

from repro.audio import CD_QUALITY, music, segmental_snr_db
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table


def main() -> None:
    system = EthernetSpeakerSystem(bandwidth_bps=100e6, jitter=0.002, seed=1)
    producer = system.add_producer()
    channel = system.add_channel(
        "lobby-music", params=CD_QUALITY, compress="always", quality=10
    )
    system.add_rebroadcaster(producer, channel)
    speakers = [system.add_speaker(channel=channel) for _ in range(3)]

    clip = music(5.0, 44100, seed=42)
    system.play_pcm(producer, clip, CD_QUALITY)
    system.run(until=10.0)

    rows = []
    for node in speakers:
        out = node.sink.waveform()
        rows.append(
            [
                node.speaker.name,
                node.stats.data_rx,
                node.stats.played,
                node.stats.late_dropped,
                node.device.underruns,
                f"{segmental_snr_db(clip, out[: len(clip)]):.1f} dB",
            ]
        )
    print("Per-speaker results:")
    print(
        ascii_table(
            ["speaker", "packets", "played", "late-drop", "underruns", "segSNR"],
            rows,
        )
    )

    skew = system.skew_report()
    rb = system.rebroadcasters[0]
    print()
    print(f"playback skew across speakers: max {skew['max_skew']*1000:.2f} ms "
          f"(mean {skew['mean_skew']*1000:.2f} ms over {skew['positions']} blocks)")
    print(f"compression: {rb.stats.raw_bytes} raw bytes -> "
          f"{rb.stats.sent_payload_bytes} on the wire "
          f"(ratio {rb.stats.compression_ratio:.2f})")
    stream_seconds = rb.limiter.stream_pos
    mbps = system.monitor.total_payload_bytes * 8 / stream_seconds / 1e6
    print(f"average stream bandwidth: {mbps:.2f} Mbit/s "
          f"(raw CD-quality PCM would be 1.41 Mbit/s)")


if __name__ == "__main__":
    main()
