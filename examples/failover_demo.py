#!/usr/bin/env python3
"""Failover demo: the primary producer dies mid-song, nobody notices much.

One channel, a primary rebroadcaster, a warm standby mirroring the same
source feed, and three Ethernet Speakers.  At t=5 s the primary process
is killed abruptly.  The standby hears the control cadence stop, takes
over with a bumped epoch, and every speaker re-anchors onto the new
incarnation.  The script prints the takeover timeline and the measured
silence gap at each speaker.

Run:  python examples/failover_demo.py
"""

from repro.audio import AudioEncoding, AudioParams, music
from repro.core import EthernetSpeakerSystem
from repro.metrics import ascii_table

PARAMS = AudioParams(AudioEncoding.SLINEAR16, 22050, 1)

CONTROL_INTERVAL = 0.5
TAKEOVER_TIMEOUT = 1.0
CRASH_AT = 5.0


def main() -> None:
    system = EthernetSpeakerSystem(telemetry=True, seed=1)
    producer = system.add_producer()
    channel = system.add_channel("hall", params=PARAMS, compress="never")
    primary = system.add_rebroadcaster(
        producer, channel, control_interval=CONTROL_INTERVAL
    )
    standby = system.add_standby(
        producer, channel,
        takeover_timeout=TAKEOVER_TIMEOUT, check_interval=0.2,
        control_interval=CONTROL_INTERVAL,
    )
    speakers = [system.add_speaker(channel=channel) for _ in range(3)]

    clip = music(12.0, PARAMS.sample_rate, seed=7)
    system.play_pcm(producer, clip, PARAMS)
    system.schedule_fault(primary, after=CRASH_AT, kind="crash")
    system.run(until=14.0)

    print(f"primary killed at t={CRASH_AT:.1f}s "
          f"(control interval {CONTROL_INTERVAL}s, "
          f"takeover timeout {TAKEOVER_TIMEOUT}s)")
    print(f"standby takeovers: {standby.stats.takeovers}, "
          f"now transmitting epoch {standby.rb.epoch}")
    if standby.stats.takeover_latencies:
        print(f"control silence before the takeover decision: "
              f"{standby.stats.takeover_latencies[0]:.3f}s")

    rows = []
    for node in speakers:
        st = node.stats
        gap = st.rejoin_gaps[0] if st.rejoin_gaps else 0.0
        rows.append([
            node.speaker.name, st.played, st.epoch_resyncs,
            f"{gap:.3f}s", f"{st.play_log[-1][1]:.2f}s",
        ])
    print("\nPer-speaker handover:")
    print(ascii_table(
        ["speaker", "played", "epoch resyncs", "silence gap", "last play"],
        rows,
    ))

    report = system.pipeline_report()
    worst = max(
        (g for n in speakers for g in n.stats.rejoin_gaps), default=0.0
    )
    print(f"\nmeasured silence gap (worst speaker): {worst:.3f}s")
    print(f"conservation across the epoch boundary: "
          f"{'closed' if report.conservation_ok else 'OPEN'} "
          f"(residual {report.conservation_residual})")


if __name__ == "__main__":
    main()
