"""Packet authenticators: the wrap/unwrap layer under the protocol.

Each authenticator turns a protocol packet into an authenticated envelope
(``wrap``) and back (``unwrap``, returning ``None`` for forgeries).  They
also expose a **cycle cost model** so the DoS experiment can measure what
garbage floods cost a 233 MHz speaker under each scheme — the crux of the
paper's argument that per-packet public-key signatures are infeasible
(§5.1).

Envelope format: ``u8 scheme | u32 seq | auth-data | packet``.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Optional

from repro.security.hors import HorsKeyPair, HorsSignature, verify
from repro.security.keys import StreamCertificate

SCHEME_NULL = 0
SCHEME_HMAC = 1
SCHEME_HORS = 2
SCHEME_PKI = 3

_HEAD = struct.Struct("<BI")


class AuthError(Exception):
    pass


class ReplayWindow:
    """Sliding acceptance window over envelope sequence numbers."""

    def __init__(self, size: int = 128):
        self.size = size
        self._max_seen = -1
        self._seen: set[int] = set()

    def accept(self, seq: int) -> bool:
        if seq <= self._max_seen - self.size or seq in self._seen:
            return False
        self._seen.add(seq)
        self._max_seen = max(self._max_seen, seq)
        floor = self._max_seen - self.size
        if len(self._seen) > 2 * self.size:
            self._seen = {s for s in self._seen if s > floor}
        return True


class NullAuthenticator:
    """Pass-through (the current, unsecured system)."""

    scheme = SCHEME_NULL

    def sign_cycles(self, nbytes: int) -> float:
        return 0.0

    def verify_cycles(self, nbytes: int) -> float:
        return 0.0

    def wrap(self, packet: bytes) -> bytes:
        return _HEAD.pack(SCHEME_NULL, 0) + packet

    def unwrap(self, envelope: bytes) -> Optional[bytes]:
        if len(envelope) < _HEAD.size:
            return None
        scheme, _ = _HEAD.unpack_from(envelope, 0)
        if scheme != SCHEME_NULL:
            return None
        return envelope[_HEAD.size :]


class HmacAuthenticator:
    """Shared-key HMAC-SHA256 with replay protection.

    Cheap for both sides; its weakness (every speaker holds the key, so a
    compromised speaker can forge) is why the paper wants signatures.
    """

    scheme = SCHEME_HMAC
    #: ~15 cycles/byte for SHA-256 on era hardware, plus fixed overhead
    HASH_CYCLES_PER_BYTE = 15.0
    FIXED_CYCLES = 2000.0

    def __init__(self, key: bytes, window: int = 128):
        self.key = key
        self._seq = 0
        self.window = ReplayWindow(window)

    def sign_cycles(self, nbytes: int) -> float:
        return self.FIXED_CYCLES + self.HASH_CYCLES_PER_BYTE * nbytes

    verify_cycles = sign_cycles

    def wrap(self, packet: bytes) -> bytes:
        self._seq += 1
        head = _HEAD.pack(SCHEME_HMAC, self._seq)
        tag = hmac.new(self.key, head + packet, hashlib.sha256).digest()
        return head + tag + packet

    def unwrap(self, envelope: bytes) -> Optional[bytes]:
        if len(envelope) < _HEAD.size + 32:
            return None
        scheme, seq = _HEAD.unpack_from(envelope, 0)
        if scheme != SCHEME_HMAC:
            return None
        tag = envelope[_HEAD.size : _HEAD.size + 32]
        packet = envelope[_HEAD.size + 32 :]
        expected = hmac.new(
            self.key, envelope[: _HEAD.size] + packet, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(tag, expected):
            return None
        if not self.window.accept(seq):
            return None
        return packet


class HorsAuthenticator:
    """Per-packet HORS signatures with CA-certified rotating keys.

    The sender signs every envelope with its current HORS key and rotates
    to a fresh key (announcing it under the old one is elided: rotation
    re-certifies through the CA, whose digest speakers pin in NVRAM).
    Verification is a handful of hashes — fast enough to survive floods.
    """

    scheme = SCHEME_HORS
    FIXED_CYCLES = 2500.0
    HASH_CYCLES_PER_BYTE = 15.0
    #: k+1 hashes of ~32B each for verify; key generation amortised
    VERIFY_EXTRA_CYCLES = 9000.0
    SIGN_EXTRA_CYCLES = 4000.0

    def __init__(self, ca, channel_id: int, seed: bytes, t: int = 256,
                 k: int = 16, window: int = 128):
        self.ca = ca
        self.channel_id = channel_id
        self.k = k
        self.t = t
        self._seed = seed
        self._generation = 0
        self._key = HorsKeyPair(seed + b"|0", t=t, k=k)
        self.certificate: StreamCertificate = ca.certify(
            channel_id, self._key.public_key
        )
        self._seq = 0
        self.window = ReplayWindow(window)
        self.rotations = 0

    def sign_cycles(self, nbytes: int) -> float:
        return (
            self.FIXED_CYCLES
            + self.HASH_CYCLES_PER_BYTE * nbytes
            + self.SIGN_EXTRA_CYCLES
        )

    def verify_cycles(self, nbytes: int) -> float:
        return (
            self.FIXED_CYCLES
            + self.HASH_CYCLES_PER_BYTE * nbytes
            + self.VERIFY_EXTRA_CYCLES
        )

    def _rotate(self) -> None:
        self._generation += 1
        self.rotations += 1
        self._key = HorsKeyPair(
            self._seed + b"|%d" % self._generation, t=self.t, k=self.k
        )
        self.certificate = self.ca.certify(
            self.channel_id, self._key.public_key
        )

    def wrap(self, packet: bytes) -> bytes:
        if self._key.exhausted:
            self._rotate()
        self._seq += 1
        head = _HEAD.pack(SCHEME_HORS, self._seq)
        gen = struct.pack("<I", self._generation)
        sig = self._key.sign(head + gen + packet)
        sig_bytes = sig.encode()
        return (
            head + gen + struct.pack("<H", len(sig_bytes)) + sig_bytes + packet
        )

    def unwrap(self, envelope: bytes) -> Optional[bytes]:
        try:
            scheme, seq = _HEAD.unpack_from(envelope, 0)
            if scheme != SCHEME_HORS:
                return None
            offset = _HEAD.size
            (gen,) = struct.unpack_from("<I", envelope, offset)
            offset += 4
            (sig_len,) = struct.unpack_from("<H", envelope, offset)
            offset += 2
            sig, _ = HorsSignature.decode(envelope[offset : offset + sig_len])
            offset += sig_len
            packet = envelope[offset:]
        except (struct.error, IndexError):
            return None
        public_key = self._public_key_for(gen)
        if public_key is None:
            return None
        message = (
            envelope[: _HEAD.size] + struct.pack("<I", gen) + packet
        )
        if not verify(public_key, message, sig, k=self.k):
            return None
        if not self.window.accept(seq):
            return None
        return packet

    def _public_key_for(self, generation: int):
        # speakers track the sender's certified key; we accept the current
        # and next generation (rotation races)
        if generation == self._generation:
            return self._key.public_key
        if generation == self._generation + 1:
            self._rotate()
            return self._key.public_key
        return None


class SimulatedPkiAuthenticator:
    """A conventional public-key signature scheme, cost-wise.

    Functionally an HMAC (we are not implementing RSA), but charged at
    honest early-2000s costs: ~10 ms of CPU to sign and ~0.5 ms to verify
    on a 1 GHz machine.  On a 233 MHz speaker a garbage flood of these
    verifications eats the CPU — the §5.1 infeasibility argument.
    """

    scheme = SCHEME_PKI
    SIGN_CYCLES = 10_000_000.0
    VERIFY_CYCLES = 500_000.0

    def __init__(self, key: bytes, window: int = 128):
        self._inner = HmacAuthenticator(key, window)

    def sign_cycles(self, nbytes: int) -> float:
        return self.SIGN_CYCLES

    def verify_cycles(self, nbytes: int) -> float:
        return self.VERIFY_CYCLES

    def wrap(self, packet: bytes) -> bytes:
        wrapped = self._inner.wrap(packet)
        return _HEAD.pack(SCHEME_PKI, 0) + wrapped

    def unwrap(self, envelope: bytes) -> Optional[bytes]:
        if len(envelope) < _HEAD.size:
            return None
        scheme, _ = _HEAD.unpack_from(envelope, 0)
        if scheme != SCHEME_PKI:
            return None
        return self._inner.unwrap(envelope[_HEAD.size :])
