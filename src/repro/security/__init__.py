"""Stream authentication and attack models (§5.1).

The paper's security plan, implemented:

* speakers must not play audio from an unauthorised source, and must
  resist denial of service;
* per-packet conventional public-key signatures are "not feasible as it
  allows an attacker to overwhelm an ES by simply feeding it garbage" —
  reproduced by :class:`SimulatedPkiAuthenticator`'s honest cost model;
* fast signing/verification à la Reyzin & Reyzin: :mod:`repro.security.hors`
  implements HORS few-time signatures over SHA-256;
* a Certification Authority key "stored in non-volatile RAM on each
  machine" verifies stream keys (:mod:`repro.security.keys`);
* :mod:`repro.security.attacks` provides the impostor/injector/flooder
  processes the benchmarks throw at speakers.
"""

from repro.security.hors import HorsKeyPair, HorsSignature
from repro.security.keys import CertificationAuthority, StreamCertificate
from repro.security.auth import (
    AuthError,
    HmacAuthenticator,
    HorsAuthenticator,
    NullAuthenticator,
    SimulatedPkiAuthenticator,
)
from repro.security.attacks import GarbageFlooder, Injector, Impostor

__all__ = [
    "HorsKeyPair",
    "HorsSignature",
    "CertificationAuthority",
    "StreamCertificate",
    "AuthError",
    "NullAuthenticator",
    "HmacAuthenticator",
    "HorsAuthenticator",
    "SimulatedPkiAuthenticator",
    "GarbageFlooder",
    "Injector",
    "Impostor",
]
