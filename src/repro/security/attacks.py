"""Attack processes for the §5.1 threat model.

* :class:`Injector` — "malicious hosts injecting packets into an audio
  stream": forged data packets on the channel's multicast group.
* :class:`Impostor` — fake channel advertisements ("the ESs want to know
  that the audio streams they see advertised on the LAN are the real
  ones, and not fake advertisements from impostors").
* :class:`GarbageFlooder` — the DoS vector: random bytes at high rate,
  each of which the speaker must spend a verification on.
"""

from __future__ import annotations

import numpy as np

from repro.codec.base import CodecID
from repro.core.protocol import AnnounceEntry, AnnouncePacket, DataPacket
from repro.sim.process import Process, Sleep


class Injector:
    """Sends plausible-looking forged data packets into a channel."""

    def __init__(self, machine, channel, rate_pps: float = 20.0,
                 payload_bytes: int = 1024, authenticator=None):
        self.machine = machine
        self.channel = channel
        self.rate_pps = rate_pps
        self.payload_bytes = payload_bytes
        self.authenticator = authenticator  # a *wrong-key* wrapper, if any
        self.sent = 0

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="injector")

    def _run(self):
        sock = self.machine.net.socket()
        seq = 10_000
        while True:
            seq += 1
            packet = DataPacket(
                channel_id=self.channel.channel_id,
                seq=seq,
                play_at=self.machine.sim.now,
                payload=bytes(self.payload_bytes),
                codec_id=CodecID.RAW,
                pcm_bytes=self.payload_bytes,
            ).encode()
            if self.authenticator is not None:
                packet = self.authenticator.wrap(packet)
            sock.sendto(packet, (self.channel.group_ip, self.channel.port))
            self.sent += 1
            yield Sleep(1.0 / self.rate_pps)


class Impostor:
    """Advertises a fake channel on the catalog group."""

    def __init__(self, machine, catalog_group: str, catalog_port: int,
                 fake_name: str = "evil-stream", interval: float = 1.0):
        self.machine = machine
        self.catalog_group = catalog_group
        self.catalog_port = catalog_port
        self.fake_name = fake_name
        self.interval = interval
        self.sent = 0

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="impostor")

    def _run(self):
        sock = self.machine.net.socket()
        seq = 0
        while True:
            seq += 1
            packet = AnnouncePacket(
                seq=seq,
                entries=(
                    AnnounceEntry(
                        channel_id=666,
                        group_ip="239.66.66.66",
                        port=6666,
                        codec_id=CodecID.RAW,
                        name=self.fake_name,
                    ),
                ),
            ).encode()
            sock.sendto(packet, (self.catalog_group, self.catalog_port))
            self.sent += 1
            yield Sleep(self.interval)


class GarbageFlooder:
    """Random-byte flood at a target packet rate (the DoS vector)."""

    def __init__(self, machine, group_ip: str, port: int,
                 rate_pps: float = 500.0, payload_bytes: int = 512,
                 seed: int = 666):
        self.machine = machine
        self.group_ip = group_ip
        self.port = port
        self.rate_pps = rate_pps
        self.payload_bytes = payload_bytes
        self.sent = 0
        self._rng = np.random.default_rng(seed)

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="flooder")

    def _run(self):
        sock = self.machine.net.socket()
        while True:
            junk = self._rng.integers(
                0, 256, self.payload_bytes, dtype=np.uint8
            ).tobytes()
            sock.sendto(junk, (self.group_ip, self.port))
            self.sent += 1
            yield Sleep(1.0 / self.rate_pps)
