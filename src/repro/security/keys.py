"""The Certification Authority whose key lives in speaker NVRAM (§5.1).

"We are considering taking advantage of the non-volatile RAM on each
machine to store a Certification Authority key that may be used for the
verification of the audio stream."

The CA holds a long-lived secret; its "public key" is the secret's hash
commitment plus an HMAC-verification oracle realised as hash chains.  To
stay entirely within from-scratch hash primitives, the CA certifies stream
public keys with its own HORS key pair (rotating as pairs exhaust), and
speakers pin the *digest* of the CA's current public key in NVRAM — the
digest is refreshed out of band (a flash reprogramming, in the paper's
terms) when the CA rolls over.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Tuple

from repro.security.hors import HorsKeyPair, HorsSignature, verify


@dataclass(frozen=True)
class StreamCertificate:
    """CA's endorsement of a stream's HORS public key."""

    channel_id: int
    stream_public_key: Tuple[bytes, ...]
    signature: HorsSignature
    ca_public_key: Tuple[bytes, ...]

    def message(self) -> bytes:
        return (
            struct.pack("<H", self.channel_id)
            + b"".join(self.stream_public_key)
        )


class CertificationAuthority:
    """Issues certificates for stream keys; speakers pin its key digest."""

    def __init__(self, seed: bytes = b"es-ca", t: int = 1024, k: int = 16):
        self._seed = seed
        self._t = t
        self._k = k
        self._generation = 0
        self._key = HorsKeyPair(seed + b"|0", t=t, k=k)

    @property
    def public_key(self) -> Tuple[bytes, ...]:
        return self._key.public_key

    def public_key_digest(self) -> bytes:
        """What gets burned into each speaker's NVRAM."""
        return hashlib.sha256(b"".join(self._key.public_key)).digest()

    def certify(
        self, channel_id: int, stream_public_key: Tuple[bytes, ...]
    ) -> StreamCertificate:
        if self._key.exhausted:
            self._generation += 1
            self._key = HorsKeyPair(
                self._seed + b"|%d" % self._generation, t=self._t, k=self._k
            )
        message = struct.pack("<H", channel_id) + b"".join(stream_public_key)
        return StreamCertificate(
            channel_id=channel_id,
            stream_public_key=stream_public_key,
            signature=self._key.sign(message),
            ca_public_key=self._key.public_key,
        )


def validate_certificate(
    cert: StreamCertificate, pinned_ca_digest: bytes, k: int = 16
) -> bool:
    """What a speaker does with a certificate: check the embedded CA key
    against the NVRAM-pinned digest, then check the signature."""
    digest = hashlib.sha256(b"".join(cert.ca_public_key)).digest()
    if digest != pinned_ca_digest:
        return False
    return verify(cert.ca_public_key, cert.message(), cert.signature, k=k)
