"""HORS few-time signatures (Reyzin & Reyzin, "Better than BiBa").

The paper cites this construction as the kind of "fast signing and
verification" scheme that makes per-packet authentication of an audio
stream practical (§5.1).  Implemented from scratch over SHA-256:

* private key: ``t`` random strings ``s_0..s_{t-1}``;
* public key: their hashes ``H(s_i)``;
* signature of ``m``: split ``H(m)`` into ``k`` chunks of ``log2(t)``
  bits, each chunk selects an index; reveal the ``k`` selected ``s_i``.

Verification is ``k+1`` hash evaluations — orders of magnitude cheaper
than a modular-exponentiation signature, which is the entire point.
A key pair is safe for a limited number of signatures (revealing elements
leaks the key gradually), so stream senders rotate keys and certify each
new public key with the CA (:mod:`repro.security.keys`).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Tuple


def _h(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class HorsSignature:
    """k (index, preimage) pairs."""

    elements: Tuple[Tuple[int, bytes], ...]

    def encode(self) -> bytes:
        parts = [struct.pack("<H", len(self.elements))]
        for index, preimage in self.elements:
            parts.append(struct.pack("<H", index))
            parts.append(preimage)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["HorsSignature", int]:
        (count,) = struct.unpack_from("<H", data, 0)
        offset = 2
        elements = []
        for _ in range(count):
            (index,) = struct.unpack_from("<H", data, offset)
            offset += 2
            elements.append((index, data[offset : offset + 32]))
            offset += 32
        return cls(elements=tuple(elements)), offset


class HorsKeyPair:
    """One HORS key pair.  ``t`` must be a power of two."""

    def __init__(self, seed: bytes, t: int = 256, k: int = 16):
        if t & (t - 1) or t < 2:
            raise ValueError("t must be a power of two >= 2")
        if k < 1 or k > 64:
            raise ValueError("k out of range")
        self.t = t
        self.k = k
        self._secrets: List[bytes] = [
            _h(seed + struct.pack("<I", i)) for i in range(t)
        ]
        self.public_key: Tuple[bytes, ...] = tuple(
            _h(s) for s in self._secrets
        )
        self.signatures_issued = 0
        #: conservative use limit before the revealed elements make
        #: forgery plausible
        self.max_signatures = max(1, t // (4 * k))

    def _indices(self, message: bytes) -> List[int]:
        digest = _h(message)
        bits_per = (self.t - 1).bit_length()
        out = []
        bitpos = 0
        while len(out) < self.k:
            byte = bitpos // 8
            if byte + 4 > len(digest):
                digest = digest + _h(digest)
            window = int.from_bytes(digest[byte : byte + 4], "big")
            shift = 32 - bits_per - (bitpos % 8)
            out.append((window >> shift) & (self.t - 1))
            bitpos += bits_per
        return out

    def sign(self, message: bytes) -> HorsSignature:
        self.signatures_issued += 1
        return HorsSignature(
            elements=tuple(
                (i, self._secrets[i]) for i in self._indices(message)
            )
        )

    @property
    def exhausted(self) -> bool:
        return self.signatures_issued >= self.max_signatures

    def public_key_digest(self) -> bytes:
        """A compact commitment to the public key (hash of all elements)."""
        return _h(b"".join(self.public_key))


def verify(
    public_key: Tuple[bytes, ...], message: bytes, sig: HorsSignature,
    k: int = 16,
) -> bool:
    """Check a HORS signature against a full public key."""
    t = len(public_key)
    if len(sig.elements) != k:
        return False
    expected = HorsKeyPair.__new__(HorsKeyPair)
    expected.t = t
    expected.k = k
    indices = expected._indices(message)
    for (index, preimage), want in zip(sig.elements, indices):
        if index != want:
            return False
        if _h(preimage) != public_key[index]:
            return False
    return True
