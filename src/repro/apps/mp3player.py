"""An mpg123-style player: proprietary format in, PCM to the audio device.

This is "Application 2" of Figure 3.  It reads an
:class:`~repro.codec.mp3like.Mp3LikeFile` (the stand-in for an MP3 on
disk), decodes block by block (charging decode cycles to its machine), and
writes the PCM to whatever ``/dev/audio``-shaped device it was pointed at.
On a VAD slave, with nothing rate-limiting it, it "will essentially send
the entire file at wire speed" (§3.1) — exactly like the real thing.
"""

from __future__ import annotations

from repro.audio.encodings import encode_samples
from repro.audio.params import AudioEncoding, AudioParams
from repro.codec.base import CodecID
from repro.codec.cost import DEFAULT_COSTS
from repro.codec.mp3like import Mp3LikeCodec, Mp3LikeFile
from repro.kernel.audio import AUDIO_DRAIN, AUDIO_SETINFO
from repro.sim.process import Process


class Mp3PlayerApp:
    """Decode an Mp3Like file to an audio device."""

    def __init__(
        self,
        machine,
        mp3_bytes: bytes,
        device_path: str = "/dev/audio",
        drain: bool = True,
        cost_model=None,
    ):
        self.machine = machine
        self.file = Mp3LikeFile.from_bytes(mp3_bytes)
        self.device_path = device_path
        self.drain = drain
        self.costs = cost_model or DEFAULT_COSTS
        self.blocks_played = 0

    @property
    def output_params(self) -> AudioParams:
        return AudioParams(
            AudioEncoding.SLINEAR16,
            self.file.sample_rate,
            self.file.channels,
        )

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="mpg123")

    def _run(self):
        machine = self.machine
        params = self.output_params
        codec = Mp3LikeCodec(self.file.bitrate_kbps)
        cost = self.costs[CodecID.MP3_LIKE]
        fd = yield from machine.sys_open(self.device_path)
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
        for block in self.file.blocks:
            samples = codec.decode_block(block)
            yield machine.cpu.run(
                cost.decode_cycles(len(samples)), domain="user"
            )
            pcm = encode_samples(samples, params)
            yield from machine.sys_write(fd, pcm)
            self.blocks_played += 1
        if self.drain:
            yield from machine.sys_ioctl(fd, AUDIO_DRAIN)
        yield from machine.sys_close(fd)
