"""The simplest possible audio application: play a buffer of samples."""

from __future__ import annotations

import numpy as np

from repro.audio.encodings import encode_samples
from repro.audio.params import AudioParams
from repro.kernel.audio import AUDIO_DRAIN, AUDIO_SETINFO
from repro.sim.process import Process


class TonePlayerApp:
    """Writes pre-computed samples to an audio device and drains."""

    def __init__(
        self,
        machine,
        samples: np.ndarray,
        params: AudioParams,
        device_path: str = "/dev/audio",
        chunk_seconds: float = 0.25,
        drain: bool = True,
    ):
        self.machine = machine
        self.samples = samples
        self.params = params
        self.device_path = device_path
        self.chunk_seconds = chunk_seconds
        self.drain = drain

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="tone-player")

    def _run(self):
        machine = self.machine
        data = encode_samples(self.samples, self.params)
        fd = yield from machine.sys_open(self.device_path)
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, self.params)
        chunk = self.params.bytes_for(self.chunk_seconds)
        for pos in range(0, len(data), chunk):
            yield from machine.sys_write(fd, data[pos : pos + chunk])
        if self.drain:
            yield from machine.sys_ioctl(fd, AUDIO_DRAIN)
        yield from machine.sys_close(fd)
