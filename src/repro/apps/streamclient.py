"""A Real-Audio-style pair: WAN radio server + LAN streaming client.

Figure 1's scenario: a server on the public Internet streams to a client
running on the rebroadcaster machine; the client decodes and writes PCM to
the VAD; the Ethernet Speakers get it by multicast.  The WAN leg has real
latency/jitter/loss (:class:`~repro.net.wan.WanLink`); the client hides it
behind a small jitter buffer, like every streaming player does.
"""

from __future__ import annotations

from typing import Optional

from repro.audio.encodings import encode_samples
from repro.audio.params import AudioEncoding, AudioParams
from repro.codec.base import CodecID
from repro.codec.cost import DEFAULT_COSTS
from repro.codec.mp3like import Mp3LikeCodec, Mp3LikeFile
from repro.kernel.audio import AUDIO_SETINFO
from repro.net.wan import WanLink
from repro.sim.process import Process, Sleep
from repro.sim.resources import Queue, QueueClosed


class WanRadioServer:
    """Streams an Mp3Like file over a WAN link in real time."""

    def __init__(self, sim, wan: WanLink, mp3_bytes: bytes,
                 block_seconds: float = 0.5):
        self.sim = sim
        self.wan = wan
        self.file = Mp3LikeFile.from_bytes(mp3_bytes)
        self.block_seconds = block_seconds
        self._client_queue: Optional[Queue] = None
        self.blocks_sent = 0

    def connect(self, rx_queue: Queue) -> None:
        """The (single) client registers its delivery queue."""
        self._client_queue = rx_queue

    def start(self) -> Process:
        return Process.spawn(self.sim, self._run(), name="wan-radio")

    def _run(self):
        for block in self.file.blocks:
            if self._client_queue is not None:
                queue = self._client_queue
                self.wan.send(
                    block, lambda b, q=queue: q.put_nowait(b)
                )
                self.blocks_sent += 1
            yield Sleep(self.block_seconds)  # live source: real-time pacing
        if self._client_queue is not None:
            deadline_queue = self._client_queue
            # let in-flight blocks land before closing
            yield Sleep(2.0)
            deadline_queue.close()


class StreamingClientApp:
    """The off-the-shelf internet-radio client on the producer machine."""

    def __init__(
        self,
        machine,
        server: WanRadioServer,
        device_path: str = "/dev/audio",
        jitter_buffer_blocks: int = 3,
        cost_model=None,
    ):
        self.machine = machine
        self.server = server
        self.device_path = device_path
        self.jitter_buffer_blocks = jitter_buffer_blocks
        self.costs = cost_model or DEFAULT_COSTS
        self.rx_queue = Queue(name="radio-rx")
        self.blocks_played = 0
        server.connect(self.rx_queue)

    @property
    def output_params(self) -> AudioParams:
        f = self.server.file
        return AudioParams(
            AudioEncoding.SLINEAR16, f.sample_rate, f.channels
        )

    def start(self) -> Process:
        return self.machine.spawn(self._run(), name="radio-client")

    def _run(self):
        machine = self.machine
        params = self.output_params
        codec = Mp3LikeCodec(self.server.file.bitrate_kbps)
        cost = self.costs[CodecID.MP3_LIKE]
        fd = yield from machine.sys_open(self.device_path)
        yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
        # prebuffer a few blocks against WAN jitter
        backlog = []
        try:
            for _ in range(self.jitter_buffer_blocks):
                backlog.append((yield self.rx_queue.get()))
        except QueueClosed:
            pass
        while True:
            while backlog:
                block = backlog.pop(0)
                samples = codec.decode_block(block)
                yield machine.cpu.run(
                    cost.decode_cycles(len(samples)), domain="user"
                )
                pcm = encode_samples(samples, params)
                yield from machine.sys_write(fd, pcm)
                self.blocks_played += 1
            try:
                backlog.append((yield self.rx_queue.get()))
            except QueueClosed:
                break
        yield from machine.sys_close(fd)
