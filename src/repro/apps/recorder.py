"""Time-shifting via the VAD master (§3.3).

"With a virtual audio device configured in a system, any application can
now have access to uncompressed audio, irrespective of the original format
... applications may be developed to process the audio stream (e.g.,
time-shifting Internet radio transmissions)."

:class:`TimeShiftRecorder` reads master records into an in-memory
recording; :func:`replay_recording` plays it back later through any audio
device, and the recording can be exported to a WAV file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.audio.encodings import decode_samples
from repro.audio.params import AudioParams
from repro.audio.wav import write_wav
from repro.kernel.audio import AUDIO_DRAIN, AUDIO_SETINFO
from repro.sim.process import Process
from repro.sim.resources import QueueClosed


@dataclass
class Recording:
    """Captured segments: (params at capture time, PCM bytes)."""

    segments: List[Tuple[AudioParams, bytes]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(len(d) for _, d in self.segments)

    @property
    def duration(self) -> float:
        return sum(p.duration_of(len(d)) for p, d in self.segments)

    def waveform(self) -> np.ndarray:
        """Mono float rendering of the whole recording."""
        pieces = [
            decode_samples(data, params).mean(axis=1)
            for params, data in self.segments
            if data
        ]
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)

    def export_wav(self, path: Union[str, Path]) -> int:
        """Write the recording as a WAV file (uses the first segment's
        sample rate; heterogeneous recordings are resample-free appended)."""
        if not self.segments:
            raise ValueError("nothing recorded")
        rate = self.segments[0][0].sample_rate
        return write_wav(path, self.waveform(), rate)


class TimeShiftRecorder:
    """Tap the VAD master and squirrel the stream away."""

    def __init__(self, machine, master_path: str = "/dev/vadm"):
        self.machine = machine
        self.master_path = master_path
        self.recording = Recording()
        self._params: Optional[AudioParams] = None
        self._proc: Optional[Process] = None

    def start(self) -> Process:
        self._proc = self.machine.spawn(self._run(), name="time-shift")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()

    def _run(self):
        machine = self.machine
        fd = yield from machine.sys_open(self.master_path)
        while True:
            try:
                record = yield from machine.sys_read(fd, 65536)
            except QueueClosed:
                return
            if record.kind == "config":
                self._params = record.params
            elif self._params is not None:
                self.recording.segments.append(
                    (self._params, record.payload)
                )


def replay_recording(
    machine,
    recording: Recording,
    device_path: str = "/dev/audio",
    drain: bool = True,
) -> Process:
    """Play a recording back through an audio device (time-shifted)."""

    def app():
        fd = yield from machine.sys_open(device_path)
        current = None
        for params, data in recording.segments:
            if params != current:
                yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
                current = params
            yield from machine.sys_write(fd, data)
        if drain:
            yield from machine.sys_ioctl(fd, AUDIO_DRAIN)
        yield from machine.sys_close(fd)

    return machine.spawn(app(), name="replay")
