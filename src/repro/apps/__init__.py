"""Simulated off-the-shelf audio applications.

The whole point of the VAD is that these applications are *unmodified*
(§2.1): they open what they believe is ``/dev/audio``, configure it with
ioctls, and write PCM.  Whether the node has real audio hardware or a VAD
slave behind that path is invisible to them.

* :class:`~repro.apps.mp3player.Mp3PlayerApp` — an mpg123 stand-in that
  decodes an :class:`~repro.codec.mp3like.Mp3LikeFile` from "disk";
* :class:`~repro.apps.streamclient.StreamingClientApp` and
  :class:`~repro.apps.streamclient.WanRadioServer` — a Real-Audio-style
  client pulling a live stream over a WAN link (Figure 1);
* :class:`~repro.apps.tone.TonePlayerApp` — a trivial PCM source;
* :class:`~repro.apps.recorder.TimeShiftRecorder` — the §3.3 bonus use of
  the VAD: tap the master side to record a stream for later playback.
"""

from repro.apps.mp3player import Mp3PlayerApp
from repro.apps.streamclient import StreamingClientApp, WanRadioServer
from repro.apps.tone import TonePlayerApp
from repro.apps.recorder import TimeShiftRecorder, replay_recording

__all__ = [
    "Mp3PlayerApp",
    "StreamingClientApp",
    "WanRadioServer",
    "TonePlayerApp",
    "TimeShiftRecorder",
    "replay_recording",
]
