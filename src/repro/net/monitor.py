"""Traffic accounting on a segment tap."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.metrics.telemetry import get_telemetry
from repro.net.segment import Datagram, EthernetSegment
from repro.sim.core import Simulator

#: how often (in frames) the monitor samples a tracer counter track —
#: enough resolution for chrome://tracing, bounded event volume
_TRACE_SAMPLE_FRAMES = 64


class BandwidthMonitor:
    """Counts wire bytes per destination (ip, port) flow and in total.

    Attach one to a segment to answer the paper's §2.2 question: how many
    Mbps does a CD-quality rebroadcast cost, raw versus compressed?  With
    telemetry enabled it also keeps ``net.frames``/``net.wire_bytes``
    counters and drops a sampled ``net.throughput`` counter track into the
    trace so bandwidth is visible on the same timeline as the spans.
    """

    def __init__(self, sim: Simulator, segment: EthernetSegment,
                 telemetry=None):
        self.sim = sim
        self.segment = segment
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._c_frames = self.telemetry.counter("net.frames")
        self._c_wire = self.telemetry.counter("net.wire_bytes")
        self.started_at = sim.now
        self.total_wire_bytes = 0
        self.total_payload_bytes = 0
        self.frames = 0
        self.per_flow_bytes: Dict[Tuple[str, int], int] = defaultdict(int)
        #: when the wire last carried anything / per-flow last activity —
        #: the liveness signal the supervision layer reads to distinguish
        #: "producer dead" from "whole LAN idle"
        self.last_frame_time: float = sim.now
        self._flow_last_seen: Dict[Tuple[str, int], float] = {}
        self._samples: List[Tuple[float, int]] = []
        segment.add_tap(self._on_frame)

    def _on_frame(self, dgram: Datagram) -> None:
        self.frames += 1
        self.total_wire_bytes += dgram.wire_size
        self.total_payload_bytes += len(dgram.payload)
        self.per_flow_bytes[(dgram.dst_ip, dgram.dst_port)] += dgram.wire_size
        self.last_frame_time = self.sim.now
        self._flow_last_seen[(dgram.dst_ip, dgram.dst_port)] = self.sim.now
        self._c_frames.inc()
        self._c_wire.inc(dgram.wire_size)
        if (
            self.telemetry.enabled
            and self.frames % _TRACE_SAMPLE_FRAMES == 0
        ):
            self.telemetry.tracer.counter(
                "net.throughput", track="net",
                wire_mbps=round(self.mbps, 3),
            )

    def reset(self) -> None:
        self.started_at = self.sim.now
        self.total_wire_bytes = 0
        self.total_payload_bytes = 0
        self.frames = 0
        self.per_flow_bytes.clear()
        self.last_frame_time = self.sim.now
        self._flow_last_seen.clear()

    @property
    def elapsed(self) -> float:
        return max(self.sim.now - self.started_at, 1e-12)

    @property
    def mbps(self) -> float:
        """Average wire rate since start/reset, in Mbit/s."""
        return self.total_wire_bytes * 8 / self.elapsed / 1e6

    @property
    def payload_mbps(self) -> float:
        """Payload-only rate (what the paper's 1.3 Mbps figure counts)."""
        return self.total_payload_bytes * 8 / self.elapsed / 1e6

    def flow_mbps(self, dst_ip: str, dst_port: int) -> float:
        return self.per_flow_bytes[(dst_ip, dst_port)] * 8 / self.elapsed / 1e6

    @property
    def idle_seconds(self) -> float:
        """How long the wire has been silent (0.0 while traffic flows)."""
        return self.sim.now - self.last_frame_time

    def flow_idle_seconds(self, dst_ip: str, dst_port: int) -> float:
        """Silence on one (ip, port) flow; ``inf`` if it never spoke."""
        last = self._flow_last_seen.get((dst_ip, dst_port))
        if last is None:
            return float("inf")
        return self.sim.now - last
