"""Per-machine UDP socket layer.

A thin, blocking-sockets-shaped API over the NIC: ``bind``, ``sendto``,
``recvfrom`` (a waitable), multicast joins.  Receive queues are bounded —
a speaker that stops draining its socket loses packets, it does not grow
memory (embedded machines have 64 MB, §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.addr import is_multicast
from repro.net.nic import Nic
from repro.net.segment import Datagram
from repro.sim.core import SimError, Simulator
from repro.sim.resources import Queue, QueueClosed


@dataclass
class ReceivedDatagram:
    payload: bytes
    src: Tuple[str, int]
    dst: Tuple[str, int]


class UdpSocket:
    """A bound UDP socket with a bounded receive queue."""

    def __init__(self, stack: "NetworkStack", port: int, rx_capacity: int):
        self.stack = stack
        self.port = port
        self._rx = Queue(capacity=rx_capacity, name=f"udp:{port}")
        self.drops = 0
        #: optional observer called with the payload of every datagram this
        #: socket drops (queue overflow, or still queued at close).  Lets
        #: the owner classify losses by protocol type — the stack itself
        #: stays protocol-agnostic.
        self.drop_hook = None

    def recv(self):
        """Waitable: the next :class:`ReceivedDatagram`."""
        return self._rx.get()

    def recv_nowait(self) -> Optional[ReceivedDatagram]:
        try:
            return self._rx.get_nowait()
        except IndexError:
            return None

    @property
    def queued(self) -> int:
        return len(self._rx)

    def sendto(self, payload: bytes, dst: Tuple[str, int]) -> bool:
        """Transmit; returns False if dropped at the segment."""
        return self.stack.send(self.port, payload, dst)

    def join_multicast(self, group_ip: str) -> None:
        self.stack.nic.join_group(group_ip)
        self.stack._group_ports.setdefault(group_ip, set()).add(self.port)

    def close(self) -> None:
        self.stack._sockets.pop(self.port, None)
        # Datagrams still queued were delivered but never consumed: fold
        # them into the drop counter so the conservation ledger does not
        # leak when a receiver dies with a non-empty queue.
        while True:
            try:
                item = self._rx.get_nowait()
            except (IndexError, QueueClosed):
                break
            self.drops += 1
            if self.drop_hook is not None:
                self.drop_hook(item.payload)
        self._rx.close()

    def _enqueue(self, item: ReceivedDatagram) -> None:
        if not self._rx.put_nowait(item):
            self.drops += 1
            if self.drop_hook is not None:
                self.drop_hook(item.payload)


class NetworkStack:
    """Socket registry and demultiplexer for one machine."""

    def __init__(self, sim: Simulator, nic: Nic):
        self.sim = sim
        self.nic = nic
        self._sockets: Dict[int, UdpSocket] = {}
        self._group_ports: Dict[str, set] = {}
        self._ephemeral = 49152
        #: datagrams the NIC accepted but no bound socket claimed (e.g. a
        #: crashed listener whose socket closed while the NIC stayed in
        #: the multicast group) — counted so downtime loss is visible
        self.unclaimed_drops = 0
        nic.rx_handler = self._receive

    @property
    def ip(self) -> str:
        return self.nic.ip

    def socket(self, port: int = 0, rx_capacity: int = 256) -> UdpSocket:
        """Create and bind a UDP socket (0 picks an ephemeral port)."""
        if port == 0:
            while self._ephemeral in self._sockets:
                self._ephemeral += 1
            port = self._ephemeral
            self._ephemeral += 1
        if port in self._sockets:
            raise SimError(f"port {port} already bound on {self.ip}")
        sock = UdpSocket(self, port, rx_capacity)
        self._sockets[port] = sock
        return sock

    def send(self, src_port: int, payload: bytes, dst: Tuple[str, int]) -> bool:
        dgram = Datagram(
            src_ip=self.ip,
            src_port=src_port,
            dst_ip=dst[0],
            dst_port=dst[1],
            payload=payload,
            vlan=self.nic.vlan,
        )
        return self.nic.send(dgram)

    def _receive(self, dgram: Datagram) -> None:
        sock = self._sockets.get(dgram.dst_port)
        if sock is None:
            self.unclaimed_drops += 1
            return
        if is_multicast(dgram.dst_ip):
            joined = self._group_ports.get(dgram.dst_ip, set())
            if dgram.dst_port not in joined:
                self.unclaimed_drops += 1
                return
        sock._enqueue(
            ReceivedDatagram(
                payload=dgram.payload,
                src=(dgram.src_ip, dgram.src_port),
                dst=(dgram.dst_ip, dgram.dst_port),
            )
        )
