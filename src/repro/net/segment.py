"""A shared Ethernet segment.

Frames serialise onto the wire at the segment's bit rate (a transmission
occupies the medium for its wire time), then every attached NIC whose
filters match sees the frame after the propagation latency plus optional
per-receiver jitter.  A bounded transmit backlog models what happens when
senders outrun a 10 Mbps legacy segment: the queue fills and frames drop —
exactly the failure §2.2 says made raw CD-quality rebroadcast "unacceptable"
on slow links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.net.addr import wire_bytes
from repro.sim.core import Simulator

#: bucket bounds for the fan-out batch-size histogram (receivers per
#: scheduled delivery event)
FANOUT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def deliver_batch(nics, dgram) -> None:
    """One scheduled event fanning a frame out to every receiver that
    shares the same delivery time (the multicast fast path)."""
    for nic in nics:
        nic.deliver(dgram)


@dataclass
class Datagram:
    """A UDP datagram in flight (we model at the datagram level and account
    Ethernet/IP costs arithmetically via :func:`wire_bytes`)."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: bytes
    vlan: int = 1

    @property
    def wire_size(self) -> int:
        return wire_bytes(len(self.payload))


@dataclass
class SegmentStats:
    frames_sent: int = 0
    frames_dropped: int = 0
    #: receiver copies lost to random wire loss — counted per receiver,
    #: not per frame, so conservation checks can account for every copy
    receiver_losses: int = 0
    bytes_sent: int = 0
    busy_seconds: float = 0.0


class EthernetSegment:
    """The LAN: a broadcast domain with finite bandwidth.

    Parameters
    ----------
    bandwidth_bps:
        10e6 for legacy Ethernet, 100e6 for the paper's fast Ethernet.
    latency:
        propagation delay to every receiver (uniform — the protocol's
        "everybody receives a multicast packet at the same time"
        assumption is the special case jitter == 0).
    jitter:
        per-receiver uniform extra delay in [0, jitter].
    loss_rate:
        independent per-receiver drop probability.
    max_backlog:
        transmit queue bound in frames; beyond it frames drop.
    batch_delivery:
        schedule ONE event per frame that fans out to every matching NIC
        (they all share the same latency on a jitter-free wire) instead
        of one heap event per receiver copy.  Jitter or an attached
        fault injector transparently falls back to per-receiver events;
        virtual timing and delivery order are identical either way.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        max_backlog: int = 200,
        seed: int = 0,
        name: str = "lan0",
        batch_delivery: bool = True,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate out of range: {loss_rate}")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.max_backlog = max_backlog
        self.name = name
        self.batch_delivery = batch_delivery
        self.stats = SegmentStats()
        self._rng = np.random.default_rng(seed)
        self._nics: List["Nic"] = []
        self._wire_free_at = 0.0
        self._taps: List[Callable[[Datagram], None]] = []
        #: optional FaultInjector interposed on receiver deliveries
        self.faults = None

    def set_fault_injector(self, faults) -> None:
        """Route every receiver delivery through ``faults`` (see
        :class:`~repro.net.faults.FaultInjector`); ``None`` detaches."""
        self.faults = faults

    def attach(self, nic: "Nic") -> None:
        self._nics.append(nic)

    def detach(self, nic: "Nic") -> None:
        if nic in self._nics:
            self._nics.remove(nic)

    def add_tap(self, fn: Callable[[Datagram], None]) -> None:
        """Register a monitor called for every frame that makes it onto
        the wire (bandwidth meters, packet captures)."""
        self._taps.append(fn)

    # -- transmission -------------------------------------------------------------

    def transmit(self, dgram: Datagram, sender: Optional["Nic"] = None) -> bool:
        """Put a frame on the wire.  Returns False if the backlog is full
        and the frame was dropped at the sender."""
        now = self.sim.now
        tx_time = dgram.wire_size * 8 / self.bandwidth_bps
        backlog = max(0.0, self._wire_free_at - now)
        if backlog / max(tx_time, 1e-12) > self.max_backlog:
            self.stats.frames_dropped += 1
            return False
        start = max(now, self._wire_free_at)
        done = start + tx_time
        self._wire_free_at = done
        self.stats.frames_sent += 1
        self.stats.bytes_sent += dgram.wire_size
        self.stats.busy_seconds += tx_time
        for tap in self._taps:
            tap(dgram)
        base_delay = done - now + self.latency
        if self.batch_delivery and self.faults is None and not self.jitter:
            # fast path: every receiver shares the same delivery instant,
            # so the whole fan-out rides one scheduled event.  The loss
            # draws happen here in NIC order, exactly as on the slow
            # path, so seeded runs are bit-identical across both.
            targets = []
            for nic in self._nics:
                if nic is sender or not nic.accepts(dgram):
                    continue
                cohort = getattr(nic, "cohort", None)
                if cohort is not None:
                    self._transmit_cohort(cohort, dgram, base_delay, 0.0)
                    continue
                if self.loss_rate and self._rng.random() < self.loss_rate:
                    self.stats.receiver_losses += 1
                    continue
                targets.append(nic)
            if targets:
                if len(targets) == 1:
                    self.sim.schedule_transient(
                        base_delay, targets[0].deliver, dgram
                    )
                else:
                    self.sim.schedule_transient(
                        base_delay, deliver_batch, targets, dgram
                    )
                tel = self.sim.telemetry
                if tel is not None:
                    tel.observe("net.fanout_batch", len(targets),
                                bounds=FANOUT_BOUNDS)
            return True
        for nic in self._nics:
            if nic is sender:
                continue
            if not nic.accepts(dgram):
                continue
            cohort = getattr(nic, "cohort", None)
            if cohort is not None:
                self._transmit_cohort(cohort, dgram, base_delay, self.jitter)
                continue
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.stats.receiver_losses += 1
                continue
            delay = base_delay
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            if self.faults is not None:
                self.faults.deliver(nic, dgram, delay)
            else:
                self.sim.schedule_transient(delay, nic.deliver, dgram)
        return True

    def _transmit_cohort(self, cohort, dgram: Datagram, base_delay: float,
                         jitter: float) -> None:
        """The per-member fate loop a cohort's LAN seat stands in for.

        Draw order per member is byte-identical to the per-object loop
        above (segment loss, then segment jitter, then the injector), so
        a seeded cohort run and a per-object run consume the wire RNG in
        the same sequence.  Members whose copy comes out clean share one
        delivery event via ``finish_frame``; any other outcome diverges
        the member and spills it at the exemplar's next boundary.
        """
        represented = 0
        for tok in cohort.tokens:
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.stats.receiver_losses += 1
                if tok.state == 0:
                    cohort.mark_divergent(tok, dgram, reason="wire-loss")
                continue
            delay = base_delay
            if jitter:
                delay += self._rng.uniform(0.0, jitter)
            if self.faults is not None:
                if tok.state == 0 and delay == base_delay:
                    fate = self.faults._copy_fate(tok, dgram, delay)
                    if fate == "clean":
                        represented += 1
                    else:
                        cohort.mark_divergent(tok, dgram, reason=fate)
                else:
                    if tok.state == 0:
                        cohort.mark_divergent(tok, dgram, reason="jitter")
                    self.faults.deliver(tok, dgram, delay)
            elif tok.state == 0 and delay == base_delay:
                represented += 1
            else:
                if tok.state == 0:
                    cohort.mark_divergent(tok, dgram, reason="jitter")
                self.sim.schedule_transient(delay, tok.deliver, dgram)
        cohort.finish_frame(dgram, base_delay, represented)

    @property
    def utilisation_bps(self) -> float:
        """Average offered load so far (bytes on wire / elapsed time)."""
        if self.sim.now <= 0:
            return 0.0
        return self.stats.bytes_sent * 8 / self.sim.now
