"""MACsec-flavoured link-layer authentication (IEEE 802.1AE, §5.1).

"We are also looking into whether we can take advantage of the services
offered by the IEEE 802.1AE MAC-layer security standard."

Model: a *connectivity association* is a shared secret distributed to the
legitimate stations of a VLAN.  Member NICs tag every transmitted frame
with a truncated HMAC over (vlan, src, dst, payload) plus a packet number,
and silently drop received frames whose tag fails or whose packet number
replays.  An attacker on the same segment — even one spoofing the VLAN
tag, which plain VLAN separation cannot stop (§5.1: "there exist ways for
injecting packets into VLANs") — cannot produce a valid tag.

This protects the *link*; the stream-level authenticators in
:mod:`repro.security.auth` protect end-to-end and also cover multi-switch
paths.  The two compose.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.nic import Nic
from repro.net.segment import Datagram

TAG_BYTES = 8  # 802.1AE uses a 16-byte ICV; 8 is plenty for the model


@dataclass
class MacsecStats:
    tagged: int = 0
    verified: int = 0
    rejected: int = 0
    replayed: int = 0


class ConnectivityAssociation:
    """The shared key + per-sender packet number space of one CA."""

    def __init__(self, key: bytes, name: str = "ca0"):
        self.key = key
        self.name = name
        self.stats = MacsecStats()
        self._tx_pn: Dict[str, int] = {}
        self._rx_pn: Dict[str, int] = {}

    def _icv(self, dgram: Datagram, pn: int) -> bytes:
        mac = hmac.new(
            self.key,
            b"|".join(
                [
                    str(dgram.vlan).encode(),
                    dgram.src_ip.encode(),
                    str(dgram.src_port).encode(),
                    dgram.dst_ip.encode(),
                    str(dgram.dst_port).encode(),
                    pn.to_bytes(8, "little"),
                    dgram.payload,
                ]
            ),
            hashlib.sha256,
        )
        return mac.digest()[:TAG_BYTES]

    def protect(self, dgram: Datagram, sender_id: str) -> Datagram:
        """Append the SecTAG (packet number + ICV) to the payload."""
        pn = self._tx_pn.get(sender_id, 0) + 1
        self._tx_pn[sender_id] = pn
        tagged = Datagram(
            src_ip=dgram.src_ip,
            src_port=dgram.src_port,
            dst_ip=dgram.dst_ip,
            dst_port=dgram.dst_port,
            payload=dgram.payload + pn.to_bytes(8, "little")
            + self._icv(dgram, pn),
            vlan=dgram.vlan,
        )
        self.stats.tagged += 1
        return tagged

    def validate(
        self, dgram: Datagram, rx_pn: Dict[str, int]
    ) -> Optional[Datagram]:
        """Strip and verify the SecTAG; None for forgeries/replays.

        ``rx_pn`` is the *receiving port's* replay state — per-port, not
        per-CA, because every member of a multicast group sees the same
        packet numbers.
        """
        overhead = 8 + TAG_BYTES
        if len(dgram.payload) < overhead:
            self.stats.rejected += 1
            return None
        body = dgram.payload[:-overhead]
        pn = int.from_bytes(dgram.payload[-overhead:-TAG_BYTES], "little")
        icv = dgram.payload[-TAG_BYTES:]
        inner = Datagram(
            src_ip=dgram.src_ip,
            src_port=dgram.src_port,
            dst_ip=dgram.dst_ip,
            dst_port=dgram.dst_port,
            payload=body,
            vlan=dgram.vlan,
        )
        if not hmac.compare_digest(icv, self._icv(inner, pn)):
            self.stats.rejected += 1
            return None
        sender = f"{dgram.src_ip}:{dgram.src_port}"
        if pn <= rx_pn.get(sender, 0):
            self.stats.replayed += 1
            return None
        rx_pn[sender] = pn
        self.stats.verified += 1
        return inner


class MacsecNic(Nic):
    """A NIC whose port participates in a connectivity association.

    Frames it sends carry the SecTAG; frames it receives must verify.
    A plain :class:`~repro.net.nic.Nic` on the same segment can neither
    read nor inject.
    """

    def __init__(self, segment, ip: str, ca: ConnectivityAssociation,
                 vlan: int = 1, name: str = ""):
        super().__init__(segment, ip, vlan=vlan, name=name)
        self.ca = ca
        self._rx_pn: Dict[str, int] = {}

    def send(self, dgram: Datagram) -> bool:
        protected = self.ca.protect(dgram, sender_id=self.ip)
        return self.segment.transmit(protected, sender=self)

    def deliver(self, dgram: Datagram) -> None:
        inner = self.ca.validate(dgram, self._rx_pn)
        if inner is None:
            return  # dropped at the port, the host never sees it
        super().deliver(inner)
