"""Network fault injection: make the LAN hostile on purpose.

The paper's evaluation leans on a well-behaved campus Ethernet — "we have
not experienced packet loss or transient network disruptions".  That is
good fortune, not a property of the design, and the speaker's §3.2
epsilon/resync machinery exists precisely because the design must not
depend on it.  This module turns the misbehaviour into explicit, seeded,
*counted* knobs so every pathology is a reproducible regression test:

* **bursty loss** — a Gilbert–Elliott two-state Markov chain per
  receiver: a GOOD state that rarely loses and a BAD state that loses
  heavily, so losses cluster the way interference and queue overflow
  cluster in practice (independent Bernoulli loss is the special case
  ``burst_length == 1``);
* **duplication** — the same receiver copy delivered twice (switch
  flooding races, ARP storms, a misbehaving IGMP querier);
* **bounded reordering** — a copy is held back until up to
  ``reorder_window`` later copies to the same receiver have overtaken
  it (multipath, link aggregation rehashing);
* **payload corruption** — one byte of the datagram flipped in flight
  (a NIC without checksum offload validation);
* **delay jitter** — extra per-copy uniform delay.

A :class:`FaultInjector` attaches to any link exposing
``set_fault_injector`` (:class:`~repro.net.segment.EthernetSegment`,
:class:`~repro.net.switch.SwitchedSegment`, and — since the recovery
ladder — :class:`~repro.net.wan.WanLink`, which requires a dedicated
injector per link because its counters feed the per-hop conservation
budget) and intercepts the per-receiver delivery decision.  Every injected fault increments both a
:class:`FaultStats` field and a telemetry counter
(``faults.{lost,duplicated,reordered,corrupted}[name]``), which is what
keeps the pipeline's packet-conservation ledger closed: the report can
itemise exactly how many copies the injector killed, minted, or mangled.

Everything is driven by one seeded ``numpy`` generator, so a faulty run
is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from repro.net.segment import Datagram


@dataclass
class FaultStats:
    """What the injector did to the copies that passed through it."""

    offered: int = 0          # receiver copies the link asked us to deliver
    lost: int = 0             # copies killed by the Gilbert–Elliott chain
    duplicated: int = 0       # extra copies minted (one per duplication)
    reordered: int = 0        # copies held back past later traffic
    corrupted: int = 0        # copies with one payload byte flipped
    flushed: int = 0          # parked copies force-released at detach/flush
    jitter_seconds: float = 0.0


class GilbertElliott:
    """The classic two-state loss chain (Gilbert 1960, Elliott 1963).

    Per packet the chain first moves (GOOD -> BAD with ``p_enter_bad``,
    BAD -> GOOD with ``p_exit_bad``), then loses the packet with the
    state's loss probability.  With ``loss_bad = 1`` and
    ``loss_good = 0`` the stationary loss rate is ``p / (p + r)`` and
    the mean burst length is ``1 / r``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for name, p in (("p_enter_bad", p_enter_bad),
                        ("p_exit_bad", p_exit_bad),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {p}")
        self._rng = rng
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    @classmethod
    def from_mean(
        cls,
        rng: np.random.Generator,
        mean_loss: float,
        burst_length: float = 1.0,
    ) -> "GilbertElliott":
        """Chain with a target stationary loss rate and mean burst length.

        ``burst_length == 1`` degenerates to independent Bernoulli loss.
        """
        if not 0.0 <= mean_loss < 1.0:
            raise ValueError(f"mean_loss out of range: {mean_loss}")
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1: {burst_length}")
        if mean_loss == 0.0:
            return cls(rng, 0.0, 1.0)
        r = 1.0 / burst_length
        p = r * mean_loss / (1.0 - mean_loss)
        return cls(rng, min(p, 1.0), r)

    def lose(self) -> bool:
        if self.bad:
            if self._rng.random() < self.p_exit_bad:
                self.bad = False
        elif self._rng.random() < self.p_enter_bad:
            self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._rng.random() < rate


class _Held:
    """One copy parked for reordering."""

    __slots__ = ("dgram", "remaining", "released")

    def __init__(self, dgram: Datagram, remaining: int):
        self.dgram = dgram
        self.remaining = remaining
        self.released = False


class FaultInjector:
    """Composable per-link fault model.

    Parameters
    ----------
    loss_rate, burst_length:
        stationary Gilbert–Elliott loss rate and mean burst length;
        one independent chain per receiver, so a multicast frame can be
        lost at one speaker and arrive at the next (matching how
        ``EthernetSegment.loss_rate`` counts per-receiver copies).
    duplicate_rate:
        probability a surviving copy is delivered twice; the echo lands
        ``duplicate_lag`` seconds after the original.
    reorder_rate, reorder_window, reorder_hold:
        probability a copy is held back, how many later copies to the
        same receiver may overtake it, and the wall-clock safety valve
        after which it is released regardless (so the last packets of a
        stream never dangle and the conservation ledger closes).
    corrupt_rate:
        probability one random byte of the copy's payload is flipped.
    jitter:
        extra per-copy uniform delay in ``[0, jitter]`` seconds.
    """

    def __init__(
        self,
        sim,
        loss_rate: float = 0.0,
        burst_length: float = 1.0,
        duplicate_rate: float = 0.0,
        duplicate_lag: float = 100e-6,
        reorder_rate: float = 0.0,
        reorder_window: int = 3,
        reorder_hold: float = 0.25,
        corrupt_rate: float = 0.0,
        jitter: float = 0.0,
        seed: int = 1,
        name: str = "faults0",
        telemetry=None,
    ):
        for pname, p in (("loss_rate", loss_rate),
                         ("duplicate_rate", duplicate_rate),
                         ("reorder_rate", reorder_rate),
                         ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{pname} out of range: {p}")
        if reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        self.sim = sim
        self.loss_rate = loss_rate
        self.burst_length = burst_length
        self.duplicate_rate = duplicate_rate
        self.duplicate_lag = duplicate_lag
        self.reorder_rate = reorder_rate
        self.reorder_window = reorder_window
        self.reorder_hold = reorder_hold
        self.corrupt_rate = corrupt_rate
        self.jitter = jitter
        self.name = name
        self.stats = FaultStats()
        self._rng = np.random.default_rng(seed)
        self._chains: Dict[object, GilbertElliott] = {}
        self._held: Dict[object, List[_Held]] = {}
        self.links: List[object] = []
        if telemetry is None:
            from repro.metrics.telemetry import get_telemetry

            telemetry = get_telemetry()
        self.telemetry = telemetry
        self._c_lost = telemetry.counter(f"faults.lost[{name}]")
        self._c_dup = telemetry.counter(f"faults.duplicated[{name}]")
        self._c_reorder = telemetry.counter(f"faults.reordered[{name}]")
        self._c_corrupt = telemetry.counter(f"faults.corrupted[{name}]")
        self._c_flushed = telemetry.counter(f"faults.flushed[{name}]")

    # -- attachment ---------------------------------------------------------------

    def attach(self, link) -> "FaultInjector":
        """Interpose on ``link``'s receiver deliveries (chainable)."""
        link.set_fault_injector(self)
        self.links.append(link)
        return self

    def detach(self, link=None) -> int:
        """Stop interposing on ``link`` (default: every attached link).

        Any copies still parked for reordering are flushed — released for
        immediate delivery and counted in ``stats.flushed`` — so a
        detached injector never strands packets: ``pending`` drops to
        zero and nothing leaks into the conservation residual at
        teardown.  Returns the number of copies flushed.
        """
        links = [link] if link is not None else list(self.links)
        for item in links:
            if item in self.links:
                item.set_fault_injector(None)
                self.links.remove(item)
        return self.flush_pending()

    def flush_pending(self) -> int:
        """Release every parked copy right now; returns how many."""
        flushed = 0
        for nic, held in self._held.items():
            for entry in held:
                if not entry.released:
                    entry.released = True
                    flushed += 1
                    self.sim.schedule_transient(0.0, nic.deliver, entry.dgram)
            held.clear()
        self.stats.flushed += flushed
        self._c_flushed.inc(flushed)
        return flushed

    @property
    def pending(self) -> int:
        """Copies currently parked for reordering (in flight)."""
        return sum(
            1 for held in self._held.values()
            for entry in held if not entry.released
        )

    # -- the per-copy decision ----------------------------------------------------

    def deliver(self, nic, dgram: Datagram, delay: float) -> None:
        """Decide the fate of one receiver copy and schedule what
        survives.  Called by the link in place of its own
        ``sim.schedule(delay, nic.deliver, dgram)``."""
        if self._copy_fate(nic, dgram, delay) == "clean":
            self._dispatch(nic, dgram, delay)

    def _copy_fate(self, nic, dgram: Datagram, delay: float) -> str:
        """Draw one receiver copy's fate; the RNG sequence is exactly
        :meth:`deliver`'s, which is what lets a cohort run the loop per
        member token and stay draw-for-draw identical to a per-object
        fleet.  Returns ``"lost"`` (nothing survives), ``"handled"``
        (divergent copies were scheduled or parked in here), or
        ``"clean"`` — exactly one unjittered, uncorrupted, unheld copy at
        the base delay, whose dispatch the *caller* owns (a plain link
        dispatches it; a cohort folds it into the shared delivery)."""
        self.stats.offered += 1
        rng = self._rng
        if self.loss_rate and self._chain(nic).lose():
            self.stats.lost += 1
            self._c_lost.inc()
            return "lost"
        copies = 1
        if self.duplicate_rate and rng.random() < self.duplicate_rate:
            copies = 2
            self.stats.duplicated += 1
            self._c_dup.inc()
        clean = False
        for i in range(copies):
            copy = dgram
            if self.corrupt_rate and rng.random() < self.corrupt_rate:
                copy = self._corrupt(dgram)
                self.stats.corrupted += 1
                self._c_corrupt.inc()
            copy_delay = delay + i * self.duplicate_lag
            if self.jitter:
                extra = rng.uniform(0.0, self.jitter)
                copy_delay += extra
                self.stats.jitter_seconds += extra
            if (
                i == 0
                and self.reorder_rate
                and rng.random() < self.reorder_rate
            ):
                self._hold(nic, copy, copy_delay)
            elif (
                copies == 1 and copy is dgram and copy_delay == delay
                and not self._held.get(nic)
            ):
                clean = True
            else:
                self._dispatch(nic, copy, copy_delay)
        return "clean" if clean else "handled"

    def deliver_cohort(self, cohort, dgram: Datagram, delay: float) -> None:
        """Per-member fates for a whole cohort, one shared delivery for
        the aligned survivors.  Member tokens are the chain/hold keys, so
        burst phase and parked copies follow a member across its spill."""
        represented = 0
        for tok in cohort.tokens:
            if tok.state == 0:  # ALIGNED
                fate = self._copy_fate(tok, dgram, delay)
                if fate == "clean":
                    represented += 1
                else:
                    cohort.mark_divergent(tok, dgram, reason=fate)
            else:
                self.deliver(tok, dgram, delay)
        cohort.finish_frame(dgram, delay, represented)

    # -- mechanics ----------------------------------------------------------------

    def _chain(self, nic) -> GilbertElliott:
        chain = self._chains.get(nic)
        if chain is None:
            chain = self._chains[nic] = GilbertElliott.from_mean(
                self._rng, self.loss_rate, self.burst_length
            )
        return chain

    def _hold(self, nic, dgram: Datagram, delay: float) -> None:
        entry = _Held(dgram, self.reorder_window)
        self._held.setdefault(nic, []).append(entry)
        self.stats.reordered += 1
        self._c_reorder.inc()
        # safety valve: if the stream stops while this copy is parked,
        # release it anyway so nothing dangles past quiescence
        self.sim.schedule(delay + self.reorder_hold,
                          self._timeout, nic, entry)

    def _timeout(self, nic, entry: _Held) -> None:
        if not entry.released:
            entry.released = True
            nic.deliver(entry.dgram)
        held = self._held.get(nic)
        if held and entry in held:
            held.remove(entry)

    def _dispatch(self, nic, dgram: Datagram, delay: float) -> None:
        self.sim.schedule(delay, nic.deliver, dgram)
        held = self._held.get(nic)
        if not held:
            return
        # every dispatched copy overtakes the parked ones by one slot;
        # a copy that has been overtaken reorder_window times lands just
        # behind the overtaker
        survivors = []
        for entry in held:
            if entry.released:
                continue
            entry.remaining -= 1
            if entry.remaining <= 0:
                entry.released = True
                self.sim.schedule(delay + 1e-9, nic.deliver, entry.dgram)
            else:
                survivors.append(entry)
        self._held[nic] = survivors

    def _corrupt(self, dgram: Datagram) -> Datagram:
        payload = dgram.payload
        if not payload:
            return dgram
        data = bytearray(payload)
        idx = int(self._rng.integers(0, len(data)))
        data[idx] ^= int(self._rng.integers(1, 256))
        return replace(dgram, payload=bytes(data))
