"""Application-layer forward error correction for WAN hops.

NACK recovery (PR 7) needs a live reverse path and costs a round trip
per hole; the paper's internet-radio links (§6) are exactly where the
reverse path is slow, lossy, or absent.  This module adds the zero
-reverse-traffic alternative: the sender groups consecutive data frames
into interleaved groups of ``k`` and emits ``r`` parity frames per group
(:class:`~repro.core.protocol.FecPacket`); the receiver buffers recent
data wire images and repairs up to ``r`` erasures per group the moment
enough parity arrives — no NACK, no retransmit, bounded added latency of
roughly ``k * interleave`` frame cadences.

The code is a systematic erasure code over GF(256):

* ``r == 1`` is plain XOR parity (the classic single-erasure repair);
* ``r > 1`` uses a Cauchy matrix — parity row ``j`` weights member ``t``
  by ``1 / ((255 - j) ^ t)`` in GF(256).  With ``j < 16`` and
  ``t < 128`` the row and column generators are distinct, so every
  square submatrix is invertible and **any** ``e <= r`` erasures are
  repairable from **any** ``e`` surviving parity rows.

Parity covers the members' whole wire images (zero-padded to the
longest), so a repair reproduces the original datagram byte-exactly —
header, payload, everything — and the hop can inject it into the
resequencer as if it had arrived off the wire.  Every group is
self-describing (geometry plus per-member length and crc32 ride in the
parity frame), so the receiver needs no configuration agreement with
the sender, and corrupt buffered members are excluded from the
equations instead of poisoning them.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.protocol import (
    SEQ_MOD,
    FecPacket,
    epoch_newer,
    seq_delta,
)

__all__ = [
    "MAX_K",
    "MAX_R",
    "coefficient",
    "encode_group",
    "repair_group",
    "FecStats",
    "FecEncoder",
    "FecReassembler",
]

#: geometry bounds that keep the Cauchy generators disjoint (member
#: index < 128 never collides with parity generator 255 - j >= 240)
MAX_K = 128
MAX_R = 16


# -- GF(256) arithmetic (AES polynomial 0x11b, generator 3) -------------------

def _build_tables():
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by the generator 0x03 (0x02 is NOT primitive for
        # 0x11b — its order is only 51, which would leave the log
        # table full of holes)
        x ^= (x << 1)
        if x & 0x100:
            x ^= 0x11B
    exp[255:510] = exp[:255]
    # full 256x256 product table: mul[a, b] via one fancy-index lookup,
    # so weighting a whole wire image by a coefficient is vectorised
    mul = np.zeros((256, 256), dtype=np.uint8)
    la = log[1:]
    mul[1:, 1:] = exp[(la[:, None] + la[None, :]) % 255]
    inv = np.zeros(256, dtype=np.uint8)
    inv[1:] = exp[(255 - la) % 255]
    return exp, log, mul, inv


_EXP, _LOG, _MUL, _INV = _build_tables()


def _gf_mul(a: int, b: int) -> int:
    return int(_MUL[a, b])


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of 0")
    return int(_INV[a])


def coefficient(parity_index: int, member_index: int, r: int) -> int:
    """Weight of member ``t`` in parity row ``j`` for an ``r``-row group.

    ``r == 1`` is all-ones (pure XOR); ``r > 1`` is the Cauchy element
    ``1 / ((255 - j) ^ t)``, nonzero and submatrix-invertible for all
    ``j < MAX_R``, ``t < MAX_K``.
    """
    if r == 1:
        return 1
    return _gf_inv((255 - parity_index) ^ member_index)


def _pad(buf: bytes, length: int) -> np.ndarray:
    arr = np.zeros(length, dtype=np.uint8)
    arr[: len(buf)] = np.frombuffer(buf, dtype=np.uint8)
    return arr


def encode_group(members: Sequence[bytes], r: int) -> List[bytes]:
    """``r`` parity payloads over the members' padded wire images."""
    if not members or len(members) > MAX_K:
        raise ValueError(f"group size {len(members)} outside [1, {MAX_K}]")
    if not 1 <= r <= MAX_R:
        raise ValueError(f"parity count {r} outside [1, {MAX_R}]")
    length = max(len(m) for m in members)
    padded = [_pad(m, length) for m in members]
    rows = []
    for j in range(r):
        acc = np.zeros(length, dtype=np.uint8)
        for t, arr in enumerate(padded):
            c = coefficient(j, t, r)
            acc ^= arr if c == 1 else _MUL[c][arr]
        rows.append(acc.tobytes())
    return rows


def repair_group(
    present: Dict[int, bytes],
    parity_rows: Dict[int, bytes],
    k: int,
    r: int,
) -> Optional[Dict[int, bytes]]:
    """Reconstruct the erased members of one group, or None.

    ``present`` maps member index -> wire image for the members the
    receiver holds (verified copies only); ``parity_rows`` maps parity
    index -> parity payload.  Returns padded reconstructions for every
    member index not in ``present`` when the erasure count is within the
    surviving parity budget; returns ``None`` when it is not (never a
    partial or speculative repair).
    """
    erased = [t for t in range(k) if t not in present]
    if not erased:
        return {}
    if len(erased) > len(parity_rows) or len(erased) > r:
        return None
    use = sorted(parity_rows)[: len(erased)]
    length = len(parity_rows[use[0]])
    # syndromes: fold every present member out of each parity row, so
    # S_j = sum_{t erased} coeff(j, t) * member_t
    syndromes = []
    for j in use:
        s = np.frombuffer(parity_rows[j], dtype=np.uint8).copy()
        if len(s) != length:
            return None
        for t, wire in present.items():
            c = coefficient(j, t, r)
            arr = _pad(wire, length)
            s ^= arr if c == 1 else _MUL[c][arr]
        syndromes.append(s)
    matrix = [[coefficient(j, t, r) for t in erased] for j in use]
    e = len(erased)
    # Gaussian elimination over GF(256), byte-vector right-hand sides
    for col in range(e):
        pivot = next((i for i in range(col, e) if matrix[i][col]), None)
        if pivot is None:
            return None  # singular: over-capacity pattern slipped through
        if pivot != col:
            matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
            syndromes[col], syndromes[pivot] = (
                syndromes[pivot], syndromes[col],
            )
        inv = _gf_inv(matrix[col][col])
        if inv != 1:
            matrix[col] = [_gf_mul(inv, x) for x in matrix[col]]
            syndromes[col] = _MUL[inv][syndromes[col]]
        for row in range(e):
            f = matrix[row][col]
            if row == col or not f:
                continue
            matrix[row] = [
                x ^ _gf_mul(f, y)
                for x, y in zip(matrix[row], matrix[col])
            ]
            syndromes[row] = syndromes[row] ^ _MUL[f][syndromes[col]]
    return {t: syndromes[i].tobytes() for i, t in enumerate(erased)}


# -- shared counters ----------------------------------------------------------

@dataclass
class FecStats:
    """Sender + receiver FEC counters for one hop (or one test codec)."""

    parity_sent: int = 0        # parity frames emitted by the encoder
    parity_bytes: int = 0       # wire bytes of emitted parity (overhead)
    data_bytes: int = 0         # wire bytes of the data frames protected
    parity_received: int = 0    # parity frames the reassembler accepted
    repaired: int = 0           # data frames reconstructed and injected
    unrepairable: int = 0       # member losses FEC saw but could not fix
    wasted: int = 0             # parity frames that repaired nothing
    corrupt_members: int = 0    # buffered members failing their crc
    stale_parity: int = 0       # parity from a dead epoch, dropped
    flushed_groups: int = 0     # partial groups force-emitted (epoch/timer)


# -- sender side --------------------------------------------------------------

class _TxGroup:
    __slots__ = ("base_seq", "members")

    def __init__(self, base_seq: int):
        self.base_seq = base_seq
        self.members: List[bytes] = []


class _TxChannel:
    __slots__ = ("epoch", "next_seq", "counter", "lanes")

    def __init__(self, interleave: int):
        self.epoch: Optional[int] = None
        self.next_seq: Optional[int] = None
        self.counter = 0
        self.lanes: List[Optional[_TxGroup]] = [None] * interleave


class FecEncoder:
    """Sender-side group builder: feed data frames, it emits parity.

    Consecutive data seqs round-robin across ``interleave`` open groups,
    so each group's members are ``base, base + d, ...`` — a burst of up
    to ``r * interleave`` consecutive losses still lands at most ``r``
    erasures in any one group.  A group emits its ``r`` parity frames
    when the ``k``-th member lands; epoch changes and the per-group
    flush timer emit *partial* parity (actual member count in the PDU)
    so a paused stream never strands a protected frame, mirroring the
    resequencer's epoch-boundary flush.
    """

    def __init__(
        self,
        sim,
        emit: Callable[[bytes], None],
        k: int = 4,
        r: int = 1,
        interleave: int = 1,
        flush_timeout: float = 0.25,
        stats: Optional[FecStats] = None,
    ):
        if not 1 <= k <= MAX_K:
            raise ValueError(f"fec k={k} outside [1, {MAX_K}]")
        if not 1 <= r <= MAX_R:
            raise ValueError(f"fec r={r} outside [1, {MAX_R}]")
        if not 1 <= interleave <= 32:
            raise ValueError(f"fec interleave={interleave} outside [1, 32]")
        self.sim = sim
        self.emit = emit
        self.k = k
        self.r = r
        self.interleave = interleave
        self.flush_timeout = flush_timeout
        self.stats = stats if stats is not None else FecStats()
        self._channels: Dict[int, _TxChannel] = {}

    def on_data(self, channel_id: int, seq: int, epoch: int, wire) -> None:
        ch = self._channels.get(channel_id)
        if ch is None:
            ch = self._channels[channel_id] = _TxChannel(self.interleave)
        if ch.epoch is not None and epoch != ch.epoch:
            self._flush_channel(channel_id, ch)
        if ch.next_seq is not None and seq != ch.next_seq:
            # the stream skipped or restarted under us: the arithmetic
            # member rule (base + t * stride) no longer holds, so close
            # out what we have and re-anchor
            self._flush_channel(channel_id, ch)
        ch.epoch = epoch
        lane = ch.counter % self.interleave
        grp = ch.lanes[lane]
        if grp is None:
            grp = ch.lanes[lane] = _TxGroup(seq)
            if self.flush_timeout is not None:
                self.sim.schedule_transient(
                    self.flush_timeout, self._timer_flush,
                    channel_id, lane, grp,
                )
        grp.members.append(bytes(wire))
        self.stats.data_bytes += len(wire)
        ch.counter += 1
        ch.next_seq = (seq + 1) % SEQ_MOD
        if len(grp.members) == self.k:
            ch.lanes[lane] = None
            self._emit_group(channel_id, ch.epoch, grp)

    def flush(self) -> None:
        """Emit partial parity for every open group (all channels)."""
        for channel_id, ch in self._channels.items():
            self._flush_channel(channel_id, ch)

    def reset(self) -> None:
        """Drop all open groups without emitting (sender restart)."""
        self._channels.clear()

    def _flush_channel(self, channel_id: int, ch: _TxChannel) -> None:
        for lane, grp in enumerate(ch.lanes):
            if grp is not None:
                ch.lanes[lane] = None
                self.stats.flushed_groups += 1
                self._emit_group(channel_id, ch.epoch, grp)
        ch.counter = 0
        ch.next_seq = None

    def _timer_flush(self, channel_id: int, lane: int, grp: _TxGroup):
        ch = self._channels.get(channel_id)
        if ch is None or ch.lanes[lane] is not grp:
            return  # group completed or was flushed already
        ch.lanes[lane] = None
        self.stats.flushed_groups += 1
        self._emit_group(channel_id, ch.epoch, grp)

    def _emit_group(self, channel_id: int, epoch: int, grp: _TxGroup):
        members = grp.members
        rows = encode_group(members, self.r)
        sizes = tuple(len(m) for m in members)
        crcs = tuple(zlib.crc32(m) for m in members)
        for j, payload in enumerate(rows):
            pkt = FecPacket(
                channel_id=channel_id,
                base_seq=grp.base_seq,
                k=len(members),
                r=self.r,
                parity_index=j,
                stride=self.interleave,
                member_sizes=sizes,
                member_crcs=crcs,
                payload=payload,
                epoch=epoch,
            )
            wire = pkt.encode()
            self.stats.parity_sent += 1
            self.stats.parity_bytes += len(wire)
            self.emit(wire)


# -- receiver side ------------------------------------------------------------

class _RxGroup:
    __slots__ = ("rows", "received")

    def __init__(self):
        self.rows: Dict[int, FecPacket] = {}
        self.received = 0


class _RxChannel:
    __slots__ = ("epoch", "ring", "newest", "pending", "done", "done_q")

    def __init__(self):
        self.epoch: Optional[int] = None
        self.ring: "OrderedDict[int, bytes]" = OrderedDict()
        self.newest: Optional[int] = None
        self.pending: "OrderedDict[int, _RxGroup]" = OrderedDict()
        self.done: set = set()
        self.done_q: deque = deque()


class FecReassembler:
    """Receiver-side repair: buffer data, fold in parity, inject fixes.

    Feed every arriving data frame through :meth:`on_data` and every
    parity frame through :meth:`on_parity`; both return the list of
    reconstructed wire images that became repairable, byte-verified
    against the group's member crc32s before they are handed back.
    Groups are self-describing, so no sender configuration is needed.
    Epoch tracking follows *data* frames only (a parity frame's epoch
    rides outside its body crc, so it is never trusted to advance
    state); stale parity is dropped, and an epoch step flushes all
    pending state exactly like the hop resequencer.
    """

    def __init__(
        self,
        stats: Optional[FecStats] = None,
        window: int = 256,
        pending_limit: int = 64,
        done_limit: int = 1024,
    ):
        self.stats = stats if stats is not None else FecStats()
        self.window = window
        self.pending_limit = pending_limit
        self.done_limit = done_limit
        self._channels: Dict[int, _RxChannel] = {}

    def on_data(
        self, channel_id: int, seq: int, epoch: int, wire
    ) -> List[bytes]:
        ch = self._channels.get(channel_id)
        if ch is None:
            ch = self._channels[channel_id] = _RxChannel()
        if ch.epoch is None or epoch != ch.epoch:
            if ch.epoch is not None and not epoch_newer(epoch, ch.epoch):
                return []  # stale incarnation; the resequencer drops it
            self._flush_channel(ch)
            ch.epoch = epoch
        ch.ring[seq] = bytes(wire)
        ch.ring.move_to_end(seq)
        if ch.newest is None or seq_delta(seq, ch.newest) < SEQ_MOD // 2:
            ch.newest = seq
        while len(ch.ring) > self.window:
            ch.ring.popitem(last=False)
        repaired: List[bytes] = []
        for base in list(ch.pending):
            grp = ch.pending.get(base)
            if grp is None:
                continue
            pkt = next(iter(grp.rows.values()))
            if seq in pkt.member_seqs():
                repaired.extend(self._try_repair(ch, base))
        self._evict_stale(ch)
        return repaired

    def on_parity(self, pkt: FecPacket) -> List[bytes]:
        self.stats.parity_received += 1
        ch = self._channels.get(pkt.channel_id)
        if ch is None or ch.epoch is None or pkt.epoch != ch.epoch:
            # no data seen for this channel+epoch yet (or a dead epoch):
            # never let a parity frame steer epoch state
            self.stats.stale_parity += 1
            return []
        if pkt.base_seq in ch.done:
            self.stats.wasted += 1
            return []
        grp = ch.pending.get(pkt.base_seq)
        if grp is None:
            grp = ch.pending[pkt.base_seq] = _RxGroup()
        if pkt.parity_index in grp.rows:
            self.stats.wasted += 1  # duplicate parity row
            return []
        grp.rows[pkt.parity_index] = pkt
        grp.received += 1
        repaired = self._try_repair(ch, pkt.base_seq)
        while len(ch.pending) > self.pending_limit:
            base, old = ch.pending.popitem(last=False)
            self._account_abandoned(ch, old)
        return repaired

    def reset(self) -> None:
        """Receiver restart: drop all buffered state, no accounting."""
        self._channels.clear()

    # -- internals ------------------------------------------------------------

    def _try_repair(self, ch: _RxChannel, base: int) -> List[bytes]:
        grp = ch.pending[base]
        pkt = next(iter(grp.rows.values()))
        seqs = pkt.member_seqs()
        present: Dict[int, bytes] = {}
        corrupt: List[int] = []
        for t, s in enumerate(seqs):
            wire = ch.ring.get(s)
            if wire is None:
                continue
            if (
                len(wire) == pkt.member_sizes[t]
                and zlib.crc32(wire) == pkt.member_crcs[t]
            ):
                present[t] = wire
            else:
                # a corrupted copy reached us; it must not enter the
                # equations, and its reconstruction is not re-injected
                # (the hop already forwarded whatever arrived)
                corrupt.append(t)
        missing = [
            t for t in range(pkt.k) if t not in present and t not in corrupt
        ]
        if not missing and not corrupt:
            self._close(ch, base, rows_used=0)
            return []
        erasures = len(missing) + len(corrupt)
        if erasures > len(grp.rows):
            return []  # wait: more parity rows or late data may still come
        rebuilt = repair_group(
            present,
            {j: row.payload for j, row in grp.rows.items()},
            pkt.k,
            pkt.r,
        )
        if rebuilt is None:
            return []
        out: List[bytes] = []
        for t in sorted(missing + corrupt):
            wire = rebuilt[t][: pkt.member_sizes[t]]
            if zlib.crc32(wire) != pkt.member_crcs[t]:
                # cannot happen with verified inputs; refuse to inject
                # anything from a group whose math disagrees with itself
                self.stats.unrepairable += erasures
                self._close(ch, base, rows_used=0)
                return []
            if t in missing:
                ch.ring[seqs[t]] = wire
                out.append(wire)
        self.stats.repaired += len(out)
        self.stats.corrupt_members += len(corrupt)
        self._close(ch, base, rows_used=erasures)
        return out

    def _close(self, ch: _RxChannel, base: int, rows_used: int) -> None:
        grp = ch.pending.pop(base, None)
        if grp is not None:
            self.stats.wasted += max(0, len(grp.rows) - rows_used)
        ch.done.add(base)
        ch.done_q.append(base)
        while len(ch.done_q) > self.done_limit:
            ch.done.discard(ch.done_q.popleft())

    def _account_abandoned(self, ch: _RxChannel, grp: _RxGroup) -> None:
        pkt = next(iter(grp.rows.values()))
        missing = sum(
            1 for s in pkt.member_seqs() if s not in ch.ring
        )
        self.stats.unrepairable += missing
        self.stats.wasted += len(grp.rows)

    def _evict_stale(self, ch: _RxChannel) -> None:
        if ch.newest is None:
            return
        horizon = self.window + MAX_K * 32
        for base in list(ch.pending):
            grp = ch.pending[base]
            pkt = next(iter(grp.rows.values()))
            last = pkt.member_seqs()[-1]
            behind = seq_delta(ch.newest, last)
            if behind < SEQ_MOD // 2 and behind > horizon:
                # the stream has moved far past this group: its missing
                # members will never arrive as data, and every parity
                # row it will ever get has had its chance
                del ch.pending[base]
                self._account_abandoned(ch, grp)

    def _flush_channel(self, ch: _RxChannel) -> None:
        for grp in ch.pending.values():
            self._account_abandoned(ch, grp)
        ch.pending.clear()
        ch.ring.clear()
        ch.done.clear()
        ch.done_q.clear()
        ch.newest = None
