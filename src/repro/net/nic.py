"""Network interface: address filters, VLAN membership, multicast groups."""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.net.addr import is_broadcast, is_multicast
from repro.net.segment import Datagram, EthernetSegment


class Nic:
    """One interface on the segment.

    Filtering mimics a real NIC + IP stack: unicast to our address,
    broadcast, or multicast groups we joined (IGMP is abstracted to
    ``join_group``).  VLAN tagging isolates ports — the paper's interim
    security measure of "operating the Ethernet Speakers in their own
    VLAN" (§5.1).
    """

    def __init__(
        self,
        segment: EthernetSegment,
        ip: str,
        vlan: int = 1,
        promiscuous: bool = False,
        name: str = "",
    ):
        self.segment = segment
        self.ip = ip
        self.vlan = vlan
        self.promiscuous = promiscuous
        self.name = name or f"nic-{ip}"
        self.groups: Set[str] = set()
        self.rx_handler: Optional[Callable[[Datagram], None]] = None
        self.rx_frames = 0
        segment.attach(self)

    def join_group(self, group_ip: str) -> None:
        if not is_multicast(group_ip):
            raise ValueError(f"{group_ip} is not a multicast address")
        self.groups.add(group_ip)

    def leave_group(self, group_ip: str) -> None:
        self.groups.discard(group_ip)

    def accepts(self, dgram: Datagram) -> bool:
        if dgram.vlan != self.vlan:
            return False  # VLAN isolation happens before anything else
        if self.promiscuous:
            return True
        if dgram.dst_ip == self.ip or is_broadcast(dgram.dst_ip):
            return True
        return is_multicast(dgram.dst_ip) and dgram.dst_ip in self.groups

    def deliver(self, dgram: Datagram) -> None:
        self.rx_frames += 1
        if self.rx_handler is not None:
            self.rx_handler(dgram)

    def send(self, dgram: Datagram) -> bool:
        return self.segment.transmit(dgram, sender=self)
