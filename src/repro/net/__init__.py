"""Simulated Ethernet LAN and WAN links.

The paper's protocol leans on properties of a single Ethernet segment —
"low error rates, ample bandwidth, and most importantly, well behaved packet
arrival" plus multicast-by-default (§2.3).  Here those properties are
explicit, tunable parameters: segment bandwidth (10/100/1000 Mbps), per-
receiver jitter and loss, VLAN isolation, and a queueing model that makes a
saturated legacy link *measurably* drop audio the way §2.2 describes.
"""

from repro.net.addr import (
    ETHER_OVERHEAD,
    UDP_IP_OVERHEAD,
    is_multicast,
    wire_bytes,
)
from repro.net.faults import FaultInjector, FaultStats, GilbertElliott
from repro.net.segment import Datagram, EthernetSegment
from repro.net.nic import Nic
from repro.net.stack import NetworkStack, UdpSocket
from repro.net.macsec import ConnectivityAssociation, MacsecNic
from repro.net.monitor import BandwidthMonitor
from repro.net.switch import SwitchedSegment

# wan and fec are loaded lazily (PEP 562): they import repro.core, and
# this package initialises from inside repro.kernel.machine's own import
# — an eager import here would re-enter that half-built module
_WAN_NAMES = ("WanLink", "WanHop", "WanHopStats", "RelayNode", "RelayStats")
_FEC_NAMES = ("FecEncoder", "FecReassembler", "FecStats")


def __getattr__(name):
    if name in _WAN_NAMES:
        from repro.net import wan

        return getattr(wan, name)
    if name in _FEC_NAMES:
        from repro.net import fec

        return getattr(fec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "is_multicast",
    "wire_bytes",
    "ETHER_OVERHEAD",
    "UDP_IP_OVERHEAD",
    "Datagram",
    "EthernetSegment",
    "FaultInjector",
    "FaultStats",
    "GilbertElliott",
    "Nic",
    "NetworkStack",
    "UdpSocket",
    "BandwidthMonitor",
    "WanLink",
    "WanHop",
    "WanHopStats",
    "RelayNode",
    "RelayStats",
    "FecEncoder",
    "FecReassembler",
    "FecStats",
    "ConnectivityAssociation",
    "MacsecNic",
    "SwitchedSegment",
]
