"""WAN links and the multi-tier relay distribution tree.

The rebroadcaster's upstream (Figure 1) was a single point-to-point WAN
pipe: a Real-Audio-style server on the public Internet feeding the proxy
machine.  Unlike the LAN, the WAN has real latency, jitter, and loss —
the "network problems associated with transmission over WAN links" (§6)
that the ES system deliberately keeps out of the LAN protocol by
terminating them at the rebroadcaster.

One LAN cannot serve millions of listeners, so this module grows that
pipe into a **hierarchical relay tree**::

    origin rebroadcaster ──wan──> regional relay ──wan──> leaf relay ──lan──> speakers
                           └────> regional relay ──wan──> ...

* :class:`WanLink` — one unidirectional hop with its own bandwidth,
  latency, jitter, and loss profile.  Loss and jitter draw from
  **independent** seeded RNG streams, so sweeping ``loss_rate`` never
  shifts the jitter trajectory of the surviving frames.
* :class:`WanHop` — a link plus a selectable **recovery ladder**
  (``recovery="none"|"nack"|"fec"|"fec+nack"``) for lossy hops where
  the LAN's just-conceal policy breaks down: application-layer FEC
  (:mod:`repro.net.fec`) repairs losses with zero reverse traffic,
  unrepaired holes fall through to the bounded-ring NACK layer (when
  enabled), and whatever survives both is abandoned after a bounded
  timeout and concealed downstream — degradation, never a stall.
  A :class:`~repro.net.faults.FaultInjector` can attach to any
  :class:`WanLink` (``injector.attach(link)``) for the full hostile-WAN
  chain: GE bursty loss, duplication, corruption, bounded reorder.
* :class:`RelayNode` — a tandem-free forwarder: it classifies packets
  from the common header alone (:func:`~repro.core.protocol.peek_header`,
  zero-copy, no payload decode) and re-multicasts the compressed bytes
  unchanged.  A relay that loses its uplink cadence fails over to a
  local **fallback source** (a silence/filler stream under a fresh
  epoch, Liquidsoap-style) and stands down when the uplink reappears,
  mapping upstream epochs forward with serial-16 arithmetic so every
  downstream listener re-anchors instead of going silent.

Wire/tree construction lives in
:meth:`repro.core.system.EthernetSpeakerSystem.add_relay` /
``add_leaf_lan``; per-hop counters are folded into the conservation
ledger by ``pipeline_report()``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.codec.base import CodecID
# NOTE: these reach into sibling packages whose modules never import
# repro.net, and repro.net.__init__ loads wan *lazily* (PEP 562) so
# this module can't run inside repro.kernel.machine's bootstrap — both
# facts keep the circular package imports safe.  Keep it that way.
from repro.core.failover import CadenceMonitor
from repro.core.protocol import (
    EPOCH_MOD,
    SEQ_MOD,
    TYPE_CONTROL,
    TYPE_DATA,
    TYPE_FEC,
    ControlPacket,
    DataPacket,
    ProtocolError,
    epoch_newer,
    parse_packet,
    peek_header,
    restamp_epoch,
    seq_delta,
)
from repro.metrics.telemetry import get_telemetry
from repro.net.fec import FecEncoder, FecReassembler, FecStats
from repro.net.segment import Datagram
from repro.sim.core import Simulator

#: recovery-ladder policies a hop can run (see :class:`WanHop`)
RECOVERY_POLICIES = ("none", "nack", "fec", "fec+nack")


class _WanRx:
    """Adapter presenting one WAN delivery callback to a FaultInjector.

    The injector keys its Gilbert–Elliott chains and reorder parking on
    the receiver object it calls ``deliver`` on; wrapping each callback
    once (cached per link) keeps those draws deterministic per receiver
    path exactly like a LAN NIC.
    """

    __slots__ = ("_link", "_cb")

    def __init__(self, link: "WanLink", cb: Callable[[bytes], None]):
        self._link = link
        self._cb = cb

    def deliver(self, dgram: Datagram) -> None:
        self._link._deliver(dgram.payload, self._cb)


class WanLink:
    """Unidirectional WAN pipe delivering payloads to a callback.

    Serialisation at ``bandwidth_bps``, propagation ``latency``, uniform
    ``jitter``, independent ``loss_rate``.  Reordering can emerge naturally
    from jitter (delivery time = queue-exit + jittered propagation).

    Loss and jitter draw from independent streams spawned off the same
    seed: frame *i*'s jitter is a function of ``(seed, i)`` alone, so a
    sweep across loss rates delivers the surviving frames at identical
    times and stays comparable frame-for-frame.

    Counters (also exported as ``wan.sent/delivered/lost/retransmits``
    telemetry, labelled by link name) let ``pipeline_report()`` close the
    conservation ledger across WAN hops.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 1.5e6,  # a T1, period-appropriate
        latency: float = 0.060,
        jitter: float = 0.030,
        loss_rate: float = 0.0,
        seed: int = 0,
        name: str = "wan0",
        telemetry=None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.name = name
        loss_ss, jitter_ss = np.random.SeedSequence(seed).spawn(2)
        self._loss_rng = np.random.default_rng(loss_ss)
        self._jitter_rng = np.random.default_rng(jitter_ss)
        self._free_at = 0.0
        self.faults = None
        self._rx_cache: Dict[object, _WanRx] = {}
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.retransmits = 0
        self.bytes_sent = 0
        tel = telemetry if telemetry is not None else get_telemetry()
        self.telemetry = tel
        self._c_sent = tel.counter(f"wan.sent[{name}]")
        self._c_delivered = tel.counter(f"wan.delivered[{name}]")
        self._c_lost = tel.counter(f"wan.lost[{name}]")
        self._c_retx = tel.counter(f"wan.retransmits[{name}]")

    def set_fault_injector(self, faults) -> None:
        """Interpose a :class:`~repro.net.faults.FaultInjector` on this
        link's deliveries (GE bursty loss, duplication, corruption,
        bounded reorder, jitter — the full LAN fault chain, on a WAN pipe).

        The injector must be dedicated to this link: its counters feed
        this link's ``in_flight`` arithmetic and the per-hop conservation
        budget, both of which would be wrong if another link shared them.
        """
        if faults is not None and getattr(faults, "links", None):
            raise ValueError(
                f"FaultInjector {faults.name!r} already attached elsewhere; "
                "WAN links need a dedicated injector"
            )
        self.faults = faults
        self._rx_cache.clear()

    @property
    def in_flight(self) -> int:
        """Frames serialised but neither delivered nor lost yet.

        With a fault injector attached, copies it killed are not coming
        and copies it minted will arrive beyond ``sent`` — both adjust
        the balance so quiescence still reads zero.
        """
        base = self.sent - self.delivered - self.lost
        if self.faults is not None:
            base += self.faults.stats.duplicated - self.faults.stats.lost
        return base

    def send(
        self,
        payload: bytes,
        deliver: Callable[[bytes], None],
        retransmit: bool = False,
    ) -> bool:
        """Queue ``payload``; ``deliver(payload)`` fires at arrival time.

        Returns False when the loss draw killed the frame (the caller —
        e.g. a :class:`WanHop` — may want to account the loss by packet
        type), True when delivery was scheduled.
        """
        now = self.sim.now
        tx_time = len(payload) * 8 / self.bandwidth_bps
        start = max(now, self._free_at)
        self._free_at = start + tx_time
        self.sent += 1
        self.bytes_sent += len(payload)
        self._c_sent.inc()
        if retransmit:
            self.retransmits += 1
            self._c_retx.inc()
        # the jitter draw happens for *every* frame, before the loss draw
        # and from its own stream — a lost frame consumes its jitter value
        # so the survivors' delivery times are loss-rate-invariant
        jit = self._jitter_rng.uniform(0.0, self.jitter) if self.jitter else 0.0
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            self.lost += 1
            self._c_lost.inc()
            return False
        delay = (start + tx_time - now) + self.latency + jit
        if self.faults is not None:
            rx = self._rx_cache.get(deliver)
            if rx is None:
                rx = self._rx_cache[deliver] = _WanRx(self, deliver)
            self.faults.deliver(
                rx,
                Datagram(
                    src_ip=self.name, src_port=0,
                    dst_ip=self.name, dst_port=0, payload=payload,
                ),
                delay,
            )
        else:
            self.sim.schedule(delay, self._deliver, payload, deliver)
        return True

    def _deliver(self, payload: bytes, deliver: Callable[[bytes], None]):
        self.delivered += 1
        self._c_delivered.inc()
        deliver(payload)

    def reset(self) -> None:
        """Cold-start the sender-side serialisation queue.

        The queue is state in the sending node's RAM: when that node
        crashes and restarts, the backlog dies with it.  Without this, a
        restarted relay would inherit a stale future ``_free_at`` and
        delay every post-restart frame behind ghosts of the old backlog.
        """
        self._free_at = 0.0


@dataclass
class WanHopStats:
    data_sent: int = 0        # data frames offered to the link
    data_lost: int = 0        # data frames the loss draw killed
    nacks_sent: int = 0       # NACK messages over the reverse path
    retransmitted: int = 0    # frames re-sent from the retransmit ring
    recovered: int = 0        # gap positions filled before the deadline
    abandoned: int = 0        # gap positions given up on (skipped)
    stale_dropped: int = 0    # arrivals behind the resequencer, discarded
    corrupt_dropped: int = 0  # arrivals rejected by the parser (mangled)


class WanHop:
    """One parent→child hop of the relay tree: a :class:`WanLink` plus a
    selectable loss-recovery ladder.

    ``recovery`` picks the policy:

    * ``"none"`` — pass-through: frames arrive downstream in whatever
      order jitter produced and the LAN's conceal/dedupe policy deals
      with it.
    * ``"nack"`` — the **sender** keeps a bounded ring of the last
      ``retransmit_buffer`` data frames; the **receiver** resequences,
      NACKs missing seqs once over the reverse path after ``nack_delay``
      of natural-reordering grace, and abandons each gap position after
      ``recover_timeout``.
    * ``"fec"`` — the sender runs a :class:`~repro.net.fec.FecEncoder`
      (``fec_k`` data / ``fec_r`` parity / ``fec_interleave`` lanes) and
      the receiver a :class:`~repro.net.fec.FecReassembler`; repaired
      frames are injected into the resequencer in order.  **Zero reverse
      traffic**: no NACKs are ever sent, so the policy works where the
      reverse path is slow, lossy, or absent (§6's internet-radio case).
    * ``"fec+nack"`` — the full ladder: FEC repairs first; holes the
      parity horizon could not cover fall through to the NACK ring
      (``nack_delay`` defaults to the FEC flush horizon so the reverse
      path is only exercised for FEC's failures); whatever remains is
      abandoned after ``recover_timeout`` and concealed downstream.

    Control and announce packets bypass the resequencer — they are
    idempotent anchors, and holding them would only delay re-anchoring.
    Parity frames are hop-local: consumed here, never forwarded, so FEC
    overhead on one hop is invisible to the rest of the tree.
    ``nack=True`` is accepted as a back-compat alias for
    ``recovery="nack"``.
    """

    def __init__(
        self,
        link: WanLink,
        deliver: Callable[[bytes], None],
        nack: bool = False,
        recovery: Optional[str] = None,
        retransmit_buffer: int = 64,
        nack_delay: Optional[float] = None,
        recover_timeout: Optional[float] = None,
        fec_k: int = 4,
        fec_r: int = 1,
        fec_interleave: int = 1,
        fec_flush_timeout: float = 0.25,
        fec_window: int = 256,
        name: str = "",
    ):
        if recovery is None:
            recovery = "nack" if nack else "none"
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery={recovery!r} not one of {RECOVERY_POLICIES}"
            )
        self.link = link
        self.sim = link.sim
        self.recovery = recovery
        #: NACK messages enabled (kept as a public bool for callers that
        #: predate the ladder)
        self.nack = recovery in ("nack", "fec+nack")
        self._fec_on = recovery in ("fec", "fec+nack")
        self._resequencing = recovery != "none"
        self.retransmit_buffer = retransmit_buffer
        #: grace before NACKing: jitter reordering for a NACK-only hop;
        #: for the full ladder, additionally the FEC horizon — parity
        #: gets its chance before the reverse path is used
        if nack_delay is not None:
            self.nack_delay = nack_delay
        elif recovery == "fec+nack":
            self.nack_delay = fec_flush_timeout + max(link.jitter, 0.005)
        else:
            self.nack_delay = max(link.jitter, 0.005)
        #: per gap position: how long from detection until we skip it
        if recover_timeout is not None:
            self.recover_timeout = recover_timeout
        elif recovery == "fec":
            # no reverse path: the gap either repairs within the parity
            # horizon (group fill bounded by the encoder flush timer,
            # plus one forward trip) or it never will
            self.recover_timeout = (
                fec_flush_timeout + link.latency + link.jitter + 0.05
            )
        else:
            # NACK grace + reverse path + retransmitted forward path
            self.recover_timeout = (
                self.nack_delay + 2 * link.latency + link.jitter + 0.01
            )
        self.name = name or f"hop:{link.name}"
        self.stats = WanHopStats()
        self.fec = FecStats()
        self._deliver_cb = deliver
        #: the relay this hop feeds (set by the system builder; used for
        #: subtree-scaled conservation budgets)
        self.child = None
        # -- sender side (lives in the parent node's RAM) --
        self._ring: "OrderedDict[int, bytes]" = OrderedDict()
        self._tx_epoch: Optional[int] = None
        self._encoder: Optional[FecEncoder] = None
        if self._fec_on:
            self._encoder = FecEncoder(
                self.sim, self._send_parity,
                k=fec_k, r=fec_r, interleave=fec_interleave,
                flush_timeout=fec_flush_timeout, stats=self.fec,
            )
        # -- receiver side (lives in the child node's RAM) --
        self._rx_epoch: Optional[int] = None
        self._next: Optional[int] = None   # next data seq owed downstream
        self._hold: Dict[int, bytes] = {}  # parked post-gap frames
        self._missing: Dict[int, float] = {}  # gap seq -> abandon deadline
        self._gen = 0  # invalidates scheduled NACK/deadline callbacks
        self._reassembler: Optional[FecReassembler] = None
        if self._fec_on:
            self._reassembler = FecReassembler(
                stats=self.fec, window=fec_window,
            )

    @property
    def pending(self) -> int:
        """Data frames parked in the resequencer right now."""
        return len(self._hold)

    # -- sender side -----------------------------------------------------------

    def send(self, wire: bytes) -> bool:
        hdr = peek_header(wire)
        is_data = hdr is not None and hdr[0] == TYPE_DATA
        if is_data:
            self.stats.data_sent += 1
            if self.nack:
                _, _, seq, epoch = hdr
                if epoch != self._tx_epoch:
                    # a new incarnation restarts its own seq space; the
                    # old ring could only feed it wrong-epoch frames
                    self._ring.clear()
                    self._tx_epoch = epoch
                self._ring[seq] = bytes(wire)
                while len(self._ring) > self.retransmit_buffer:
                    self._ring.popitem(last=False)
        ok = self.link.send(wire, self._arrive)
        if is_data and not ok:
            self.stats.data_lost += 1
        if is_data and self._encoder is not None:
            # the encoder sees every data frame *offered* (even ones the
            # loss draw killed — that is the point), after the member
            # itself is on the wire so parity always trails its group
            _, channel_id, seq, epoch = hdr
            self._encoder.on_data(channel_id, seq, epoch, wire)
        return ok

    def _send_parity(self, wire: bytes) -> None:
        # parity rides the same link and loss process as data but is
        # hop-local: the far end consumes it, repairs, and forwards only
        # repaired *data* frames
        self.link.send(wire, self._arrive)

    def _do_retransmit(self, seqs, gen: int) -> None:
        if gen != self._gen:
            return
        for seq in seqs:
            wire = self._ring.get(seq)
            if wire is not None:
                self.stats.retransmitted += 1
                self.link.send(wire, self._arrive_retransmit, retransmit=True)

    def reset_sender(self) -> None:
        """The sending node cold-started: its retransmit ring, open FEC
        groups, and the link's serialisation backlog died with it."""
        self._ring.clear()
        self._tx_epoch = None
        if self._encoder is not None:
            self._encoder.reset()
        self.link.reset()

    # -- receiver side ---------------------------------------------------------

    def _arrive(self, wire: bytes) -> None:
        self._ingest(wire, retransmit=False)

    def _arrive_retransmit(self, wire: bytes) -> None:
        self._ingest(wire, retransmit=True)

    def _ingest(self, wire: bytes, retransmit: bool) -> None:
        hdr = peek_header(wire)
        if hdr is None:
            # a corrupted frame that no longer reads as one of ours dies
            # here, counted, instead of poisoning the relay
            self.stats.corrupt_dropped += 1
            return
        ptype, channel_id, seq, epoch = hdr
        if ptype == TYPE_FEC:
            self._on_parity(wire)
            return
        if not self._resequencing:
            self._deliver_cb(wire)
            return
        if ptype != TYPE_DATA:
            self._deliver_cb(wire)
            return
        if self._reassembler is not None:
            # buffer for future parity; any groups this frame completes
            # repair *now*, and the repairs (earlier seqs) are injected
            # before this frame so the resequencer sees natural order
            for fixed in self._reassembler.on_data(
                channel_id, seq, epoch, wire
            ):
                fhdr = peek_header(fixed)
                self._resequence(fixed, fhdr[2], fhdr[3], retransmit=False)
        self._resequence(wire, seq, epoch, retransmit)

    def _on_parity(self, wire: bytes) -> None:
        if self._reassembler is None:
            # a parity frame on a hop not running FEC (policy mismatch
            # across a restart): consumed and useless by definition
            self.fec.wasted += 1
            return
        try:
            pkt = parse_packet(wire)
        except ProtocolError:
            # body crc (or framing) rejected it — a corrupt parity frame
            # never gets near a repair
            self.stats.corrupt_dropped += 1
            return
        for fixed in self._reassembler.on_parity(pkt):
            fhdr = peek_header(fixed)
            self._resequence(fixed, fhdr[2], fhdr[3], retransmit=False)

    def _resequence(
        self, wire: bytes, seq: int, epoch: int, retransmit: bool
    ) -> None:
        if epoch != self._rx_epoch:
            if retransmit:
                # a replay can only describe the past: a late retransmit
                # from a dead epoch must never flush the live
                # resequencer's state or regress its epoch
                self.stats.stale_dropped += 1
                return
            self._flush_all()
            self._rx_epoch = epoch
        if self._next is None:
            if retransmit:
                # never anchor a cold resequencer on a retransmit: it is
                # the one frame guaranteed to be behind the live stream
                # (a restart-during-recovery would re-anchor at a stale
                # seq and abandon its way forward through a phantom gap)
                self.stats.stale_dropped += 1
                return
            self._deliver_cb(wire)
            self._next = (seq + 1) % SEQ_MOD
            return
        d = seq_delta(seq, self._next)
        if d >= SEQ_MOD // 2:
            # behind the resequencer: a late original whose gap was
            # already abandoned, or a retransmit racing its own original
            self.stats.stale_dropped += 1
            return
        if d == 0:
            if self._missing.pop(seq, None) is not None:
                self.stats.recovered += 1
            self._deliver_cb(wire)
            self._next = (seq + 1) % SEQ_MOD
            self._drain()
            return
        # ahead of a gap: park it and account what is now known missing
        if seq in self._hold:
            self.stats.stale_dropped += 1  # duplicate of a parked frame
            return
        if self._missing.pop(seq, None) is not None:
            self.stats.recovered += 1
        self._hold[seq] = wire
        self._register_gap(d)
        self._drain()

    def _register_gap(self, d: int) -> None:
        """Track the gap positions in ``[_next, _next + d)``."""
        # the sender's ring only holds retransmit_buffer frames: a wider
        # gap (e.g. across relay downtime) is unrecoverable up front —
        # skip the hopeless prefix instead of NACKing into the void
        hopeless = max(0, d - self.retransmit_buffer)
        for _ in range(hopeless):
            if self._next in self._hold or self._next in self._missing:
                break
            self.stats.abandoned += 1
            self._next = (self._next + 1) % SEQ_MOD
            d -= 1
        now = self.sim.now
        deadline = now + self.recover_timeout
        fresh = []
        cursor = self._next
        for _ in range(d):
            if cursor not in self._hold and cursor not in self._missing:
                self._missing[cursor] = deadline
                fresh.append(cursor)
            cursor = (cursor + 1) % SEQ_MOD
        if fresh:
            if self.nack:
                self.sim.schedule(
                    self.nack_delay, self._nack_check, tuple(fresh),
                    self._gen,
                )
            # FEC-only hops still need the abandon deadline — repair or
            # not, the stream must keep moving with zero reverse traffic
            self.sim.schedule(
                self.recover_timeout, self._deadline_check, self._gen
            )

    def _nack_check(self, seqs, gen: int) -> None:
        if gen != self._gen:
            return
        still = tuple(s for s in seqs if s in self._missing)
        if not still:
            return
        self.stats.nacks_sent += 1
        # the NACK rides the reverse path: one propagation delay, then
        # the sender replays whatever its bounded ring still holds
        self.sim.schedule(
            self.link.latency, self._do_retransmit, still, gen
        )

    def _deadline_check(self, gen: int) -> None:
        if gen != self._gen:
            return
        self._drain()

    def _drain(self) -> None:
        """Deliver everything owed downstream, in order, skipping gap
        positions whose recovery deadline has passed."""
        now = self.sim.now
        while True:
            nxt = self._next
            if nxt in self._hold:
                wire = self._hold.pop(nxt)
                self._deliver_cb(wire)
                self._next = (nxt + 1) % SEQ_MOD
            elif nxt in self._missing and now >= self._missing[nxt]:
                del self._missing[nxt]
                self.stats.abandoned += 1
                self._next = (nxt + 1) % SEQ_MOD
            else:
                break
        # bound the parking lot: if the hold buffer outgrew the ring,
        # give up on the frontmost gap and flush forward
        while len(self._hold) > self.retransmit_buffer:
            nxt = self._next
            if nxt in self._missing:
                del self._missing[nxt]
                self.stats.abandoned += 1
            elif nxt in self._hold:
                self._deliver_cb(self._hold.pop(nxt))
            self._next = (nxt + 1) % SEQ_MOD

    def _flush_all(self) -> None:
        """Epoch boundary: drain held frames of the dying epoch in seq
        order, abandon its gaps, and restart clean."""
        base = self._next
        if base is not None:
            for seq in sorted(self._hold, key=lambda s: seq_delta(s, base)):
                self._deliver_cb(self._hold[seq])
        self.stats.abandoned += len(self._missing)
        self._hold.clear()
        self._missing.clear()
        self._next = None
        self._gen += 1

    def reset_receiver(self) -> None:
        """The receiving node cold-started: parked frames and gap state
        were in its RAM.  Held frames were delivered by the link but die
        here, so they count as resequencer drops for the ledger."""
        self.stats.stale_dropped += len(self._hold)
        self._hold.clear()
        self._missing.clear()
        self._next = None
        self._rx_epoch = None
        self._gen += 1
        if self._reassembler is not None:
            self._reassembler.reset()


@dataclass
class RelayStats:
    uplink_rx: int = 0        # well-formed packets heard from the uplink
    forwarded: int = 0        # packets fanned out (once per packet)
    lan_sent: int = 0         # packets re-multicast onto a leaf LAN
    dropped_down: int = 0     # arrivals while crashed or hung
    garbage_rx: int = 0       # arrivals that failed the header peek/parse
    filler_data: int = 0      # fallback data blocks minted
    filler_controls: int = 0  # fallback control packets minted
    fallbacks: int = 0        # times the local fallback source started
    standdowns: int = 0       # times the uplink reappeared and won
    restarts: int = 0         # cold restarts after a crash


class RelayNode:
    """A tandem-free forwarder in the WAN relay tree.

    Ingests wire packets from its uplink hop, classifies them from the
    common header alone (zero-copy, no payload decode), and fans the
    compressed bytes out unchanged to its downlink hops and — for leaf
    relays — onto a local LAN multicast group.

    **Fallback** (``fallback=True``): a cadence watchdog declares the
    uplink dead after ``fallback_timeout`` of silence and starts a local
    filler source — synthetic silence blocks plus control packets that
    continue the uplink's playout schedule under a fresh epoch, so leaf
    speakers re-anchor once and keep a live (if silent) stream instead
    of underrunning indefinitely.  When an uplink control reappears the
    relay stands down immediately, Liquidsoap-style, and from then on
    maps upstream epochs forward (serial-16) past the fallback epoch so
    downstream listeners re-anchor onto the recovered stream.

    Epoch mapping is per channel and *identity by default*: a relay that
    never interposed a fallback forwards bytes verbatim, which keeps a
    lossless multi-tier tree bit-identical to a single-tier one.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "relay0",
        fallback: bool = False,
        fallback_timeout: float = 1.5,
        check_interval: float = 0.25,
        control_interval: float = 1.0,
        telemetry=None,
    ):
        if fallback_timeout <= 0:
            raise ValueError("fallback_timeout must be positive")
        self.sim = sim
        self.name = name
        self.fallback_enabled = fallback
        self.fallback_timeout = fallback_timeout
        self.check_interval = check_interval
        self.control_interval = control_interval
        self.alive = True
        self.frozen = False
        self.stats = RelayStats()
        tel = telemetry if telemetry is not None else get_telemetry()
        self.telemetry = tel
        self._c_fwd = tel.counter(f"relay.forwarded[{name}]")
        self._c_filler = tel.counter(f"relay.filler[{name}]")
        self.downlinks: List[WanHop] = []
        self.leaf_lans: List = []           # LeafLan records (system glue)
        self.uplink: Optional[WanHop] = None
        self._lan_egress: Dict[int, List[Callable[[bytes], None]]] = {}
        self._cadence = CadenceMonitor(fallback_timeout)
        # -- per-channel relay RAM (all lost on a cold restart) --
        self._epoch_offset: Dict[int, int] = {}
        self._last_control: Dict[int, ControlPacket] = {}
        self._ctrl_heard_at: Dict[int, float] = {}
        self._last_data_wire: Dict[int, bytes] = {}
        self._fb_epoch: Dict[int, int] = {}   # channel -> fallback epoch
        self._fb_state: Dict[int, dict] = {}  # live filler loop state
        self._fallback_active = False
        self._timer_gen = 0
        if fallback:
            self._arm_watchdog()

    # -- wiring ----------------------------------------------------------------

    def add_downlink(self, hop: WanHop) -> WanHop:
        self.downlinks.append(hop)
        return hop

    def attach_lan(
        self, channel_id: int, egress: Callable[[bytes], None]
    ) -> None:
        """Re-multicast ``channel_id``'s packets through ``egress`` (a
        bound socket's sendto on the leaf segment).  A relay can feed
        several leaf LANs the same channel — egresses accumulate."""
        self._lan_egress.setdefault(channel_id, []).append(egress)

    # -- the forwarding path ---------------------------------------------------

    def ingest(self, wire: bytes) -> None:
        """Uplink delivery callback — the relay's entire receive path."""
        if not self.alive or self.frozen:
            self.stats.dropped_down += 1
            return
        hdr = peek_header(wire)
        if hdr is None:
            self.stats.garbage_rx += 1
            return
        ptype, channel_id, _seq, epoch = hdr
        self.stats.uplink_rx += 1
        self._cadence.heard(self.sim.now)
        if ptype == TYPE_CONTROL:
            try:
                ctl = parse_packet(wire)
            except ProtocolError:
                self.stats.garbage_rx += 1
                return
            self._on_uplink_control(ctl)
        elif ptype == TYPE_DATA:
            # remembered only as filler geometry (pcm size per block);
            # the payload itself is never decoded
            self._last_data_wire[channel_id] = wire
        off = self._epoch_offset.get(channel_id, 0)
        if off:
            wire = restamp_epoch(wire, (epoch + off) % EPOCH_MOD)
        self.stats.forwarded += 1
        self._c_fwd.inc()
        self._fan_out(wire, channel_id)

    def _fan_out(self, wire: bytes, channel_id: int) -> None:
        for hop in self.downlinks:
            hop.send(wire)
        for egress in self._lan_egress.get(channel_id, ()):
            egress(wire)
            self.stats.lan_sent += 1

    def _on_uplink_control(self, ctl: ControlPacket) -> None:
        cid = ctl.channel_id
        self._last_control[cid] = ctl
        self._ctrl_heard_at[cid] = self.sim.now
        if self._fallback_active:
            self._exit_fallback()
        fb = self._fb_epoch.get(cid)
        if fb is not None:
            # the uplink is back: unless it already outran our fallback
            # epoch (say, a real failover bumped it), shift its epochs
            # forward so this control lands *newer* than the filler and
            # every downstream listener re-anchors onto the live stream
            out = (ctl.epoch + self._epoch_offset.get(cid, 0)) % EPOCH_MOD
            if not epoch_newer(out, fb):
                self._epoch_offset[cid] = (fb + 1 - ctl.epoch) % EPOCH_MOD
            del self._fb_epoch[cid]

    # -- fallback source -------------------------------------------------------

    def _arm_watchdog(self) -> None:
        self.sim.schedule(self.check_interval, self._watch, self._timer_gen)

    def _watch(self, gen: int) -> None:
        if gen != self._timer_gen:
            return
        if (
            self.alive and not self.frozen and not self._fallback_active
            and self._cadence.silent(self.sim.now)
        ):
            self._enter_fallback()
        self.sim.schedule(self.check_interval, self._watch, gen)

    def _enter_fallback(self) -> None:
        if not self._last_control:
            # data-only cadence so far: no parameters to mint filler
            # from — keep checking, the first control arms us
            return
        self._fallback_active = True
        self.stats.fallbacks += 1
        self.telemetry.tracer.instant(
            "relay.fallback", track=self.name,
            silence=self._cadence.silence(self.sim.now),
        )
        now = self.sim.now
        for cid, ctl in self._last_control.items():
            cur = (ctl.epoch + self._epoch_offset.get(cid, 0)) % EPOCH_MOD
            fb = self._fb_epoch.get(cid)
            if fb is None or epoch_newer(cur, fb):
                fb = (cur + 1) % EPOCH_MOD
            else:
                # repeated fallbacks without an intervening uplink
                # control keep minting newer incarnations
                fb = (fb + 1) % EPOCH_MOD
            self._fb_epoch[cid] = fb
            last_data = self._last_data_wire.get(cid)
            pcm = None
            if last_data is not None:
                try:
                    pkt = parse_packet(last_data)
                    pcm = pkt.pcm_bytes or len(pkt.payload)
                except ProtocolError:
                    pcm = None
            if not pcm:
                pcm = ctl.params.bytes_for(0.5)
            # continue the uplink's playout schedule: position now =
            # the last control's position plus elapsed time since
            pos = ctl.stream_pos + (now - self._ctrl_heard_at[cid])
            self._fb_state[cid] = {
                "ctl": ctl,
                "fb": fb,
                "pcm": pcm,
                "dur": ctl.params.duration_of(pcm),
                "play_at": pos,
                "anchor": (self._ctrl_heard_at[cid], ctl.stream_pos),
                "dseq": 0,
                "cseq": 0,
            }
            self.sim.schedule(0.0, self._filler_control, cid, self._timer_gen)
            self.sim.schedule(0.0, self._filler_data, cid, self._timer_gen)

    def _filler_control(self, cid: int, gen: int) -> None:
        if gen != self._timer_gen or not self._fallback_active:
            return
        st = self._fb_state[cid]
        if self.alive and not self.frozen:
            st["cseq"] = (st["cseq"] + 1) % SEQ_MOD
            heard_at, base_pos = st["anchor"]
            ctl = st["ctl"]
            packet = ControlPacket(
                channel_id=cid,
                seq=st["cseq"],
                wall_clock=self.sim.now,
                stream_pos=base_pos + (self.sim.now - heard_at),
                params=ctl.params,
                codec_id=ctl.codec_id,
                quality=ctl.quality,
                name=ctl.name,
                epoch=st["fb"],
            )
            self.stats.filler_controls += 1
            self._fan_out(packet.encode(), cid)
        self.sim.schedule(self.control_interval, self._filler_control, cid, gen)

    def _filler_data(self, cid: int, gen: int) -> None:
        if gen != self._timer_gen or not self._fallback_active:
            return
        st = self._fb_state[cid]
        if self.alive and not self.frozen:
            st["dseq"] = (st["dseq"] + 1) % SEQ_MOD
            packet = DataPacket(
                channel_id=cid,
                seq=st["dseq"],
                play_at=st["play_at"],
                payload=b"",
                codec_id=CodecID.RAW,
                synthetic=True,
                pcm_bytes=st["pcm"],
                epoch=st["fb"],
            )
            st["play_at"] += st["dur"]
            self.stats.filler_data += 1
            self._c_filler.inc()
            self._fan_out(packet.encode(), cid)
        self.sim.schedule(st["dur"], self._filler_data, cid, gen)

    def _exit_fallback(self) -> None:
        self._fallback_active = False
        self._fb_state.clear()
        self.stats.standdowns += 1
        self.telemetry.tracer.instant("relay.standdown", track=self.name)
        # invalidate the filler loops, then re-arm the watchdog fresh
        self._timer_gen += 1
        if self.fallback_enabled:
            self._arm_watchdog()

    # -- node faults -----------------------------------------------------------

    def crash(self) -> None:
        """Abrupt death: stop forwarding, timers die, RAM is toast (the
        wipe is observable at :meth:`restart`, the cold boot)."""
        if not self.alive:
            return
        self.alive = False
        self.frozen = False
        self._fallback_active = False
        self._timer_gen += 1

    def hang(self) -> None:
        """Wedged: drops everything on the floor without exiting."""
        self.frozen = True

    def unhang(self) -> None:
        self.frozen = False

    def restart(self) -> None:
        """Cold start after a crash (or a driven recovery from a hang).

        All relay RAM is lost: remembered controls, epoch offsets,
        fallback bookkeeping, the downlinks' retransmit rings and
        serialisation backlogs, and the uplink's resequencer state.  A
        restarted relay that had interposed a fallback epoch can no
        longer map it — recovery then comes from *below*: any child
        relay (or leaf) with its own fallback source re-maps the
        regressed epochs when its uplink cadence returns.
        """
        self.alive = True
        self.frozen = False
        self._fallback_active = False
        self._timer_gen += 1
        self._epoch_offset.clear()
        self._last_control.clear()
        self._ctrl_heard_at.clear()
        self._last_data_wire.clear()
        self._fb_epoch.clear()
        self._fb_state.clear()
        self._cadence.reset()
        self.stats.restarts += 1
        for hop in self.downlinks:
            hop.reset_sender()
        if self.uplink is not None:
            self.uplink.reset_receiver()
        if self.fallback_enabled:
            self._arm_watchdog()
