"""A point-to-point WAN path with Internet-like behaviour.

The rebroadcaster's upstream (Figure 1): a Real-Audio-style server on the
public Internet feeding the proxy machine.  Unlike the LAN, the WAN has
real latency, jitter, and loss — the "network problems associated with
transmission over WAN links" (§6) that the ES system deliberately keeps
out of the LAN protocol by terminating them at the rebroadcaster.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.core import Simulator


class WanLink:
    """Unidirectional WAN pipe delivering payloads to a callback.

    Serialisation at ``bandwidth_bps``, propagation ``latency``, uniform
    ``jitter``, independent ``loss_rate``.  Reordering can emerge naturally
    from jitter (delivery time = queue-exit + jittered propagation).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 1.5e6,  # a T1, period-appropriate
        latency: float = 0.060,
        jitter: float = 0.030,
        loss_rate: float = 0.0,
        seed: int = 0,
        name: str = "wan0",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._free_at = 0.0
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.bytes_sent = 0

    def send(self, payload: bytes, deliver: Callable[[bytes], None]) -> None:
        """Queue ``payload``; ``deliver(payload)`` fires at arrival time."""
        now = self.sim.now
        tx_time = len(payload) * 8 / self.bandwidth_bps
        start = max(now, self._free_at)
        self._free_at = start + tx_time
        self.sent += 1
        self.bytes_sent += len(payload)
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.lost += 1
            return
        delay = (start + tx_time - now) + self.latency
        if self.jitter:
            delay += self._rng.uniform(0.0, self.jitter)
        self.sim.schedule(delay, self._deliver, payload, deliver)

    def _deliver(self, payload: bytes, deliver: Callable[[bytes], None]):
        self.delivered += 1
        deliver(payload)
