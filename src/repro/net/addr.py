"""Addressing helpers and wire-size accounting."""

from __future__ import annotations

#: Ethernet framing cost per packet: preamble+SFD (8) + header (14) +
#: FCS (4) + minimum inter-frame gap (12)
ETHER_OVERHEAD = 38

#: IPv4 (20) + UDP (8) headers
UDP_IP_OVERHEAD = 28

#: Ethernet payload MTU
MTU = 1500


def is_multicast(ip: str) -> bool:
    """True for IPv4 class-D addresses (224.0.0.0/4)."""
    try:
        first = int(ip.split(".", 1)[0])
    except (ValueError, AttributeError):
        return False
    return 224 <= first <= 239


def is_broadcast(ip: str) -> bool:
    return ip == "255.255.255.255"


def wire_bytes(payload_len: int) -> int:
    """Bytes a UDP payload occupies on the Ethernet wire, including
    fragmentation into MTU-sized IP fragments when oversized."""
    if payload_len <= MTU - UDP_IP_OVERHEAD:
        return payload_len + UDP_IP_OVERHEAD + ETHER_OVERHEAD
    # rough fragmentation model: each fragment repeats IP+Ethernet costs
    frag_payload = MTU - 20
    fragments = (payload_len + 8 + frag_payload - 1) // frag_payload
    return payload_len + 8 + fragments * (20 + ETHER_OVERHEAD)
