"""A switched Ethernet with IGMP snooping.

The paper's protocol assumes one shared segment (§2.3); by 2005 most
campus LANs were already switched.  A switch changes the economics the
benchmarks measure:

* unicast flows on different ports no longer contend for one wire;
* multicast reaches **only the ports whose hosts joined the group**
  (IGMP snooping) instead of every drop cable — without snooping a
  switch floods multicast like broadcast, which is also modelled.

The class exposes the same ``attach``/``detach``/``transmit``/``add_tap``
surface as :class:`~repro.net.segment.EthernetSegment`, so NICs, stacks,
and monitors work unchanged on either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.metrics.telemetry import get_telemetry
from repro.net.addr import is_broadcast, is_multicast
from repro.net.segment import Datagram, FANOUT_BOUNDS, deliver_batch
from repro.sim.core import Simulator


@dataclass
class SwitchStats:
    frames_switched: int = 0
    frames_flooded: int = 0
    frames_dropped: int = 0
    #: forwarded copies lost to random wire loss (per receiver port)
    receiver_losses: int = 0
    bytes_in: int = 0
    per_port_bytes_out: Dict[str, int] = field(default_factory=dict)


class SwitchedSegment:
    """A store-and-forward switch; every attached NIC gets its own port.

    Each port has independent ingress and egress serialisation at
    ``port_bps``.  ``igmp_snooping`` prunes multicast to joined ports;
    when off, multicast floods like broadcast.
    """

    def __init__(
        self,
        sim: Simulator,
        port_bps: float = 100e6,
        latency: float = 20e-6,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        igmp_snooping: bool = True,
        max_egress_backlog: int = 200,
        seed: int = 0,
        name: str = "switch0",
        telemetry=None,
        batch_delivery: bool = True,
    ):
        if port_bps <= 0:
            raise ValueError("port bandwidth must be positive")
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        tel = self.telemetry
        self._c_switched = tel.counter(f"switch.frames_switched[{name}]")
        self._c_flooded = tel.counter(f"switch.frames_flooded[{name}]")
        self._c_dropped = tel.counter(f"switch.frames_dropped[{name}]")
        self._c_bytes = tel.counter(f"switch.bytes_in[{name}]")
        self.port_bps = float(port_bps)
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.igmp_snooping = igmp_snooping
        self.max_egress_backlog = max_egress_backlog
        self.name = name
        #: one delivery event per (frame, shared delay) group instead of
        #: one per receiver port; falls back per-receiver under jitter or
        #: an attached fault injector (see EthernetSegment.batch_delivery)
        self.batch_delivery = batch_delivery
        self.stats = SwitchStats()
        self._rng = np.random.default_rng(seed)
        self._nics: List = []
        self._ingress_free: Dict[int, float] = {}
        self._egress_free: Dict[int, float] = {}
        self._taps: List[Callable[[Datagram], None]] = []
        #: optional FaultInjector interposed on forwarded copies
        self.faults = None

    def set_fault_injector(self, faults) -> None:
        """Route every forwarded copy through ``faults`` (see
        :class:`~repro.net.faults.FaultInjector`); ``None`` detaches."""
        self.faults = faults

    # -- EthernetSegment-compatible surface -----------------------------------

    def attach(self, nic) -> None:
        self._nics.append(nic)

    def detach(self, nic) -> None:
        if nic in self._nics:
            self._nics.remove(nic)

    def add_tap(self, fn: Callable[[Datagram], None]) -> None:
        self._taps.append(fn)

    def transmit(self, dgram: Datagram, sender=None) -> bool:
        now = self.sim.now
        tx_time = dgram.wire_size * 8 / self.port_bps

        # ingress: the sender's own drop cable serialises
        in_port = id(sender) if sender is not None else 0
        in_start = max(now, self._ingress_free.get(in_port, 0.0))
        in_done = in_start + tx_time
        self._ingress_free[in_port] = in_done
        self.stats.bytes_in += dgram.wire_size
        self._c_bytes.inc(dgram.wire_size)

        receivers = self._select_ports(dgram, sender)
        for tap in self._taps:
            tap(dgram)

        tel = self.telemetry
        tracer = tel.tracer
        batching = (
            self.batch_delivery and self.faults is None and not self.jitter
        )
        #: delivery-time -> receivers sharing it (idle equal-speed ports
        #: all land on one instant, so multicast fan-out usually builds a
        #: single group); insertion order preserves per-receiver order
        groups: Dict[float, List] = {}
        delivered_any = False
        for nic in receivers:
            out_port = id(nic)
            egress_free = self._egress_free.get(out_port, 0.0)
            backlog = max(0.0, egress_free - now) / max(tx_time, 1e-12)
            if backlog > self.max_egress_backlog:
                self.stats.frames_dropped += 1
                self._c_dropped.inc()
                tracer.instant("switch.drop", track=f"{self.name}:{nic.name}",
                               backlog=int(backlog))
                continue
            out_start = max(in_done, egress_free)
            out_done = out_start + tx_time
            self._egress_free[out_port] = out_done
            if tel.enabled:
                # one complete event per forwarded copy: queueing +
                # serialisation on the egress port (the forward is
                # scheduled, not executed inline, so timing is explicit)
                tracer.complete("switch.forward", out_start, tx_time,
                                track=f"{self.name}:{nic.name}")
                tel.set_gauge(f"switch.egress_backlog[{self.name}]", backlog)
            self.stats.per_port_bytes_out[nic.name] = (
                self.stats.per_port_bytes_out.get(nic.name, 0)
                + dgram.wire_size
            )
            cohort = getattr(nic, "cohort", None)
            if cohort is not None:
                # the cohort's port: one egress serialisation (it is one
                # drop cable), then the per-member fate loop in the same
                # draw order the per-object loop below uses
                delay = out_done - now + self.latency
                self._forward_cohort(cohort, dgram, delay)
                delivered_any = True
                continue
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.stats.receiver_losses += 1
                continue
            delay = out_done - now + self.latency
            if batching:
                groups.setdefault(delay, []).append(nic)
                delivered_any = True
                continue
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            if self.faults is not None:
                self.faults.deliver(nic, dgram, delay)
            else:
                self.sim.schedule_transient(delay, nic.deliver, dgram)
            delivered_any = True
        for delay, nics in groups.items():
            if len(nics) == 1:
                self.sim.schedule_transient(delay, nics[0].deliver, dgram)
            else:
                self.sim.schedule_transient(delay, deliver_batch, nics, dgram)
            if tel.enabled:
                tel.observe("net.fanout_batch", len(nics),
                            bounds=FANOUT_BOUNDS)
        return delivered_any or not receivers

    def _forward_cohort(self, cohort, dgram: Datagram, base_delay: float
                        ) -> None:
        """Per-member copy fates for a cohort port (see
        ``EthernetSegment._transmit_cohort`` for the ordering contract)."""
        represented = 0
        for tok in cohort.tokens:
            if self.loss_rate and self._rng.random() < self.loss_rate:
                self.stats.receiver_losses += 1
                if tok.state == 0:
                    cohort.mark_divergent(tok, dgram, reason="wire-loss")
                continue
            delay = base_delay
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            if self.faults is not None:
                if tok.state == 0 and delay == base_delay:
                    fate = self.faults._copy_fate(tok, dgram, delay)
                    if fate == "clean":
                        represented += 1
                    else:
                        cohort.mark_divergent(tok, dgram, reason=fate)
                else:
                    if tok.state == 0:
                        cohort.mark_divergent(tok, dgram, reason="jitter")
                    self.faults.deliver(tok, dgram, delay)
            elif tok.state == 0 and delay == base_delay:
                represented += 1
            else:
                if tok.state == 0:
                    cohort.mark_divergent(tok, dgram, reason="jitter")
                self.sim.schedule_transient(delay, tok.deliver, dgram)
        cohort.finish_frame(dgram, base_delay, represented)

    # -- forwarding decision ------------------------------------------------------

    def _select_ports(self, dgram: Datagram, sender) -> List:
        candidates = [n for n in self._nics if n is not sender]
        if is_broadcast(dgram.dst_ip):
            self.stats.frames_flooded += 1
            self._c_flooded.inc()
            return [n for n in candidates if n.vlan == dgram.vlan]
        if is_multicast(dgram.dst_ip):
            if self.igmp_snooping:
                self.stats.frames_switched += 1
                self._c_switched.inc()
                return [
                    n for n in candidates
                    if n.vlan == dgram.vlan and (
                        dgram.dst_ip in n.groups or n.promiscuous
                    )
                ]
            self.stats.frames_flooded += 1
            self._c_flooded.inc()
            return [n for n in candidates if n.vlan == dgram.vlan]
        # unicast: forward only to the owning port (the "MAC table")
        matches = [
            n for n in candidates
            if n.vlan == dgram.vlan and (n.ip == dgram.dst_ip or n.promiscuous)
        ]
        if matches:
            self.stats.frames_switched += 1
            self._c_switched.inc()
            return matches
        # unknown destination: flood, like a real switch
        self.stats.frames_flooded += 1
        self._c_flooded.inc()
        return [n for n in candidates if n.vlan == dgram.vlan]

    @property
    def flooded_fraction(self) -> float:
        total = self.stats.frames_switched + self.stats.frames_flooded
        if total == 0:
            return 0.0
        return self.stats.frames_flooded / total
