"""Wire format of the Ethernet Speaker protocol.

Design requirements from §2.3:

* **Control packets** are sent "at regular intervals with the configuration
  of the audio driver", carrying a producer wall-clock timestamp; a speaker
  "has to wait till it receives a control packet before it can start
  playing".  The producer therefore keeps no per-speaker state and the
  speakers never transmit.
* **Data packets** carry "a timestamp ... that instructs the ES when it
  should play the data", expressed relative to the control packets' wall
  clock (§3.2).
* **Announce packets** implement the MFTP-style out-of-band catalog the
  paper plans in §4.3: a separate multicast group lists the channels being
  transmitted so speakers can tune without listening to every stream.

All integers little-endian; one packet per UDP datagram.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.audio.params import AudioEncoding, AudioParams
from repro.codec.base import CodecID

MAGIC = 0xE55A
VERSION = 1

TYPE_CONTROL = 1
TYPE_DATA = 2
TYPE_ANNOUNCE = 3
# the ATDECC-style control plane (after IEEE 1722.1): discovery,
# enumeration, and connection management ride the same wire format
TYPE_ADP = 4    # entity advertisement (AVAILABLE / DEPARTING / DISCOVER)
TYPE_AECP = 5   # entity command/response (descriptor enumeration)
TYPE_ACMP = 6   # talker->listener connect/disconnect transactions
# application-layer FEC for WAN hops: one parity frame protecting a
# sliding group of data frames, repaired receiver-side with zero reverse
# traffic (the paper's §6 internet-radio links are exactly where a NACK
# reverse path is slow, lossy, or absent)
TYPE_FEC = 7

# magic, version, type, channel_id, seq, epoch — the epoch identifies the
# producer incarnation feeding the channel: a warm-standby takeover (or an
# operator-forced restart) increments it so speakers re-anchor their clock
# and sequence state instead of misreading the new producer as drift
_COMMON = struct.Struct("<HBBHIH")
_CONTROL = struct.Struct("<ddBIBBB")  # wall_clock, stream_pos, enc, rate,
                                      # channels, codec, quality
_DATA = struct.Struct("<dBBI")  # play_at, codec, flags, pcm_bytes
_ANNOUNCE_HEAD = struct.Struct("<dB")  # valid_time lease, entry count
_ANNOUNCE_ENTRY = struct.Struct("<H4sHB")  # channel_id, ip, port, codec
# message_type, entity_kind, entity_id, valid_time, available_index,
# channel_id served (0 = untuned), mgmt_port
_ADP = struct.Struct("<BBQdHHH")
# message_type, command, status, target entity_id, payload length
_AECP = struct.Struct("<BBBQH")
# message_type, status, talker entity_id, listener entity_id, stream
# group ip, stream port, channel_id
_ACMP = struct.Struct("<BBQQ4sHH")
# body_crc guards the whole FEC body (a corrupt parity frame must never
# be allowed to "repair" anything); then base_seq, k data members, r
# parity frames for the group, this frame's parity_index, the interleave
# stride between member seqs, and the parity payload length
_FEC_CRC = struct.Struct("<I")
_FEC_GEOM = struct.Struct("<IBBBBH")   # base_seq, k, r, parity_index,
                                       # stride, payload_len
_FEC_MEMBER = struct.Struct("<HI")     # member wire length, member crc32

# pre-composed whole-header structs for the hot pack/parse paths: one
# ``pack`` call per data packet instead of two packs plus a concatenation
_DATA_HEADER = struct.Struct("<HBBHIHdBBI")      # _COMMON + _DATA
_CONTROL_HEADER = struct.Struct("<HBBHIHddBIBBB")  # _COMMON + _CONTROL

#: DataPacket.flags bit: payload is synthetic filler of the right size, not
#: a decodable codec block (used by pure-performance scenarios)
FLAG_SYNTHETIC = 0x01

# -- ADP message types (after IEEE 1722.1 §6.2) -------------------------------
ADP_AVAILABLE = 0    # "I exist": refreshes the valid_time lease
ADP_DEPARTING = 1    # clean shutdown: listeners drop the entity immediately
ADP_DISCOVER = 2     # controller probe: entities re-advertise now

#: ADP entity kinds
ENTITY_SPEAKER = 1
ENTITY_REBROADCASTER = 2
ENTITY_STANDBY = 3
ENTITY_RELAY = 4
ENTITY_CONTROLLER = 5

# -- AECP message/command/status codes ----------------------------------------
AECP_COMMAND = 0
AECP_RESPONSE = 1
AECP_READ_DESCRIPTOR = 0
AECP_OK = 0
AECP_NO_SUCH_DESCRIPTOR = 1

# -- ACMP message/status codes ------------------------------------------------
ACMP_CONNECT_RX_COMMAND = 0
ACMP_CONNECT_RX_RESPONSE = 1
ACMP_DISCONNECT_RX_COMMAND = 2
ACMP_DISCONNECT_RX_RESPONSE = 3
ACMP_OK = 0
ACMP_REFUSED = 1


class ProtocolError(Exception):
    """Malformed or foreign packet."""


@dataclass(frozen=True)
class ControlPacket:
    """Periodic stream configuration + the producer's wall clock.

    ``wall_clock`` is the producer's clock when the packet was built;
    ``stream_pos`` is the playback position (seconds of audio sent so far).
    Together they anchor every speaker to the same playout schedule.
    """

    channel_id: int
    seq: int
    wall_clock: float
    stream_pos: float
    params: AudioParams
    codec_id: CodecID = CodecID.RAW
    quality: int = 10
    name: str = ""
    epoch: int = 0

    def encode(self) -> bytes:
        name_bytes = self.name.encode("utf-8")[:255]
        return (
            _CONTROL_HEADER.pack(
                MAGIC,
                VERSION,
                TYPE_CONTROL,
                self.channel_id,
                self.seq,
                self.epoch,
                self.wall_clock,
                self.stream_pos,
                self.params.encoding.wire_id,
                self.params.sample_rate,
                self.params.channels,
                int(self.codec_id),
                self.quality,
            )
            + bytes([len(name_bytes)])
            + name_bytes
        )


@dataclass(frozen=True)
class DataPacket:
    """One block of (possibly compressed) audio plus its play deadline."""

    channel_id: int
    seq: int
    play_at: float
    #: ``bytes`` when built locally; parsing returns a read-only
    #: ``memoryview`` into the received datagram (zero-copy) — the two
    #: compare equal and both feed every decoder unchanged
    payload: bytes
    codec_id: CodecID = CodecID.RAW
    synthetic: bool = False
    pcm_bytes: int = 0
    epoch: int = 0

    def encode(self) -> bytes:
        flags = FLAG_SYNTHETIC if self.synthetic else 0
        header = _DATA_HEADER.pack(
            MAGIC, VERSION, TYPE_DATA, self.channel_id, self.seq,
            self.epoch, self.play_at, int(self.codec_id), flags,
            self.pcm_bytes,
        )
        payload = self.payload
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        return header + payload


@dataclass(frozen=True)
class AnnounceEntry:
    channel_id: int
    group_ip: str
    port: int
    codec_id: CodecID
    name: str


@dataclass(frozen=True)
class AnnouncePacket:
    """Out-of-band channel catalog (§4.3, after MFTP).

    ``valid_time`` is the in-band lease: how long a listener may treat
    the advertised entries as live without a refresh.  0.0 means the
    announcer made no promise and the listener falls back to its local
    expiry policy (the pre-lease behaviour).
    """

    seq: int
    entries: Tuple[AnnounceEntry, ...] = ()
    epoch: int = 0
    valid_time: float = 0.0

    def encode(self) -> bytes:
        parts = [
            _COMMON.pack(
                MAGIC, VERSION, TYPE_ANNOUNCE, 0, self.seq, self.epoch
            ),
            _ANNOUNCE_HEAD.pack(self.valid_time, len(self.entries)),
        ]
        for entry in self.entries:
            ip_bytes = bytes(int(x) for x in entry.group_ip.split("."))
            name_bytes = entry.name.encode("utf-8")[:255]
            parts.append(
                _ANNOUNCE_ENTRY.pack(
                    entry.channel_id, ip_bytes, entry.port,
                    int(entry.codec_id),
                )
            )
            parts.append(bytes([len(name_bytes)]))
            parts.append(name_bytes)
        return b"".join(parts)


@dataclass(frozen=True)
class AdpPacket:
    """ADP-style entity advertisement (after IEEE 1722.1 §6.2).

    Every fleet node — speaker, rebroadcaster, standby, relay —
    multicasts ``ENTITY_AVAILABLE`` on the discovery group with a
    ``valid_time`` lease; a node that stops refreshing ages out of every
    registry at lease expiry with no supervisor's help.
    ``available_index`` is a wrapping u16 serial number bumped on every
    advertisement (and on state changes: boot, restart, failover epoch
    bump), so stale or replayed advertisements can never resurrect an
    older view of the entity.
    """

    entity_id: int
    message_type: int = ADP_AVAILABLE
    entity_kind: int = ENTITY_SPEAKER
    valid_time: float = 0.0
    available_index: int = 0
    channel_id: int = 0       # channel currently served/tuned; 0 = none
    mgmt_port: int = 0        # where AECP/ACMP commands reach this entity
    name: str = ""
    seq: int = 0
    epoch: int = 0

    def encode(self) -> bytes:
        name_bytes = self.name.encode("utf-8")[:255]
        return (
            _COMMON.pack(MAGIC, VERSION, TYPE_ADP, 0, self.seq, self.epoch)
            + _ADP.pack(
                self.message_type,
                self.entity_kind,
                self.entity_id,
                self.valid_time,
                self.available_index % AVAILABLE_INDEX_MOD,
                self.channel_id,
                self.mgmt_port,
            )
            + bytes([len(name_bytes)])
            + name_bytes
        )


@dataclass(frozen=True)
class AecpPacket:
    """AECP-style entity command/response (after IEEE 1722.1 §9).

    The one implemented command is ``READ_DESCRIPTOR``: the controller
    asks an entity for its descriptor (channels served, gain, room, LAN)
    and the entity answers with an archive blob in ``payload``.  The
    common-header ``seq`` is the transaction id responses echo.
    """

    entity_id: int            # target (command) / responder (response)
    message_type: int = AECP_COMMAND
    command: int = AECP_READ_DESCRIPTOR
    status: int = AECP_OK
    payload: bytes = b""
    seq: int = 0
    epoch: int = 0

    def encode(self) -> bytes:
        payload = self.payload
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        return (
            _COMMON.pack(MAGIC, VERSION, TYPE_AECP, 0, self.seq, self.epoch)
            + _AECP.pack(
                self.message_type,
                self.command,
                self.status,
                self.entity_id,
                len(payload),
            )
            + payload
        )


@dataclass(frozen=True)
class AcmpPacket:
    """ACMP-style connection management (after IEEE 1722.1 §8).

    A tune/retune is a transaction: the controller sends
    ``CONNECT_RX_COMMAND`` naming the talker's stream (group/port/
    channel) to the listener's management port; the listener joins and
    answers ``CONNECT_RX_RESPONSE`` with a status.  The common-header
    ``seq`` is the transaction id; the controller retries on a seeded
    timeout until it hears the echo.
    """

    message_type: int
    talker_entity_id: int = 0
    listener_entity_id: int = 0
    group_ip: str = "0.0.0.0"
    port: int = 0
    channel_id: int = 0
    status: int = ACMP_OK
    seq: int = 0
    epoch: int = 0

    def encode(self) -> bytes:
        ip_bytes = bytes(int(x) for x in self.group_ip.split("."))
        return _COMMON.pack(
            MAGIC, VERSION, TYPE_ACMP, 0, self.seq, self.epoch
        ) + _ACMP.pack(
            self.message_type,
            self.status,
            self.talker_entity_id,
            self.listener_entity_id,
            ip_bytes,
            self.port,
            self.channel_id,
        )


@dataclass(frozen=True)
class FecPacket:
    """One parity frame protecting an interleaved group of data frames.

    The group is fully self-describing: members are the ``k`` data seqs
    ``base_seq + t * stride`` (mod 2**32) of the same channel and epoch,
    and the record table carries each member's wire length and crc32 so
    the receiver can (a) verify buffered copies before using them in a
    repair and (b) verify every reconstruction before injecting it.  The
    parity payload is the coefficient-weighted GF(256) sum of the
    members' whole wire images, zero-padded to the longest; ``r`` parity
    rows with distinct ``parity_index`` are emitted per group, and any
    surviving subset repairs up to that many erasures.  ``body_crc``
    covers everything after itself so a corrupted parity frame is
    rejected at parse time and can never corrupt a repair.

    The common-header ``seq`` mirrors ``base_seq`` so serial-number
    machinery (epoch restamping, header peeks) works unchanged.
    """

    channel_id: int
    base_seq: int
    k: int
    r: int
    parity_index: int
    stride: int
    member_sizes: Tuple[int, ...]
    member_crcs: Tuple[int, ...]
    payload: bytes
    epoch: int = 0

    @property
    def seq(self) -> int:
        return self.base_seq

    def member_seqs(self) -> Tuple[int, ...]:
        return tuple(
            (self.base_seq + t * self.stride) % SEQ_MOD
            for t in range(self.k)
        )

    def encode(self) -> bytes:
        payload = self.payload
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        body = (
            _FEC_GEOM.pack(
                self.base_seq, self.k, self.r, self.parity_index,
                self.stride, len(payload),
            )
            + b"".join(
                _FEC_MEMBER.pack(size, crc)
                for size, crc in zip(self.member_sizes, self.member_crcs)
            )
            + payload
        )
        return (
            _COMMON.pack(
                MAGIC, VERSION, TYPE_FEC, self.channel_id,
                self.base_seq, self.epoch,
            )
            + _FEC_CRC.pack(zlib.crc32(body))
            + body
        )


Packet = Union[
    ControlPacket, DataPacket, AnnouncePacket,
    AdpPacket, AecpPacket, AcmpPacket, FecPacket,
]


def parse_packet(data: bytes) -> Packet:
    """Decode any protocol packet; raises :class:`ProtocolError` on junk.

    Zero-copy: the input (``bytes`` or any C-contiguous buffer) is read
    in place via ``unpack_from`` with absolute offsets — no body slice is
    materialised, and a :class:`DataPacket`'s ``payload`` is a read-only
    ``memoryview`` into the datagram rather than a copy.
    """
    total = len(data)
    if total < _COMMON.size:
        raise ProtocolError(f"short packet ({total} bytes)")
    magic, version, ptype, channel_id, seq, epoch = _COMMON.unpack_from(
        data, 0
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic:#x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported version {version}")
    try:
        if ptype == TYPE_CONTROL:
            return _parse_control(
                channel_id, seq, epoch, data, _COMMON.size, total
            )
        if ptype == TYPE_DATA:
            return _parse_data(
                channel_id, seq, epoch, data, _COMMON.size, total
            )
        if ptype == TYPE_ANNOUNCE:
            return _parse_announce(seq, epoch, data, _COMMON.size, total)
        if ptype == TYPE_ADP:
            return _parse_adp(seq, epoch, data, _COMMON.size, total)
        if ptype == TYPE_AECP:
            return _parse_aecp(seq, epoch, data, _COMMON.size, total)
        if ptype == TYPE_ACMP:
            return _parse_acmp(seq, epoch, data, _COMMON.size, total)
        if ptype == TYPE_FEC:
            return _parse_fec(
                channel_id, seq, epoch, data, _COMMON.size, total
            )
    except (struct.error, ValueError, IndexError) as err:
        raise ProtocolError(f"malformed packet: {err}") from None
    raise ProtocolError(f"unknown packet type {ptype}")


def _parse_control(
    channel_id: int, seq: int, epoch: int, data, base: int, total: int
) -> ControlPacket:
    (wall_clock, stream_pos, enc, rate, channels, codec, quality) = (
        _CONTROL.unpack_from(data, base)
    )
    offset = base + _CONTROL.size
    if offset >= total:
        raise ProtocolError(
            "control packet length mismatch: missing name length byte"
        )
    name_len = data[offset]
    # strict framing: the name length byte must describe exactly the rest
    # of the datagram, so a truncated packet can never parse as a shorter
    # name and trailing junk can never ride along unnoticed
    if total != offset + 1 + name_len:
        raise ProtocolError(
            f"control packet length mismatch: name_len={name_len}, "
            f"{total - offset - 1} bytes follow"
        )
    name = str(memoryview(data)[offset + 1 : offset + 1 + name_len], "utf-8")
    return ControlPacket(
        channel_id=channel_id,
        seq=seq,
        wall_clock=wall_clock,
        stream_pos=stream_pos,
        params=AudioParams(AudioEncoding.from_wire_id(enc), rate, channels),
        codec_id=CodecID(codec),
        quality=quality,
        name=name,
        epoch=epoch,
    )


def _parse_data(
    channel_id: int, seq: int, epoch: int, data, base: int, total: int
) -> DataPacket:
    play_at, codec, flags, pcm_bytes = _DATA.unpack_from(data, base)
    view = memoryview(data)
    if not view.readonly:
        view = view.toreadonly()
    return DataPacket(
        channel_id=channel_id,
        seq=seq,
        play_at=play_at,
        payload=view[base + _DATA.size :],
        codec_id=CodecID(codec),
        synthetic=bool(flags & FLAG_SYNTHETIC),
        pcm_bytes=pcm_bytes,
        epoch=epoch,
    )


def _parse_announce(
    seq: int, epoch: int, data, base: int, total: int
) -> AnnouncePacket:
    valid_time, count = _ANNOUNCE_HEAD.unpack_from(data, base)
    offset = base + _ANNOUNCE_HEAD.size
    view = memoryview(data)
    entries = []
    for _ in range(count):
        channel_id, ip_bytes, port, codec = _ANNOUNCE_ENTRY.unpack_from(
            data, offset
        )
        offset += _ANNOUNCE_ENTRY.size
        if offset >= total:
            raise ProtocolError(
                "announce entry truncated: missing name length byte"
            )
        name_len = data[offset]
        if total < offset + 1 + name_len:
            raise ProtocolError(
                f"announce entry truncated inside name ({name_len} "
                f"declared, {total - offset - 1} present)"
            )
        name = str(view[offset + 1 : offset + 1 + name_len], "utf-8")
        offset += 1 + name_len
        entries.append(
            AnnounceEntry(
                channel_id=channel_id,
                group_ip=".".join(str(b) for b in ip_bytes),
                port=port,
                codec_id=CodecID(codec),
                name=name,
            )
        )
    if offset != total:
        # strict framing, like control packets: the count byte and the
        # per-entry name lengths promise every byte of the datagram, so
        # trailing junk can never ride along unnoticed
        raise ProtocolError(
            f"announce packet length mismatch: {total - offset} trailing "
            "bytes"
        )
    return AnnouncePacket(
        seq=seq, entries=tuple(entries), epoch=epoch, valid_time=valid_time
    )


def _parse_adp(
    seq: int, epoch: int, data, base: int, total: int
) -> AdpPacket:
    (
        message_type, entity_kind, entity_id, valid_time,
        available_index, channel_id, mgmt_port,
    ) = _ADP.unpack_from(data, base)
    offset = base + _ADP.size
    if offset >= total:
        raise ProtocolError("adp packet truncated: missing name length byte")
    name_len = data[offset]
    if total != offset + 1 + name_len:
        raise ProtocolError(
            f"adp packet length mismatch: name_len={name_len}, "
            f"{total - offset - 1} bytes follow"
        )
    name = str(memoryview(data)[offset + 1 : offset + 1 + name_len], "utf-8")
    return AdpPacket(
        entity_id=entity_id,
        message_type=message_type,
        entity_kind=entity_kind,
        valid_time=valid_time,
        available_index=available_index,
        channel_id=channel_id,
        mgmt_port=mgmt_port,
        name=name,
        seq=seq,
        epoch=epoch,
    )


def _parse_aecp(
    seq: int, epoch: int, data, base: int, total: int
) -> AecpPacket:
    message_type, command, status, entity_id, payload_len = (
        _AECP.unpack_from(data, base)
    )
    offset = base + _AECP.size
    if total != offset + payload_len:
        raise ProtocolError(
            f"aecp packet length mismatch: payload_len={payload_len}, "
            f"{total - offset} bytes follow"
        )
    return AecpPacket(
        entity_id=entity_id,
        message_type=message_type,
        command=command,
        status=status,
        payload=bytes(memoryview(data)[offset:total]),
        seq=seq,
        epoch=epoch,
    )


def _parse_acmp(
    seq: int, epoch: int, data, base: int, total: int
) -> AcmpPacket:
    if total != base + _ACMP.size:
        raise ProtocolError(
            f"acmp packet length mismatch: {total - base} body bytes, "
            f"{_ACMP.size} expected"
        )
    (
        message_type, status, talker_entity_id, listener_entity_id,
        ip_bytes, port, channel_id,
    ) = _ACMP.unpack_from(data, base)
    return AcmpPacket(
        message_type=message_type,
        talker_entity_id=talker_entity_id,
        listener_entity_id=listener_entity_id,
        group_ip=".".join(str(b) for b in ip_bytes),
        port=port,
        channel_id=channel_id,
        status=status,
        seq=seq,
        epoch=epoch,
    )


def _parse_fec(
    channel_id: int, seq: int, epoch: int, data, base: int, total: int
) -> FecPacket:
    if total < base + _FEC_CRC.size + _FEC_GEOM.size:
        raise ProtocolError(
            f"fec packet length mismatch: {total - base} body bytes, "
            f">= {_FEC_CRC.size + _FEC_GEOM.size} expected"
        )
    (body_crc,) = _FEC_CRC.unpack_from(data, base)
    body_start = base + _FEC_CRC.size
    # integrity before structure: a corrupt parity frame must be rejected
    # outright, never partially decoded into something a repair could use
    if zlib.crc32(memoryview(data)[body_start:total]) != body_crc:
        raise ProtocolError("fec packet body crc mismatch")
    base_seq, k, r, parity_index, stride, payload_len = (
        _FEC_GEOM.unpack_from(data, body_start)
    )
    if k < 1 or r < 1 or parity_index >= r or stride < 1:
        raise ProtocolError(
            f"fec geometry invalid: k={k} r={r} "
            f"parity_index={parity_index} stride={stride}"
        )
    if base_seq != seq:
        raise ProtocolError("fec base_seq does not mirror header seq")
    offset = body_start + _FEC_GEOM.size
    # strict framing: exactly k member records then exactly payload_len
    # parity bytes, nothing more
    if total != offset + k * _FEC_MEMBER.size + payload_len:
        raise ProtocolError(
            f"fec packet length mismatch: k={k}, payload_len={payload_len},"
            f" {total - offset} bytes follow the geometry"
        )
    sizes = []
    crcs = []
    for _ in range(k):
        size, crc = _FEC_MEMBER.unpack_from(data, offset)
        sizes.append(size)
        crcs.append(crc)
        offset += _FEC_MEMBER.size
    if payload_len and max(sizes) != payload_len:
        raise ProtocolError(
            "fec parity length must equal the longest member wire image"
        )
    return FecPacket(
        channel_id=channel_id,
        base_seq=base_seq,
        k=k,
        r=r,
        parity_index=parity_index,
        stride=stride,
        member_sizes=tuple(sizes),
        member_crcs=tuple(crcs),
        payload=bytes(memoryview(data)[offset:total]),
        epoch=epoch,
    )


_PEEK = struct.Struct("<HBB")  # magic, version, type


def peek_type(data) -> Optional[int]:
    """Packet type byte if ``data`` starts like one of ours, else None.

    A constant-cost probe for accounting paths (e.g. classifying what a
    dead receiver's socket dropped) that must not pay for a full parse.
    """
    if len(data) < _COMMON.size:
        return None
    magic, version, ptype = _PEEK.unpack_from(data, 0)
    if magic != MAGIC or version != VERSION:
        return None
    return ptype


def peek_header(data) -> Optional[Tuple[int, int, int, int]]:
    """``(type, channel_id, seq, epoch)`` if ``data`` starts like one of
    ours, else None.

    The tandem-free relay forwarding path: a WAN relay classifies and
    routes a wire packet from the common header alone — constant cost,
    zero copies, no payload decode (§6 keeps WAN pathologies out of the
    LAN protocol; the relay tree keeps them out of the *codec* too).
    """
    if len(data) < _COMMON.size:
        return None
    magic, version, ptype, channel_id, seq, epoch = _COMMON.unpack_from(
        data, 0
    )
    if magic != MAGIC or version != VERSION:
        return None
    return ptype, channel_id, seq, epoch


#: byte offset of the u16 epoch inside ``_COMMON`` ("<HBBHIH": magic@0,
#: version@2, type@3, channel_id@4, seq@6, epoch@10)
_EPOCH_OFFSET = 10
_EPOCH_FIELD = struct.Struct("<H")


def restamp_epoch(wire, epoch: int) -> bytes:
    """A copy of ``wire`` with the common-header epoch replaced.

    Relays that interposed a fallback incarnation map upstream epochs
    into their own serial-16 space on the way down; the payload — and
    everything else in the packet — passes through untouched.
    """
    buf = bytearray(wire)
    _EPOCH_FIELD.pack_into(buf, _EPOCH_OFFSET, epoch % EPOCH_MOD)
    return bytes(buf)


# -- serial-number arithmetic (RFC 1982 style) --------------------------------

SEQ_MOD = 1 << 32     # data/control ``seq`` is a wrapping u32
EPOCH_MOD = 1 << 16   # producer ``epoch`` is a wrapping u16


def seq_delta(new: int, old: int) -> int:
    """Forward distance from ``old`` to ``new`` in u32 serial space.

    0 means a duplicate; a value >= 2**31 means ``new`` is *behind*
    ``old`` (stale/reordered); anything else is the forward step, so a
    producer that wraps past 2**32 - 1 keeps a monotonic stream.
    """
    return (new - old) % SEQ_MOD


def epoch_newer(new: int, old: int) -> bool:
    """True when ``new`` is a later producer incarnation than ``old``."""
    return new != old and (new - old) % EPOCH_MOD < EPOCH_MOD // 2


#: ADP ``available_index`` lives in the same wrapping u16 serial space as
#: the producer epoch, and freshness uses the *same* comparison — the
#: discovery property suite pins ``index_newer`` to ``epoch_newer`` so the
#: two serial-16 rules can never drift apart
AVAILABLE_INDEX_MOD = EPOCH_MOD
index_newer = epoch_newer
