"""The Ethernet Speaker system itself (the paper's contribution).

Three elements, as in the abstract:

* the **rebroadcaster** (:mod:`repro.core.rebroadcaster`) — converts the
  audio output of an unmodified application (read from the VAD master) into
  a multicast network stream with configuration and timing information;
* the **Ethernet Speakers** (:mod:`repro.core.speaker`) — receive-only
  devices that turn the stream back into sound;
* the **protocol** (:mod:`repro.core.protocol`) — periodic control packets
  carrying the audio configuration and a producer wall clock, plus data
  packets with per-block play timestamps, which together keep every speaker
  on a LAN playing the same thing at the same time (§2.3, §3.2).

:class:`~repro.core.system.EthernetSpeakerSystem` assembles a complete
deployment (LAN + producer + speakers) in a few lines; see
``examples/quickstart.py``.
"""

from repro.core.channel import ChannelConfig
from repro.core.cohort import CohortMember, SpeakerCohort
from repro.core.failover import CadenceMonitor, FailoverStats, WarmStandby
from repro.core.protocol import (
    AnnouncePacket,
    ControlPacket,
    DataPacket,
    ProtocolError,
    epoch_newer,
    parse_packet,
    seq_delta,
)
from repro.core.ratelimiter import RateLimiter
from repro.core.rebroadcaster import Rebroadcaster
from repro.core.speaker import EthernetSpeaker
from repro.core.system import EthernetSpeakerSystem, LeafLan

__all__ = [
    "ChannelConfig",
    "ControlPacket",
    "DataPacket",
    "AnnouncePacket",
    "ProtocolError",
    "parse_packet",
    "epoch_newer",
    "seq_delta",
    "RateLimiter",
    "Rebroadcaster",
    "EthernetSpeaker",
    "EthernetSpeakerSystem",
    "SpeakerCohort",
    "CohortMember",
    "WarmStandby",
    "FailoverStats",
    "CadenceMonitor",
    "LeafLan",
]
