"""The rebroadcaster's rate limiter (§3.1).

"The solution is to instruct the rebroadcaster to sleep for the exact
duration of time that it would take to actually play the data ... The
actual duration of this sleep is calculated using the various encoding
parameters such as the sample rate and precision."

The paper deliberately keeps this *out* of the VAD driver ("we did not want
to limit the functionality of the VAD by slowing it down unnecessarily"),
so it lives here as a user-level object the rebroadcaster consults.

The limiter is cumulative: it tracks where the stream *should* be rather
than sleeping per block, so rounding never drifts and a five-minute song
takes five minutes, exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.audio.params import AudioParams
from repro.metrics.telemetry import get_telemetry


class RateLimiter:
    """Paces PCM blocks to their playback rate.

    ``telemetry`` (optional) records every computed sleep into the
    ``ratelimiter.sleep`` histogram and tracks how far behind schedule
    the sender is in the ``ratelimiter.lag`` gauge; disabled telemetry
    costs two no-op calls per block.
    """

    def __init__(self, enabled: bool = True, telemetry=None):
        self.enabled = enabled
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._origin: Optional[float] = None
        self._stream_pos = 0.0  # seconds of audio released so far

    @property
    def stream_pos(self) -> float:
        """Seconds of audio admitted so far (the stream clock)."""
        return self._stream_pos

    def reset(self) -> None:
        self._origin = None
        self._stream_pos = 0.0

    def position_at(self, now: float) -> float:
        """The stream position that is *current* at wall time ``now``.

        This is what control packets advertise: a paced sender's position
        advances with the wall clock (capped by what has actually been
        released), so every control packet describes the same schedule no
        matter where between block boundaries it was emitted.
        """
        if self._origin is None:
            return 0.0
        return min(self._stream_pos, max(0.0, now - self._origin))

    def delay_before(self, nbytes: int, params: AudioParams, now: float) -> float:
        """Seconds the sender must sleep before releasing this block, and
        account the block as released.

        The block covering stream positions [p, p+d) may be released at
        origin + p; earlier release would outrun real hardware, later is
        fine (the limiter never delays a sender that is already behind).
        """
        if self._origin is None:
            self._origin = now
        release_at = self._origin + self._stream_pos
        self._stream_pos += params.duration_of(nbytes)
        self.telemetry.set_gauge("ratelimiter.lag", max(0.0, now - release_at))
        if not self.enabled:
            return 0.0
        delay = max(0.0, release_at - now)
        self.telemetry.observe("ratelimiter.sleep", delay)
        return delay
