"""The Audio Stream Rebroadcaster: VAD master -> multicast (§2.2, §2.3).

A deliberately *single-threaded* producer process — "the Rebroadcaster is
just a single-threaded process that collects audio from the master-side VAD
and delivers it to the LAN" — that:

* reads records from ``/dev/vadm``;
* paces them through the :class:`~repro.core.ratelimiter.RateLimiter`
  (without it, a whole MP3 leaves at wire speed and the speakers hear only
  the first few seconds — §3.1);
* compresses per the channel's policy (Vorbis-like for high-bit-rate
  channels, raw for low-rate ones — §2.2);
* multicasts data packets stamped with play times, interleaving control
  packets at a fixed interval so joining speakers can configure and
  synchronise without contacting anyone (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.audio.encodings import decode_samples
from repro.audio.params import AudioParams
from repro.codec.base import CodecID, get_codec
from repro.codec.cache import EncodeCache, EncodedBlock
from repro.codec.cost import DEFAULT_COSTS, estimated_ratio
from repro.core.channel import ChannelConfig
from repro.core.protocol import EPOCH_MOD, SEQ_MOD, ControlPacket, DataPacket
from repro.core.ratelimiter import RateLimiter
from repro.metrics.telemetry import DEFAULT_DEPTH_BUCKETS, get_telemetry
from repro.sim.process import Process, Sleep
from repro.sim.resources import QueueClosed


@dataclass
class RebroadcasterStats:
    control_sent: int = 0
    data_sent: int = 0
    send_failures: int = 0
    raw_bytes: int = 0
    sent_payload_bytes: int = 0
    records_in: int = 0
    suspended_blocks: int = 0
    suspended_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """sent / raw over *transmitted* blocks (1.0 = no compression).

        Edge reporting: before any block has been ingested the ratio is
        1.0 by convention (nothing has been altered).  When blocks were
        ingested but every one was suspended (``raw_bytes == 0`` with
        ``suspended_blocks > 0``) the ratio is 0.0 — nothing reached the
        wire, and reporting 1.0 here used to make a fully-suspended
        channel look like a healthy uncompressed one.  Suspended blocks
        are accounted in ``suspended_bytes`` and never skew the ratio of
        the blocks that were actually sent.
        """
        if self.raw_bytes == 0:
            return 0.0 if self.suspended_blocks else 1.0
        return self.sent_payload_bytes / self.raw_bytes


class Rebroadcaster:
    """One channel's producer.  Create, then :meth:`start`."""

    def __init__(
        self,
        machine,
        channel: ChannelConfig,
        control_interval: float = 1.0,
        rate_limit: bool = True,
        real_codec: bool = True,
        master_path: str = "/dev/vadm",
        authenticator=None,
        cost_model=None,
        telemetry=None,
        epoch: int = 0,
        encode_cache: Optional[EncodeCache] = None,
        batched_encode: bool = True,
    ):
        self.machine = machine
        self.channel = channel
        self.control_interval = control_interval
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.limiter = RateLimiter(enabled=rate_limit,
                                   telemetry=self.telemetry)
        self.real_codec = real_codec
        self.master_path = master_path
        self.authenticator = authenticator
        self.costs = cost_model or DEFAULT_COSTS
        #: station-wide :class:`~repro.codec.cache.EncodeCache` (or None):
        #: looped sources and same-source multi-channel setups reuse wire
        #: bytes instead of re-encoding.  Host-side only — the virtual
        #: CPU is charged the full encode cost before the lookup.
        self.encode_cache = encode_cache
        #: run the codecs' whole-block vectorised kernels (bit-identical
        #: to the scalar reference loops; see ``repro.codec.batch``)
        self.batched_encode = batched_encode
        self.stats = RebroadcasterStats()
        # cached instruments: one label per channel so system-level
        # conservation can sum with Telemetry.total(); with telemetry
        # disabled these are shared no-op singletons
        tel, label = self.telemetry, f"ch{channel.channel_id}"
        self._track = f"{machine.name}/rb"
        self._c_data = tel.counter(f"rebroadcaster.data_sent[{label}]")
        self._c_ctl = tel.counter(f"rebroadcaster.control_sent[{label}]")
        self._c_raw = tel.counter(f"rebroadcaster.raw_bytes[{label}]")
        self._c_wire = tel.counter(f"rebroadcaster.sent_bytes[{label}]")
        self._c_susp = tel.counter(f"rebroadcaster.suspended[{label}]")
        self._c_fail = tel.counter(f"rebroadcaster.send_failures[{label}]")
        #: frames per real encoder invocation — cache hits and synthetic
        #: estimates don't run the kernel, so they are not observed
        self._h_batch = tel.histogram(
            "origin.encode_batch", bounds=DEFAULT_DEPTH_BUCKETS
        )
        self.suspended = False
        #: producer incarnation stamped into every packet; a warm standby
        #: taking over (or an operator restarting the producer) bumps it
        #: so speakers re-anchor instead of reading the handover as drift
        self.epoch = epoch % EPOCH_MOD
        self._proc: Optional[Process] = None
        self._params: Optional[AudioParams] = None
        self._codec_id = CodecID.RAW
        self._encoder = None
        self._seq = 0
        self._ctl_seq = 0
        self._need_control = False
        self._last_control = float("-inf")
        #: WAN relay-tree taps: every wire packet (control and data) is
        #: teed here before LAN transmission — see :meth:`add_wan_tap`
        self._wan_taps: list = []

    def start(self) -> Process:
        """Spawn the producer process on its machine."""
        self._proc = self.machine.spawn(
            self._run(), name=f"{self.machine.name}/rebroadcaster"
        )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.alive

    def hang(self, freeze_cpu: bool = False) -> None:
        """Wedge the producer process (see ``Process.freeze``)."""
        if self._proc is not None and self._proc.alive:
            self._proc.freeze()
        if freeze_cpu:
            self.machine.cpu.halt()

    def unhang(self) -> None:
        self.machine.cpu.unhalt()
        if self._proc is not None:
            self._proc.thaw()

    def restart(self, epoch: Optional[int] = None) -> Process:
        """Restart a dead (or wedged) producer process.

        The new incarnation must not silently continue the old schedule:
        its epoch is bumped (or set to ``epoch``) so speakers re-anchor.
        The stream clock and the VAD backlog carry over — this is the
        same machine rebooting the producer daemon, not a new source.
        """
        self.machine.cpu.unhalt()
        if self._proc is not None and self._proc.alive:
            self._proc.kill()
        self.epoch = (self.epoch + 1 if epoch is None else epoch) % EPOCH_MOD
        self._need_control = True
        return self.start()

    def suspend(self) -> None:
        """§4.3 (MSNIP): stop transmitting while nobody listens.

        The stream clock keeps running (the source keeps playing into the
        VAD), so a later :meth:`resume` rejoins the live position and
        speakers resynchronise off the next control packet.
        """
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False
        self._need_control = True  # re-announce the configuration promptly

    # -- the single-threaded loop ---------------------------------------------------

    def _run(self):
        machine = self.machine
        fd = yield from machine.sys_open(self.master_path)
        sock = machine.net.socket()
        while True:
            try:
                record = yield from machine.sys_read(fd, 65536)
            except QueueClosed:
                return
            self.stats.records_in += 1
            if record.kind == "config":
                # do NOT announce yet: an application may configure long
                # before it produces audio (prebuffering radio clients).
                # The control packet goes out right before the first data
                # packet so speakers anchor on the actual schedule.
                self._configure(record.params)
                self._need_control = True
            else:
                yield from self._handle_data(sock, record.payload)

    def _configure(self, params: AudioParams) -> None:
        self._params = params
        self._codec_id = self.channel.effective_codec(params)
        self._encoder = None  # (re)built lazily per block geometry

    def _get_encoder(self, params: AudioParams, payload_len: int):
        """The encoder for the current block size.

        Small blocks (low sample rates, small device blocksizes) would
        drown in MDCT padding with CD-sized frames, so the frame size
        adapts: at most a quarter of the block, within [64, 512].
        """
        if self._codec_id == CodecID.RAW or not self.real_codec:
            return None
        if self._codec_id == CodecID.VORBIS_LIKE:
            frames = max(1, params.frames_of(payload_len))
            frame_size = 64
            while frame_size * 4 <= frames and frame_size < 512:
                frame_size *= 2
            if (
                self._encoder is None
                or self._encoder.frame_size != frame_size
            ):
                self._encoder = get_codec(
                    self._codec_id,
                    quality=self.channel.quality,
                    sample_rate=params.sample_rate,
                    frame_size=frame_size,
                    batched=self.batched_encode,
                )
        elif self._encoder is None:
            if self._codec_id == CodecID.MP3_LIKE:
                self._encoder = get_codec(
                    self._codec_id, batched=self.batched_encode
                )
            else:
                self._encoder = get_codec(self._codec_id)
        return self._encoder

    def _handle_data(self, sock, payload: bytes):
        machine = self.machine
        if self._params is None:
            # an application that never configured the device: adopt the
            # channel's default parameters and announce them
            self._configure(self.channel.params)
            self._need_control = True
        params = self._params
        tracer = self.telemetry.tracer
        # §3.1: sleep exactly as long as the block takes to play
        play_at = self.limiter.stream_pos
        delay = self.limiter.delay_before(len(payload), params, machine.sim.now)
        if delay > 0:
            wait = tracer.begin("ratelimiter.wait", track=self._track)
            yield Sleep(delay)
            tracer.end(wait)
        if self.suspended:
            # transmission suspended (no listeners): the stream clock
            # advanced above, the block itself goes nowhere
            self.stats.suspended_blocks += 1
            self.stats.suspended_bytes += len(payload)
            self._c_susp.inc()
            return
        if self._need_control:
            self._need_control = False
            yield from self._send_control(sock)
        enc = tracer.begin("packet.encode", track=self._track,
                           bytes=len(payload))
        wire_payload, synthetic = yield from self._compress(payload, params)
        tracer.end(enc, wire_bytes=len(wire_payload))
        self._seq = (self._seq + 1) % SEQ_MOD
        packet = DataPacket(
            channel_id=self.channel.channel_id,
            seq=self._seq,
            play_at=play_at,
            payload=wire_payload,
            codec_id=self._codec_id,
            synthetic=synthetic,
            pcm_bytes=len(payload),
            epoch=self.epoch,
        )
        ok = yield from self._send(sock, packet.encode())
        self.stats.data_sent += 1
        self.stats.raw_bytes += len(payload)
        self.stats.sent_payload_bytes += len(wire_payload)
        self._c_data.inc()
        self._c_raw.inc(len(payload))
        self._c_wire.inc(len(wire_payload))
        if not ok:
            self._c_fail.inc()
        else:
            tracer.flow_begin(
                (self.channel.channel_id, self._seq),
                "packet.flight", track=self._track,
            )
        if machine.sim.now - self._last_control >= self.control_interval:
            yield from self._send_control(sock)

    def _compress(self, payload: bytes, params: AudioParams):
        machine = self.machine
        codec_id = self._codec_id
        frames = params.frames_of(len(payload))
        cost = self.costs[codec_id]
        cycles = cost.encode_cycles(frames, self.channel.quality)
        if cycles > 0:
            yield machine.cpu.run(cycles, domain="user")
        if codec_id == CodecID.RAW:
            # passthrough: no encoder ran, nothing cacheable
            return payload, False
        encoder = self._get_encoder(params, len(payload))
        if encoder is not None:
            # the virtual CPU was charged the full encode above, so a
            # cache hit changes host wall-clock only — never sim time
            cache = self.encode_cache
            if cache is not None:
                key = EncodeCache.key_for(
                    payload, codec_id, params, self.channel.quality
                )
                entry = cache.get(key)
                if entry is not None:
                    return entry.wire, False
            samples = decode_samples(payload, params)
            self._h_batch.observe(frames)
            wire = encoder.encode_block(samples)
            if cache is not None:
                cache.put(key, EncodedBlock(wire=wire))
            return wire, False
        # synthetic size estimate (real_codec=False): not a function of
        # the payload bytes alone, so it must bypass the cache
        size = max(16, int(len(payload) * estimated_ratio(
            codec_id, self.channel.quality
        )))
        return bytes(size), True

    def _send_control(self, sock):
        if self._params is None:
            return
        self._ctl_seq = (self._ctl_seq + 1) % SEQ_MOD
        packet = ControlPacket(
            channel_id=self.channel.channel_id,
            seq=self._ctl_seq,
            wall_clock=self.machine.sim.now,
            stream_pos=self.limiter.position_at(self.machine.sim.now),
            params=self._params,
            codec_id=self._codec_id,
            quality=self.channel.quality,
            name=self.channel.name,
            epoch=self.epoch,
        )
        self._last_control = self.machine.sim.now
        yield from self._send(sock, packet.encode())
        self.stats.control_sent += 1
        self._c_ctl.inc()

    def add_wan_tap(self, tap) -> None:
        """Tee every outgoing wire packet to ``tap(wire)`` — the origin
        of a WAN relay tree (see :mod:`repro.net.wan`).

        The tap sees exactly the protocol bytes the LAN sees, *before*
        any MACsec-style authentication wrap (each LAN secures its own
        segment), so relays can forward them tandem-free — the payload
        is never decoded again until a speaker plays it.
        """
        self._wan_taps.append(tap)

    def _send(self, sock, wire: bytes):
        machine = self.machine
        for tap in self._wan_taps:
            tap(wire)
        if self.authenticator is not None:
            yield machine.cpu.run(
                self.authenticator.sign_cycles(len(wire)), domain="user"
            )
            wire = self.authenticator.wrap(wire)
        # sendto syscall: trap + copyin of the datagram
        cycles = machine.syscall_cycles + machine.copy_cycles_per_byte * len(wire)
        yield machine.cpu.run(cycles, domain="sys")
        ok = sock.sendto(wire, (self.channel.group_ip, self.channel.port))
        if not ok:
            self.stats.send_failures += 1
        return ok
