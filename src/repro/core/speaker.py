"""The Ethernet Speaker: a receive-only playback node (§2.3, §2.4, §3.2).

State machine per the paper: the speaker joins the channel's multicast
group and **waits for a control packet** (it cannot decode anything before
it knows the audio configuration); then for every data packet it computes a
local play deadline from the producer wall clock and the packet's play
timestamp, and

* **sleeps** if the data is early,
* **plays** if it is within the epsilon leeway,
* **throws the data away** if it is later than epsilon — "throwing away
  data up until the current wall time" (§3.2).

The speaker never transmits: the producer keeps no state about it, and any
number of speakers can tune in or out without anyone's cooperation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Deque, List, Optional, Set, Tuple

import numpy as np

from repro.audio.encodings import decode_samples, encode_samples
from repro.audio.params import AudioParams
from repro.codec.base import CodecID, get_codec
from repro.codec.cache import DecodeCache, DecodedBlock
from repro.codec.cost import DEFAULT_COSTS
from repro.core.protocol import (
    SEQ_MOD,
    TYPE_DATA,
    AnnouncePacket,
    ControlPacket,
    DataPacket,
    ProtocolError,
    epoch_newer,
    parse_packet,
    peek_type,
    seq_delta,
)
from repro.kernel.audio import AUDIO_SETINFO
from repro.metrics.telemetry import get_telemetry
from repro.sim.process import Process, ProcessKilled, Sleep


@lru_cache(maxsize=16)
def _synthetic_filler(nbytes: int) -> bytes:
    """Shared zero block for synthetic payloads: every speaker on a
    channel used to allocate its own ``bytes(pcm_bytes)`` per packet."""
    return bytes(nbytes)


@dataclass
class SpeakerStats:
    control_rx: int = 0
    data_rx: int = 0
    played: int = 0
    late_dropped: int = 0
    waiting_dropped: int = 0  # data before the first control packet
    seq_gaps: int = 0
    concealed: int = 0
    dup_dropped: int = 0      # exact re-delivery of a block already seen
    reorder_dropped: int = 0  # arrived behind a newer block (stale seq)
    decode_failed: int = 0    # undecodable payload (corruption in flight)
    resyncs: int = 0          # control-packet re-anchors (§3.2 large shift)
    epoch_resyncs: int = 0    # re-anchors forced by a producer epoch change
    epoch_dropped: int = 0    # data from a different producer incarnation
    stale_controls: int = 0   # controls from a dead (older-epoch) producer
    socket_data_drops: int = 0  # data copies lost at the socket (overflow
                                # while hung/slow, or queued when it died)
    garbage_rx: int = 0
    auth_rejected: int = 0
    first_play_time: Optional[float] = None
    #: wall-clock span from the last block committed before an outage
    #: (crash, hang, producer failover) to the first block committed after
    rejoin_gaps: List[float] = field(default_factory=list)
    #: (stream position, local time the block was committed to the device)
    play_log: List[Tuple[float, float]] = field(default_factory=list)
    #: (stream position, cumulative PCM bytes written before the block) —
    #: lets the sink map stream positions to actual DAC emission times
    write_offsets: List[Tuple[float, int]] = field(default_factory=list)


class EthernetSpeaker:
    """One speaker node.

    Parameters
    ----------
    epsilon:
        the §3.2 leeway: how late a block may be and still play.  Too
        small and "data will be unnecessarily thrown out and skipping in
        playback will be noticeable".
    playout_delay:
        fixed buffering depth between a block's nominal stream time and
        its local play deadline; absorbs network jitter and decode time.
    rx_buffer_packets:
        the speaker's input buffer (§3.2's "it needs to buffer the data").
    """

    def __init__(
        self,
        machine,
        group_ip: Optional[str],
        port: int,
        epsilon: float = 0.020,
        playout_delay: float = 0.400,
        resync_threshold: float = 0.250,
        resync_confirm_window: float = 1.0,
        rx_buffer_packets: int = 64,
        audio_path: str = "/dev/audio",
        verifier=None,
        cost_model=None,
        room=None,
        conceal_losses: bool = False,
        name: str = "",
        telemetry=None,
        decode_cache: Optional[DecodeCache] = None,
    ):
        self.machine = machine
        self.group_ip = group_ip
        self.port = port
        self.epsilon = epsilon
        self.playout_delay = playout_delay
        self.resync_threshold = resync_threshold
        #: shifts up to this size could be a single control packet delayed
        #: on the wire, so they must be confirmed by a second control
        #: before re-anchoring; larger shifts (pause, producer restart)
        #: cannot be network delay and re-anchor immediately
        self.resync_confirm_window = resync_confirm_window
        self.rx_buffer_packets = rx_buffer_packets
        self.audio_path = audio_path
        self.verifier = verifier
        self.costs = cost_model or DEFAULT_COSTS
        self.room = room
        #: extension beyond the paper: bridge lost packets by repeating
        #: the previous block instead of letting the driver insert
        #: silence — the standard concealment for uncompressed audio
        self.conceal_losses = conceal_losses
        #: optional shared-decode cache (one per LAN): byte-identical
        #: multicast payloads are decoded once and the unity-gain PCM is
        #: shared across every speaker on the channel.  ``None`` decodes
        #: privately (the pre-fan-out-fast-path behaviour).
        self.decode_cache = decode_cache
        self._last_pcm: Optional[bytes] = None
        #: playback gain (§5.2's knob); 1.0 = unity
        self.gain = 1.0
        #: RMS level of the most recently played block, after gain
        self.last_output_rms = 0.0
        self.name = name or f"es-{machine.name}"
        self.stats = SpeakerStats()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        tel, label = self.telemetry, self.name
        self._c_data_rx = tel.counter(f"speaker.data_rx[{label}]")
        self._c_ctl_rx = tel.counter(f"speaker.control_rx[{label}]")
        self._c_played = tel.counter(f"speaker.played[{label}]")
        self._c_late = tel.counter(f"speaker.late_dropped[{label}]")
        self._c_waiting = tel.counter(f"speaker.waiting_dropped[{label}]")
        self._c_gaps = tel.counter(f"speaker.seq_gaps[{label}]")
        self._c_garbage = tel.counter(f"speaker.garbage_rx[{label}]")
        self._c_dup = tel.counter(f"speaker.dup_dropped[{label}]")
        self._c_reorder = tel.counter(f"speaker.reorder_dropped[{label}]")
        self._c_decode_failed = tel.counter(f"speaker.decode_failed[{label}]")
        self._c_resyncs = tel.counter(f"speaker.resyncs[{label}]")
        self._c_epoch_resyncs = tel.counter(f"speaker.epoch_resyncs[{label}]")
        self._c_epoch_dropped = tel.counter(f"speaker.epoch_dropped[{label}]")
        self._c_sock_drops = tel.counter(f"speaker.socket_drops[{label}]")
        # hot-loop instruments are resolved once here: building the label
        # f-string per packet showed up in the fan-out profile
        self._c_concealed = tel.counter(f"speaker.concealed[{label}]")
        self._g_rx_queue = tel.gauge(f"speaker.rx_queue[{label}]")
        self._last_arrival: Optional[float] = None
        self._last_block_seconds = 0.0
        self._proc: Optional[Process] = None
        self._params: Optional[AudioParams] = None
        self._decoder = None
        self._decoder_key = None
        # sync anchor: (local time, stream position) from a control packet
        self._anchor: Optional[Tuple[float, float]] = None
        #: a lone out-of-schedule control packet is held here instead of
        #: re-anchoring: one delayed/reordered control must not reset the
        #: stream, but two consecutive ones agreeing on a new schedule
        #: (producer restart, long pause) confirm a real shift
        self._resync_candidate: Optional[Tuple[float, float]] = None
        self._playing_started = False
        self._last_seq: Optional[int] = None
        #: recently accepted sequence numbers, to tell an exact duplicate
        #: from a reordered block that is merely behind the playout point
        self._recent_seqs: Set[int] = set()
        self._recent_order: Deque[int] = deque()
        self._bytes_written = 0
        #: PCM bytes written in *earlier* tuning sessions: keeps the
        #: stream-offset -> device-byte mapping absolute across retunes
        #: while _bytes_written itself is per-session
        self._write_base = 0
        self._sock = None
        #: the producer incarnation this speaker is anchored to; adopted
        #: from the first control packet, bumped on failover (epoch rules
        #: in docs/faults.md)
        self._epoch: Optional[int] = None
        #: local time of the last committed block before an outage began;
        #: armed by crash()/cold_restart()/epoch re-anchor, cleared (and
        #: recorded into ``stats.rejoin_gaps``) by the next committed block
        self._gap_started: Optional[float] = None
        #: crash() keeps the socket bound so downtime arrivals stay in the
        #: conservation ledger (classified drops) instead of vanishing
        self._crashed = False

    @property
    def state(self) -> str:
        return "playing" if self._anchor is not None else "waiting"

    def start(self) -> Process:
        self._proc = self.machine.spawn(
            self._run(), name=f"{self.machine.name}/es"
        )
        return self._proc

    def start_resumed(self, sock, fd) -> Process:
        """Enter the receive loop mid-session on a pre-built socket/fd.

        Used when a cohort member spills out of the vectorized array into
        a per-object speaker: the tune-in work (socket bind, group join,
        sys_open) already happened — and was already paid for — in the
        member's shared past, so the clone resumes directly in
        :meth:`_serve` with the carried state.
        """
        self._sock = sock
        self._proc = self.machine.spawn(
            self._serve(sock, fd), name=f"{self.machine.name}/es"
        )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()

    def retune(self, group_ip: str, port: int) -> None:
        """Switch channels (§5.3): leave the group, reset sync state.

        Everything per-stream is forgotten — sequence and concealment
        state, the decoder, the audio configuration, the first-block
        playout gate — so nothing from the old channel can leak into the
        new one.  ``_bytes_written`` restarts at zero for the new
        session; ``_write_base`` keeps the device-byte mapping absolute.
        """
        if self._sock is not None and self.group_ip is not None:
            self.machine.net.nic.leave_group(self.group_ip)
        self.group_ip = group_ip
        self.port = port
        self._anchor = None
        self._params = None
        self._playing_started = False
        self._decoder = None
        self._decoder_key = None
        self._epoch = None
        self._write_base += self._bytes_written
        self._bytes_written = 0
        self._reset_stream_state()
        if self._proc is not None:
            self._proc.kill()
            self.start()

    # -- node faults ----------------------------------------------------------

    def crash(self) -> None:
        """Kill the speaker process the way a wedged node dies: abruptly.

        Unlike :meth:`stop`, the socket stays bound — the NIC keeps
        receiving, the bounded queue fills, and overflow is counted as
        classified drops — so every multicast copy addressed to this node
        during the outage remains in the conservation ledger.
        :meth:`cold_restart` disposes of the wreck.
        """
        if self._proc is None or not self._proc.alive:
            return
        self._crashed = True
        self._begin_outage_gap()
        self._proc.kill()

    def hang(self, freeze_cpu: bool = True) -> None:
        """Wedge the node: the process stops consuming its socket and
        servicing timers without exiting.  With ``freeze_cpu`` the whole
        machine halts (heartbeat agents starve too)."""
        if self._proc is not None and self._proc.alive:
            self._proc.freeze()
        if freeze_cpu:
            self.machine.cpu.halt()

    def unhang(self) -> None:
        """Undo :meth:`hang`; the backlog is drained on resume."""
        self.machine.cpu.unhalt()
        if self._proc is not None:
            self._proc.thaw()

    def cold_restart(self) -> Process:
        """Reboot from cold: all RAM state is lost, then the paper's
        wait-for-control → buffer → play path runs again from scratch.

        Works on a crashed, hung, or running speaker.  The playback gap
        (last block committed before the outage to first block after) is
        recorded in ``stats.rejoin_gaps``.
        """
        self._begin_outage_gap()
        self.machine.cpu.unhalt()
        if self._proc is not None and self._proc.alive:
            self._proc.kill()  # its finally closes the socket (counted)
        if self._sock is not None:
            # close now rather than relying on the kill's finally: a
            # process frozen before its first step (a cohort clone hung
            # at the spill instant) has no try block to unwind, and for a
            # crash wreck there is no process at all.  close() drains +
            # classifies what queued up and is idempotent, so the paths
            # that do reach the finally agree with this one.
            self._sock.close()
        self._sock = None
        self._crashed = False
        self._anchor = None
        self._params = None
        self._playing_started = False
        self._decoder = None
        self._decoder_key = None
        self._epoch = None
        self._write_base += self._bytes_written
        self._bytes_written = 0
        self._reset_stream_state()
        return self.start()

    def _reset_stream_state(self) -> None:
        """Forget per-stream sequencing and concealment context.

        Called on retune and on a control-packet re-anchor: after either,
        the next data packet opens a fresh sequence space (a restarted
        producer goes back to seq 1), so comparing against the old
        ``_last_seq`` would misclassify the whole new stream as stale,
        and the old ``_last_pcm`` would conceal with unrelated audio.
        """
        self._last_seq = None
        self._last_pcm = None
        self._resync_candidate = None
        self._recent_seqs.clear()
        self._recent_order.clear()
        self._last_arrival = None
        self._last_block_seconds = 0.0

    # -- the receive loop -----------------------------------------------------------

    def _open_socket(self):
        """Bind the receive socket and join the channel group.

        Split out of :meth:`_run` so a cohort exemplar can substitute an
        offer-tracking socket while keeping the tune-in sequence (and its
        cost model) byte-identical.
        """
        sock = self.machine.net.socket(
            self.port, rx_capacity=self.rx_buffer_packets
        )
        if self.group_ip is not None:
            # a parked speaker (booted undiscovered, awaiting an ACMP
            # CONNECT) binds but joins nothing until it is tuned
            sock.join_multicast(self.group_ip)
        sock.drop_hook = self._classify_drop
        self._sock = sock
        return sock

    def _run(self):
        sock = self._open_socket()
        fd = yield from self.machine.sys_open(self.audio_path)
        yield from self._serve(sock, fd)

    def _serve(self, sock, fd):
        try:
            while True:
                msg = yield sock.recv()
                self._note_packet_start(msg)
                yield from self._process_packet(fd, msg)
                self._packet_boundary()
        except ProcessKilled:
            raise
        finally:
            if not self._crashed and self._sock is sock:
                sock.close()
            # a crashed node's socket stays bound: the NIC keeps receiving
            # and the classified drop counter keeps the ledger closed
            # until cold_restart() disposes of the wreck.  The identity
            # check matters when a kill cannot land at its yield point (a
            # CPU slice in flight cannot be disarmed): by the time the
            # ProcessKilled arrives, cold_restart() may already have
            # closed this socket and bound a successor on the same port —
            # closing here would silently unregister the live socket.

    def _process_packet(self, fd, msg):
        machine = self.machine
        wire = msg.payload
        if self.verifier is not None:
            yield machine.cpu.run(
                self.verifier.verify_cycles(len(wire)), domain="user"
            )
            wire = self.verifier.unwrap(wire)
            if wire is None:
                self.stats.auth_rejected += 1
                return
        try:
            packet = parse_packet(wire)
        except ProtocolError:
            self.stats.garbage_rx += 1
            self._c_garbage.inc()
            return
        if isinstance(packet, ControlPacket):
            yield from self._handle_control(fd, packet)
        elif isinstance(packet, DataPacket):
            yield from self._handle_data(fd, packet)

    # cohort hooks: a SpeakerCohort exemplar overrides these to run its
    # spill checks before a packet is consumed and to fold each packet's
    # effects into the member arrays afterwards.  No-ops on a plain node.

    def _note_packet_start(self, msg) -> None:
        pass

    def _packet_boundary(self) -> None:
        pass

    def _classify_drop(self, payload) -> None:
        """Socket drop observer: count the *data* copies this node lost
        (overflow while hung or slow, queued datagrams when it died) so
        the conservation ledger closes without crediting control traffic.
        """
        if peek_type(payload) == TYPE_DATA:
            self.stats.socket_data_drops += 1
            self._c_sock_drops.inc()

    @property
    def pending_data(self) -> int:
        """Data packets sitting unconsumed in the receive queue."""
        sock = self._sock
        if sock is None:
            return 0
        return sum(
            1 for item in sock._rx._items
            if peek_type(item.payload) == TYPE_DATA
        )

    def _begin_outage_gap(self) -> None:
        if self._gap_started is None:
            if self.stats.play_log:
                self._gap_started = self.stats.play_log[-1][1]
            else:
                self._gap_started = self.machine.sim.now

    def _handle_control(self, fd, packet: ControlPacket):
        self.stats.control_rx += 1
        self._c_ctl_rx.inc()
        if (
            self._epoch is not None
            and packet.epoch != self._epoch
            and not epoch_newer(packet.epoch, self._epoch)
        ):
            # a straggler from a producer incarnation we already left
            # behind: obeying its schedule (or its params) would tear the
            # speaker away from the live producer
            self.stats.stale_controls += 1
            return
        if packet.params != self._params:
            self._params = packet.params
            yield from self.machine.sys_ioctl(fd, AUDIO_SETINFO, packet.params)
        now = self.machine.sim.now
        if self._anchor is None:
            self._epoch = packet.epoch
            self._anchor = (now, packet.stream_pos)
            self._playing_started = False
        elif packet.epoch != self._epoch:
            # producer takeover or forced restart: a new incarnation has a
            # new schedule and a new sequence space by definition, so the
            # drift debounce does not apply — re-anchor immediately and
            # exactly once (the epoch comparison is what makes a second
            # control from the same incarnation a no-op)
            self._begin_outage_gap()
            self._epoch = packet.epoch
            self._anchor = (now, packet.stream_pos)
            self._playing_started = False
            self._reset_stream_state()
            self.stats.resyncs += 1
            self._c_resyncs.inc()
            self.stats.epoch_resyncs += 1
            self._c_epoch_resyncs.inc()
            self.telemetry.tracer.instant(
                "speaker.epoch_resync", track=self.name, epoch=packet.epoch,
            )
        else:
            # §3.2: the wall clock in each control packet tells the speaker
            # whether it is playing too quickly or slowly.  Small deviations
            # are jitter and are ignored; a large shift means the stream
            # paused, restarted, or we fell badly behind — re-anchor.
            predicted = self._anchor[0] + (packet.stream_pos - self._anchor[1])
            shift = abs(now - predicted)
            confirmed = self._resync_candidate is not None and abs(
                now
                - (self._resync_candidate[0]
                   + (packet.stream_pos - self._resync_candidate[1]))
            ) <= self.resync_threshold
            if shift <= self.resync_threshold:
                self._resync_candidate = None
            elif shift > self.resync_confirm_window or confirmed:
                # re-anchor: either the shift is too large to be a packet
                # delayed on the wire (producer restart, long pause), or
                # two consecutive controls agreed on the new schedule
                self._anchor = (now, packet.stream_pos)
                self._playing_started = False
                # a re-anchor means a different stream schedule: sequence
                # and concealment state from the old one is meaningless now
                self._reset_stream_state()
                self.stats.resyncs += 1
                self._c_resyncs.inc()
                self.telemetry.tracer.instant(
                    "speaker.resync", track=self.name, shift=shift,
                )
            else:
                # moderately out of schedule, unconfirmed: a control packet
                # that was merely delayed or reordered on the wire looks
                # exactly like this, and re-anchoring on it would reset the
                # stream (and unleash held-back stale data).  Park it; the
                # next control either clears it or confirms the shift.
                self._resync_candidate = (now, packet.stream_pos)

    def _handle_data(self, fd, packet: DataPacket):
        machine = self.machine
        tel = self.telemetry
        arrived = machine.sim.now
        self.stats.data_rx += 1
        self._c_data_rx.inc()
        flight = tel.tracer.flow_end(
            (packet.channel_id, packet.seq), "packet.flight", track=self.name
        )
        if flight is not None:
            tel.observe("pipeline.arrival_latency", flight)
        if self._last_arrival is not None and self._last_block_seconds > 0:
            # inter-packet jitter: deviation of the arrival spacing from
            # the nominal block duration the producer paced to
            tel.observe(
                "pipeline.jitter",
                abs((arrived - self._last_arrival) - self._last_block_seconds),
            )
        self._last_arrival = arrived
        if self._params is not None:
            self._last_block_seconds = self._params.duration_of(
                packet.pcm_bytes or len(packet.payload)
            )
        if self._anchor is None or self._params is None:
            # §2.3: "The Ethernet Speaker has to wait till it receives a
            # control packet before it can start playing"
            self.stats.waiting_dropped += 1
            self._c_waiting.inc()
            return
        if packet.epoch != self._epoch:
            # wrong producer incarnation: either a straggler from a dead
            # one (its seq space would poison ours), or an early block
            # from a new one whose control we have not seen yet — the
            # paper's wait-for-control rule applies per epoch
            self.stats.epoch_dropped += 1
            self._c_epoch_dropped.inc()
            tel.tracer.instant("speaker.epoch_drop", track=self.name,
                               seq=packet.seq, epoch=packet.epoch)
            return
        # -- seq-aware playout: play monotonically, drop what the wire
        #    duplicated or delivered behind the playout point.  seq is a
        #    wrapping u32, so ordering is serial-number arithmetic: a
        #    delta in the upper half-space means "behind us" ------------------
        gap = 0
        if self._last_seq is not None:
            delta = seq_delta(packet.seq, self._last_seq)
            if delta == 0 or delta >= SEQ_MOD // 2:
                if packet.seq in self._recent_seqs:
                    # exact re-delivery of a block we already processed
                    self.stats.dup_dropped += 1
                    self._c_dup.inc()
                    tel.tracer.instant("speaker.dup_drop", track=self.name,
                                       seq=packet.seq)
                else:
                    # reordered arrival: playout has moved past it (the
                    # gap it left was already counted, and concealed if
                    # concealment is on)
                    self.stats.reorder_dropped += 1
                    self._c_reorder.inc()
                    tel.tracer.instant("speaker.reorder_drop",
                                       track=self.name, seq=packet.seq)
                return
            if delta > 1:
                gap = delta - 1
                self.stats.seq_gaps += gap
                self._c_gaps.inc(gap)
                tel.tracer.instant("speaker.gap", track=self.name,
                                   missing=gap)
        self._last_seq = packet.seq
        self._remember_seq(packet.seq)

        decode_span = tel.tracer.begin("speaker.decode", track=self.name)
        try:
            pcm = yield from self._decode(packet)
        except ProcessKilled:
            raise
        except Exception:
            # §3.2's "throw the data away", extended to data that cannot
            # be decoded: a payload corrupted in flight must not take the
            # whole speaker down
            self.stats.decode_failed += 1
            self._c_decode_failed.inc()
            tel.tracer.instant("speaker.decode_failed", track=self.name,
                               seq=packet.seq)
            return
        finally:
            tel.tracer.end(decode_span)

        anchor_time, anchor_pos = self._anchor
        deadline = anchor_time + (packet.play_at - anchor_pos) + self.playout_delay
        now = machine.sim.now
        if not self._playing_started:
            # §3.2: playing too quickly -> sleep until it is time to play.
            # Only the first block is gated on its deadline; while we
            # sleep, the following packets queue in the receive buffer,
            # and the burst of writes that follows fills the audio ring.
            # From then on the device's own DMA pacing holds the schedule.
            if now < deadline:
                yield Sleep(deadline - now)
                now = machine.sim.now
            self._playing_started = True
        if now - deadline > self.epsilon:
            # §3.2: too late -> throw the data away.  The block still
            # becomes the concealment context: it is the newest audio we
            # have, even if it missed its slot.
            self.stats.late_dropped += 1
            self._c_late.inc()
            tel.tracer.instant("speaker.late_drop", track=self.name,
                               seq=packet.seq, late_by=now - deadline)
            self._last_pcm = pcm
            return
        if self.conceal_losses and gap and self._last_pcm is not None:
            # repeat the previous block across the hole (capped: a long
            # outage should fade out, not stutter forever).  This runs
            # only once the block itself has earned its playout slot — a
            # late-dropped block must not smear repeats at the wrong time.
            for _ in range(min(gap, 3)):
                self._bytes_written += len(self._last_pcm)
                yield from machine.sys_write(fd, self._last_pcm)
                self.stats.concealed += 1
                self._c_concealed.inc()
        self._last_pcm = pcm
        if self._gap_started is not None:
            # first block committed after an outage (crash, hang, producer
            # failover): the wall-clock hole in this speaker's write
            # stream is the measured rejoin gap
            rejoin_gap = machine.sim.now - self._gap_started
            self._gap_started = None
            self.stats.rejoin_gaps.append(rejoin_gap)
            tel.observe("speaker.rejoin_gap", rejoin_gap)
            tel.tracer.instant("speaker.rejoin", track=self.name,
                               gap=rejoin_gap)
        self.stats.play_log.append((packet.play_at, machine.sim.now))
        self.stats.write_offsets.append(
            (packet.play_at, self._write_base + self._bytes_written)
        )
        if self.stats.first_play_time is None:
            self.stats.first_play_time = machine.sim.now
        self._bytes_written += len(pcm)
        yield from machine.sys_write(fd, pcm)
        self.stats.played += 1
        self._c_played.inc()
        if flight is not None:
            # producer send -> committed to the audio ring: the paper's
            # end-to-end path, playout buffering included
            tel.observe("pipeline.e2e_latency",
                        flight + (machine.sim.now - arrived))
        self._g_rx_queue.set(self._sock.queued if self._sock else 0)

    #: how many accepted sequence numbers to keep for duplicate detection
    #: (far wider than any plausible wire reorder window; bounded so a
    #: long-running speaker's memory stays flat)
    RECENT_SEQ_WINDOW = 128

    def _remember_seq(self, seq: int) -> None:
        self._recent_seqs.add(seq)
        self._recent_order.append(seq)
        if len(self._recent_order) > self.RECENT_SEQ_WINDOW:
            self._recent_seqs.discard(self._recent_order.popleft())

    def _decode(self, packet: DataPacket):
        """Payload -> PCM bytes in the device's configured format.

        The simulated CPU is charged the full decode cost regardless of
        the shared-decode cache: a hit only skips redundant *host* work,
        so cached and uncached runs are bit-identical in virtual time.
        """
        machine = self.machine
        params = self._params
        frames = params.frames_of(packet.pcm_bytes or len(packet.payload))
        cost = self.costs[packet.codec_id]
        cycles = cost.decode_cycles(frames)
        if cycles > 0:
            yield machine.cpu.run(cycles, domain="user")
        if packet.synthetic:
            return _synthetic_filler(packet.pcm_bytes)
        if packet.codec_id == CodecID.RAW:
            if self.gain == 1.0 and self.room is None:
                return packet.payload
            samples = decode_samples(packet.payload, params)
        else:
            cache = self.decode_cache
            if cache is not None and self.gain == 1.0 and self.room is None:
                # the speaker-independent path: share the decoded block
                # with every other unity-gain speaker on the channel
                key = cache.key_for(packet.payload, packet.codec_id, params)
                entry = cache.get(key)
                if entry is None:
                    entry = self._decode_shared(packet, params)
                    cache.put(key, entry)
                if entry.rms is not None:
                    self.last_output_rms = entry.rms
                return entry.pcm
            decoder = self._get_decoder(packet.codec_id)
            samples = decoder.decode_block(packet.payload)
        if self.gain != 1.0:
            samples = np.clip(samples * self.gain, -1.0, 1.0)
        if len(samples):
            self.last_output_rms = float(
                np.sqrt(np.mean(np.square(samples)))
            )
            if self.room is not None:
                self.room.speaker_rms = self.last_output_rms
        return encode_samples(samples, params)

    def _decode_shared(self, packet: DataPacket, params: AudioParams
                       ) -> DecodedBlock:
        """Decode at unity gain, packaged for the shared cache."""
        decoder = self._get_decoder(packet.codec_id)
        samples = decoder.decode_block(packet.payload)
        rms = None
        if len(samples):
            rms = float(np.sqrt(np.mean(np.square(samples))))
        return DecodedBlock(pcm=encode_samples(samples, params), rms=rms)

    def _get_decoder(self, codec_id: CodecID):
        key = (codec_id, self._params.sample_rate)
        if self._decoder_key != key:
            if codec_id == CodecID.VORBIS_LIKE:
                self._decoder = get_codec(
                    codec_id, sample_rate=self._params.sample_rate
                )
            else:
                self._decoder = get_codec(codec_id)
            self._decoder_key = key
        return self._decoder
