"""High-level builder: assemble a whole Ethernet Speaker deployment.

The public entry point of the library::

    from repro.core import EthernetSpeakerSystem
    from repro.audio import CD_QUALITY, music

    system = EthernetSpeakerSystem(bandwidth_bps=100e6)
    producer = system.add_producer()
    channel = system.add_channel("lobby", params=CD_QUALITY)
    system.add_rebroadcaster(producer, channel)
    speakers = [system.add_speaker(channel=channel) for _ in range(3)]
    system.play_pcm(producer, music(10.0, 44100, seed=1), CD_QUALITY)
    system.run(until=15.0)
    print(system.skew_report(speakers))

Everything is wired to one simulator/LAN; the helpers below are exactly the
glue a test harness or example script would otherwise repeat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.audio.encodings import encode_samples
from repro.audio.params import AudioParams, CD_QUALITY
from repro.codec.cache import (
    DecodeCache,
    DecodeCacheStats,
    EncodeCache,
    EncodeCacheStats,
)
from repro.core.channel import ChannelConfig
from repro.core.cohort import CohortMember, SpeakerCohort
from repro.core.failover import WarmStandby
from repro.core.protocol import (
    ENTITY_REBROADCASTER,
    ENTITY_RELAY,
    ENTITY_SPEAKER,
    ENTITY_STANDBY,
)
from repro.core.rebroadcaster import Rebroadcaster
from repro.core.speaker import EthernetSpeaker
from repro.kernel.audio import (
    AUDIO_DRAIN,
    AUDIO_SETINFO,
    AudioDevice,
    HardwareAudioDriver,
    SpeakerSink,
)
from repro.kernel.machine import Machine
from repro.kernel.vad import VadPair
from repro.metrics.telemetry import (
    NULL,
    ChannelReport,
    PipelineReport,
    Telemetry,
)
from repro.mgmt.controller import FleetController
from repro.mgmt.discovery import DEFAULT_VALID_TIME, EntityAdvertiser
from repro.mgmt.remote import MGMT_PORT, ManagementAgent
from repro.mgmt.supervisor import Supervisor
from repro.net.faults import FaultInjector
from repro.net.monitor import BandwidthMonitor
from repro.net.segment import EthernetSegment
from repro.sim.core import Simulator
from repro.sim.process import Process, Sleep


@dataclass
class ProducerNode:
    machine: Machine
    vad: VadPair


@dataclass
class SpeakerNode:
    machine: Machine
    speaker: EthernetSpeaker
    sink: SpeakerSink
    device: AudioDevice
    channel: Optional[ChannelConfig] = None
    #: the segment this speaker listens on (the system LAN, or a relay
    #: tree leaf LAN)
    lan: Optional[EthernetSegment] = None
    #: populated by :meth:`EthernetSpeakerSystem.advertise_speaker`
    entity_id: Optional[int] = None
    agent: Optional[ManagementAgent] = None
    advertiser: Optional[EntityAdvertiser] = None

    @property
    def stats(self):
        return self.speaker.stats


@dataclass
class LeafLan:
    """A LAN segment at the bottom of the WAN relay tree: the relay's
    gateway host re-multicasts one channel onto it, and speakers attach
    with ``add_speaker(channel, lan=leaf)``."""

    segment: EthernetSegment
    machine: Machine           # the relay's LAN gateway host
    relay: RelayNode
    channel: ChannelConfig
    name: str = ""


class _CompatMember:
    """Per-object stand-in for a :class:`CohortMember` (``cohort=False``).

    Exposes the same member-facing surface — ``stats``, ``sink``,
    ``crash``/``hang``/``unhang``/``cold_restart`` — over an ordinary
    :class:`SpeakerNode`, so differential tests drive both fleets with
    one code path.
    """

    def __init__(self, node: SpeakerNode):
        self.node = node

    @property
    def speaker(self) -> EthernetSpeaker:
        return self.node.speaker

    @property
    def stats(self):
        return self.node.speaker.stats

    @property
    def sink(self) -> SpeakerSink:
        return self.node.sink

    def crash(self) -> None:
        self.node.speaker.crash()

    def hang(self) -> None:
        self.node.speaker.hang()

    def unhang(self) -> None:
        self.node.speaker.unhang()

    def cold_restart(self) -> None:
        self.node.speaker.cold_restart()


class _CompatCohort:
    """N ordinary speakers behind the cohort member API."""

    def __init__(self, nodes: List[SpeakerNode], channel: ChannelConfig):
        self.nodes = nodes
        self.channel = channel
        self.members = len(nodes)
        self.spills = 0
        self.events_saved = 0
        self.tokens = [_CompatMember(n) for n in nodes]

    def member_stats(self, i: int):
        return self.nodes[i].speaker.stats

    def member_play_log(self, i: int):
        return self.nodes[i].speaker.stats.play_log

    def member_write_offsets(self, i: int):
        return self.nodes[i].speaker.stats.write_offsets


class EthernetSpeakerSystem:
    """One LAN, its producer(s), channels, and Ethernet Speakers."""

    def __init__(
        self,
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        telemetry=False,
        shared_decode: bool = True,
        decode_cache_entries: int = 256,
        batched_delivery: bool = True,
        cohort: bool = True,
        shared_encode: bool = True,
        encode_cache_entries: int = 256,
        batched_encode: bool = True,
    ):
        self.sim = Simulator()
        # telemetry: False/None -> disabled (near-zero overhead), True ->
        # a fresh registry on this system's sim clock, or inject your own
        if telemetry is True:
            telemetry = Telemetry(sim=self.sim)
        elif not telemetry:
            telemetry = NULL
        elif telemetry.enabled:
            # an injected registry now serves this system: bind its clock
            # (and its tracer's) to this simulator so every timestamp is
            # in this run's virtual time
            telemetry.clock = lambda: self.sim.now
            telemetry.tracer.clock = telemetry.clock
        self.telemetry: Telemetry = telemetry
        self.sim.set_telemetry(telemetry)
        #: one decode cache shared by every speaker on this system, so N
        #: speakers on a channel decode each multicast block once
        #: (``shared_decode=False`` restores independent per-speaker
        #: decodes — the compatibility baseline the benchmarks race)
        self.decode_cache: Optional[DecodeCache] = (
            DecodeCache(max_entries=decode_cache_entries,
                        telemetry=telemetry, name="system")
            if shared_decode else None
        )
        #: origin-side mirror: one encode cache shared by every
        #: rebroadcaster, so looped playlists and same-source multi-channel
        #: stations encode each raw block once (``shared_encode=False``
        #: restores independent encodes, the benchmark baseline)
        self.encode_cache: Optional[EncodeCache] = (
            EncodeCache(max_entries=encode_cache_entries,
                        telemetry=telemetry, name="system")
            if shared_encode else None
        )
        #: whole-block vectorised encode kernels for every rebroadcaster
        #: (bit-identical to the scalar loops; the differential harness
        #: in ``tests/core/test_origin_differential.py`` pins it)
        self.batched_encode = batched_encode
        self.lan = EthernetSegment(
            self.sim,
            bandwidth_bps=bandwidth_bps,
            latency=latency,
            jitter=jitter,
            loss_rate=loss_rate,
            seed=seed,
            batch_delivery=batched_delivery,
        )
        self._seed = seed
        self._batched_delivery = batched_delivery
        #: every segment on this system — the main LAN plus relay-tree
        #: leaf LANs; wire accounting in ``pipeline_report`` sums them
        self.lans: List[EthernetSegment] = [self.lan]
        self.monitor = BandwidthMonitor(self.sim, self.lan,
                                        telemetry=telemetry)
        #: ``add_speaker_cohort`` builds vectorized ``SpeakerCohort``s when
        #: True; when False it expands to ordinary per-object speakers with
        #: the same member-facing API (the differential baseline)
        self.cohort = cohort
        self.producers: List[ProducerNode] = []
        self.speakers: List[SpeakerNode] = []
        self.cohorts: List[SpeakerCohort] = []
        self.channels: List[ChannelConfig] = []
        self.rebroadcasters: List[Rebroadcaster] = []
        self.fault_injectors: List[FaultInjector] = []
        #: dedicated per-WAN-link injectors (subtree-scaled budgets, so
        #: they are itemised separately from the LAN injectors above)
        self.wan_fault_injectors: List[FaultInjector] = []
        self.standbys: List[WarmStandby] = []
        self.supervisors: List[Supervisor] = []
        self.relays: List[RelayNode] = []
        self.wan_hops: List[WanHop] = []
        self.leaf_lans: List[LeafLan] = []
        #: the dynamic control plane (ATDECC-style): controllers, entity
        #: advertisers, and management agents, all living on a dedicated
        #: out-of-band management segment (see :meth:`enable_management`)
        self.controllers: List[FleetController] = []
        self.advertisers: List[EntityAdvertiser] = []
        self.mgmt_agents: List[ManagementAgent] = []
        self.mgmt_lan: Optional[EthernetSegment] = None
        #: primary producer id -> standby producer nodes that must receive
        #: a mirror of every source feed played into the primary
        self._mirrors: Dict[int, List[ProducerNode]] = {}
        self._next_host = 1
        self._next_channel = 1
        self._next_vad = 0
        self._next_mgmt_host = 1
        self._next_entity = 1

    def _next_ip(self) -> str:
        ip = f"10.1.{self._next_host // 250}.{self._next_host % 250 + 1}"
        self._next_host += 1
        return ip

    def _next_mgmt_ip(self) -> str:
        """Management-segment addresses come from their own counter so
        attaching control-plane NICs never shifts the audio-LAN IP
        allocation order (which fault chains and differential tests key
        on)."""
        n = self._next_mgmt_host
        self._next_mgmt_host += 1
        return f"10.9.{n // 250}.{n % 250 + 1}"

    def _next_entity_id(self) -> int:
        eid = self._next_entity
        self._next_entity += 1
        return eid

    # -- construction -----------------------------------------------------------

    def add_producer(
        self,
        name: str = "",
        cpu_freq_hz: float = 500e6,
        vad_strategy: str = "kthread",
        housekeeping: bool = True,
        vlan: int = 1,
        **vad_kwargs,
    ) -> ProducerNode:
        """A machine running the VAD and (later) rebroadcasters."""
        name = name or f"producer{len(self.producers)}"
        machine = Machine(self.sim, name, cpu_freq_hz=cpu_freq_hz)
        machine.attach_network(self.lan, self._next_ip(), vlan=vlan)
        vad = VadPair(machine, strategy=vad_strategy, **vad_kwargs)
        if housekeeping:
            machine.start_housekeeping()
        node = ProducerNode(machine=machine, vad=vad)
        self.producers.append(node)
        return node

    def add_channel(
        self,
        name: str,
        params: AudioParams = CD_QUALITY,
        compress: str = "auto",
        quality: int = 10,
        **kwargs,
    ) -> ChannelConfig:
        channel_id = self._next_channel
        self._next_channel += 1
        channel = ChannelConfig(
            channel_id=channel_id,
            name=name,
            group_ip=f"239.192.0.{channel_id}",
            port=5000 + channel_id,
            params=params,
            compress=compress,
            quality=quality,
            **kwargs,
        )
        self.channels.append(channel)
        return channel

    def add_rebroadcaster(
        self,
        producer: ProducerNode,
        channel: ChannelConfig,
        master_path: str = "/dev/vadm",
        **kwargs,
    ) -> Rebroadcaster:
        kwargs.setdefault("telemetry", self.telemetry)
        kwargs.setdefault("encode_cache", self.encode_cache)
        kwargs.setdefault("batched_encode", self.batched_encode)
        rb = Rebroadcaster(
            producer.machine, channel, master_path=master_path, **kwargs
        )
        rb.start()
        self.rebroadcasters.append(rb)
        return rb

    def add_speaker(
        self,
        channel: Optional[ChannelConfig] = None,
        name: str = "",
        cpu_freq_hz: float = 233e6,
        block_seconds: float = 0.065,
        vlan: int = 1,
        housekeeping: bool = False,
        start: bool = True,
        dac_drift_ppm: float = 0.0,
        lan=None,
        **speaker_kwargs,
    ) -> SpeakerNode:
        """An Ethernet Speaker machine (EON 4000-class by default).

        ``lan`` attaches the speaker to another segment — a
        :class:`LeafLan` from :meth:`add_leaf_lan` or a raw
        :class:`EthernetSegment` — instead of the system LAN.

        ``channel=None`` boots the speaker *parked*: untuned, joined to
        nothing, waiting for the control plane to CONNECT it (see
        :meth:`advertise_speaker` / :meth:`connect_speaker`).
        """
        segment = self._segment_of(lan)
        name = name or f"es{len(self.speakers)}"
        machine = Machine(self.sim, name, cpu_freq_hz=cpu_freq_hz)
        machine.attach_network(segment, self._next_ip(), vlan=vlan)
        sink = SpeakerSink(name=f"{name}/speaker")
        hw = HardwareAudioDriver(machine, sink, drift_ppm=dac_drift_ppm)
        device = AudioDevice(machine, hw, block_seconds=block_seconds,
                             telemetry=self.telemetry)
        machine.register_device("/dev/audio", device)
        if housekeeping:
            machine.start_housekeeping()
        speaker_kwargs.setdefault("telemetry", self.telemetry)
        if self.decode_cache is not None:
            speaker_kwargs.setdefault("decode_cache", self.decode_cache)
        group_ip = channel.group_ip if channel is not None else None
        port = channel.port if channel is not None else 0
        speaker = EthernetSpeaker(
            machine, group_ip, port, name=name,
            **speaker_kwargs,
        )
        if start:
            speaker.start()
        node = SpeakerNode(
            machine=machine, speaker=speaker, sink=sink, device=device,
            channel=channel, lan=segment,
        )
        self.speakers.append(node)
        return node

    def _segment_of(self, lan) -> EthernetSegment:
        if lan is None:
            return self.lan
        return getattr(lan, "segment", lan)

    def add_speaker_cohort(
        self,
        channel: ChannelConfig,
        members: int,
        name: str = "",
        cpu_freq_hz: float = 233e6,
        block_seconds: float = 0.065,
        vlan: int = 1,
        **speaker_kwargs,
    ):
        """``members`` identical unity-gain speakers on ``channel``.

        With the system's ``cohort=True`` default this costs one real
        exemplar speaker plus numpy member rows and **one** delivery
        event per frame (see :class:`~repro.core.cohort.SpeakerCohort`);
        members that draw a divergent fate spill into full per-object
        speakers mid-stream.  With ``cohort=False`` it expands into
        ordinary :meth:`add_speaker` nodes behind the same member API —
        the per-object baseline the differential harness races.
        """
        name = name or f"cohort{len(self.cohorts)}"
        if not self.cohort:
            nodes = [
                self.add_speaker(
                    channel=channel, name=f"{name}-m{i}",
                    cpu_freq_hz=cpu_freq_hz, block_seconds=block_seconds,
                    vlan=vlan, **dict(speaker_kwargs),
                )
                for i in range(members)
            ]
            return _CompatCohort(nodes, channel)
        cohort = SpeakerCohort(
            self.sim, self.lan, members, channel.group_ip, channel.port,
            ip=self._next_ip(), vlan=vlan, cpu_freq_hz=cpu_freq_hz,
            block_seconds=block_seconds, speaker_kwargs=speaker_kwargs,
            name=name, telemetry=self.telemetry,
            decode_cache=self.decode_cache,
        )
        cohort.channel = channel
        self.cohorts.append(cohort)
        return cohort

    def inject_faults(self, link=None, name: str = "", **fault_kwargs
                      ) -> FaultInjector:
        """Attach a :class:`~repro.net.faults.FaultInjector` to a link
        (the system LAN by default) and register it for reporting.

        Keyword arguments are the injector's knobs — ``loss_rate``,
        ``burst_length``, ``duplicate_rate``, ``reorder_rate``,
        ``reorder_window``, ``corrupt_rate``, ``jitter``, ``seed`` —
        all seeded and itemised in :meth:`pipeline_report`.
        """
        fault_kwargs.setdefault("telemetry", self.telemetry)
        injector = FaultInjector(
            self.sim,
            name=name or f"faults{len(self.fault_injectors)}",
            **fault_kwargs,
        )
        injector.attach(link if link is not None else self.lan)
        self.fault_injectors.append(injector)
        return injector

    def remove_faults(self, injector: Optional[FaultInjector] = None) -> int:
        """Detach injector(s), flushing any packets still held back for
        reordering so nothing stays parked in flight.  Returns the number
        of flushed datagrams."""
        injectors = [injector] if injector is not None else list(self.fault_injectors)
        return sum(inj.detach() for inj in injectors)

    # -- the WAN relay tree ------------------------------------------------------

    def add_relay(
        self,
        parent,
        name: str = "",
        fallback: bool = False,
        fallback_timeout: float = 1.5,
        check_interval: float = 0.25,
        control_interval: float = 1.0,
        nack: bool = False,
        recovery: Optional[str] = None,
        retransmit_buffer: int = 64,
        nack_delay: Optional[float] = None,
        recover_timeout: Optional[float] = None,
        fec_k: int = 4,
        fec_r: int = 1,
        fec_interleave: int = 1,
        fec_flush_timeout: float = 0.25,
        bandwidth_bps: float = 20e6,
        latency: float = 0.040,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        wan_seed: Optional[int] = None,
        wan_faults: Optional[dict] = None,
    ) -> RelayNode:
        """A WAN relay fed by ``parent`` over a fresh uplink hop.

        ``parent`` is the origin :class:`Rebroadcaster` (the packets are
        teed off its send path, tandem-free) or another
        :class:`~repro.net.wan.RelayNode` one tier up.  The hop's WAN
        profile (``bandwidth_bps``/``latency``/``jitter``/``loss_rate``)
        is per-hop; ``recovery`` picks the hop's loss-recovery ladder
        (``"none"``/``"nack"``/``"fec"``/``"fec+nack"``; ``nack=True``
        is the legacy alias for ``"nack"``) with the ``fec_*`` knobs
        sizing the parity groups, ``fallback=True`` arms the local
        filler source, and ``wan_faults=dict(...)`` attaches a dedicated
        seeded :class:`~repro.net.faults.FaultInjector` to the uplink
        (GE bursty loss, duplication, corruption, bounded reorder — the
        knobs of :meth:`inject_faults`), itemised per hop in
        :meth:`pipeline_report`.
        """
        # imported here, not at module top: repro.net.wan reaches back
        # into repro.core during the circular package bootstrap
        from repro.net.wan import RelayNode, WanHop, WanLink

        name = name or f"relay{len(self.relays)}"
        relay = RelayNode(
            self.sim, name=name, fallback=fallback,
            fallback_timeout=fallback_timeout,
            check_interval=check_interval,
            control_interval=control_interval,
            telemetry=self.telemetry,
        )
        link = WanLink(
            self.sim, bandwidth_bps=bandwidth_bps, latency=latency,
            jitter=jitter, loss_rate=loss_rate,
            seed=(wan_seed if wan_seed is not None
                  else self._seed + 101 + len(self.wan_hops)),
            name=f"wan:{name}", telemetry=self.telemetry,
        )
        if wan_faults:
            kwargs = dict(wan_faults)
            kwargs.setdefault(
                "seed", self._seed + 301 + len(self.wan_fault_injectors)
            )
            kwargs.setdefault("telemetry", self.telemetry)
            injector = FaultInjector(
                self.sim, name=f"wanfaults:{name}", **kwargs
            )
            injector.attach(link)
            # kept apart from the LAN injectors: their budgets scale by
            # the whole speaker fleet, a WAN hop's by its subtree
            self.wan_fault_injectors.append(injector)
        hop = WanHop(
            link, relay.ingest, nack=nack, recovery=recovery,
            retransmit_buffer=retransmit_buffer, nack_delay=nack_delay,
            recover_timeout=recover_timeout,
            fec_k=fec_k, fec_r=fec_r, fec_interleave=fec_interleave,
            fec_flush_timeout=fec_flush_timeout, name=f"hop:{name}",
        )
        hop.child = relay
        relay.uplink = hop
        if isinstance(parent, Rebroadcaster):
            parent.add_wan_tap(hop.send)
        elif isinstance(parent, RelayNode):
            parent.add_downlink(hop)
        else:
            raise TypeError(
                f"relay parent must be a Rebroadcaster or RelayNode, "
                f"not {parent!r}"
            )
        self.relays.append(relay)
        self.wan_hops.append(hop)
        return relay

    def add_leaf_lan(
        self,
        relay: RelayNode,
        channel: ChannelConfig,
        name: str = "",
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        seed: Optional[int] = None,
        cpu_freq_hz: float = 500e6,
    ) -> LeafLan:
        """A LAN segment under ``relay``: the relay re-multicasts
        ``channel`` onto it through a gateway host, and speakers attach
        with ``add_speaker(channel, lan=leaf)``.  The leaf segment runs
        the normal LAN protocol — WAN pathologies terminate at the
        relay, exactly as §6 terminates them at the rebroadcaster.
        """
        name = name or f"leaf{len(self.leaf_lans)}"
        segment = EthernetSegment(
            self.sim, bandwidth_bps=bandwidth_bps, latency=latency,
            jitter=jitter, loss_rate=loss_rate,
            seed=(seed if seed is not None
                  else self._seed + 501 + len(self.lans)),
            batch_delivery=self._batched_delivery,
        )
        machine = Machine(self.sim, f"{name}-gw", cpu_freq_hz=cpu_freq_hz)
        machine.attach_network(segment, self._next_ip(), vlan=1)
        sock = machine.net.socket()
        dst = (channel.group_ip, channel.port)

        def egress(wire, _sock=sock, _dst=dst):
            _sock.sendto(bytes(wire), _dst)

        relay.attach_lan(channel.channel_id, egress)
        leaf = LeafLan(segment=segment, machine=machine, relay=relay,
                       channel=channel, name=name)
        relay.leaf_lans.append(leaf)
        self.lans.append(segment)
        self.leaf_lans.append(leaf)
        return leaf

    def _subtree_speakers(self, relay: RelayNode) -> int:
        """Speakers strictly below ``relay`` — the fan-out every frame
        denied (or minted) at its uplink would have reached."""
        total = 0
        for leaf in relay.leaf_lans:
            total += sum(
                1 for n in self.speakers if n.lan is leaf.segment
            )
        for hop in relay.downlinks:
            if hop.child is not None:
                total += self._subtree_speakers(hop.child)
        return total

    # -- self-healing: standby, supervision, node faults -------------------------

    def add_standby(
        self,
        producer: ProducerNode,
        channel: ChannelConfig,
        name: str = "",
        takeover_timeout: float = 1.5,
        check_interval: float = 0.25,
        cpu_freq_hz: float = 500e6,
        **rb_kwargs,
    ) -> WarmStandby:
        """A warm-standby producer for ``channel``.

        Builds a second producer node whose VAD mirrors every source feed
        later played into ``producer`` (call this *before* ``play_*``),
        runs a suspended :class:`Rebroadcaster` on it, and starts the
        :class:`~repro.core.failover.WarmStandby` watchdog that takes
        over — with a bumped epoch — when the primary's control cadence
        goes silent.  Registered in ``self.rebroadcasters`` so its
        transmissions join the channel's conservation ledger.
        """
        name = name or f"standby{len(self.standbys)}"
        node = self.add_producer(name=name, cpu_freq_hz=cpu_freq_hz)
        self._mirrors.setdefault(id(producer), []).append(node)
        rb_kwargs.setdefault("telemetry", self.telemetry)
        rb_kwargs.setdefault("encode_cache", self.encode_cache)
        rb_kwargs.setdefault("batched_encode", self.batched_encode)
        rb = Rebroadcaster(node.machine, channel, **rb_kwargs)
        self.rebroadcasters.append(rb)
        standby = WarmStandby(
            rb,
            takeover_timeout=takeover_timeout,
            check_interval=check_interval,
            name=name,
            telemetry=self.telemetry,
        )
        standby.node = node
        standby.start()
        self.standbys.append(standby)
        return standby

    def add_supervisor(
        self,
        heartbeat_interval: float = 0.5,
        miss_threshold: int = 3,
        restart_delay: Optional[float] = 0.5,
        name: str = "",
    ) -> Supervisor:
        """A started :class:`~repro.mgmt.supervisor.Supervisor` on this
        system's clock; register nodes with :meth:`supervise_speaker` /
        :meth:`supervise_rebroadcaster` (or ``supervisor.watch``)."""
        supervisor = Supervisor(
            self.sim,
            heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            restart_delay=restart_delay,
            name=name or f"supervisor{len(self.supervisors)}",
            telemetry=self.telemetry,
        )
        supervisor.start()
        self.supervisors.append(supervisor)
        return supervisor

    def supervise_speaker(
        self, supervisor: Supervisor, node: SpeakerNode, name: str = "",
    ):
        """Heartbeat ``node`` and cold-restart it when it goes silent."""
        speaker = node.speaker

        def probe() -> bool:
            return (
                speaker._proc is not None
                and speaker._proc.alive
                and not speaker._proc.frozen
            )

        return supervisor.watch(
            name or speaker.name, node.machine, probe,
            restart=speaker.cold_restart,
        )

    def supervise_rebroadcaster(
        self, supervisor: Supervisor, rb: Rebroadcaster, name: str = "",
    ):
        """Heartbeat a producer and restart it (epoch bumped) on silence."""

        def probe() -> bool:
            return rb.alive and not rb._proc.frozen

        return supervisor.watch(
            name or f"{rb.machine.name}/rb-ch{rb.channel.channel_id}",
            rb.machine, probe, restart=rb.restart,
        )

    # -- the dynamic control plane (ATDECC-style) --------------------------------

    def channel_by_id(self, channel_id: int) -> Optional[ChannelConfig]:
        for channel in self.channels:
            if channel.channel_id == channel_id:
                return channel
        return None

    def enable_management(
        self,
        bandwidth_bps: float = 100e6,
        latency: float = 50e-6,
    ) -> EthernetSegment:
        """Create the out-of-band management segment (idempotent).

        Discovery, enumeration, and connection management run here on
        second NICs with their own address space, so control-plane churn
        can never contend with the audio LAN for wire time, perturb its
        fault RNG draws, or leak into its conservation ledger (the
        segment is deliberately kept out of ``self.lans``).
        """
        if self.mgmt_lan is None:
            self.mgmt_lan = EthernetSegment(
                self.sim,
                bandwidth_bps=bandwidth_bps,
                latency=latency,
                seed=self._seed + 9001,
                batch_delivery=self._batched_delivery,
            )
        return self.mgmt_lan

    def _attach_mgmt(self, machine: Machine) -> None:
        if machine.mgmt_net is None:
            machine.attach_mgmt_network(
                self.enable_management(), self._next_mgmt_ip()
            )

    def add_controller(
        self,
        name: str = "",
        cpu_freq_hz: float = 500e6,
        supervisor: Optional[Supervisor] = None,
        **controller_kwargs,
    ) -> FleetController:
        """A started :class:`~repro.mgmt.controller.FleetController` on
        its own management-only machine.  Binding a ``supervisor`` routes
        lease expiries into its guarded restart path."""
        name = name or f"controller{len(self.controllers)}"
        machine = Machine(self.sim, name, cpu_freq_hz=cpu_freq_hz)
        self._attach_mgmt(machine)
        controller_kwargs.setdefault("telemetry", self.telemetry)
        controller_kwargs.setdefault("seed", self._seed)
        controller = FleetController(machine, name=name, **controller_kwargs)
        if supervisor is not None:
            controller.bind_supervisor(supervisor)
        controller.start()
        self.controllers.append(controller)
        return controller

    def advertise_speaker(
        self,
        node: SpeakerNode,
        valid_time: float = DEFAULT_VALID_TIME,
        interval: Optional[float] = None,
    ) -> EntityAdvertiser:
        """Put a speaker on the control plane: a management NIC, an ADP
        advertiser (boot/restart/crash transitions bump the serial), and
        a :class:`ManagementAgent` answering AECP/ACMP, which also
        first-starts a speaker that booted parked when the controller
        CONNECTs it."""
        self._attach_mgmt(node.machine)
        speaker = node.speaker
        entity_id = self._next_entity_id()
        node.entity_id = entity_id
        agent = ManagementAgent(speaker, entity_id=entity_id)
        agent.start()

        def on_connected(channel_id: int, node=node) -> None:
            node.channel = self.channel_by_id(channel_id)

        def on_disconnected(node=node) -> None:
            node.channel = None

        agent.on_connected = on_connected
        agent.on_disconnected = on_disconnected
        node.agent = agent
        self.mgmt_agents.append(agent)

        def probe() -> bool:
            # parked (never started) counts as healthy: the node is up
            # and waiting for its first ACMP CONNECT
            if speaker._crashed:
                return False
            proc = speaker._proc
            return proc is None or (proc.alive and not proc.frozen)

        advertiser = EntityAdvertiser(
            node.machine,
            entity_id,
            entity_kind=ENTITY_SPEAKER,
            name=speaker.name,
            probe=probe,
            valid_time=valid_time,
            interval=interval,
            channel_id_fn=lambda: (
                node.channel.channel_id if node.channel is not None else 0
            ),
            mgmt_port=MGMT_PORT,
            telemetry=self.telemetry,
        )
        advertiser.start()
        node.advertiser = advertiser
        self.advertisers.append(advertiser)
        return advertiser

    def advertise_rebroadcaster(
        self,
        rb: Rebroadcaster,
        valid_time: float = DEFAULT_VALID_TIME,
        interval: Optional[float] = None,
        entity_kind: int = ENTITY_REBROADCASTER,
        name: str = "",
    ) -> EntityAdvertiser:
        """Advertise a talker.  Restart/failover epoch bumps advance the
        serial so registries see the state change immediately."""
        self._attach_mgmt(rb.machine)
        entity_id = self._next_entity_id()

        def probe() -> bool:
            return rb.alive and not rb._proc.frozen

        advertiser = EntityAdvertiser(
            rb.machine,
            entity_id,
            entity_kind=entity_kind,
            name=name or f"{rb.machine.name}/rb-ch{rb.channel.channel_id}",
            probe=probe,
            valid_time=valid_time,
            interval=interval,
            channel_id_fn=lambda: rb.channel.channel_id,
            epoch_fn=lambda: rb.epoch,
            telemetry=self.telemetry,
        )
        advertiser.start()
        rb.advertiser = advertiser
        self.advertisers.append(advertiser)
        return advertiser

    def advertise_standby(
        self,
        standby: WarmStandby,
        valid_time: float = DEFAULT_VALID_TIME,
        interval: Optional[float] = None,
    ) -> EntityAdvertiser:
        """Advertise a warm standby; a takeover bumps its rebroadcaster
        epoch, which the advertiser turns into a serial bump."""
        return self.advertise_rebroadcaster(
            standby.rb,
            valid_time=valid_time,
            interval=interval,
            entity_kind=ENTITY_STANDBY,
            name=standby.name,
        )

    def advertise_relay(
        self,
        relay,
        valid_time: float = DEFAULT_VALID_TIME,
        interval: Optional[float] = None,
        cpu_freq_hz: float = 500e6,
    ) -> EntityAdvertiser:
        """Advertise a WAN relay.  Relays have no host machine of their
        own (they live behind WAN hops), so the advert runs on a small
        management proxy box whose probe inspects the relay."""
        machine = Machine(
            self.sim, f"{relay.name}-mgmt", cpu_freq_hz=cpu_freq_hz
        )
        self._attach_mgmt(machine)
        entity_id = self._next_entity_id()

        def probe() -> bool:
            return relay.alive

        advertiser = EntityAdvertiser(
            machine,
            entity_id,
            entity_kind=ENTITY_RELAY,
            name=relay.name,
            probe=probe,
            valid_time=valid_time,
            interval=interval,
            telemetry=self.telemetry,
        )
        advertiser.start()
        relay.advertiser = advertiser
        self.advertisers.append(advertiser)
        return advertiser

    def connect_speaker(
        self,
        controller: FleetController,
        node: SpeakerNode,
        channel: ChannelConfig,
    ) -> Process:
        """Tune ``node`` to ``channel`` through an ACMP CONNECT_RX
        transaction (the dynamic-control-plane replacement for wiring
        the channel at :meth:`add_speaker` time).  Returns the
        transaction process; its result is ``True`` on success.  The
        node's ``channel`` field updates when the command actually lands
        at its management agent, not when the transaction is issued."""
        if node.entity_id is None:
            raise ValueError(
                f"{node.speaker.name} is not advertised; call "
                "advertise_speaker() first"
            )
        return controller.connect(
            node.entity_id, channel.group_ip, channel.port,
            channel.channel_id,
        )

    def disconnect_speaker(
        self, controller: FleetController, node: SpeakerNode
    ) -> Process:
        """Park ``node`` through an ACMP DISCONNECT_RX transaction."""
        if node.entity_id is None:
            raise ValueError(
                f"{node.speaker.name} is not advertised; call "
                "advertise_speaker() first"
            )
        return controller.disconnect(node.entity_id)

    def schedule_fault(
        self,
        target,
        after: float,
        kind: str = "crash",
        restart_after: Optional[float] = None,
        seed: Optional[int] = None,
        jitter: float = 0.0,
    ) -> float:
        """Schedule a node fault ``after`` seconds from now.

        ``target`` is a :class:`SpeakerNode` (or bare speaker), a
        :class:`Rebroadcaster`, a :class:`WarmStandby`, or a WAN
        :class:`~repro.net.wan.RelayNode`; ``kind`` is
        ``"crash"`` (abrupt process death) or ``"hang"`` (wedged: stops
        consuming its socket and servicing timers without exiting).  With
        ``restart_after`` the matching recovery — ``cold_restart`` for
        speakers, epoch-bumping ``restart`` for producers — fires that
        many seconds after the fault.  ``jitter`` adds a seeded uniform
        offset to both times, so chaos scenarios stay deterministic per
        seed.  Returns the actual fault delay.
        """
        fault, recover = self._fault_actions(target, kind)
        rng = random.Random(seed)
        delay = after + (rng.uniform(0.0, jitter) if jitter > 0 else 0.0)
        self.sim.schedule(delay, fault)
        if restart_after is not None:
            recover_delay = delay + restart_after + (
                rng.uniform(0.0, jitter) if jitter > 0 else 0.0
            )
            self.sim.schedule(recover_delay, recover)
        return delay

    def _fault_actions(self, target, kind: str):
        if kind not in ("crash", "hang"):
            raise ValueError(f"unknown fault kind {kind!r}")
        if isinstance(target, (CohortMember, _CompatMember)):
            fault = target.crash if kind == "crash" else target.hang
            return fault, target.cold_restart
        speaker = None
        if isinstance(target, SpeakerNode):
            speaker = target.speaker
        elif isinstance(target, EthernetSpeaker):
            speaker = target
        if speaker is not None:
            fault = speaker.crash if kind == "crash" else speaker.hang
            return fault, speaker.cold_restart
        if isinstance(target, WarmStandby):
            fault = target.crash if kind == "crash" else (
                lambda: target.rb.hang()
            )
            return fault, target.restart
        if isinstance(target, Rebroadcaster):
            fault = target.stop if kind == "crash" else target.hang
            return fault, target.restart
        from repro.net.wan import RelayNode

        if isinstance(target, RelayNode):
            fault = target.crash if kind == "crash" else target.hang
            return fault, target.restart
        raise TypeError(f"cannot inject node faults into {target!r}")

    # -- sources ------------------------------------------------------------------

    def play_pcm(
        self,
        producer: ProducerNode,
        samples: np.ndarray,
        params: AudioParams,
        chunk_seconds: float = 0.5,
        source_paced: bool = False,
        slave_path: str = "/dev/vads",
        start_after: float = 0.0,
    ) -> Process:
        """Run an application that writes ``samples`` to the producer's VAD.

        ``source_paced=False`` models file playback (data available at
        I/O speed); ``True`` models a live source that produces audio in
        real time (an internet radio client).
        """
        data = encode_samples(samples, params)
        return self.play_bytes(
            producer, data, params, chunk_seconds, source_paced,
            slave_path, start_after,
        )

    def play_bytes(
        self,
        producer: ProducerNode,
        data: bytes,
        params: AudioParams,
        chunk_seconds: float = 0.5,
        source_paced: bool = False,
        slave_path: str = "/dev/vads",
        start_after: float = 0.0,
    ) -> Process:
        """Like :meth:`play_pcm` for pre-encoded (or synthetic) PCM bytes.

        The same feed is mirrored into the VAD of every warm standby
        registered for this producer (:meth:`add_standby`), so a standby
        that takes over is already paced to the live stream position.
        """
        chunk = params.bytes_for(chunk_seconds)

        def app(machine):
            if start_after > 0:
                yield Sleep(start_after)
            fd = yield from machine.sys_open(slave_path)
            yield from machine.sys_ioctl(fd, AUDIO_SETINFO, params)
            for pos in range(0, len(data), chunk):
                piece = data[pos : pos + chunk]
                yield from machine.sys_write(fd, piece)
                if source_paced:
                    yield Sleep(params.duration_of(len(piece)))
            yield from machine.sys_close(fd)

        for mirror in self._mirrors.get(id(producer), ()):
            mirror.machine.spawn(
                app(mirror.machine),
                name=f"{mirror.machine.name}/audio-app",
            )
        machine = producer.machine
        return machine.spawn(app(machine), name=f"{machine.name}/audio-app")

    def play_synthetic(
        self,
        producer: ProducerNode,
        duration: float,
        params: AudioParams = CD_QUALITY,
        **kwargs,
    ) -> Process:
        """Stream ``duration`` seconds of filler PCM (perf scenarios)."""
        return self.play_bytes(
            producer, bytes(params.bytes_for(duration)), params, **kwargs
        )

    # -- running & measuring --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def pipeline_report(self) -> PipelineReport:
        """The end-to-end telemetry view of this run.

        Latency/jitter percentiles come from the telemetry histograms
        (empty when telemetry is disabled); the per-channel accounting
        and conservation check work in either mode, from component
        stats.  ``in_flight`` counts datagrams still queued in speaker
        sockets — at quiescence it is zero and conservation reduces to
        ``sent == received + dropped``.
        """
        tel = self.telemetry
        channels = []
        for channel in self.channels:
            rbs = [rb for rb in self.rebroadcasters
                   if rb.channel is channel]
            nodes = [n for n in self.speakers if n.channel is channel]
            cohorts = [c for c in self.cohorts if c.channel is channel]
            if not rbs and not nodes and not cohorts:
                continue

            def _members(field: str) -> int:
                """Sum a SpeakerStats counter over per-object nodes and
                every cohort member on this channel."""
                return (
                    sum(getattr(n.stats, field) for n in nodes)
                    + sum(c.stat_sum(field) for c in cohorts)
                )

            raw = sum(rb.stats.raw_bytes for rb in rbs)
            sent_bytes = sum(rb.stats.sent_payload_bytes for rb in rbs)
            suspended = sum(rb.stats.suspended_blocks for rb in rbs)
            if raw:
                ratio = sent_bytes / raw
            else:
                ratio = 0.0 if suspended else 1.0
            data_failures = (
                tel.total(f"rebroadcaster.send_failures[ch{channel.channel_id}]")
                if tel.enabled
                else sum(rb.stats.send_failures for rb in rbs)
            )
            channels.append(ChannelReport(
                name=channel.name,
                channel_id=channel.channel_id,
                speakers=len(nodes) + sum(c.members for c in cohorts),
                data_sent=sum(rb.stats.data_sent for rb in rbs),
                control_sent=sum(rb.stats.control_sent for rb in rbs),
                send_failures=data_failures,
                data_received=_members("data_rx"),
                played=_members("played"),
                late_dropped=_members("late_dropped"),
                waiting_dropped=_members("waiting_dropped"),
                dup_dropped=_members("dup_dropped"),
                reorder_dropped=_members("reorder_dropped"),
                decode_failed=_members("decode_failed"),
                epoch_dropped=_members("epoch_dropped"),
                socket_drops=_members("socket_data_drops"),
                in_flight=(
                    sum(n.speaker.pending_data for n in nodes)
                    + sum(c.pending_data() for c in cohorts)
                ),
                suspended_blocks=suspended,
                compression_ratio=ratio,
            ))

        def _snap(name: str) -> dict:
            hist = tel.histograms.get(name)
            if hist is None or hist.count == 0:
                return {}
            return hist.snapshot()

        if self.decode_cache is not None:
            cache_stats = self.decode_cache.stats
        else:
            cache_stats = DecodeCacheStats()
        if self.encode_cache is not None:
            enc_cache_stats = self.encode_cache.stats
        else:
            enc_cache_stats = EncodeCacheStats()

        all_gaps = [
            g for n in self.speakers for g in n.stats.rejoin_gaps
        ]
        for c in self.cohorts:
            for i in range(c.members):
                all_gaps.extend(c.member_stats(i).rejoin_gaps)
        # WAN relay tree: per-hop counters plus the subtree-scaled
        # delivery budgets the conservation bound admits.  Each relay has
        # exactly one uplink hop, so denials at the hop (wire loss,
        # frames still in flight or parked in the resequencer) and at the
        # relay itself (arrivals while crashed/hung) scale by the same
        # subtree fan-out; retransmit duplicates and fallback filler are
        # deliveries the origin never sent, scaled the same way.
        wan_lost_deliveries = 0
        wan_extra_deliveries = 0
        for hop in self.wan_hops:
            relay = hop.child
            subtree = self._subtree_speakers(relay) if relay else 0
            faults = hop.link.faults
            # an injector's kills/corruptions deny at most one subtree of
            # deliveries each (corrupt frames may die at the hop parser,
            # at the relay, or decode to garbage at the leaf — all ways
            # the delivery never counts); duplicates and FEC repairs are
            # deliveries the origin never sent.  Injector-killed and
            # still-parked copies are already inside link.in_flight's
            # balance, so the explicit terms below are upper-bound slack,
            # never double-subtraction.
            injected_lost = faults.stats.lost if faults else 0
            injected_corrupt = faults.stats.corrupted if faults else 0
            injected_dup = faults.stats.duplicated if faults else 0
            wan_lost_deliveries += subtree * (
                hop.link.lost + hop.link.in_flight + hop.pending
                + hop.stats.stale_dropped + hop.stats.corrupt_dropped
                + injected_lost + injected_corrupt
                + (relay.stats.dropped_down if relay else 0)
            )
            wan_extra_deliveries += subtree * (
                hop.link.retransmits + injected_dup + hop.fec.repaired
                + (relay.stats.filler_data if relay else 0)
            )
        return PipelineReport(
            duration=self.sim.now,
            latency=_snap("pipeline.e2e_latency"),
            arrival=_snap("pipeline.arrival_latency"),
            jitter=_snap("pipeline.jitter"),
            underruns=(
                sum(n.device.underruns for n in self.speakers)
                + sum(c.underruns() for c in self.cohorts)
            ),
            silence_seconds=(
                sum(n.sink.silence_seconds for n in self.speakers)
                + sum(c.silence_seconds() for c in self.cohorts)
            ),
            channels=channels,
            wire_drops=sum(l.stats.frames_dropped for l in self.lans),
            wire_losses=sum(l.stats.receiver_losses for l in self.lans),
            injected_losses=sum(
                f.stats.lost for f in self.fault_injectors
            ),
            injected_duplicates=sum(
                f.stats.duplicated for f in self.fault_injectors
            ),
            injected_reordered=sum(
                f.stats.reordered for f in self.fault_injectors
            ),
            injected_corrupted=sum(
                f.stats.corrupted for f in self.fault_injectors
            ),
            injected_pending=sum(
                f.pending for f in self.fault_injectors
            ),
            decode_cache_hits=cache_stats.hits,
            decode_cache_misses=cache_stats.misses,
            decode_cache_evictions=cache_stats.evictions,
            encode_cache_hits=enc_cache_stats.hits,
            encode_cache_misses=enc_cache_stats.misses,
            encode_cache_evictions=enc_cache_stats.evictions,
            fanout_batch=_snap("net.fanout_batch"),
            encode_batch=_snap("origin.encode_batch"),
            failovers=sum(s.stats.takeovers for s in self.standbys),
            standdowns=sum(s.stats.standdowns for s in self.standbys),
            takeover_latency=_snap("failover.takeover_latency"),
            epoch_resyncs=(
                sum(n.stats.epoch_resyncs for n in self.speakers)
                + sum(c.stat_sum("epoch_resyncs") for c in self.cohorts)
            ),
            rejoins=len(all_gaps),
            rejoin_gap=_snap("speaker.rejoin_gap"),
            max_rejoin_gap=max(all_gaps, default=0.0),
            missed_heartbeats=sum(
                s.stats.missed_heartbeats for s in self.supervisors
            ),
            node_restarts=sum(
                s.stats.restarts for s in self.supervisors
            ),
            cohort_members=sum(c.members for c in self.cohorts),
            cohort_spills=sum(c.spills for c in self.cohorts),
            cohort_events_saved=sum(
                c.events_saved for c in self.cohorts
            ),
            wan_sent=sum(h.link.sent for h in self.wan_hops),
            wan_delivered=sum(h.link.delivered for h in self.wan_hops),
            wan_lost=sum(h.link.lost for h in self.wan_hops),
            wan_retransmits=sum(h.link.retransmits for h in self.wan_hops),
            wan_in_flight=sum(
                h.link.in_flight + h.pending for h in self.wan_hops
            ),
            wan_nacks=sum(h.stats.nacks_sent for h in self.wan_hops),
            wan_recovered=sum(h.stats.recovered for h in self.wan_hops),
            wan_abandoned=sum(h.stats.abandoned for h in self.wan_hops),
            wan_corrupt_dropped=sum(
                h.stats.corrupt_dropped for h in self.wan_hops
            ),
            wan_fec_sent=sum(h.fec.parity_sent for h in self.wan_hops),
            wan_fec_repaired=sum(h.fec.repaired for h in self.wan_hops),
            wan_fec_unrepairable=sum(
                h.fec.unrepairable for h in self.wan_hops
            ),
            wan_fec_wasted=sum(h.fec.wasted for h in self.wan_hops),
            wan_injected_losses=sum(
                f.stats.lost for f in self.wan_fault_injectors
            ),
            wan_injected_duplicates=sum(
                f.stats.duplicated for f in self.wan_fault_injectors
            ),
            wan_injected_reordered=sum(
                f.stats.reordered for f in self.wan_fault_injectors
            ),
            wan_injected_corrupted=sum(
                f.stats.corrupted for f in self.wan_fault_injectors
            ),
            relay_fallbacks=sum(r.stats.fallbacks for r in self.relays),
            relay_standdowns=sum(r.stats.standdowns for r in self.relays),
            relay_filler=sum(r.stats.filler_data for r in self.relays),
            wan_lost_deliveries=wan_lost_deliveries,
            wan_extra_deliveries=wan_extra_deliveries,
            adp_advertises=sum(
                a.stats.advertises for a in self.advertisers
            ),
            adp_expiries=sum(
                c.stats.expiries for c in self.controllers
            ),
            adp_departs=sum(
                c.stats.departs for c in self.controllers
            ),
            acmp_connects=sum(
                c.stats.acmp_connects for c in self.controllers
            ),
            acmp_failures=sum(
                c.stats.acmp_failures for c in self.controllers
            ),
            enumerations=sum(
                c.stats.enumerations for c in self.controllers
            ),
            trace_events=len(tel.tracer.events),
        )

    def chrome_trace(self) -> dict:
        """The run's Chrome ``trace_event`` JSON object (see
        ``chrome://tracing`` / Perfetto)."""
        return self.telemetry.tracer.to_chrome()

    def write_trace(self, path: str) -> None:
        self.telemetry.tracer.write(path)

    def skew_report(
        self, speakers: Optional[Sequence[SpeakerNode]] = None
    ) -> Dict[str, float]:
        """Playback skew across speakers (§3.2's central claim).

        For every stream position played by *all* speakers, the skew is
        the spread of the times the corresponding samples actually left
        each speaker's DAC.  Returns max/mean skew and the number of
        common positions compared.
        """
        nodes = list(speakers if speakers is not None else self.speakers)
        logs = []
        for node in nodes:
            emission = {}
            for play_at, offset in node.stats.write_offsets:
                t = node.sink.time_at_bytes(offset)
                if t is not None:
                    emission[play_at] = t
            logs.append(emission)
        if len(logs) < 2:
            return {"max_skew": 0.0, "mean_skew": 0.0, "positions": 0}
        common = set(logs[0])
        for log in logs[1:]:
            common &= set(log)
        if not common:
            return {"max_skew": 0.0, "mean_skew": 0.0, "positions": 0}
        skews = [
            max(log[p] for log in logs) - min(log[p] for log in logs)
            for p in common
        ]
        return {
            "max_skew": max(skews),
            "mean_skew": float(np.mean(skews)),
            "positions": len(common),
        }
