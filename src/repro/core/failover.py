"""Warm-standby rebroadcaster failover.

The paper's producer is a single point of failure: every speaker is
stateless and replaceable, but if the Rebroadcaster process dies the LAN
goes silent forever.  This module adds the missing robustness layer in
the style of production installed-audio systems (see PAPERS.md, the
self-healing audio system): a **warm standby** producer that

* runs the full producer pipeline — it reads its own mirror of the
  source feed and paces it through a rate limiter — but with
  transmission *suspended* (the MSNIP suspend machinery from §4.3);
* monitors the primary's **control-packet cadence** on the channel's
  own multicast group (controls are the liveness signal the protocol
  already broadcasts at a fixed interval);
* takes over when no control has been heard for ``takeover_timeout``
  seconds, resuming its rebroadcaster with an **incremented epoch** so
  every speaker re-anchors onto the new incarnation instead of
  misreading the handover as clock drift;
* stands down again if it later hears a control stamped with a newer
  epoch than its own (an operator brought up a replacement primary),
  returning to suspended monitoring.

Because the standby's stream clock paced the same source in the same
virtual time, its ``stream_pos`` is continuous with the primary's to
within one block — the audible gap at the speakers is bounded by the
takeover timeout plus one playout-buffer depth (asserted by the chaos
soak tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.protocol import (
    EPOCH_MOD,
    ControlPacket,
    ProtocolError,
    epoch_newer,
    parse_packet,
)
from repro.core.rebroadcaster import Rebroadcaster
from repro.metrics.telemetry import get_telemetry
from repro.sim.process import Process, ProcessKilled, Timeout


@dataclass
class FailoverStats:
    takeovers: int = 0
    standdowns: int = 0
    controls_seen: int = 0
    #: per takeover: seconds from the last control heard to the decision
    takeover_latencies: List[float] = field(default_factory=list)


class CadenceMonitor:
    """Liveness inferred from a packet cadence: silence means death.

    The protocol already broadcasts control packets at a fixed interval,
    so every downstream component can detect an upstream failure the
    same way — remember when traffic was last heard and call it dead
    once the silence exceeds ``timeout``.  Used by :class:`WarmStandby`
    (control cadence on the channel's multicast group) and by the WAN
    relay tree (uplink cadence at each :class:`~repro.net.wan.RelayNode`).

    A monitor only **arms** once traffic has been heard at all: a source
    that never transmitted is idle, not dead.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.last_heard = float("-inf")
        self.armed = False

    def heard(self, now: float) -> None:
        self.last_heard = now
        self.armed = True

    def silence(self, now: float) -> float:
        """Seconds since traffic was last heard."""
        return now - self.last_heard

    def silent(self, now: float) -> bool:
        """True once an armed monitor has outwaited ``timeout``."""
        return self.armed and self.silence(now) >= self.timeout

    def reset(self) -> None:
        """Cold start: forget everything, disarm."""
        self.last_heard = float("-inf")
        self.armed = False


class WarmStandby:
    """A suspended producer plus the watchdog that activates it.

    Parameters
    ----------
    rebroadcaster:
        the standby's own :class:`Rebroadcaster` (same channel, its own
        machine and VAD).  It is forced into the suspended state; the
        watchdog resumes it on takeover.
    takeover_timeout:
        how long the control silence must last before taking over.  Must
        comfortably exceed the primary's ``control_interval`` — see
        docs/faults.md for tuning rules.
    check_interval:
        watchdog poll granularity; the takeover decision lands within
        one check interval of the timeout expiring.
    """

    #: CPU cycles charged per observed packet (header peek + bookkeeping)
    MONITOR_CYCLES = 2000

    def __init__(
        self,
        rebroadcaster: Rebroadcaster,
        takeover_timeout: float = 1.5,
        check_interval: float = 0.25,
        name: str = "standby0",
        telemetry=None,
    ):
        if takeover_timeout <= 0:
            raise ValueError("takeover_timeout must be positive")
        self.rb = rebroadcaster
        self.machine = rebroadcaster.machine
        self.channel = rebroadcaster.channel
        self.takeover_timeout = takeover_timeout
        self.check_interval = check_interval
        self.name = name
        self.active = False
        self.stats = FailoverStats()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        tel = self.telemetry
        self._c_takeovers = tel.counter(f"failover.takeovers[{name}]")
        self._c_standdowns = tel.counter(f"failover.standdowns[{name}]")
        self._proc: Optional[Process] = None
        self._sock = None
        #: the watchdog's memory — only arms once the primary has been
        #: heard at all (a channel that never transmitted is idle, not
        #: dead)
        self._cadence = CadenceMonitor(takeover_timeout)
        self._seen_epoch: Optional[int] = None

    def start(self) -> "WarmStandby":
        """Start the suspended producer and the watchdog process."""
        self.rb.suspended = True
        if self.rb._proc is None:
            self.rb.start()
        self._proc = self.machine.spawn(
            self._monitor(), name=f"{self.machine.name}/standby-watchdog"
        )
        return self

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
        self.rb.stop()

    def crash(self) -> None:
        """Kill both the watchdog and the standby producer process."""
        self.stop()

    def restart(self) -> "WarmStandby":
        """Bring a crashed standby back into suspended monitoring."""
        if self._proc is not None and self._proc.alive:
            self._proc.kill()
        if self.rb._proc is not None and self.rb._proc.alive:
            self.rb._proc.kill()
        self.active = False
        self.rb._proc = None
        self._cadence.reset()
        return self.start()

    # -- the watchdog ---------------------------------------------------------

    def _monitor(self):
        machine = self.machine
        sock = machine.net.socket(self.channel.port, rx_capacity=32)
        sock.join_multicast(self.channel.group_ip)
        self._sock = sock
        try:
            while True:
                try:
                    msg = yield Timeout(sock.recv(), self.check_interval)
                except TimeoutError:
                    self._maybe_take_over()
                    continue
                yield machine.cpu.run(self.MONITOR_CYCLES, domain="user")
                try:
                    packet = parse_packet(msg.payload)
                except ProtocolError:
                    continue
                if (
                    not isinstance(packet, ControlPacket)
                    or packet.channel_id != self.channel.channel_id
                ):
                    continue
                self._observe_control(packet)
        except ProcessKilled:
            raise
        finally:
            sock.close()
            if self._sock is sock:
                self._sock = None

    def _observe_control(self, packet: ControlPacket) -> None:
        # the standby never hears its own transmissions (the segment
        # excludes the sender), so any control seen here is another
        # producer talking on our channel
        self.stats.controls_seen += 1
        self._cadence.heard(self.machine.sim.now)
        if self._seen_epoch is None or epoch_newer(
            packet.epoch, self._seen_epoch
        ):
            self._seen_epoch = packet.epoch
        if self.active and epoch_newer(packet.epoch, self.rb.epoch):
            self._stand_down(packet.epoch)

    def _maybe_take_over(self) -> None:
        if self.active:
            return
        now = self.machine.sim.now
        if not self._cadence.silent(now):
            return
        silence = self._cadence.silence(now)
        candidate = ((self._seen_epoch if self._seen_epoch is not None
                      else self.rb.epoch) + 1) % EPOCH_MOD
        if not epoch_newer(candidate, self.rb.epoch):
            # we were active before and already own a higher epoch
            candidate = (self.rb.epoch + 1) % EPOCH_MOD
        self.rb.epoch = candidate
        self.rb.resume()
        self.active = True
        self.stats.takeovers += 1
        self.stats.takeover_latencies.append(silence)
        self._c_takeovers.inc()
        self.telemetry.observe("failover.takeover_latency", silence)
        self.telemetry.tracer.instant(
            "failover.takeover", track=self.name,
            epoch=candidate, silence=silence,
        )

    def _stand_down(self, new_epoch: int) -> None:
        self.rb.suspend()
        self.active = False
        self.stats.standdowns += 1
        self._c_standdowns.inc()
        self.telemetry.tracer.instant(
            "failover.standdown", track=self.name, yielded_to=new_epoch,
        )
