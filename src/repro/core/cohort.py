"""Speaker cohorts: N identical unity-gain receivers as one state block.

``BENCH_fanout.json`` put the scaling wall at per-speaker Python-object
and event cost.  A :class:`SpeakerCohort` removes it for the common case
— many speakers tuned to the same channel, all at unity gain, all seeing
the same loss-free stream — by running **one** real exemplar
:class:`~repro.core.speaker.EthernetSpeaker` on a private backplane and
representing the other N-1 members as rows of numpy arrays (seq/dup
windows, ring offsets, drop/epoch counters, playout clocks) that advance
in lockstep with the exemplar, one event per delivered frame instead of
N.

The moment a member's stream diverges from the shared one — a
per-receiver loss/jitter/corruption draw, a duplicate, a reorder hold, a
crash or hang — that member **spills**: a full per-object speaker is
built mid-stream carrying the member's seq window, ring offset, playout
clock and ledger, and from then on it is an ordinary node.  The spill is
timed so the clone is bit-identical to the per-object speaker it stands
in for: it executes at the exemplar's packet boundary *before* the first
frame the member did not share, so every scalar the clone copies is
exactly the state the per-object twin had at that instant.

Fate draws stay scalar and in per-member order (see
``FaultInjector._copy_fate`` and the segment/switch cohort loops), so a
seeded cohort run consumes the wire RNG in exactly the sequence the
per-object fleet does — the property the differential harness
(``tests/core/test_cohort_differential.py``) asserts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace as _dc_replace
from typing import List, Optional

import numpy as np

from repro.core.protocol import TYPE_DATA, peek_type
from repro.core.speaker import EthernetSpeaker
from repro.kernel.audio import AudioDevice, HardwareAudioDriver, SpeakerSink
from repro.kernel.machine import Machine
from repro.net.nic import Nic
from repro.net.segment import Datagram

#: member token states
ALIGNED = 0    # represented by the exemplar + array row
PENDING = 1    # divergence drawn, spill armed on the exemplar's boundary
SPILLED = 2    # full per-object speaker


class VectorSeqWindows:
    """The speaker's 128-entry recent-seq window, N rows at a time.

    Row semantics match ``EthernetSpeaker`` exactly: ``_recent_seqs`` is
    the set of live ring entries, ``_recent_order`` is the ring in
    insertion order, and ``_last_seq`` is -1 for "no sequence seen yet".
    ``tests/core/test_cohort_window.py`` holds the array semantics to the
    scalar ones across wraparound, eviction and epoch resets.
    """

    def __init__(self, members: int, window: int = 128):
        self.n = members
        self.window = window
        self.ring = np.full((members, window), -1, dtype=np.int64)
        self.pos = np.zeros(members, dtype=np.int64)
        self.count = np.zeros(members, dtype=np.int64)
        self.last_seq = np.full(members, -1, dtype=np.int64)

    def seen(self, rows, seq: int):
        """Boolean per row: is ``seq`` in the row's recent window?"""
        return (self.ring[rows] == seq).any(axis=-1)

    def accept(self, rows, seq: int) -> None:
        """Remember ``seq`` on every selected row (the scalar
        ``_remember_seq`` + ``_last_seq`` update, broadcast)."""
        self.last_seq[rows] = seq
        pos = self.pos[rows]
        self.ring[rows, pos] = seq
        self.pos[rows] = (pos + 1) % self.window
        np.minimum(self.count[rows] + 1, self.window, out=pos)
        self.count[rows] = pos

    def reset(self, rows) -> None:
        """The scalar ``_reset_stream_state`` for the window."""
        self.ring[rows] = -1
        self.pos[rows] = 0
        self.count[rows] = 0
        self.last_seq[rows] = -1

    def extract(self, idx: int):
        """Scalar carry-out for a spilling member: ``(last_seq|None,
        insertion-ordered recent seqs)``."""
        count = int(self.count[idx])
        pos = int(self.pos[idx])
        if count < self.window:
            order = self.ring[idx, :count]
        else:
            order = np.concatenate([self.ring[idx, pos:],
                                    self.ring[idx, :pos]])
        last = int(self.last_seq[idx])
        return (None if last < 0 else last), [int(s) for s in order]


class _CohortBackplane:
    """Duck-typed segment for the exemplar and spilled clones.

    It is never a transmission medium — speakers only receive — so
    attach/detach book-keeping is all it needs.  Keeping these NICs off
    the real LAN preserves the LAN's ``_nics`` order and therefore the
    wire RNG draw sequence the differential harness depends on.
    """

    def __init__(self):
        self._nics: List[Nic] = []

    def attach(self, nic) -> None:
        self._nics.append(nic)

    def detach(self, nic) -> None:
        if nic in self._nics:
            self._nics.remove(nic)

    def transmit(self, dgram, sender=None) -> bool:  # pragma: no cover
        return True

    def set_fault_injector(self, faults) -> None:  # pragma: no cover
        pass


class CohortNic(Nic):
    """The cohort's one seat on the LAN.

    Segment and switch delivery loops recognise the ``cohort`` attribute
    and run the per-member fate loop instead of a single delivery; the
    plain :meth:`deliver` fallback treats the frame as clean for every
    member (used only by paths that bypass the cohort-aware loops, e.g.
    an injector flush for a key that is not a member token).
    """

    def __init__(self, segment, ip: str, vlan: int, cohort: "SpeakerCohort"):
        super().__init__(segment, ip, vlan=vlan, name=f"{cohort.name}/nic")
        self.cohort = cohort

    @property
    def receiver_count(self) -> int:
        return self.cohort.members

    def deliver(self, dgram: Datagram) -> None:
        self.rx_frames += 1
        self.cohort._fallback_deliver(dgram)


class CohortMember:
    """One member's permanent identity.

    The token outlives every state transition — it is the key the fault
    injector's Gilbert–Elliott chains and reorder holds are filed under,
    so a member keeps its loss-burst phase across ALIGNED → PENDING →
    SPILLED.  ``deliver`` is the NIC-shaped entry point those mechanisms
    call: before the spill it parks the copy; after, it feeds the clone.
    """

    __slots__ = ("cohort", "idx", "state", "buffer", "pend_offer",
                 "pend_frame", "hang_req", "node", "spill_reason")

    def __init__(self, cohort: "SpeakerCohort", idx: int):
        self.cohort = cohort
        self.idx = idx
        self.state = ALIGNED
        self.buffer: List[Datagram] = []
        self.pend_offer: Optional[int] = None
        self.pend_frame: Optional[int] = None
        self.hang_req = False
        self.node: Optional[EthernetSpeaker] = None
        self.spill_reason = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CohortMember {self.cohort.name}[{self.idx}] s={self.state}>"

    # -- NIC duck type (what FaultInjector and the wire loops call) ---------

    def deliver(self, dgram: Datagram) -> None:
        if self.state == SPILLED:
            self.node.machine.net.nic.deliver(dgram)
        else:
            # divergence copies arriving before the spill executes; the
            # spill pours these into the clone's socket at the same
            # virtual instant, so nothing is early or late
            self.buffer.append(dgram)

    # -- node-shaped handle (what schedule_fault and tests use) -------------

    @property
    def spilled(self) -> bool:
        return self.state == SPILLED

    @property
    def speaker(self) -> EthernetSpeaker:
        return self.node if self.node is not None else self.cohort.exemplar

    @property
    def stats(self):
        return self.speaker.stats

    @property
    def sink(self) -> SpeakerSink:
        if self.node is not None:
            return self.node._cohort_sink
        return self.cohort._ex_sink

    def crash(self) -> None:
        self.cohort.crash_member(self)

    def hang(self) -> None:
        self.cohort.hang_member(self)

    def unhang(self) -> None:
        if self.node is not None:
            self.node.unhang()
        else:  # never spilled: the hang request never landed
            self.hang_req = False

    def cold_restart(self) -> None:
        self.cohort.restart_member(self)


class _ExemplarSpeaker(EthernetSpeaker):
    """The one real speaker that stands for every aligned member.

    Overrides the cohort hooks in the receive loop: offers are resolved
    and spills executed *before* a packet is consumed, and each packet's
    scalar effects are folded into the member arrays afterwards.
    """

    cohort: "SpeakerCohort" = None

    def _open_socket(self):
        sock = super()._open_socket()
        self.cohort._instrument_socket(sock)
        return sock

    def _note_packet_start(self, msg) -> None:
        c = self.cohort
        offer, _is_data = c._meta.popleft()
        if c._pending or c._hangs:
            c._run_spills(offer, msg)

    def _packet_boundary(self) -> None:
        self.cohort._sync_rows()

    def _remember_seq(self, seq: int) -> None:
        super()._remember_seq(seq)
        c = self.cohort
        c.windows.accept(c._mask, seq)

    def _reset_stream_state(self) -> None:
        super()._reset_stream_state()
        c = self.cohort
        if c is not None:
            c.windows.reset(c._mask)


class SpeakerCohort:
    """N identical unity-gain speakers advanced as one state block.

    Construction mirrors ``EthernetSpeakerSystem.add_speaker`` member for
    member — same machine speed, same audio geometry, same socket depth —
    but only the exemplar is real; the rest are array rows until they
    spill.  Per-member gain, verifiers and room models are per-object
    concerns and are rejected here: a member needing them should be an
    ordinary ``add_speaker`` node.
    """

    def __init__(
        self,
        sim,
        lan,
        members: int,
        group_ip: str,
        port: int,
        *,
        ip: str,
        vlan: int = 1,
        cpu_freq_hz: float = 233e6,
        block_seconds: float = 0.065,
        speaker_kwargs: Optional[dict] = None,
        name: str = "cohort0",
        telemetry=None,
        decode_cache=None,
    ):
        if members < 1:
            raise ValueError("a cohort needs at least one member")
        kwargs = dict(speaker_kwargs or {})
        for bad in ("verifier", "room"):
            if kwargs.get(bad) is not None:
                raise ValueError(f"cohort members cannot carry a {bad}")
        self.sim = sim
        self.lan = lan
        self.members = members
        self.group_ip = group_ip
        self.port = port
        self.name = name
        self.telemetry = telemetry
        #: events that did not need scheduling because one exemplar event
        #: represented many members (the ``cohort_events_saved`` row)
        self.events_saved = 0
        self.spills = 0
        # -- the exemplar on its private backplane --------------------------
        self._backplane = _CohortBackplane()
        self._speaker_kwargs = kwargs
        self._cpu_freq_hz = cpu_freq_hz
        self._block_seconds = block_seconds
        self._decode_cache = decode_cache
        machine = Machine(sim, f"{name}-ex", cpu_freq_hz=cpu_freq_hz)
        machine.attach_network(self._backplane, ip, vlan=vlan)
        self._ex_sink = SpeakerSink(f"{name}-ex/speaker")
        self._ex_driver = HardwareAudioDriver(machine, sink=self._ex_sink)
        self._ex_device = AudioDevice(
            machine, self._ex_driver, block_seconds=block_seconds,
            telemetry=telemetry,
        )
        machine.register_device(kwargs.get("audio_path", "/dev/audio"),
                                self._ex_device)
        self.exemplar = _ExemplarSpeaker(
            machine, group_ip, port, name=f"{name}-ex",
            telemetry=telemetry, decode_cache=decode_cache, **kwargs,
        )
        self.exemplar.cohort = self
        # -- the LAN seat and member tokens ---------------------------------
        self.nic = CohortNic(lan, ip, vlan, self)
        self.nic.join_group(group_ip)
        self.tokens = [CohortMember(self, i) for i in range(members)]
        self._pending: List[CohortMember] = []
        self._hangs: List[CohortMember] = []
        # -- array-backed member state --------------------------------------
        self.windows = VectorSeqWindows(members,
                                        EthernetSpeaker.RECENT_SEQ_WINDOW)
        self._mask = np.ones(members, dtype=bool)  # aligned + pending rows
        z = lambda dt: np.zeros(members, dtype=dt)
        self.arr_bytes_written = z(np.int64)
        self.arr_write_base = z(np.int64)
        self.arr_epoch = np.full(members, -1, dtype=np.int64)
        self.arr_anchor_time = z(np.float64)
        self.arr_anchor_pos = z(np.float64)
        self.arr_anchored = z(bool)
        self.arr_playing = z(bool)
        self.arr_gap_started = np.full(members, np.nan, dtype=np.float64)
        #: per-member ledger counters, mirrored from the exemplar at every
        #: packet boundary (the "drop/epoch counters" of the array block)
        self.counters = {
            f: z(np.int64) for f in (
                "data_rx", "control_rx", "played", "late_dropped",
                "waiting_dropped", "seq_gaps", "concealed", "dup_dropped",
                "reorder_dropped", "decode_failed", "resyncs",
                "epoch_resyncs", "epoch_dropped", "stale_controls",
                "socket_data_drops", "garbage_rx",
            )
        }
        # -- shared-delivery machinery --------------------------------------
        self._next_offer = 0       # exemplar socket delivery attempts
        self._meta = deque()       # (offer, is_data) per queued item
        self._watch = {}           # id(payload) -> (payload, [tokens])
        self._frame_idx = 0        # transmit-side frame counter
        self._inflight = deque()   # [frame_idx, deliver_at, dgram]
        self.exemplar.start()

    # -- counts -------------------------------------------------------------

    @property
    def aligned(self) -> int:
        return sum(1 for t in self.tokens if t.state == ALIGNED)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def needs_reference_stream(self) -> bool:
        """The exemplar must keep consuming while anyone mirrors it —
        pending members spill from its packet boundaries."""
        return bool(self._mask.any())

    # -- wire-side entry points ---------------------------------------------

    def mark_divergent(self, tok: CohortMember, dgram: Datagram,
                       reason: str = "fault") -> None:
        """Member ``tok``'s copy of ``dgram`` differs from the shared one
        (lost, duplicated, corrupted, jittered or held).  Arm the spill:
        it fires when the exemplar is about to consume this frame, i.e.
        at the last instant member and exemplar state still agree."""
        if tok.state != ALIGNED:
            return
        tok.state = PENDING
        tok.spill_reason = reason
        tok.pend_frame = self._frame_idx + 1
        key = id(dgram.payload)
        entry = self._watch.get(key)
        if entry is None:
            # the payload ref pins the id() until the exemplar sees it
            self._watch[key] = (dgram.payload, [tok])
        else:
            entry[1].append(tok)
        self._pending.append(tok)

    def finish_frame(self, dgram: Datagram, delay: float,
                     represented: int) -> None:
        """End of the per-member fate loop for one frame: schedule the
        single shared delivery standing in for ``represented`` aligned
        members (and for the spill boundaries of pending ones)."""
        self._frame_idx += 1
        if represented > 0:
            self.events_saved += represented - 1
        if represented > 0 or self._pending:
            entry = [self._frame_idx, self.sim.now + delay, dgram]
            self._inflight.append(entry)
            self.sim.schedule_transient(delay, self._clean_rx, entry)

    def _clean_rx(self, entry) -> None:
        self._inflight.popleft()
        self.exemplar.machine.net.nic.deliver(entry[2])

    def _fallback_deliver(self, dgram: Datagram) -> None:
        represented = 0
        for tok in self.tokens:
            if tok.state == ALIGNED:
                represented += 1
            else:
                tok.deliver(dgram)
        self.finish_frame(dgram, 0.0, represented)

    # -- exemplar-side machinery ---------------------------------------------

    def _instrument_socket(self, sock) -> None:
        """Wrap the exemplar socket's enqueue to assign offer indices and
        resolve armed spills to them.  Offers count delivery *attempts*;
        the meta deque mirrors only what actually queued, so it stays in
        lockstep with the receive loop's consumption order."""
        inner = sock._enqueue

        def enqueue(item):
            offer = self._next_offer
            self._next_offer += 1
            watched = self._watch.pop(id(item.payload), None)
            if watched is not None:
                for tok in watched[1]:
                    if tok.pend_offer is None:
                        tok.pend_offer = offer
            drops = sock.drops
            inner(item)
            if sock.drops == drops:
                self._meta.append(
                    (offer, peek_type(item.payload) == TYPE_DATA)
                )

        sock._enqueue = enqueue

    def _run_spills(self, offer: int, msg=None) -> None:
        due = [t for t in self._pending
               if t.pend_offer is not None and t.pend_offer <= offer]
        for tok in due:
            self._pending.remove(tok)
            self._spill(tok, crashed=False)
        if self._hangs:
            hangs, self._hangs = self._hangs, []
            for tok in hangs:
                if tok.state != SPILLED:
                    if tok in self._pending:
                        self._pending.remove(tok)
                    # a hanging member stops consuming but keeps
                    # receiving: its per-object twin freezes with every
                    # shared-but-unconsumed packet still queued — carry
                    # the exemplar's backlog (and the packet the exemplar
                    # is about to consume) so the restart drains and
                    # classifies the same copies
                    self._spill(tok, crashed=False, carry_queue=True,
                                head=msg)
                tok.node.hang()

    def _sync_rows(self) -> None:
        """Fold the packet the exemplar just processed into every
        mirroring row (the one-event-for-N advance)."""
        if not self._mask.any():
            return
        ex = self.exemplar
        m = self._mask
        st = ex.stats
        self.arr_bytes_written[m] = ex._bytes_written
        self.arr_write_base[m] = ex._write_base
        self.arr_epoch[m] = -1 if ex._epoch is None else ex._epoch
        anchored = ex._anchor is not None
        self.arr_anchored[m] = anchored
        if anchored:
            self.arr_anchor_time[m] = ex._anchor[0]
            self.arr_anchor_pos[m] = ex._anchor[1]
        self.arr_playing[m] = ex._playing_started
        self.arr_gap_started[m] = (
            np.nan if ex._gap_started is None else ex._gap_started
        )
        counters = self.counters
        for field, arr in counters.items():
            arr[m] = getattr(st, field)

    # -- the spill ------------------------------------------------------------

    def _clone_cpu_state(self, machine: Machine, proc_map) -> None:
        """Replicate the exemplar CPU's scheduling context on the clone.

        Without the in-flight slice the clone would dispatch its next job
        up to a DMA-tick ISR early and drift off the per-object timeline.
        """
        from repro.sim.cpu import IDLE, _CpuJob

        ex = self.exemplar.machine.cpu
        cpu = machine.cpu
        cpu._last_owner = proc_map(ex._last_owner)
        cpu._continuous = ex._continuous
        cpu._last_busy_end = ex._last_busy_end
        if ex._current is not None:
            job = ex._current
            slice_cycles = min(ex.quantum * ex.freq_hz, job.remaining)
            twin = _CpuJob(cpu, slice_cycles, job.domain,
                           proc_map(job.owner))
            twin.running = True
            cpu._current = twin
            cpu._slice_end_at = ex._slice_end_at
            self.sim.schedule_transient(
                max(0.0, ex._slice_end_at - self.sim.now),
                cpu._slice_done, twin, slice_cycles,
            )
        for job in ex._run_queue:
            cpu._run_queue.append(
                _CpuJob(cpu, job.remaining, job.domain, proc_map(job.owner))
            )

    def _spill(self, tok: CohortMember, crashed: bool,
               carry_queue: bool = False, head=None) -> None:
        """Materialise member ``tok`` as a per-object speaker.

        For boundary spills (``crashed=False``) this runs inside the
        exemplar's ``_note_packet_start``, before the first frame the
        member did not share, so member state *is* exemplar state.  For
        crash spills it runs at the fault instant; the member and the
        exemplar sat at the same yield of the same timeline, so the live
        copy (half-finished packet included) is exact there too.
        """
        ex = self.exemplar
        idx = tok.idx
        sim = self.sim
        now = sim.now
        machine = Machine(sim, f"{self.name}-m{idx}",
                          cpu_freq_hz=self._cpu_freq_hz)
        machine.attach_network(self._backplane, f"{self.nic.ip}.{idx}",
                               vlan=self.nic.vlan)
        sink = SpeakerSink(f"{self.name}-m{idx}/speaker")
        sink.records = list(self._ex_sink.records)
        sink.silence_events = self._ex_sink.silence_events
        sink.first_audio_time = self._ex_sink.first_audio_time
        driver = HardwareAudioDriver(machine, sink=sink)
        driver.blocks_played = self._ex_driver.blocks_played
        driver._running = self._ex_driver._running
        driver._halt_requested = self._ex_driver._halt_requested
        exdev = self._ex_device
        device = AudioDevice(machine, driver,
                             block_seconds=exdev.block_seconds,
                             ring_blocks=exdev.ring_blocks,
                             telemetry=self.telemetry)
        device.params = exdev.params
        device._recompute_sizes()
        device._chunks = deque(exdev._chunks)
        device._level = exdev._level
        device.started = exdev.started
        device._silent_run = exdev._silent_run
        device._close_requested = exdev._close_requested
        device.underruns = exdev.underruns
        device.silence_bytes = exdev.silence_bytes
        device.bytes_written = exdev.bytes_written
        audio_path = self._speaker_kwargs.get("audio_path", "/dev/audio")
        machine.register_device(audio_path, device)
        if driver._running and sink.records:
            # the DMA chain is live: the clone's next completion lands at
            # the same instant the exemplar's will
            last_t, last_data, _, params = sink.records[-1]
            next_tick = last_t + params.duration_of(len(last_data))
            sim.schedule(max(0.0, next_tick - now), driver._tick, device)
        clone = EthernetSpeaker(
            machine, self.group_ip, self.port, name=f"{self.name}-m{idx}",
            telemetry=self.telemetry, decode_cache=self._decode_cache,
            **self._speaker_kwargs,
        )
        clone._cohort_sink = sink
        # scalar carry: the seq window and ring offset come from the
        # member's array row (== the exemplar's scalars by the lockstep
        # invariant); everything list-shaped is copied from the exemplar
        last_seq, order = self.windows.extract(idx)
        clone._last_seq = last_seq
        clone._recent_order = deque(order)
        clone._recent_seqs = set(order)
        clone._bytes_written = int(self.arr_bytes_written[idx])
        clone._write_base = int(self.arr_write_base[idx])
        epoch = int(self.arr_epoch[idx])
        clone._epoch = None if epoch < 0 else epoch
        if self.arr_anchored[idx]:
            clone._anchor = (float(self.arr_anchor_time[idx]),
                             float(self.arr_anchor_pos[idx]))
        clone._playing_started = bool(self.arr_playing[idx])
        gap = float(self.arr_gap_started[idx])
        clone._gap_started = None if np.isnan(gap) else gap
        clone._params = ex._params
        clone._last_pcm = ex._last_pcm
        clone._last_arrival = ex._last_arrival
        clone._last_block_seconds = ex._last_block_seconds
        clone._resync_candidate = ex._resync_candidate
        clone.last_output_rms = ex.last_output_rms
        clone.stats = _dc_replace(
            ex.stats,
            rejoin_gaps=list(ex.stats.rejoin_gaps),
            play_log=list(ex.stats.play_log),
            write_offsets=list(ex.stats.write_offsets),
        )
        sock = machine.net.socket(self.port,
                                  rx_capacity=ex.rx_buffer_packets)
        sock.join_multicast(self.group_ip)
        sock.drop_hook = clone._classify_drop
        clone._sock = sock
        fd = machine.open_direct(audio_path)
        sentinel = object()

        def proc_map(owner):
            if owner is ex._proc:
                return sentinel if crashed else "proc"
            return owner

        self._clone_cpu_state(machine, proc_map)
        self.spills += 1
        tok.state = SPILLED
        tok.node = clone
        self._mask[idx] = False
        if crashed or carry_queue:
            # the backlog: queued shared frames the member had also
            # received, then every in-flight shared delivery, land in the
            # clone's bounded queue exactly as they would have per-object
            # (a crash wreck and a hanging member both keep receiving
            # without consuming).  The barriers cut at the member's own
            # divergence, past which its copies travel via tok.buffer.
            barrier_o = tok.pend_offer
            barrier_f = tok.pend_frame
            if head is not None:
                sock._enqueue(head)
            items = list(ex._sock._rx._items)
            for meta, item in zip(self._meta, items):
                if barrier_o is not None and meta[0] >= barrier_o:
                    break
                sock._enqueue(item)
            for frame, at, dgram in self._inflight:
                if barrier_f is not None and frame >= barrier_f:
                    continue
                sim.schedule_transient(max(0.0, at - now),
                                       machine.net.nic.deliver, dgram)
        if crashed:
            clone._crashed = True
            clone._begin_outage_gap()
        for dgram in tok.buffer:
            machine.net.nic.deliver(dgram)
        tok.buffer = []
        if not crashed:
            proc = clone.start_resumed(sock, fd)
            cpu = machine.cpu
            if cpu._last_owner == "proc":
                cpu._last_owner = proc
            if cpu._current is not None and cpu._current.owner == "proc":
                cpu._current.owner = proc
            for job in cpu._run_queue:
                if job.owner == "proc":
                    job.owner = proc

    # -- member faults --------------------------------------------------------

    def crash_member(self, tok: CohortMember) -> None:
        if tok.state == SPILLED:
            tok.node.crash()
            return
        if tok in self._pending:
            self._pending.remove(tok)
        tok.spill_reason = tok.spill_reason or "crash"
        self._spill(tok, crashed=True)

    def hang_member(self, tok: CohortMember) -> None:
        """Hangs spill at the next exemplar packet boundary (documented
        approximation: a per-object hang freezes mid-wait; a cohort
        member freezes just before its next packet)."""
        if tok.state == SPILLED:
            tok.node.hang()
            return
        tok.hang_req = True
        self._hangs.append(tok)

    def restart_member(self, tok: CohortMember) -> None:
        if tok.state != SPILLED:
            if tok in self._pending:
                self._pending.remove(tok)
            tok.spill_reason = tok.spill_reason or "restart"
            self._spill(tok, crashed=True)
        tok.node.cold_restart()

    # -- ledgers --------------------------------------------------------------

    def _mirrored(self) -> int:
        return int(self._mask.sum())

    def stat_sum(self, field: str) -> int:
        """Sum a SpeakerStats counter over every member: mirroring rows
        share the exemplar's value, spilled members contribute their
        clone's."""
        total = self._mirrored() * getattr(self.exemplar.stats, field)
        for tok in self.tokens:
            if tok.state == SPILLED:
                total += getattr(tok.node.stats, field)
        return total

    def socket_drops(self) -> int:
        mirrored = self._mirrored()
        total = mirrored * self.exemplar._sock.drops
        for tok in self.tokens:
            if tok.state == SPILLED and tok.node._sock is not None:
                total += tok.node._sock.drops
        return total

    def pending_data(self) -> int:
        """Data copies queued but unconsumed, summed over members.

        A pending member's share of the exemplar queue stops at its
        divergence offer; copies parked in its token buffer are still in
        flight to it and count the same way.
        """
        ex_pending = self.exemplar.pending_data
        total = self.aligned * ex_pending
        for tok in self._pending:
            if tok.pend_offer is None:
                share = ex_pending
            else:
                share = sum(
                    1 for (offer, is_data) in self._meta
                    if is_data and offer < tok.pend_offer
                )
            share += sum(
                1 for d in tok.buffer if peek_type(d.payload) == TYPE_DATA
            )
            total += share
        for tok in self.tokens:
            if tok.state == SPILLED:
                total += tok.node.pending_data
                total += sum(
                    1 for d in tok.buffer
                    if peek_type(d.payload) == TYPE_DATA
                )
        return total

    def underruns(self) -> int:
        total = self._mirrored() * self._ex_device.underruns
        for tok in self.tokens:
            if tok.state == SPILLED:
                total += tok.node.machine.devices[
                    self._speaker_kwargs.get("audio_path", "/dev/audio")
                ].underruns
        return total

    def silence_seconds(self) -> float:
        total = self._mirrored() * self._ex_sink.silence_seconds
        for tok in self.tokens:
            if tok.state == SPILLED:
                total += tok.node._cohort_sink.silence_seconds
        return total

    # -- per-member views (the differential harness reads these) -------------

    def member_stats(self, i: int):
        return self.tokens[i].stats

    def member_play_log(self, i: int):
        return self.tokens[i].stats.play_log

    def member_write_offsets(self, i: int):
        return self.tokens[i].stats.write_offsets

