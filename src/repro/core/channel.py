"""Channel configuration shared by producer and speakers."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.audio.params import AudioParams
from repro.codec.base import CodecID


@dataclass(frozen=True)
class ChannelConfig:
    """One audio channel: a multicast group plus compression policy.

    ``compress`` is the selective-compression policy of §2.2: low-bit-rate
    channels are "still sent uncompressed because the use of Ogg Vorbis
    introduces latency and increases the workload on the sender".

    * ``"never"`` — raw PCM always;
    * ``"always"`` — VorbisLike at ``quality`` always;
    * ``"auto"`` — compress only when the raw stream exceeds
      ``compress_threshold_bps``.
    """

    channel_id: int
    name: str
    group_ip: str
    port: int
    params: AudioParams
    compress: str = "auto"
    quality: int = 10
    compress_threshold_bps: int = 256_000
    codec_id: CodecID = CodecID.VORBIS_LIKE

    def __post_init__(self) -> None:
        if self.compress not in ("never", "always", "auto"):
            raise ValueError(f"bad compress policy: {self.compress}")
        if not 0 <= self.quality <= 10:
            raise ValueError(f"quality must be 0..10: {self.quality}")

    def effective_codec(self, params: AudioParams) -> CodecID:
        """The codec the rebroadcaster will use for a stream in ``params``."""
        if self.compress == "never":
            return CodecID.RAW
        if self.compress == "always":
            return self.codec_id
        if params.bits_per_second > self.compress_threshold_bps:
            return self.codec_id
        return CodecID.RAW

    def with_params(self, params: AudioParams) -> "ChannelConfig":
        return replace(self, params=params)
