"""Reproduction of "The Ethernet Speaker System" (Turner & Prevelakis,
FREENIX Track, USENIX Annual Technical Conference 2005).

The public entry point for most uses is
:class:`repro.core.EthernetSpeakerSystem`; the subpackages follow the
system's layering:

========================  ====================================================
``repro.sim``             discrete-event simulation core (processes, CPUs)
``repro.kernel``          the simulated kernel: audio drivers, the VAD, mic
``repro.audio``           PCM formats, signals, analysis
``repro.codec``           VorbisLike / Mp3Like / ADPCM codecs + cost models
``repro.net``             Ethernet, multicast, VLANs, MACsec, WAN links
``repro.core``            protocol, rate limiter, rebroadcaster, speakers
``repro.apps``            unmodified-application simulacra
``repro.platform``        hardware profiles, NVRAM, netboot
``repro.security``        HMAC/HORS authentication, CA, attack models
``repro.mgmt``            catalog, SNMP MIB, override, auto volume
``repro.metrics``         vmstat sampler and report helpers
========================  ====================================================

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced results.
"""

__version__ = "1.0.0"
