"""Deterministic discrete-event simulation core.

Everything in this reproduction — kernels, CPUs, networks, audio hardware —
runs on virtual time provided by :class:`~repro.sim.core.Simulator`.
Processes are Python generators that yield *waitables* (sleeps, queue gets,
resource acquisitions, CPU work) back to the scheduler.
"""

from repro.sim.core import Simulator, SimError, Event
from repro.sim.process import (
    Process,
    ProcessKilled,
    Sleep,
    Timeout,
    WaitProcess,
    current_process,
)
from repro.sim.resources import Queue, QueueClosed, Resource, Signal
from repro.sim.cpu import CPU, CpuStats

__all__ = [
    "Simulator",
    "SimError",
    "Event",
    "Process",
    "ProcessKilled",
    "Sleep",
    "Timeout",
    "WaitProcess",
    "current_process",
    "Queue",
    "QueueClosed",
    "Resource",
    "Signal",
    "CPU",
    "CpuStats",
]
