"""Event loop and virtual clock.

The :class:`Simulator` owns a priority queue of timed events.  Nothing in the
repository reads the host's wall clock: every duration — a DMA block transfer,
a context switch, a packet serialisation delay, an Ogg-style encode — is
expressed as virtual seconds scheduled here.  That determinism is what lets
the timing-sensitive experiments of the paper (synchronisation skew, buffer
sizing on a 233 MHz CPU) reproduce bit-for-bit on any machine.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimError(Exception):
    """Raised for misuse of the simulation core."""


#: bucket bounds for queue-depth/cascade histograms (kept here so the
#: event loop never has to import the metrics package)
_DEPTH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel it.  The
    ``seq`` field breaks ties between events scheduled for the same instant,
    preserving FIFO order of scheduling.

    ``transient`` marks an event scheduled through
    :meth:`Simulator.schedule_transient`: no handle was handed out, so it
    can never be cancelled, and the simulator recycles the object through a
    free list after it fires.  Events with visible handles are never
    recycled — a caller may legitimately hold one and cancel it long after
    it ran.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "transient")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.transient = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event scheduler with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "hello at t=1.5")
        sim.run(until=10.0)
    """

    #: free-list bound: enough to absorb the steady-state churn of a large
    #: fan-out without pinning memory after a burst
    MAX_FREE_EVENTS = 4096

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[Event] = []
        #: recycled transient Event objects (allocation free-list)
        self._free: list[Event] = []
        #: events executed so far (plain int so benchmarks can compute
        #: events/sec with telemetry disabled)
        self.events_executed = 0
        #: exceptions that escaped processes nobody was waiting on;
        #: re-raised at the end of :meth:`run` so tests cannot miss them.
        self.unhandled: list[BaseException] = []
        #: attached :class:`repro.metrics.telemetry.Telemetry`, or None.
        #: Duck-typed on purpose: the metrics package imports the kernel
        #: (vmstat), so the event loop must not import metrics.
        self.telemetry = None
        self._batch_events = 0

    def set_telemetry(self, telemetry) -> None:
        """Attach a telemetry registry; pass ``None`` (or a disabled
        registry) to return the loop to its uninstrumented fast path."""
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        self.telemetry = telemetry
        self._batch_events = 0

    def _record_step(self, ev: Event) -> None:
        """Event-loop health: events executed, queue depth, and the depth
        of zero-delay cascades (events piling up at one instant — the
        sim-world analogue of scheduling lag)."""
        tel = self.telemetry
        tel.count("sim.events")
        if ev.time == self._now and self._batch_events:
            self._batch_events += 1
        else:
            if self._batch_events > 1:
                tel.observe("sim.zero_delay_cascade", self._batch_events,
                            bounds=_DEPTH_BOUNDS)
            self._batch_events = 1
        if tel.counters["sim.events"].value % 64 == 0:
            tel.observe("sim.queue_depth", len(self._heap),
                        bounds=_DEPTH_BOUNDS)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        ev = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_transient(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` with no cancellation handle.

        The hot-path variant of :meth:`schedule` for fire-and-forget work
        (packet deliveries, process wakeups, CPU slice completions): since
        no handle escapes, the Event object is drawn from — and returned
        to — a bounded free list, cutting per-event allocation churn.
        """
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        free = self._free
        if free:
            ev = free.pop()
            ev.time = self._now + delay
            ev.seq = self._seq
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(self._now + delay, self._seq, fn, args)
            ev.transient = True
        heapq.heappush(self._heap, ev)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice is harmless."""
        event.cancelled = True

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``False`` when the queue is empty.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if self.telemetry is not None:
                self._record_step(ev)
            self._now = ev.time
            self.events_executed += 1
            ev.fn(*ev.args)
            if ev.transient and len(self._free) < self.MAX_FREE_EVENTS:
                ev.fn = None
                ev.args = ()
                self._free.append(ev)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so measurement windows have a
        well-defined length.  Re-raises the first unhandled process
        exception, if any.
        """
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                break
            self.step()
            if self.unhandled:
                raise self.unhandled[0]
        if until is not None and until > self._now:
            self._now = until
        if self.unhandled:
            raise self.unhandled[0]
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for ev in self._heap if not ev.cancelled)
