"""Inter-process coordination primitives: queues, semaphores, signals."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.core import SimError
from repro.sim.process import Process, Waitable


class QueueClosed(Exception):
    """Raised by pending or future ``get``/``put`` after :meth:`Queue.close`."""


class _QueueGet(Waitable):
    def __init__(self, queue: "Queue"):
        self.queue = queue
        self.proc: Optional[Process] = None

    def _arm(self, proc: Process) -> None:
        self.proc = proc
        self.queue._arm_get(self)

    def _disarm(self, proc: Process) -> bool:
        return self.queue._disarm_get(self)


class _QueuePut(Waitable):
    def __init__(self, queue: "Queue", item: Any):
        self.queue = queue
        self.item = item
        self.proc: Optional[Process] = None

    def _arm(self, proc: Process) -> None:
        self.proc = proc
        self.queue._arm_put(self)

    def _disarm(self, proc: Process) -> bool:
        return self.queue._disarm_put(self)


class Queue:
    """FIFO queue with optional capacity, the workhorse of the simulation.

    ``capacity=None`` means unbounded (puts never block).  Closing the queue
    wakes blocked getters with :class:`QueueClosed` once the backlog drains.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "queue"):
        if capacity is not None and capacity < 1:
            raise SimError("queue capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._getters: deque[_QueueGet] = deque()
        self._putters: deque[_QueuePut] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def get(self) -> _QueueGet:
        """Waitable: the oldest item, blocking while empty."""
        return _QueueGet(self)

    def put(self, item: Any) -> _QueuePut:
        """Waitable: enqueue ``item``, blocking while full."""
        return _QueuePut(self, item)

    def get_nowait(self) -> Any:
        """Pop immediately; raises ``IndexError`` when empty."""
        if not self._items:
            if self._closed:
                raise QueueClosed(self.name)
            raise IndexError(f"{self.name} is empty")
        item = self._items.popleft()
        self._refill_from_putters()
        return item

    def put_nowait(self, item: Any) -> bool:
        """Enqueue immediately; returns ``False`` (drops) when full."""
        if self._closed:
            raise QueueClosed(self.name)
        if self._getters:
            getter = self._getters.popleft()
            getter.proc._resume(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def close(self) -> None:
        """No more puts; getters drain the backlog then see QueueClosed."""
        self._closed = True
        if not self._items:
            while self._getters:
                self._getters.popleft().proc._throw(QueueClosed(self.name))
        while self._putters:
            self._putters.popleft().proc._throw(QueueClosed(self.name))

    # -- waitable plumbing ----------------------------------------------------

    def _arm_get(self, w: _QueueGet) -> None:
        if self._items:
            item = self._items.popleft()
            # wake the getter before backfilling blocked putters so the
            # reader's execution stays contiguous (it resumes first)
            w.proc._resume(item)
            self._refill_from_putters()
        elif self._closed:
            w.proc._throw(QueueClosed(self.name))
        else:
            self._getters.append(w)

    def _disarm_get(self, w: _QueueGet) -> bool:
        try:
            self._getters.remove(w)
        except ValueError:
            pass
        return True

    def _arm_put(self, w: _QueuePut) -> None:
        if self._closed:
            w.proc._throw(QueueClosed(self.name))
            return
        if self._getters:
            self._getters.popleft().proc._resume(w.item)
            w.proc._resume(None)
            return
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(w.item)
            w.proc._resume(None)
            return
        self._putters.append(w)

    def _disarm_put(self, w: _QueuePut) -> bool:
        try:
            self._putters.remove(w)
        except ValueError:
            pass
        return True

    def _refill_from_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.proc._resume(None)


class _Acquire(Waitable):
    def __init__(self, resource: "Resource"):
        self.resource = resource
        self.proc: Optional[Process] = None

    def _arm(self, proc: Process) -> None:
        self.proc = proc
        self.resource._arm(self)

    def _disarm(self, proc: Process) -> bool:
        return self.resource._disarm(self)


class Resource:
    """Counting semaphore (``slots=1`` gives a mutex)."""

    def __init__(self, slots: int = 1, name: str = "resource"):
        if slots < 1:
            raise SimError("resource needs at least one slot")
        self.slots = slots
        self.name = name
        self._in_use = 0
        self._waiters: deque[_Acquire] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> _Acquire:
        """Waitable: take a slot, blocking while all are held."""
        return _Acquire(self)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"{self.name}: release without acquire")
        self._in_use -= 1
        if self._waiters:
            self._in_use += 1
            self._waiters.popleft().proc._resume(None)

    def _arm(self, w: _Acquire) -> None:
        if self._in_use < self.slots:
            self._in_use += 1
            w.proc._resume(None)
        else:
            self._waiters.append(w)

    def _disarm(self, w: _Acquire) -> bool:
        try:
            self._waiters.remove(w)
        except ValueError:
            pass
        return True


class _SignalWait(Waitable):
    def __init__(self, signal: "Signal"):
        self.signal = signal
        self.proc: Optional[Process] = None

    def _arm(self, proc: Process) -> None:
        self.proc = proc
        self.signal._waiters.append(self)

    def _disarm(self, proc: Process) -> bool:
        try:
            self.signal._waiters.remove(self)
        except ValueError:
            pass
        return True


class Signal:
    """Broadcast condition: ``fire(value)`` wakes every current waiter."""

    def __init__(self, name: str = "signal"):
        self.name = name
        self._waiters: list[_SignalWait] = []

    def wait(self) -> _SignalWait:
        return _SignalWait(self)

    def fire(self, value: Any = None) -> int:
        """Wake all waiters with ``value``; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.proc._resume(value)
        return len(waiters)
