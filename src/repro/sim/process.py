"""Generator-based cooperative processes.

A process body is a Python generator that yields *waitables*:

    def body(sim):
        yield Sleep(0.5)
        item = yield queue.get()
        yield cpu.run(cycles=100_000)

``yield from`` composes naturally, so kernel syscalls are plain generator
functions that processes delegate to.  A waitable implements ``_arm(proc)``
(begin waiting) and optionally ``_disarm(proc)`` (abort the wait, used by
:class:`Timeout` and :meth:`Process.kill`).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import SimError, Simulator

#: the process currently executing a step, if any (for diagnostics)
_current: Optional["Process"] = None


def current_process() -> Optional["Process"]:
    """The process whose generator is currently executing, or ``None``."""
    return _current


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`."""


class Waitable:
    """Base class for things a process may ``yield``."""

    def _arm(self, proc: "Process") -> None:
        raise NotImplementedError

    def _disarm(self, proc: "Process") -> bool:
        """Abort the wait.  Returns ``True`` if successfully disarmed."""
        return False


class Sleep(Waitable):
    """Suspend the process for ``duration`` virtual seconds."""

    def __init__(self, duration: float):
        if duration < 0:
            raise SimError(f"negative sleep: {duration}")
        self.duration = duration
        self._event = None

    def _arm(self, proc: "Process") -> None:
        self._event = proc.sim.schedule(self.duration, proc._resume, None)

    def _disarm(self, proc: "Process") -> bool:
        if self._event is not None:
            proc.sim.cancel(self._event)
            self._event = None
        return True


class WaitProcess(Waitable):
    """Wait for another process to finish; yields its return value.

    If the awaited process died with an exception, that exception is
    re-raised in the waiter.
    """

    def __init__(self, target: "Process"):
        self.target = target

    def _arm(self, proc: "Process") -> None:
        self.target._add_waiter(proc)

    def _disarm(self, proc: "Process") -> bool:
        self.target._remove_waiter(proc)
        return True


class Timeout(Waitable):
    """Wrap another waitable with a deadline.

    Raises :class:`TimeoutError` in the waiting process if the inner
    waitable does not complete within ``duration`` seconds.  The inner
    waitable must support ``_disarm``.
    """

    def __init__(self, inner: Waitable, duration: float):
        self.inner = inner
        self.duration = duration
        self._event = None
        self._proc: Optional[Process] = None

    def _arm(self, proc: "Process") -> None:
        self._proc = proc
        self._event = proc.sim.schedule(self.duration, self._expire)
        proc._timeout_guard = self
        self.inner._arm(proc)

    def _expire(self) -> None:
        proc = self._proc
        if proc is None or not proc.alive:
            return
        if not self.inner._disarm(proc):
            raise SimError(
                f"{self.inner!r} does not support timeouts (_disarm failed)"
            )
        proc._timeout_guard = None
        proc._throw(TimeoutError(f"timed out after {self.duration}s"))

    def _cancel_timer(self) -> None:
        if self._event is not None:
            self._proc.sim.cancel(self._event)
            self._event = None

    def _disarm(self, proc: "Process") -> bool:
        self._cancel_timer()
        return self.inner._disarm(proc)


class Process:
    """A running simulation process.

    Created via :meth:`Process.spawn` (or the kernel's higher-level
    wrappers).  The generator is stepped from the event loop; each step runs
    until the next ``yield`` of a waitable.
    """

    def __init__(self, sim: Simulator, gen: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: list[Process] = []
        self._kill_pending = False
        self._timeout_guard: Optional[Timeout] = None
        self._current_wait: Optional[Waitable] = None
        self.frozen = False
        self._frozen_step: Optional[tuple] = None

    @classmethod
    def spawn(
        cls, sim: Simulator, gen: Generator, name: str = "proc"
    ) -> "Process":
        """Create a process and schedule its first step for right now."""
        proc = cls(sim, gen, name)
        sim.schedule_transient(0.0, proc._step, None, None)
        return proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<Process {self.name} {state}>"

    # -- scheduling internals ------------------------------------------------

    def _resume(self, value: Any) -> None:
        """Resume the generator with ``value`` (immediately, via the loop)."""
        if not self.alive:
            return
        self._clear_wait()
        self.sim.schedule_transient(0.0, self._step, value, None)

    def _throw(self, exc: BaseException) -> None:
        """Resume the generator by raising ``exc`` inside it."""
        if not self.alive:
            return
        self._clear_wait()
        self.sim.schedule_transient(0.0, self._step, None, exc)

    def _clear_wait(self) -> None:
        if self._timeout_guard is not None:
            self._timeout_guard._cancel_timer()
            self._timeout_guard = None
        self._current_wait = None

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        global _current
        if not self.alive:
            return
        if self.frozen:
            # Hung process: whatever woke it is parked until thaw().  Only
            # one wake-up can be outstanding (the generator had exactly one
            # armed waitable), so a single slot suffices.
            self._frozen_step = (value, exc)
            return
        if self._kill_pending:
            exc, value = ProcessKilled(), None
            self._kill_pending = False
        prev, _current = _current, self
        try:
            if exc is not None:
                waitable = self._gen.throw(exc)
            else:
                waitable = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except ProcessKilled:
            self._finish(result=None)
            return
        except BaseException as err:
            self._finish(error=err)
            return
        finally:
            _current = prev
        if not isinstance(waitable, Waitable):
            self._finish(
                error=SimError(
                    f"process {self.name} yielded {waitable!r}, "
                    "expected a Waitable"
                )
            )
            return
        self._current_wait = waitable
        waitable._arm(self)

    def _finish(self, result: Any = None, error: Optional[BaseException] = None):
        self.alive = False
        self.result = result
        self.exception = error
        self._gen.close()
        waiters, self._waiters = self._waiters, []
        if error is not None and not waiters:
            self.sim.unhandled.append(error)
        for waiter in waiters:
            if error is not None:
                waiter._throw(error)
            else:
                waiter._resume(result)

    def _add_waiter(self, proc: "Process") -> None:
        if not self.alive:
            if self.exception is not None:
                proc._throw(self.exception)
            else:
                proc._resume(self.result)
            return
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)

    # -- public control ------------------------------------------------------

    def freeze(self) -> None:
        """Hang the process: it stops consuming CPU and servicing timers.

        The generator is never stepped while frozen — timers and queue
        deliveries that would have resumed it are parked and land on
        :meth:`thaw`.  Unlike :meth:`kill` the generator stays alive, so
        this models a wedged-but-not-exited process (spinning on a lock,
        swapped out, stuck in a driver).
        """
        if self.alive:
            self.frozen = True

    def thaw(self) -> None:
        """Undo :meth:`freeze`; a parked wake-up is delivered immediately."""
        if not self.frozen:
            return
        self.frozen = False
        if self._frozen_step is not None:
            value, exc = self._frozen_step
            self._frozen_step = None
            self.sim.schedule_transient(0.0, self._step, value, exc)

    def kill(self) -> None:
        """Terminate the process at its current yield point.

        A :class:`ProcessKilled` is thrown into the generator so ``finally``
        blocks run.  If the process is waiting on something that cannot be
        disarmed (a CPU slice in flight), the kill lands when it resumes.
        Killing a frozen process works: the freeze is lifted so the kill
        can be delivered.
        """
        if not self.alive:
            return
        if self.frozen:
            self.frozen = False
            if self._frozen_step is not None:
                # a wake-up is already parked: replace it with the kill
                self._frozen_step = None
                self.sim.schedule_transient(
                    0.0, self._step, None, ProcessKilled()
                )
                return
        wait = self._current_wait
        if wait is None:
            # Either never started or a step is already scheduled;
            # flag the kill so the next step raises.
            self._kill_pending = True
            return
        if wait._disarm(self):
            self._throw(ProcessKilled())
        else:
            self._kill_pending = True
