"""Cycle-accounted CPU with a round-robin scheduler.

Processes charge work to a machine's CPU by yielding ``cpu.run(cycles)``.
The CPU serialises all such requests, preempting at a quantum boundary, and
counts **context switches** exactly the way ``vmstat`` observes them on the
paper's OpenBSD machines: one switch per transition to a different context,
including transitions to and from the idle loop.  Figure 5 of the paper is a
plot of this counter.

Speeds are configured in Hz, so the Neoware EON 4000's 233 MHz Geode and a
modern workstation are just different constructor arguments
(:mod:`repro.platform.hardware`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.core import SimError, Simulator
from repro.sim.process import Process, Waitable

#: sentinel owner for the idle loop
IDLE = "<idle>"


@dataclass
class CpuStats:
    """Monotone counters; samplers diff successive snapshots."""

    context_switches: int = 0
    domain_seconds: dict = field(
        default_factory=lambda: {"user": 0.0, "sys": 0.0, "intr": 0.0}
    )
    jobs_completed: int = 0

    @property
    def busy_seconds(self) -> float:
        return sum(self.domain_seconds.values())

    def snapshot(self) -> dict:
        return {
            "context_switches": self.context_switches,
            "user": self.domain_seconds["user"],
            "sys": self.domain_seconds["sys"],
            "intr": self.domain_seconds["intr"],
            "busy": self.busy_seconds,
            "jobs_completed": self.jobs_completed,
        }


class _CpuJob(Waitable):
    def __init__(self, cpu: "CPU", cycles: float, domain: str, owner):
        self.cpu = cpu
        self.cycles = float(cycles)
        self.remaining = float(cycles)
        self.domain = domain
        self.owner = owner
        self.proc: Optional[Process] = None
        self.running = False

    def _arm(self, proc: Process) -> None:
        self.proc = proc
        if self.owner is None:
            self.owner = proc
        self.cpu._submit(self)

    def _disarm(self, proc: Process) -> bool:
        if self.running:
            return False
        try:
            self.cpu._run_queue.remove(self)
        except ValueError:
            pass
        return True


class CPU:
    """A single simulated processor core.

    Parameters
    ----------
    freq_hz:
        clock frequency; ``run(cycles)`` takes ``cycles / freq_hz`` busy
        seconds (plus scheduling overheads).
    quantum:
        preemption quantum in seconds (OpenBSD's roundrobin is 100 Hz,
        i.e. 10 ms — the default).
    switch_cost:
        seconds of system time charged per context switch.
    """

    def __init__(
        self,
        sim: Simulator,
        freq_hz: float = 233e6,
        quantum: float = 0.010,
        switch_cost: float = 20e-6,
        name: str = "cpu0",
    ):
        if freq_hz <= 0:
            raise SimError("cpu frequency must be positive")
        self.sim = sim
        self.freq_hz = float(freq_hz)
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.name = name
        self.stats = CpuStats()
        self._run_queue: deque[_CpuJob] = deque()
        self._current: Optional[_CpuJob] = None
        self._last_owner = IDLE
        self._continuous = 0.0  # time the current owner has held the CPU
        self._last_busy_end = 0.0  # when the CPU last finished a slice
        self._slice_end_at = 0.0  # when the slice in flight will complete
        self._halted = False

    # -- public API ------------------------------------------------------------

    def run(self, cycles: float, domain: str = "user", owner=None) -> _CpuJob:
        """Waitable: execute ``cycles`` of work in the given domain.

        ``domain`` is one of ``user``, ``sys``, ``intr`` and only affects
        accounting.  ``owner`` defaults to the yielding process; pass an
        explicit token to attribute work (e.g. an interrupt) to another
        context for switch counting.
        """
        if cycles < 0:
            raise SimError(f"negative cycle count: {cycles}")
        if domain not in ("user", "sys", "intr"):
            raise SimError(f"unknown CPU domain: {domain}")
        return _CpuJob(self, cycles, domain, owner)

    def charge(
        self, cycles: float, domain: str = "intr", owner="intr"
    ) -> None:
        """Fire-and-forget CPU work with no waiting process.

        Used from event context for interrupt service routines: the cycles
        occupy the CPU (delaying runnable processes) and are accounted, but
        nothing resumes when they finish.
        """
        if cycles <= 0:
            return
        job = _CpuJob(self, cycles, domain, owner)
        self._submit(job)

    def seconds_for(self, cycles: float) -> float:
        """Busy time that ``cycles`` of work will occupy (no overheads)."""
        return cycles / self.freq_hz

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        return len(self._run_queue)

    @property
    def halted(self) -> bool:
        return self._halted

    def halt(self) -> None:
        """Stop dispatching: a hung node's CPU.

        The slice in flight finishes (its completion event is already
        scheduled), but nothing further runs — submitted jobs pile up in
        the run queue until :meth:`unhalt`.
        """
        self._halted = True

    def unhalt(self) -> None:
        """Resume dispatching after :meth:`halt`."""
        if not self._halted:
            return
        self._halted = False
        if self._current is None:
            self._dispatch()

    # -- scheduler internals -----------------------------------------------------

    def _submit(self, job: _CpuJob) -> None:
        self._run_queue.append(job)
        if self._current is None:
            self._dispatch()

    def _dispatch(self) -> None:
        if self._halted or not self._run_queue:
            return
        # Run-until-block semantics: the owner that just ran keeps the CPU
        # if it has more work queued, up to one quantum of continuous time.
        # Without this, two chatty processes would appear to context-switch
        # between every few-microsecond kernel operation, which no real
        # scheduler does.
        job = None
        if self._continuous < self.quantum:
            for candidate in self._run_queue:
                if candidate.owner is self._last_owner:
                    job = candidate
                    self._run_queue.remove(candidate)
                    break
        if job is None:
            job = self._run_queue.popleft()
        # Idle accounting is lazy: only when virtual time actually passed
        # with nothing running do we count the switch into the idle loop.
        # Zero-duration scheduling gaps (a process hopping through a few
        # events between two of its own kernel operations) are not real
        # context switches and would grossly inflate the Figure 5 counts.
        if (
            self._last_owner is not IDLE
            and self.sim.now > self._last_busy_end
        ):
            self.stats.context_switches += 1
            self._last_owner = IDLE
            self._continuous = 0.0
        overhead = 0.0
        if job.owner is not self._last_owner:
            self.stats.context_switches += 1
            self._last_owner = job.owner
            self._continuous = 0.0
            overhead = self.switch_cost
            self.stats.domain_seconds["sys"] += overhead
        self._current = job
        job.running = True
        quantum_cycles = self.quantum * self.freq_hz
        slice_cycles = min(quantum_cycles, job.remaining)
        slice_time = slice_cycles / self.freq_hz
        # Recorded so a cohort spill can replicate the slice in flight on
        # the clone's CPU: without it the clone would dispatch its next
        # job a slice early and drift off the per-object timeline.
        self._slice_end_at = self.sim.now + overhead + slice_time
        self.sim.schedule_transient(
            overhead + slice_time, self._slice_done, job, slice_cycles
        )

    def _slice_done(self, job: _CpuJob, slice_cycles: float) -> None:
        self.stats.domain_seconds[job.domain] += slice_cycles / self.freq_hz
        self._continuous += slice_cycles / self.freq_hz
        self._last_busy_end = self.sim.now
        job.remaining -= slice_cycles
        job.running = False
        self._current = None
        if job.remaining > 1e-9:
            self._run_queue.append(job)
            self._dispatch()
        else:
            self.stats.jobs_completed += 1
            if job.proc is not None:
                job.proc._resume(None)
            # Defer the next dispatch one event so the woken process can
            # submit its follow-on work first (run-until-block).
            self.sim.schedule_transient(0.0, self._post_completion)

    def _post_completion(self) -> None:
        if self._current is None and self._run_queue:
            self._dispatch()
