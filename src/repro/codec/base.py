"""Codec interface and registry.

Data packets on the wire carry a one-byte codec id (see
:mod:`repro.core.protocol`); speakers look the decoder up here.  Every codec
block is self-describing — channels and sample counts live in the block
header — so a receive-only speaker needs no out-of-band decoder state beyond
the periodic control packet (§2.3).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

import numpy as np


class CodecID(enum.IntEnum):
    """Wire identifiers for payload encodings."""

    RAW = 0         # PCM exactly as read from the VAD (interpret via AudioParams)
    VORBIS_LIKE = 1 # MDCT psychoacoustic codec (the paper's Ogg Vorbis role)
    ADPCM = 2       # IMA ADPCM, 4 bits/sample
    MP3_LIKE = 3    # DCT-II fixed-rate codec (the tandem-coding partner)


class BlockCodec:
    """Interface: encode/decode one self-contained block of samples.

    ``encode_block`` takes float samples shaped ``(frames, channels)`` in
    [-1, 1] and returns wire bytes; ``decode_block`` inverts it.  Blocks are
    independent: losing one packet never corrupts the next (required for a
    multicast receiver with no retransmission path).
    """

    codec_id: CodecID

    def encode_block(self, samples: np.ndarray) -> bytes:
        raise NotImplementedError

    def decode_block(self, data: bytes) -> np.ndarray:
        raise NotImplementedError


_REGISTRY: Dict[CodecID, Callable[..., BlockCodec]] = {}


def register_codec(codec_id: CodecID, factory: Callable[..., BlockCodec]):
    _REGISTRY[codec_id] = factory


def get_codec(codec_id: CodecID, **kwargs) -> BlockCodec:
    """Instantiate the codec for a wire id (kwargs reach the constructor)."""
    try:
        factory = _REGISTRY[CodecID(codec_id)]
    except KeyError:
        raise ValueError(f"no codec registered for id {codec_id}") from None
    return factory(**kwargs)
