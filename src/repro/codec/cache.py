"""Shared codec caches: decode (and encode) each payload once per host.

The paper's producer "does not need to maintain any state for the Ethernet
Speakers that listen in" (§2.3): adding a listener is free on the wire.  In
the simulator, though, every speaker on a channel receives a byte-identical
copy of the same data packet and — without this module — runs a full MDCT /
Rice decode of it independently, making fan-out O(N) in *host* CPU even
though the virtual machines are rightly charged their own cycles.

:class:`DecodeCache` is a bounded LRU keyed by

    (payload digest, payload length, codec id, audio parameters)

so N speakers tuned to one channel decode each block exactly once, while
channels carrying the same bytes under different parameters or codecs can
never share an entry (the isolation the tests pin down).  The cache stores
the *speaker-independent* part of the decode — the unity-gain PCM bytes and
the block's RMS level — so per-speaker transforms (gain, room coupling)
still run privately and bypass the cache entirely.

:class:`EncodeCache` is the origin-side mirror: a broadcasting station
looping a playlist, or fanning the same source into several channels,
re-encodes byte-identical raw payloads over and over.  The cache keys on
the raw payload digest plus codec id, parameters and quality, and stores
the finished wire bytes — identical input through an identical encoder
configuration is the only way to share an entry.

Virtual time is untouched: a cache hit skips the host-side numpy work only;
the simulated CPU cycles for the decode (or encode) are charged exactly as
on a miss, so cached and uncached runs are bit-identical in sim time.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class DecodeCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class DecodedBlock:
    """The shareable result of decoding one payload at unity gain."""

    #: PCM bytes in the device's configured format
    pcm: bytes
    #: RMS of the decoded samples, or None when the block was empty
    #: (an empty block leaves the speaker's last RMS untouched)
    rms: Optional[float]


class DecodeCache:
    """Bounded LRU of :class:`DecodedBlock` entries.

    Parameters
    ----------
    max_entries:
        bound on cached blocks; beyond it the least-recently-used entry
        is evicted.  At the default 0.5 s producer chunking a few dozen
        entries cover every in-flight block of several channels.
    telemetry:
        a :class:`~repro.metrics.telemetry.Telemetry` registry; hit /
        miss / eviction counters are published as ``codec.cache.hits``
        etc.  ``None`` falls back to the process default.
    """

    def __init__(self, max_entries: int = 256, telemetry=None, name: str = ""):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        if telemetry is None:
            from repro.metrics.telemetry import get_telemetry

            telemetry = get_telemetry()
        self.max_entries = max_entries
        self.name = name
        self.stats = DecodeCacheStats()
        label = f"[{name}]" if name else ""
        self._c_hits = telemetry.counter(f"codec.cache.hits{label}")
        self._c_misses = telemetry.counter(f"codec.cache.misses{label}")
        self._c_evictions = telemetry.counter(f"codec.cache.evictions{label}")
        self._entries: "OrderedDict[Tuple, DecodedBlock]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(payload, codec_id, params) -> Tuple:
        """The cache key for ``payload`` decoded as ``codec_id``/``params``.

        The digest collapses byte-identical multicast copies; codec id and
        the full :class:`~repro.audio.params.AudioParams` keep channels
        with different configurations strictly apart even when their
        payload bytes collide.
        """
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        return (digest, len(payload), int(codec_id), params)

    def get(self, key: Tuple) -> Optional[DecodedBlock]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._c_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._c_hits.inc()
        return entry

    def put(self, key: Tuple, entry: DecodedBlock) -> None:
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1
            self._c_evictions.inc()

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class EncodeCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class EncodedBlock:
    """The shareable result of encoding one raw payload."""

    #: finished wire bytes, exactly as the encoder emitted them
    wire: bytes


class EncodeCache:
    """Bounded LRU of :class:`EncodedBlock` entries, keyed on raw input.

    Mirrors :class:`DecodeCache` on the origin side.  The key carries the
    raw-payload blake2b digest *and* the codec id, the full audio
    parameters, and the encoder quality knob: two channels encoding the
    same source at different qualities (or with different codecs) can
    never share wire bytes.  Paths whose output is not a pure function of
    ``(payload, codec, params, quality)`` — RAW passthrough, synthetic
    size estimation — must bypass the cache entirely.
    """

    def __init__(self, max_entries: int = 256, telemetry=None, name: str = ""):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        if telemetry is None:
            from repro.metrics.telemetry import get_telemetry

            telemetry = get_telemetry()
        self.max_entries = max_entries
        self.name = name
        self.stats = EncodeCacheStats()
        label = f"[{name}]" if name else ""
        self._c_hits = telemetry.counter(f"codec.encode_cache.hits{label}")
        self._c_misses = telemetry.counter(
            f"codec.encode_cache.misses{label}"
        )
        self._c_evictions = telemetry.counter(
            f"codec.encode_cache.evictions{label}"
        )
        self._entries: "OrderedDict[Tuple, EncodedBlock]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(payload, codec_id, params, quality) -> Tuple:
        """Key for ``payload`` encoded as ``codec_id``/``params`` at
        ``quality`` (the codec's rate knob: quality index or kbps)."""
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        return (digest, len(payload), int(codec_id), params, quality)

    def get(self, key: Tuple) -> Optional[EncodedBlock]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._c_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._c_hits.inc()
        return entry

    def put(self, key: Tuple, entry: EncodedBlock) -> None:
        entries = self._entries
        entries[key] = entry
        entries.move_to_end(key)
        if len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.stats.evictions += 1
            self._c_evictions.inc()

    def clear(self) -> None:
        self._entries.clear()
