"""CPU cycle-cost models for the codecs.

Inside the simulation, encoding a block does not run the numpy codec (that
would couple virtual time to host speed); instead the worker charges cycles
to its machine's :class:`~repro.sim.cpu.CPU` according to this model.  The
constants are calibrated so that one CD-quality stereo VorbisLike encode at
maximum quality costs roughly what Figure 4 implies on a mid-2000s
workstation: four simultaneous streams around half the CPU, eight streams
near saturation.

Scenarios that *also* care about waveform fidelity (tandem loss, end-to-end
content checks) run the real codec for the bytes and this model for the
virtual time — the two are independent by design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.base import CodecID


@dataclass(frozen=True)
class CodecCostModel:
    """Cycles charged per *sample frame* (all channels of one sample tick).

    ``encode_cycles_per_frame(q)`` grows mildly with quality: more bands
    survive the masking threshold and more bits get packed.
    """

    encode_base: float
    encode_per_quality: float
    decode_base: float
    decode_per_quality: float

    def encode_cycles(self, frames: int, quality: int = 10) -> float:
        per = self.encode_base + self.encode_per_quality * quality
        return per * frames

    def decode_cycles(self, frames: int, quality: int = 10) -> float:
        per = self.decode_base + self.decode_per_quality * quality
        return per * frames


#: calibrated constants per codec.  RAW is a buffer copy; VorbisLike encode
#: at q=10 costs ~1400 cycles/frame -> one CD stream ~12% of a 500 MHz CPU.
DEFAULT_COSTS = {
    CodecID.RAW: CodecCostModel(
        encode_base=12.0, encode_per_quality=0.0,
        decode_base=12.0, decode_per_quality=0.0,
    ),
    CodecID.VORBIS_LIKE: CodecCostModel(
        encode_base=700.0, encode_per_quality=70.0,
        # decode is ~1/4 of a 233 MHz Geode for CD stereo at q=10 — the
        # §3.4 pipeline problem only shows up on hardware this slow
        decode_base=1100.0, decode_per_quality=10.0,
    ),
    CodecID.ADPCM: CodecCostModel(
        encode_base=45.0, encode_per_quality=0.0,
        decode_base=35.0, decode_per_quality=0.0,
    ),
    CodecID.MP3_LIKE: CodecCostModel(
        encode_base=900.0, encode_per_quality=0.0,
        decode_base=320.0, decode_per_quality=0.0,
    ),
}


#: payload-size ratios (compressed bytes / raw 16-bit PCM bytes) used when a
#: scenario streams synthetic content without running the real encoder.
#: Measured on the `music` generator; see tests/codec/test_vorbislike.py.
def estimated_ratio(codec_id: CodecID, quality: int = 10) -> float:
    if codec_id == CodecID.RAW:
        return 1.0
    if codec_id == CodecID.ADPCM:
        return 0.26  # 4 bits vs 16 + headers
    if codec_id == CodecID.MP3_LIKE:
        return 0.18
    if codec_id == CodecID.VORBIS_LIKE:
        # roughly linear in quality between aggressive and transparent
        return 0.06 + 0.024 * quality
    raise ValueError(f"unknown codec id {codec_id}")
