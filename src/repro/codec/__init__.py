"""Lossy audio codecs built from scratch.

The paper compresses rebroadcast streams with Ogg Vorbis at maximum quality
(§2.2).  Vorbis itself is out of scope to reimplement faithfully, so
:class:`~repro.codec.vorbislike.VorbisLikeCodec` is a real MDCT transform
codec with a Bark-band psychoacoustic bit allocator and a 0–10 quality index
— genuinely lossy, genuinely decodable, with the same knobs the paper turns.
:class:`~repro.codec.mp3like.Mp3LikeCodec` is a *different* lossy codec
(DCT-II, fixed rate ladder) standing in for the MP3 sources, so the paper's
tandem-coding concern (two different lossy algorithms back to back) is
reproducible.  :mod:`repro.codec.cost` models the CPU cycles each codec burns
inside the simulation (Figure 4).
"""

from repro.codec.base import CodecID, get_codec
from repro.codec.cache import (
    DecodeCache,
    DecodeCacheStats,
    DecodedBlock,
    EncodeCache,
    EncodeCacheStats,
    EncodedBlock,
)
from repro.codec.vorbislike import VorbisLikeCodec
from repro.codec.adpcm import AdpcmCodec
from repro.codec.mp3like import Mp3LikeCodec, Mp3LikeFile
from repro.codec.cost import CodecCostModel, DEFAULT_COSTS

__all__ = [
    "CodecID",
    "get_codec",
    "DecodeCache",
    "DecodeCacheStats",
    "DecodedBlock",
    "EncodeCache",
    "EncodeCacheStats",
    "EncodedBlock",
    "VorbisLikeCodec",
    "AdpcmCodec",
    "Mp3LikeCodec",
    "Mp3LikeFile",
    "CodecCostModel",
    "DEFAULT_COSTS",
]
