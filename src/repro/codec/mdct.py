"""Modified Discrete Cosine Transform with TDAC overlap-add.

Implemented the standard way: fold the 2N windowed samples to N points and
take an orthonormal DCT-IV (via scipy).  With the sine window (which
satisfies the Princen–Bradley condition) consecutive 50 %-overlapped frames
reconstruct the interior of the signal exactly — the time-domain alias
cancellation property every MDCT codec rests on.

``mdct_analysis``/``mdct_synthesis`` operate on self-contained blocks: the
block is zero-padded by half a frame on each side, so every packet on the
wire decodes independently of its neighbours.  That matches the Ethernet
Speaker protocol's statelessness — a speaker that tunes in mid-stream can
decode the very next data packet (§2.3).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.fft import dct


@lru_cache(maxsize=8)
def sine_window(size: int) -> np.ndarray:
    """Sine window of ``size`` samples (Princen–Bradley compliant)."""
    n = np.arange(size)
    return np.sin(np.pi / size * (n + 0.5))


def _fold(frames: np.ndarray) -> np.ndarray:
    """Fold windowed 2N-sample frames to N points (last axis)."""
    two_n = frames.shape[-1]
    n = two_n // 2
    half = n // 2
    a = frames[..., 0:half]
    b = frames[..., half : 2 * half]
    c = frames[..., 2 * half : 3 * half]
    d = frames[..., 3 * half :]
    return np.concatenate(
        [-c[..., ::-1] - d, a - b[..., ::-1]], axis=-1
    )


def _unfold(folded: np.ndarray) -> np.ndarray:
    """Adjoint of :func:`_fold`: N points back to 2N samples."""
    n = folded.shape[-1]
    half = n // 2
    v1 = folded[..., :half]
    v2 = folded[..., half:]
    return np.concatenate(
        [v2, -v2[..., ::-1], -v1[..., ::-1], -v1], axis=-1
    )


def mdct(frames: np.ndarray) -> np.ndarray:
    """MDCT of already-windowed 2N-sample frames -> N coefficients each."""
    return dct(_fold(frames), type=4, axis=-1, norm="ortho")


def imdct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse MDCT -> 2N time samples per frame (before windowing/OLA)."""
    return _unfold(dct(coeffs, type=4, axis=-1, norm="ortho"))


def mdct_analysis(signal: np.ndarray, n: int = 512) -> tuple[np.ndarray, int]:
    """Transform a 1-D signal into MDCT frames.

    Returns ``(coeffs, length)`` where ``coeffs`` has shape
    ``(num_frames, n)`` and ``length`` is the original sample count needed
    by :func:`mdct_synthesis` to trim the padding.
    """
    x = np.asarray(signal, dtype=np.float64)
    length = len(x)
    body = ((length + n - 1) // n) * n  # content rounded up to frames
    padded = np.zeros(body + 2 * n)
    padded[n : n + length] = x
    num_frames = body // n + 1
    idx = np.arange(2 * n)[None, :] + (np.arange(num_frames) * n)[:, None]
    frames = padded[idx] * sine_window(2 * n)[None, :]
    return mdct(frames), length


def mdct_synthesis(coeffs: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`mdct_analysis`: overlap-add back to ``length``.

    With 50 % overlap each output sample receives exactly two addends
    (frame *i*'s tail, frame *i+1*'s head), so the whole overlap-add is
    two vectorised adds onto an ``(num_frames + 1, n)`` grid — and
    because two-term float addition is commutative, the result is
    bit-identical to the per-frame loop
    (:func:`_reference_mdct_synthesis`).
    """
    num_frames, n = coeffs.shape
    chunks = imdct(coeffs) * sine_window(2 * n)[None, :]
    out = np.zeros((num_frames + 1, n))
    out[:-1] += chunks[:, :n]
    out[1:] += chunks[:, n:]
    return out.reshape(-1)[n : n + length]


def _reference_mdct_synthesis(coeffs: np.ndarray, length: int) -> np.ndarray:
    """The original per-frame overlap-add loop; kept as the equality
    oracle for the vectorised formulation."""
    num_frames, n = coeffs.shape
    out = np.zeros((num_frames + 1) * n)
    chunks = imdct(coeffs) * sine_window(2 * n)[None, :]
    for i in range(num_frames):
        out[i * n : i * n + 2 * n] += chunks[i]
    return out[n : n + length]
