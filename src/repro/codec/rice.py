"""Rice/Golomb entropy coding for quantised transform coefficients.

The fixed-width band packing in :mod:`repro.codec.vorbislike` is fast but
pays the band's worst case for every coefficient.  Rice coding (unary
quotient + k-bit remainder) exploits the Laplacian shape of quantised
MDCT residue — the same trick FLAC and Shorten use.  Encoding is fully
vectorised; decoding walks the bitstream (bands are small, and the
decoder runs only where waveform fidelity is being checked).

Signed values are zigzag-mapped to unsigned first.
"""

from __future__ import annotations

import numpy as np


def zigzag(values: np.ndarray) -> np.ndarray:
    """Signed -> unsigned: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ..."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)
            ^ -(u & np.uint64(1)).astype(np.int64))


def best_k(values: np.ndarray) -> int:
    """Near-optimal Rice parameter from the mean magnitude."""
    u = zigzag(values)
    if len(u) == 0:
        return 0
    mean = float(u.mean())
    if mean < 1.0:
        return 0
    return min(30, max(0, int(np.log2(mean + 1.0))))


def rice_encode(values: np.ndarray, k: int) -> bytes:
    """Vectorised Rice encoding of signed integers."""
    if k < 0 or k > 30:
        raise ValueError(f"rice parameter out of range: {k}")
    u = zigzag(values)
    if len(u) == 0:
        return b""
    q = (u >> np.uint64(k)).astype(np.int64)
    lengths = q + 1 + k
    total_bits = int(lengths.sum())
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    bits = np.zeros(total_bits, dtype=np.uint8)
    # unary part: q zeros then a one
    bits[starts + q] = 1
    # remainder: k bits, MSB first
    for j in range(k):
        shift = np.uint64(k - 1 - j)
        bits[starts + q + 1 + j] = (
            (u >> shift) & np.uint64(1)
        ).astype(np.uint8)
    return np.packbits(bits).tobytes()


def rice_decode(data: bytes, k: int, count: int) -> np.ndarray:
    """Inverse of :func:`rice_encode`; returns ``count`` signed ints."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    n_bits = len(bits)
    for i in range(count):
        q = 0
        while pos < n_bits and bits[pos] == 0:
            q += 1
            pos += 1
        pos += 1  # the terminating one
        remainder = 0
        for _ in range(k):
            if pos >= n_bits:
                raise ValueError("rice stream truncated")
            remainder = (remainder << 1) | int(bits[pos])
            pos += 1
        out[i] = (q << k) | remainder
    return unzigzag(out)


def rice_size_bytes(values: np.ndarray, k: int) -> int:
    """Exact encoded size without materialising the bitstream."""
    u = zigzag(values)
    if len(u) == 0:
        return 0
    total_bits = int(((u >> np.uint64(k)).astype(np.int64) + 1 + k).sum())
    return (total_bits + 7) // 8
