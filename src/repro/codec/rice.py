"""Rice/Golomb entropy coding for quantised transform coefficients.

The fixed-width band packing in :mod:`repro.codec.vorbislike` is fast but
pays the band's worst case for every coefficient.  Rice coding (unary
quotient + k-bit remainder) exploits the Laplacian shape of quantised
MDCT residue — the same trick FLAC and Shorten use.  Both directions are
fully vectorised: encoding scatters unary/remainder bits into one
bitplane, decoding recovers the unary terminators with a cumsum over
``unpackbits`` plus binary lifting (the scalar walk survives as
:func:`_reference_rice_decode`, the oracle the differential tests pin
the vector path against).

Signed values are zigzag-mapped to unsigned first.
"""

from __future__ import annotations

import numpy as np


def zigzag(values: np.ndarray) -> np.ndarray:
    """Signed -> unsigned: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ..."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)
            ^ -(u & np.uint64(1)).astype(np.int64))


def best_k(values: np.ndarray) -> int:
    """Near-optimal Rice parameter from the mean magnitude."""
    u = zigzag(values)
    if len(u) == 0:
        return 0
    mean = float(u.mean())
    if mean < 1.0:
        return 0
    return min(30, max(0, int(np.log2(mean + 1.0))))


def rice_encode(values: np.ndarray, k: int) -> bytes:
    """Vectorised Rice encoding of signed integers."""
    if k < 0 or k > 30:
        raise ValueError(f"rice parameter out of range: {k}")
    u = zigzag(values)
    if len(u) == 0:
        return b""
    q = (u >> np.uint64(k)).astype(np.int64)
    lengths = q + 1 + k
    total_bits = int(lengths.sum())
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    bits = np.zeros(total_bits, dtype=np.uint8)
    # unary part: q zeros then a one
    bits[starts + q] = 1
    # remainder: k bits, MSB first
    for j in range(k):
        shift = np.uint64(k - 1 - j)
        bits[starts + q + 1 + j] = (
            (u >> shift) & np.uint64(1)
        ).astype(np.uint8)
    return np.packbits(bits).tobytes()


def _reference_rice_decode(data: bytes, k: int, count: int) -> np.ndarray:
    """The scalar per-bit walk :func:`rice_decode` must match exactly —
    including its lenient handling of truncated ``k == 0`` streams and
    the ``ValueError`` a truncated remainder raises."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    n_bits = len(bits)
    for i in range(count):
        q = 0
        while pos < n_bits and bits[pos] == 0:
            q += 1
            pos += 1
        pos += 1  # the terminating one
        remainder = 0
        for _ in range(k):
            if pos >= n_bits:
                raise ValueError("rice stream truncated")
            remainder = (remainder << 1) | int(bits[pos])
            pos += 1
        out[i] = (q << k) | remainder
    return unzigzag(out)


def rice_decode(data: bytes, k: int, count: int) -> np.ndarray:
    """Inverse of :func:`rice_encode`; returns ``count`` signed ints.

    Vectorised unary scan: a cumsum over the unpacked bitplane counts
    the ones, and because value *i*'s remainder always ends ``k`` bits
    after its terminating one, the index of the next terminator is a
    pure function of the previous one's — iterated for all values at
    once by binary lifting instead of walking bit by bit.  ``k > 30``
    (which :func:`rice_encode` never emits, but hostile band headers can
    claim) keeps the reference walk's exotic overflow semantics by
    delegating to it.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    if k > 30:
        return _reference_rice_decode(data, k, count)
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    n_bits = len(bits)
    ones = np.flatnonzero(bits)
    m = len(ones)
    if k == 0:
        # no remainders: value i is the gap between terminators i-1 and
        # i.  Truncation is lenient, exactly like the walk: running off
        # the end yields one final zero-run value, then zeros.
        out = np.zeros(count, dtype=np.uint64)
        take = min(count, m)
        if take:
            out[:take] = (np.diff(ones[:take], prepend=-1) - 1).astype(
                np.uint64
            )
        if count > m:
            tail_start = int(ones[m - 1]) + 1 if m else 0
            out[m] = n_bits - tail_start
        return unzigzag(out)
    if m == 0:
        raise ValueError("rice stream truncated")
    # ones_before[j] = ones in bits[0..j]; value i's terminator is the
    # c_i-th one with c_{i+1} = ones_before[ones[c_i] + k] and c_0 = 0
    # (skip the k remainder bits, count the ones they swallowed).  State
    # m absorbs "ran out of terminators" — truncated, like the walk.
    ones_before = np.cumsum(bits)
    nxt = np.full(m + 1, m, dtype=np.int64)
    reachable = ones + k < n_bits
    nxt[:m][reachable] = ones_before[ones[reachable] + k]
    c = np.zeros(count, dtype=np.int64)
    if count > 1:
        idx = np.arange(count)
        jump = nxt
        for s in range((count - 1).bit_length()):
            hop = ((idx >> s) & 1).astype(bool)
            c[hop] = jump[c[hop]]
            jump = jump[jump]
    if (c >= m).any():
        raise ValueError("rice stream truncated")
    term = ones[c]
    if int(term[-1]) + k >= n_bits:
        # terminators are increasing, so only the last value's remainder
        # can run off the end
        raise ValueError("rice stream truncated")
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = term[:-1] + 1 + k
    q = (term - starts).astype(np.uint64)
    rem = np.zeros(count, dtype=np.uint64)
    for j in range(k):
        rem = (rem << np.uint64(1)) | bits[term + 1 + j].astype(np.uint64)
    return unzigzag((q << np.uint64(k)) | rem)


def rice_size_bytes(values: np.ndarray, k: int) -> int:
    """Exact encoded size without materialising the bitstream."""
    u = zigzag(values)
    if len(u) == 0:
        return 0
    total_bits = int(((u >> np.uint64(k)).astype(np.int64) + 1 + k).sum())
    return (total_bits + 7) // 8
