"""IMA ADPCM: 4 bits per sample, the low-complexity option.

The paper keeps low-bit-rate channels uncompressed because Vorbis "introduces
latency and increases the workload on the sender" (§2.2).  ADPCM sits in
between: 4:1 versus 16-bit PCM at a tiny CPU cost, so the compression-policy
benchmark can explore the full latency/bitrate/CPU triangle.

Standard IMA tables (step-size and index adaptation); each block carries its
own predictor seed so blocks decode independently.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codec.base import BlockCodec, CodecID, register_codec

_STEP_TABLE = np.array(
    [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
        41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
        190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
        724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
        2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
        6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
        16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
    ],
    dtype=np.int32,
)

_INDEX_TABLE = np.array(
    [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8], dtype=np.int32
)

_HEADER = struct.Struct("<BBIhB")  # codec, channels, samples, predictor, index


def _encode_channel(pcm: np.ndarray) -> tuple[bytes, int, int]:
    """Encode int16 samples; returns (nibbles bytes, predictor, index)."""
    predictor = int(pcm[0]) if len(pcm) else 0
    index = 0
    nibbles = np.zeros(len(pcm), dtype=np.uint8)
    for i, sample in enumerate(pcm):
        step = int(_STEP_TABLE[index])
        diff = int(sample) - predictor
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        if diff >= step:
            code |= 4
            diff -= step
        if diff >= step >> 1:
            code |= 2
            diff -= step >> 1
        if diff >= step >> 2:
            code |= 1
        # reconstruct exactly as the decoder will
        delta = step >> 3
        if code & 4:
            delta += step
        if code & 2:
            delta += step >> 1
        if code & 1:
            delta += step >> 2
        if code & 8:
            predictor -= delta
        else:
            predictor += delta
        predictor = max(-32768, min(32767, predictor))
        index = int(np.clip(index + _INDEX_TABLE[code], 0, 88))
        nibbles[i] = code
    if len(nibbles) % 2:
        nibbles = np.append(nibbles, 0)
    packed = (nibbles[0::2] << 4) | nibbles[1::2]
    first = int(pcm[0]) if len(pcm) else 0
    return packed.astype(np.uint8).tobytes(), first, 0


def _decode_channel(
    data: bytes, count: int, predictor: int, index: int
) -> np.ndarray:
    packed = np.frombuffer(data, dtype=np.uint8)
    nibbles = np.empty(len(packed) * 2, dtype=np.uint8)
    nibbles[0::2] = packed >> 4
    nibbles[1::2] = packed & 0x0F
    out = np.zeros(count, dtype=np.int32)
    # decoding must replay the encoder's state machine: the very first
    # nibble was produced with predictor == first sample
    pred = predictor
    idx = index
    for i in range(count):
        code = int(nibbles[i])
        step = int(_STEP_TABLE[idx])
        delta = step >> 3
        if code & 4:
            delta += step
        if code & 2:
            delta += step >> 1
        if code & 1:
            delta += step >> 2
        if code & 8:
            pred -= delta
        else:
            pred += delta
        pred = max(-32768, min(32767, pred))
        idx = int(np.clip(idx + _INDEX_TABLE[code], 0, 88))
        out[i] = pred
    return out


class AdpcmCodec(BlockCodec):
    """IMA ADPCM block codec (self-seeding blocks, mono or stereo)."""

    codec_id = CodecID.ADPCM

    def encode_block(self, samples: np.ndarray) -> bytes:
        x = np.asarray(samples, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        num_samples, channels = x.shape
        pcm = np.clip(np.round(x * 32767.0), -32768, 32767).astype(np.int32)
        bodies = []
        headers = []
        for ch in range(channels):
            body, predictor, index = _encode_channel(pcm[:, ch])
            headers.append(
                _HEADER.pack(
                    int(self.codec_id), channels, num_samples, predictor, index
                )
            )
            bodies.append(body)
        return b"".join(h + b for h, b in zip(headers, bodies))

    def decode_block(self, data: bytes) -> np.ndarray:
        offset = 0
        planes = []
        channels = 1
        while offset < len(data):
            codec, channels, num_samples, predictor, index = _HEADER.unpack_from(
                data, offset
            )
            if codec != int(self.codec_id):
                raise ValueError(f"not an adpcm block (codec id {codec})")
            offset += _HEADER.size
            nbytes = (num_samples + 1) // 2
            plane = _decode_channel(
                data[offset : offset + nbytes], num_samples, predictor, index
            )
            offset += nbytes
            planes.append(plane.astype(np.float64) / 32767.0)
        return np.stack(planes, axis=1)


register_codec(CodecID.ADPCM, AdpcmCodec)
