"""A deliberately *different* lossy codec plus a file format around it.

Stands in for MP3 in the tandem-coding experiment (§2.2): "If a user were to
take their favorite MP3 file and play it over the Ogg Vorbis equipped
Ethernet Speaker it would pass through two very different lossy audio
compression algorithms."  Where :class:`VorbisLikeCodec` uses an overlapped
MDCT with masking-driven allocation, this codec uses non-overlapped DCT-II
blocks with a *fixed* bitrate ladder — different transform, different
windowing, different allocation, hence genuinely different loss patterns.

:class:`Mp3LikeFile` is the container the simulated ``mpg123`` player reads
(:mod:`repro.apps.mp3player`).
"""

from __future__ import annotations

import struct

import numpy as np
from scipy.fft import dct, idct

from repro.codec import bitpack
from repro.codec.base import BlockCodec, CodecID, register_codec
from repro.codec.batch import (
    BatchFallback,
    decode_bands_batched,
    encode_bands_batched,
)

_BLOCK = 576  # samples per transform block, MP3's granule size
_HEADER = struct.Struct("<BBHI")  # codec, channels, kbps, num_samples

#: geometric band edges over the 576 spectral lines
_EDGES = np.unique(
    np.round(np.geomspace(1, _BLOCK, 22)).astype(np.int64) - 1
)
_EDGES[0] = 0
_EDGES[-1] = _BLOCK

SUPPORTED_KBPS = (96, 128, 192, 256, 320)


def _width_table(kbps: int, channels: int) -> np.ndarray:
    """Fixed per-band quantiser widths for a target bitrate.

    Low bands keep more bits; the scale factor is chosen so the packed
    size lands near the nominal rate for 44.1 kHz stereo material.
    """
    base = np.linspace(1.0, 0.35, len(_EDGES) - 1)
    # average bits per sample the nominal rate affords (44.1 kHz material)
    bits_per_sample = kbps * 1000.0 / (44100.0 * channels)
    widths = np.round(base * bits_per_sample / base.mean()).astype(np.int64)
    return np.clip(widths, 0, 15)


class Mp3LikeCodec(BlockCodec):
    """Fixed-rate DCT-II codec.  ``bitrate_kbps`` picks the rung."""

    codec_id = CodecID.MP3_LIKE

    def __init__(self, bitrate_kbps: int = 192, batched: bool = True):
        if bitrate_kbps not in SUPPORTED_KBPS:
            raise ValueError(
                f"bitrate {bitrate_kbps} not in ladder {SUPPORTED_KBPS}"
            )
        self.bitrate_kbps = bitrate_kbps
        #: whole-block kernels from :mod:`repro.codec.batch`; the scalar
        #: ``_reference_*`` loops remain the bit-exact oracle/fallback
        self.batched = batched

    def encode_block(self, samples: np.ndarray) -> bytes:
        x = np.asarray(samples, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        num_samples, channels = x.shape
        widths = _width_table(self.bitrate_kbps, channels)
        padded_len = ((num_samples + _BLOCK - 1) // _BLOCK) * _BLOCK
        padded = np.zeros((padded_len, channels))
        padded[:num_samples] = x
        parts = [
            _HEADER.pack(
                int(self.codec_id), channels, self.bitrate_kbps, num_samples
            )
        ]
        spectra_list = [
            dct(padded[:, ch].reshape(-1, _BLOCK), type=2, axis=1,
                norm="ortho")
            for ch in range(channels)
        ]
        if self.batched:
            try:
                # channels stacked block-major matches the wire order
                all_spec = np.concatenate(spectra_list, axis=0)
                body = encode_bands_batched(
                    all_spec,
                    _EDGES,
                    np.broadcast_to(
                        widths, (all_spec.shape[0], len(_EDGES) - 1)
                    ),
                    min_width=2,
                    use_rice=False,
                )
                return parts[0] + body
            except BatchFallback:
                pass
        for spectra in spectra_list:
            for spec in spectra:
                parts.append(self._reference_encode_spectrum(spec, widths))
        return b"".join(parts)

    def _reference_encode_spectrum(
        self, spec: np.ndarray, widths: np.ndarray
    ) -> bytes:
        """Scalar per-band loop the batched kernel must match byte for
        byte; also the fallback for inputs the kernel refuses."""
        parts = []
        for b in range(len(_EDGES) - 1):
            width = int(widths[b])
            lo, hi = _EDGES[b], _EDGES[b + 1]
            band = spec[lo:hi]
            amax = float(np.max(np.abs(band)))
            if width < 2 or amax == 0.0:
                parts.append(b"\x00")
                continue
            top = (1 << (width - 1)) - 1
            exponent = int(np.ceil(np.log2(amax / top)))
            exponent = max(-120, min(120, exponent))
            q = np.clip(
                np.round(band / 2.0**exponent), -top - 1, top
            ).astype(np.int64)
            parts.append(
                struct.pack("<Bb", width, exponent) + bitpack.pack_int(q, width)
            )
        return b"".join(parts)

    def decode_block(self, data: bytes) -> np.ndarray:
        codec, channels, kbps, num_samples = _HEADER.unpack_from(data, 0)
        if codec != int(self.codec_id):
            raise ValueError(f"not an mp3like block (codec id {codec})")
        num_blocks = (num_samples + _BLOCK - 1) // _BLOCK
        spectra_list = None
        if self.batched:
            try:
                spectra_list = []
                offset = _HEADER.size
                for _ in range(channels):
                    spectra, offset = decode_bands_batched(
                        data, offset, num_blocks, _EDGES, rice_tags=False
                    )
                    spectra_list.append(spectra)
            except BatchFallback:
                # malformed stream: reproduce the reference walker's
                # exact error by re-decoding from the block start
                spectra_list = None
        if spectra_list is None:
            spectra_list = []
            offset = _HEADER.size
            for _ in range(channels):
                spectra = np.zeros((num_blocks, _BLOCK))
                for blk in range(num_blocks):
                    offset = self._reference_decode_spectrum(
                        data, offset, spectra[blk]
                    )
                spectra_list.append(spectra)
        planes = []
        for spectra in spectra_list:
            plane = idct(spectra, type=2, axis=1, norm="ortho").reshape(-1)
            planes.append(plane[:num_samples])
        return np.clip(np.stack(planes, axis=1), -1.0, 1.0)

    def _reference_decode_spectrum(
        self, data: bytes, offset: int, out: np.ndarray
    ) -> int:
        for b in range(len(_EDGES) - 1):
            width = data[offset]
            offset += 1
            if width == 0:
                continue
            (exponent,) = struct.unpack_from("<b", data, offset)
            offset += 1
            lo, hi = _EDGES[b], _EDGES[b + 1]
            count = hi - lo
            nbytes = bitpack.packed_size(width, count)
            q = bitpack.unpack_int(data[offset : offset + nbytes], width, count)
            offset += nbytes
            out[lo:hi] = q * 2.0**exponent
        return offset


_FILE_MAGIC = b"MPL1"
_FILE_HEADER = struct.Struct("<4sIBHI")  # magic, rate, channels, kbps, blocks


class Mp3LikeFile:
    """Container: a sequence of independently decodable Mp3Like blocks.

    This is what lives on disk for the simulated off-the-shelf player — the
    proprietary-format side of the VAD story.  Block granularity of ~0.5 s
    lets the player decode incrementally like a real streaming decoder.
    """

    def __init__(self, sample_rate: int, channels: int, bitrate_kbps: int,
                 blocks: list[bytes]):
        self.sample_rate = sample_rate
        self.channels = channels
        self.bitrate_kbps = bitrate_kbps
        self.blocks = blocks

    @classmethod
    def encode(
        cls,
        samples: np.ndarray,
        sample_rate: int,
        bitrate_kbps: int = 192,
        block_seconds: float = 0.5,
    ) -> "Mp3LikeFile":
        x = np.asarray(samples, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        channels = x.shape[1]
        codec = Mp3LikeCodec(bitrate_kbps)
        step = max(_BLOCK, int(round(block_seconds * sample_rate)))
        blocks = [
            codec.encode_block(x[pos : pos + step])
            for pos in range(0, len(x), step)
        ]
        return cls(sample_rate, channels, bitrate_kbps, blocks)

    def to_bytes(self) -> bytes:
        parts = [
            _FILE_HEADER.pack(
                _FILE_MAGIC,
                self.sample_rate,
                self.channels,
                self.bitrate_kbps,
                len(self.blocks),
            )
        ]
        for block in self.blocks:
            parts.append(struct.pack("<I", len(block)))
            parts.append(block)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Mp3LikeFile":
        magic, rate, channels, kbps, count = _FILE_HEADER.unpack_from(data, 0)
        if magic != _FILE_MAGIC:
            raise ValueError("not an Mp3Like file")
        offset = _FILE_HEADER.size
        blocks = []
        for _ in range(count):
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            blocks.append(data[offset : offset + length])
            offset += length
        return cls(rate, channels, kbps, blocks)

    def decode_all(self) -> np.ndarray:
        codec = Mp3LikeCodec(self.bitrate_kbps)
        return np.concatenate(
            [codec.decode_block(b) for b in self.blocks], axis=0
        )

    @property
    def total_bytes(self) -> int:
        return sum(len(b) for b in self.blocks)


register_codec(CodecID.MP3_LIKE, Mp3LikeCodec)
