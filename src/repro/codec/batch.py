"""Whole-block band coding: every frame × band of a block in one pass.

The scalar transform codecs (:mod:`repro.codec.vorbislike`,
:mod:`repro.codec.mp3like`) loop over frames and bands in Python,
quantising and packing each band slice on its own.  At station scale —
tens of channels encoding concurrently on one origin machine — those
loops are the dominant host cost.  This module is the batched engine
both codecs share:

* :func:`encode_bands_batched` quantises all frames × bands of a block
  as 2-D numpy ops, picks per-band Rice parameters and fixed widths
  vectorised, and assembles the whole bitstream with **one**
  ``np.packbits`` pass (headers are scattered into the packed bytes
  afterwards — their bit positions are zero in the bitplane by
  construction).
* :func:`decode_bands_batched` walks only the band *descriptors* in
  Python (a few dozen tag bytes per frame), then recovers every
  fixed-width band of the block from a single ``np.unpackbits`` of the
  payload; Rice bands go through the vectorised
  :func:`~repro.codec.rice.rice_decode`.

Wire bytes and decoded samples are **bit-identical** to the scalar
reference coders — that is the contract ``tests/codec/
test_batch_differential.py`` pins, and why the quantiser reproduces the
reference arithmetic operation by operation (``np.ldexp`` powers of two,
the same ``ceil``/``log2`` elementwise ufuncs, integer-exact size sums).

Malformed streams are the reference walker's job: anything structurally
anomalous (width > 16, truncated descriptors, oversized Rice payloads)
raises :class:`BatchFallback` so the caller can re-run the scalar path
and reproduce its exact error — corrupt-packet behaviour under the
seeded fault matrices must not change by a single counter.
"""

from __future__ import annotations

import numpy as np

from repro.codec import rice
from repro.codec.bitpack import packed_size


class BatchFallback(Exception):
    """The batched kernel cannot reproduce the scalar semantics for this
    input; the caller must re-run the per-band reference path."""


def _expand(per_band: np.ndarray, band_of: np.ndarray) -> np.ndarray:
    """Broadcast a per-(frame, band) array to per-(frame, bin)."""
    return per_band[:, band_of]


def encode_bands_batched(
    coeffs: np.ndarray,
    edges: np.ndarray,
    widths: np.ndarray,
    *,
    min_width: int = 1,
    use_rice: bool = False,
) -> bytes:
    """Encode all frames of a block, byte-identical to the scalar coders.

    Parameters
    ----------
    coeffs:
        ``(frames, n_bins)`` float64 transform coefficients.
    edges:
        band boundaries; band *b* covers ``edges[b]:edges[b+1]``.
    widths:
        ``(frames, n_bands)`` quantiser widths (bits per coefficient).
    min_width:
        bands below this width are inactive (``b"\\x00"`` parts): 1 for
        the VorbisLike allocator (which never emits width 1), 2 for the
        Mp3Like ladder.
    use_rice:
        offer each active band the adaptive Rice option, exactly like
        ``entropy="rice"``.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    n_frames, n_bins = coeffs.shape
    if n_frames == 0:
        return b""
    if not np.isfinite(coeffs).all():
        # the scalar path raises converting inf/nan exponents to int;
        # let it, with its exact exception
        raise BatchFallback("non-finite coefficients")
    edges = np.asarray(edges, dtype=np.int64)
    counts = np.diff(edges)
    n_bands = len(counts)
    band_of = np.repeat(np.arange(n_bands), counts)
    bin_in_band = np.arange(n_bins) - np.repeat(edges[:-1], counts)

    widths = np.asarray(widths, dtype=np.int64)
    amax = np.maximum.reduceat(np.abs(coeffs), edges[:-1], axis=-1)
    active = (widths >= min_width) & (amax > 0.0)

    top = (1 << (np.maximum(widths, 1) - 1)) - 1
    # exponent = ceil(log2(amax / top)), clipped — elementwise ufuncs,
    # identical to the per-band scalar expression (log2 of inactive
    # bands' garbage is clipped away and masked to 0)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        exponent = np.ceil(np.log2(amax / top))
    exponent = np.where(active, np.clip(exponent, -120, 120), 0.0)
    exponent = exponent.astype(np.int64)
    # 2.0 ** e as an exact power of two (ldexp by definition; the scalar
    # path's float pow is exact over |e| <= 120 as well)
    step = np.ldexp(1.0, exponent)

    top_e = _expand(top, band_of)
    q = np.clip(
        np.round(coeffs / _expand(step, band_of)), -top_e - 1, top_e
    ).astype(np.int64)

    fixed_bytes = (widths * counts + 7) // 8

    if use_rice:
        u = rice.zigzag(q)
        uf = u.astype(np.float64)  # values < 2**17: conversion is exact
        usums = np.add.reduceat(uf, edges[:-1], axis=-1)
        means = usums / counts
        with np.errstate(divide="ignore"):
            k = np.floor(np.log2(means + 1.0))
        k = np.where(means < 1.0, 0, np.clip(k, 0, 30)).astype(np.int64)
        k_e = _expand(k, band_of).astype(np.uint64)
        elem_bits = (u >> k_e).astype(np.int64) + 1 + _expand(k, band_of)
        band_bits = np.add.reduceat(elem_bits, edges[:-1], axis=-1)
        rice_bytes = (band_bits + 7) // 8
        choose_rice = active & (rice_bytes + 2 < fixed_bytes)
        if choose_rice.any() and int(rice_bytes[choose_rice].max()) > 0xFFFF:
            raise BatchFallback("rice payload exceeds u16 length field")
    else:
        choose_rice = np.zeros_like(active)
        rice_bytes = fixed_bytes  # unused

    fixed = active & ~choose_rice
    sizes = np.where(
        fixed, 2 + fixed_bytes, np.where(choose_rice, 4 + rice_bytes, 1)
    )
    flat_sizes = sizes.reshape(-1)
    part_starts = np.concatenate(
        [[0], np.cumsum(flat_sizes)[:-1]]
    ).reshape(n_frames, n_bands)
    total = int(flat_sizes.sum())
    bits = np.zeros(total * 8, dtype=np.uint8)

    # -- fixed-width bands: offset-binary, MSB first ------------------------
    fixed_e = _expand(fixed, band_of).reshape(-1)
    if fixed_e.any():
        w_e = _expand(widths, band_of).reshape(-1)[fixed_e]
        off_vals = (
            q.reshape(-1)[fixed_e] + (1 << (w_e - 1))
        ).astype(np.int64)
        field_start = (
            (_expand(part_starts, band_of) + 2) * 8
            + bin_in_band[None, :] * _expand(widths, band_of)
        ).reshape(-1)[fixed_e]
        for t in range(int(w_e.max())):
            sel = w_e > t
            ones = (off_vals[sel] >> (w_e[sel] - 1 - t)) & 1
            pos = field_start[sel] + t
            bits[pos[ones == 1]] = 1

    # -- Rice bands: unary quotient + k-bit remainder -----------------------
    if use_rice:
        rice_e = _expand(choose_rice, band_of).reshape(-1)
        if rice_e.any():
            u_sel = u.reshape(-1)[rice_e]
            k_sel = _expand(k, band_of).reshape(-1)[rice_e]
            qq = (u_sel >> k_sel.astype(np.uint64)).astype(np.int64)
            lengths = qq + 1 + k_sel
            # exclusive cumsum of bit lengths, restarted per band
            grp = (
                np.arange(n_frames)[:, None] * n_bands + band_of[None, :]
            ).reshape(-1)[rice_e]
            ex = np.cumsum(lengths) - lengths
            first = np.empty(len(grp), dtype=bool)
            first[0] = True
            first[1:] = grp[1:] != grp[:-1]
            ex = ex - ex[first][np.cumsum(first) - 1]
            elem_start = (
                (_expand(part_starts, band_of).reshape(-1)[rice_e] + 4) * 8
                + ex
            )
            bits[elem_start + qq] = 1
            kmax = int(k_sel.max())
            for j in range(kmax):
                sel = k_sel > j
                ones = (
                    u_sel[sel] >> (k_sel[sel] - 1 - j).astype(np.uint64)
                ) & np.uint64(1)
                pos = elem_start[sel] + qq[sel] + 1 + j
                bits[pos[ones == np.uint64(1)]] = 1

    # -- one packbits pass, then scatter the headers ------------------------
    out = np.packbits(bits)
    ps = part_starts.reshape(-1)
    fixed_f = fixed.reshape(-1)
    w_f = widths.reshape(-1)
    e_f = exponent.reshape(-1)
    out[ps[fixed_f]] = w_f[fixed_f]
    out[ps[fixed_f] + 1] = e_f[fixed_f] & 0xFF
    if use_rice:
        rice_f = choose_rice.reshape(-1)
        nb = rice_bytes.reshape(-1)
        out[ps[rice_f]] = 0x80 | k.reshape(-1)[rice_f]
        out[ps[rice_f] + 1] = e_f[rice_f] & 0xFF
        out[ps[rice_f] + 2] = nb[rice_f] & 0xFF
        out[ps[rice_f] + 3] = (nb[rice_f] >> 8) & 0xFF
    return out.tobytes()


def decode_bands_batched(
    data: bytes,
    offset: int,
    n_frames: int,
    edges: np.ndarray,
    *,
    rice_tags: bool = True,
) -> tuple:
    """Decode ``n_frames`` frames of band parts starting at ``offset``.

    Returns ``(values, end_offset)`` with ``values`` of shape
    ``(n_frames, n_bins)``; inactive bands stay zero.  Structural
    anomalies — the situations where the scalar walker's *error* is the
    contract — raise :class:`BatchFallback`.  Rice-band payloads go
    through :func:`repro.codec.rice.rice_decode`, which reproduces the
    walker's truncation semantics itself.
    """
    edges = np.asarray(edges, dtype=np.int64)
    counts_by_band = np.diff(edges)
    n_bands = len(counts_by_band)
    n_bins = int(edges[-1])
    values = np.zeros((n_frames, n_bins))
    end = len(data)

    f_idx: list = []
    b_idx: list = []
    f_width: list = []
    f_exp: list = []
    f_off: list = []
    rice_parts: list = []
    counts_list = counts_by_band.tolist()
    edges_list = edges.tolist()
    for f in range(n_frames):
        for b in range(n_bands):
            if offset >= end:
                raise BatchFallback("descriptor past end of data")
            tag = data[offset]
            offset += 1
            if tag == 0:
                continue
            if offset >= end:
                raise BatchFallback("descriptor past end of data")
            exp = data[offset]
            if exp > 127:
                exp -= 256
            offset += 1
            count = counts_list[b]
            if rice_tags and tag & 0x80:
                kk = tag & 0x7F
                if offset + 2 > end:
                    raise BatchFallback("descriptor past end of data")
                nbytes = data[offset] | (data[offset + 1] << 8)
                offset += 2
                rice_parts.append(
                    (f, b, exp, kk, data[offset : offset + nbytes], count)
                )
            else:
                if tag > 16:
                    raise BatchFallback("fixed width out of range")
                nbytes = packed_size(tag, count)
                if offset + nbytes > end:
                    raise BatchFallback("fixed payload truncated")
                f_idx.append(f)
                b_idx.append(b)
                f_width.append(tag)
                f_exp.append(exp)
                f_off.append(offset)
            offset += nbytes

    for f, b, exp, kk, payload, count in rice_parts:
        q = rice.rice_decode(payload, kk, count)
        values[f, edges_list[b] : edges_list[b + 1]] = q * (2.0**exp)

    if f_idx:
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        barr = np.array(b_idx, dtype=np.int64)
        cnts = counts_by_band[barr]
        w_e = np.repeat(np.array(f_width, dtype=np.int64), cnts)
        within = np.concatenate([np.arange(c) for c in cnts.tolist()])
        start = np.repeat(np.array(f_off, dtype=np.int64) * 8, cnts)
        start = start + within * w_e
        val = np.zeros(len(w_e), dtype=np.int64)
        for t in range(int(w_e.max())):
            sel = w_e > t
            val[sel] = (val[sel] << 1) | bits[start[sel] + t]
        q = val - (1 << (w_e - 1))
        scale = np.repeat(
            np.ldexp(1.0, np.array(f_exp, dtype=np.int64)), cnts
        )
        rows = np.repeat(np.array(f_idx, dtype=np.int64), cnts)
        cols = np.repeat(edges[barr], cnts) + within
        values[rows, cols] = q * scale
    return values, offset
