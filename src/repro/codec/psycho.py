"""A small Bark-band psychoacoustic model.

Provides two things to the transform codecs:

* a partition of MDCT bins into critical-band-ish groups (Bark scale), and
* a per-band masking threshold from a triangular spreading function plus an
  absolute threshold in quiet.

The bit allocator then gives each band enough quantiser levels to keep its
quantisation noise a quality-dependent margin below the masker — this is the
mechanism behind the paper's "quality index" knob: at index 10 the margin is
large and "the algorithm throws away as little data as possible" (§2.2).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


def bark(freq_hz: np.ndarray) -> np.ndarray:
    """Traunmüller's Bark-scale approximation."""
    f = np.asarray(freq_hz, dtype=np.float64)
    return 13.0 * np.arctan(0.00076 * f) + 3.5 * np.arctan((f / 7500.0) ** 2)


@lru_cache(maxsize=32)
def band_edges(sample_rate: int, n_bins: int, bands_per_bark: float = 1.0):
    """Bin index boundaries grouping ``n_bins`` MDCT bins into Bark bands.

    Returns an int array ``edges`` with ``edges[0] == 0`` and
    ``edges[-1] == n_bins``; band *b* covers ``edges[b]:edges[b+1]``.
    """
    centre_freqs = (np.arange(n_bins) + 0.5) * sample_rate / (2.0 * n_bins)
    z = bark(centre_freqs)
    n_bands = max(1, int(np.ceil(z[-1] * bands_per_bark)))
    targets = np.linspace(0.0, z[-1], n_bands + 1)
    edges = np.searchsorted(z, targets)
    edges[0] = 0
    edges[-1] = n_bins
    edges = np.unique(edges)
    return edges.astype(np.int64)


class PsychoModel:
    """Masking-threshold estimation over Bark bands."""

    #: dB of masking rolloff per Bark of distance (symmetric triangle —
    #: a simplification of the usual -25/+10 dB/Bark asymmetric slopes)
    SPREAD_DB_PER_BARK = 15.0

    #: absolute threshold in quiet, as signal power (full scale == 1.0)
    QUIET_POWER = 1e-10

    def __init__(self, sample_rate: int, n_bins: int):
        self.sample_rate = sample_rate
        self.n_bins = n_bins
        self.edges = band_edges(sample_rate, n_bins)
        self.n_bands = len(self.edges) - 1
        centre_bins = (self.edges[:-1] + self.edges[1:]) / 2.0
        centre_freqs = centre_bins * sample_rate / (2.0 * n_bins)
        z = bark(centre_freqs)
        distance = np.abs(z[:, None] - z[None, :])
        self._spread = 10.0 ** (-self.SPREAD_DB_PER_BARK * distance / 10.0)

    def band_energies(self, coeffs: np.ndarray) -> np.ndarray:
        """Mean power per band; ``coeffs`` may be one frame ``(n_bins,)``
        or a whole block ``(frames, n_bins)`` (bands on the last axis)."""
        power = coeffs * coeffs
        sums = np.add.reduceat(power, self.edges[:-1], axis=-1)
        counts = np.diff(self.edges)
        return sums / counts

    #: how far below the (spread) masking signal the threshold sits; real
    #: models vary this with tonality, we use a fixed tone-like value
    MASK_DROP_DB = 18.0

    def masking_threshold(self, energies: np.ndarray) -> np.ndarray:
        """Per-band masked threshold: spread energies, dropped by the
        masking offset, floored at the threshold in quiet.

        ``energies`` is ``(n_bands,)`` or ``(frames, n_bands)``.  The
        spreading matrix is applied as a broadcast multiply plus a
        last-axis reduction instead of ``@``: BLAS picks different
        kernels (and rounding orders) for matrix-vector and
        matrix-matrix shapes, and the batched encode path must allocate
        bit-identically to the per-frame reference path.
        """
        e = np.asarray(energies, dtype=np.float64)
        spread = (self._spread * e[..., None, :]).sum(axis=-1)
        threshold = spread * 10.0 ** (-self.MASK_DROP_DB / 10.0)
        return np.maximum(threshold, self.QUIET_POWER)

    def allocate_widths(
        self, energies: np.ndarray, quality: int
    ) -> np.ndarray:
        """Quantiser widths (bits/coefficient, 0 = band dropped) per band.

        ``quality`` 0..10 sets the SNR margin each audible band must reach
        below its masker; inaudible bands (energy under the masking
        threshold) are dropped entirely.
        """
        if not 0 <= quality <= 10:
            raise ValueError(f"quality must be 0..10, got {quality}")
        maskers = self.masking_threshold(energies)
        audible = energies > maskers * 10.0 ** (-(2.0 + quality) / 10.0)
        # noise-to-mask budget: quantisation noise must sit under the masker
        # with a quality-dependent safety margin, so each band needs an SNR
        # of (energy-over-masker) + margin decibels — ~6 dB per bit.
        with np.errstate(divide="ignore"):
            smr_db = 10.0 * np.log10(
                np.maximum(energies, 1e-30) / maskers
            )
        margin_db = 3.0 * quality - 8.0
        needed_db = np.maximum(smr_db, 0.0) + margin_db
        widths = np.ceil(needed_db / 6.02).astype(np.int64) + 1
        # high bands get progressively fewer bits at low quality
        taper = np.linspace(0.0, (10 - quality) * 0.35, self.n_bands)
        widths = np.maximum(widths - np.round(taper).astype(np.int64), 2)
        widths = np.where(audible, widths, 0)
        return np.clip(widths, 0, 15)
